#include "monitor/stream_checker.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "fuzz/shrinker.hpp"

namespace jungle::monitor {

namespace {

bool isReadEvent(EventKind k) {
  return k == EventKind::kTxRead || k == EventKind::kNtRead;
}

bool isWriteEvent(EventKind k) {
  return k == EventKind::kTxWrite || k == EventKind::kNtWrite;
}

std::size_t commandEvents(const StreamUnit& u) {
  std::size_t n = 0;
  for (const MonitorEvent& e : u.events) {
    if (isReadEvent(e.kind) || isWriteEvent(e.kind)) ++n;
  }
  return n;
}

}  // namespace

void mergeStreamStats(StreamStats& into, const StreamStats& from) {
  into.unitsChecked += from.unitsChecked;
  into.opsChecked += from.opsChecked;
  into.fastPathUnits += from.fastPathUnits;
  into.certifiedUnits += from.certifiedUnits;
  into.escalatedUnits += from.escalatedUnits;
  into.discardedUnits += from.discardedUnits;
  into.certifierAttempts += from.certifierAttempts;
  into.certifierUsTotal += from.certifierUsTotal;
  into.rechecks += from.rechecks;
  into.inconclusiveRechecks += from.inconclusiveRechecks;
  into.gcUnits += from.gcUnits;
  into.resyncs += from.resyncs;
  into.suppressedVerdicts += from.suppressedVerdicts;
  into.violations += from.violations;
  into.windowUnits += from.windowUnits;
  into.windowEvents += from.windowEvents;
  into.peakWindowUnits = std::max(into.peakWindowUnits, from.peakWindowUnits);
  into.peakWindowEvents =
      std::max(into.peakWindowEvents, from.peakWindowEvents);
  into.escalationUsTotal += from.escalationUsTotal;
  into.escalationUsMax = std::max(into.escalationUsMax, from.escalationUsMax);
  if (from.rechecks > 0) {
    into.escalationUsMin = into.rechecks == from.rechecks
                               ? from.escalationUsMin
                               : std::min(into.escalationUsMin,
                                          from.escalationUsMin);
  }
  into.taintedWindowSkips += from.taintedWindowSkips;
}

StreamChecker::StreamChecker(const StreamOptions& opts) : opts_(opts) {
  JUNGLE_CHECK(opts_.model != nullptr);
  JUNGLE_CHECK(opts_.gcRetain >= 1);
  JUNGLE_CHECK(opts_.settleUnits >= 1);
  if (opts_.startUnknown) allKnown_ = false;
  // The certifier's acceptance is a serialization witness for every
  // condition the monitor dispatches on (opacity, parametrized opacity,
  // strict serializability, SI — escalations run with requireFcw=false),
  // but only when the claimed model's τ is the identity: a transforming
  // model checks a history the automaton never saw.
  if (opts_.certify && opts_.model->identityTransform()) {
    certifier_ = std::make_unique<Tms2Certifier>(
        opts_.certifierDepth != 0 ? opts_.certifierDepth : opts_.gcRetain,
        opts_.startUnknown);
  }
}

void StreamChecker::feed(StreamUnit unit) {
  if (unit.gapBefore) {
    // The ring dropped unit(s) exactly between this unit and its
    // predecessor: everything decided so far still stands, but the running
    // state and any pending escalation window end here.  The cooldown
    // keeps convictions off while any unit whose claim window could
    // overlap the dropped unit's can still appear in an escalation window
    // (a dropped write stays the TM's current value until overwritten, and
    // a neighbour that linearized across the gap is indistinguishable from
    // a corrupt read).
    stats_.discardedUnits += undecided_.size();
    resync();
    convictionCooldown_ = cooldownSpan();
    discardPending();
  }
  if (convictionCooldown_ > 0) --convictionCooldown_;
  ++stats_.unitsChecked;
  if (mode_ == Mode::kBuffering) {
    // Fast path is suspended until the buffered suffix is decided; an
    // engine run covers these units too, so nothing is skipped.
    windowEvents_ += unit.events.size();
    undecided_.push_back(std::move(unit));
    notePeaks();
    if (certifier_ && drainUndecided()) {
      // The certifier linearized the whole suffix — window decided, no
      // engine run needed (the claim-inverted writer/reader case).
      mode_ = Mode::kFast;
      settleLeft_ = 0;
      confirming_ = false;
      gc();
      notePeaks();
      return;
    }
    if (settleLeft_ > 0) --settleLeft_;
    if (settleLeft_ == 0) runEscalation(false);
    return;
  }
  if (fastPathAccepts(unit)) {
    ++stats_.fastPathUnits;
    stats_.opsChecked += commandEvents(unit);
    if (certifier_) certifier_->noteAdmitted(unit);
    admit(std::move(unit));
    return;
  }
  if (certifier_ && tryCertify(unit)) {
    if (Tms2Certifier::updatesMemory(unit)) admit(std::move(unit));
    return;
  }
  // Mismatch: the unit joins the window undecided and the running state is
  // frozen until the engine rules.  Buffer settleUnits more units first so
  // a competitor that linearized early but claimed its epoch late can
  // arrive (see the file comment of stream_checker.hpp).
  windowEvents_ += unit.events.size();
  undecided_.push_back(std::move(unit));
  notePeaks();
  mode_ = Mode::kBuffering;
  settleLeft_ = opts_.settleUnits;
  confirming_ = false;
}

bool StreamChecker::tryCertify(const StreamUnit& u) {
  ++stats_.certifierAttempts;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::pair<ObjectId, Word>> adopted;
  const bool ok = Tms2Certifier::updatesMemory(u)
                      ? certifier_->tryCertifyUpdater(u, &adopted)
                      : certifier_->tryCertifyReader(u, &adopted);
  stats_.certifierUsTotal += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (!ok) return false;
  ++stats_.certifiedUnits;
  stats_.opsChecked += commandEvents(u);
  // Mirror the certifier's unknown-object adoptions so the running state
  // and a later escalation's initializer agree (the certifier only adopts
  // objects no retained snapshot writes, so base == latest for them).
  for (const auto& [obj, val] : adopted) {
    state_.emplace(obj, val);
    prefixState_.emplace(obj, val);
  }
  // Retention is the caller's job: a certified READER is dropped (omitting
  // a read-only unit only removes constraints from future engine windows);
  // a certified UPDATER must be admitted — its writes reach the latest
  // memory unshadowed (insertion guarantees no slot above writes them) and
  // future windows need it as escalation context.
  return true;
}

bool StreamChecker::drainUndecided() {
  bool progress = true;
  while (progress && !undecided_.empty()) {
    progress = false;
    for (std::size_t i = 0; i < undecided_.size(); ++i) {
      const StreamUnit& u = undecided_[i];
      // A remaining undecided unit that ended before this one began must
      // serialize first; until it is placed, this one cannot be.  Ties
      // count as precedence, matching the stable windowHistory interleave
      // (and the certifier's floor rule).
      bool mustWait = false;
      for (std::size_t j = 0; j < undecided_.size(); ++j) {
        if (j != i && Tms2Certifier::endTicket(undecided_[j]) <= u.epoch) {
          mustWait = true;
          break;
        }
      }
      if (mustWait) continue;
      const std::size_t ops = commandEvents(u);
      if (fastPathAccepts(u)) {
        // Sees the latest memory: admit it as the next serialization step
        // (gc deferred until the suffix fully drains — an escalation may
        // still need the full window).
        certifier_->noteAdmitted(u);
        applyWrites(u, state_);
        window_.push_back(std::move(undecided_[i]));
      } else if (tryCertify(undecided_[i])) {
        if (Tms2Certifier::updatesMemory(undecided_[i])) {
          // Certified by insertion: admit like the fast-path branch (its
          // writes reach the latest memory unshadowed), keep it as
          // escalation context.
          applyWrites(undecided_[i], state_);
          window_.push_back(std::move(undecided_[i]));
        } else {
          windowEvents_ -= undecided_[i].events.size();
        }
        undecided_.erase(undecided_.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;
      } else {
        continue;
      }
      ++stats_.certifiedUnits;
      stats_.opsChecked += ops;
      undecided_.erase(undecided_.begin() + static_cast<std::ptrdiff_t>(i));
      progress = true;
      break;
    }
  }
  return undecided_.empty();
}

void StreamChecker::noteDrops() {
  // Units are missing: neither the running state nor a pending escalation
  // window can be trusted any more.
  stats_.discardedUnits += undecided_.size();
  resync();
  convictionCooldown_ = cooldownSpan();
  discardPending();
}

void StreamChecker::discardPending() {
  if (!pending_) return;
  ++stats_.suppressedVerdicts;
  pending_.reset();
}

std::size_t StreamChecker::cooldownSpan() const {
  // A window escalating at feed N reaches back gcRetain retained units
  // plus up to two settle extensions (initial + confirmation), so a
  // gap-adjacent unit leaves every possible escalation window only after
  // this many subsequent feeds.
  return opts_.gcRetain + 2 * opts_.settleUnits + 1;
}

void StreamChecker::onIdle() {
  if (mode_ == Mode::kBuffering) runEscalation(false);
}

void StreamChecker::finish() {
  if (mode_ == Mode::kBuffering) runEscalation(true);
  // The drained stream is quiescent by definition — unless a trailing drop
  // was never gap-covered (the ring went quiet right after losing a unit),
  // in which case the dropped unit could be the pending window's missing
  // explanation.
  if (pending_ && dropSuspect_) discardPending();
  onQuiescent();
}

void StreamChecker::onQuiescent() {
  if (!pending_) return;
  reportViolation(std::move(pending_->window), std::move(pending_->description));
  pending_.reset();
}

bool StreamChecker::fastPathAccepts(const StreamUnit& u) {
  // Own-writes overlay (read-own-write inside one transaction) as a
  // backward scan over the unit's earlier events: units are a handful of
  // operations, so this beats a per-unit hash map on the hot path.
  const MonitorEvent* const evs = u.events.data();
  for (std::size_t i = 0; i < u.events.size(); ++i) {
    const MonitorEvent& e = evs[i];
    if (!isReadEvent(e.kind)) continue;
    if (e.kind == EventKind::kTxRead) {
      bool ownWrite = false;
      for (std::size_t j = i; j-- > 0;) {
        if (isWriteEvent(evs[j].kind) && evs[j].obj == e.obj) {
          if (evs[j].value != e.value) return false;
          ownWrite = true;
          break;
        }
      }
      if (ownWrite) continue;
    }
    auto it = state_.find(e.obj);
    if (it != state_.end()) {
      if (it->second != e.value) return false;
      continue;
    }
    if (allKnown_) {
      // Never written since the runtime started: initial value.
      if (e.value != 0) return false;
      continue;
    }
    // Post-resync: the object's value is unknown — adopt what was read.
    // Goes into both maps so a later escalation's initializer agrees.
    state_.emplace(e.obj, e.value);
    prefixState_.emplace(e.obj, e.value);
  }
  return true;
}

void StreamChecker::applyWrites(
    const StreamUnit& u, std::unordered_map<ObjectId, Word>& state) const {
  // Aborted transactions install nothing; reads install nothing.
  if (u.kind == StreamUnit::Kind::kAbortedTx) return;
  for (const MonitorEvent& e : u.events) {
    if (isWriteEvent(e.kind)) state[e.obj] = e.value;
  }
}

void StreamChecker::admit(StreamUnit unit) {
  applyWrites(unit, state_);
  windowEvents_ += unit.events.size();
  window_.push_back(std::move(unit));
  gc();
  notePeaks();
}

void StreamChecker::gc() {
  while (window_.size() > opts_.gcRetain) {
    const StreamUnit& front = window_.front();
    applyWrites(front, prefixState_);
    windowEvents_ -= front.events.size();
    ++stats_.gcUnits;
    window_.pop_front();
  }
}

void StreamChecker::runEscalation(bool final) {
  ++stats_.rechecks;
  if (!allKnown_) {
    // Post-resync windows may read objects whose pre-window value was never
    // learned.  Adopt the first read of each such object into the prefix,
    // so the initializer pins it instead of the engine assuming the initial
    // zero — even when a window write to the object precedes the read by
    // epoch: the reader may have linearized before that writer (epochs are
    // claim order), and the engine's real-time edges already separate that
    // benign inversion (units overlap, witness exists) from a genuinely
    // stale read (real-time-separated, still convicts).
    const auto adoptFirstReads = [this](const std::deque<StreamUnit>& units) {
      for (const StreamUnit& u : units) {
        std::unordered_set<ObjectId> own;
        for (const MonitorEvent& e : u.events) {
          if (isWriteEvent(e.kind)) {
            own.insert(e.obj);
          } else if (isReadEvent(e.kind) && !own.contains(e.obj)) {
            prefixState_.emplace(e.obj, e.value);
          }
        }
      }
    };
    adoptFirstReads(window_);
    adoptFirstReads(undecided_);
  }
  History h = windowHistory(nullptr);
  SearchLimits limits;
  limits.maxExpansions = opts_.recheckMaxExpansions;
  limits.timeout = opts_.recheckTimeout;
  limits.threads = opts_.recheckThreads;
  const auto t0 = std::chrono::steady_clock::now();
  const CheckResult r = checkCondition(opts_.condition, h, *opts_.model,
                                       specs_, limits, /*requireFcw=*/false);
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  stats_.escalationUsTotal += us;
  stats_.escalationUsMax = std::max(stats_.escalationUsMax, us);
  stats_.escalationUsMin =
      stats_.rechecks == 1 ? us : std::min(stats_.escalationUsMin, us);
  if (r.satisfied) {
    stats_.escalatedUnits += undecided_.size();
    collapse(r.witness ? *r.witness : History{});
    return;
  }
  if (r.inconclusive) {
    // Honesty rule: a deadline is never evidence.  Start over.
    ++stats_.inconclusiveRechecks;
    stats_.escalatedUnits += undecided_.size();
    resync();
    return;
  }
  if (dropSuspect_ || convictionCooldown_ > 0) {
    // A drop is unresolved somewhere in the stream, or the window is still
    // within a gap's claim-inversion reach: the unit that explains this
    // window may be the one that was dropped.  Discard the verdict.
    ++stats_.suppressedVerdicts;
    stats_.escalatedUnits += undecided_.size();
    resync();
    return;
  }
  if (!final && !confirming_) {
    // Conclusive on what we have, but a producer could still be mid-flush
    // with the unit that explains everything.  Require a second run over a
    // later window (or the drained stream) before believing it.
    confirming_ = true;
    settleLeft_ = opts_.settleUnits;
    return;
  }
  // Confirmed.  Publication still waits for a quiescent instant: an
  // optimistic TM publishes writes at its internal commit point but counts
  // the unit's loss only when the flush fails, arbitrarily later — the
  // explaining writer may be in flight *and doomed* right now, invisible
  // to every counter-based gate (see stream_checker.hpp).
  stats_.escalatedUnits += undecided_.size();
  std::string desc =
      "window of " + std::to_string(window_.size() + undecided_.size()) +
      " unit(s) conclusively violates " +
      (opts_.condition == ConditionKind::kParametrizedOpacity
           ? std::string("opacity parametrized by ") + opts_.model->name()
           : std::string(conditionKindName(opts_.condition)));
  if (final) {
    reportViolation(std::move(h), std::move(desc));
  } else {
    discardPending();  // a newer confirmed window supersedes an unpublished one
    pending_ = PendingConviction{std::move(h), std::move(desc)};
  }
  resync();
}

void StreamChecker::collapse(const History& witness) {
  // The engine accepted the window: everything in it is decided.  The new
  // prefix state is the witness's final object state (committed and
  // non-transactional mutations in witness order — the initializer's writes
  // re-install the old prefix).  An empty witness (defensive: satisfied
  // results always carry one) falls back to epoch-order folding.
  std::unordered_map<ObjectId, Word> st = prefixState_;
  if (witness.empty()) {
    for (const StreamUnit& u : window_) applyWrites(u, st);
    for (const StreamUnit& u : undecided_) applyWrites(u, st);
  } else {
    HistoryAnalysis wa(witness);
    bool sawHavoc = false;
    for (std::size_t pos = 0; pos < witness.size(); ++pos) {
      const OpInstance& op = witness.at(pos);
      if (!op.isCommand() || !op.cmd.mutates()) continue;
      const auto t = wa.transactionOf(pos);
      if (t && !wa.transactions()[*t].committed) continue;
      if (op.cmd.kind == CmdKind::kHavoc) {
        st.erase(op.obj);
        sawHavoc = true;
        continue;
      }
      st[op.obj] = op.cmd.value;
    }
    if (sawHavoc) allKnown_ = false;
  }
  stats_.gcUnits += window_.size() + undecided_.size();
  window_.clear();
  undecided_.clear();
  windowEvents_ = 0;
  prefixState_ = std::move(st);
  state_ = prefixState_;
  if (certifier_) certifier_->rebuild(prefixState_, allKnown_);
  mode_ = Mode::kFast;
  settleLeft_ = 0;
  confirming_ = false;
  notePeaks();
}

void StreamChecker::resync() {
  ++stats_.resyncs;
  window_.clear();
  undecided_.clear();
  windowEvents_ = 0;
  prefixState_.clear();
  state_.clear();
  allKnown_ = false;
  if (certifier_) certifier_->reset();
  mode_ = Mode::kFast;
  settleLeft_ = 0;
  confirming_ = false;
  notePeaks();
}

void StreamChecker::reportViolation(History window, std::string description) {
  ++stats_.violations;
  SearchLimits limits;
  limits.maxExpansions = opts_.recheckMaxExpansions;
  limits.timeout = opts_.recheckTimeout;
  limits.threads = opts_.recheckThreads;
  const MemoryModel& m = *opts_.model;
  const SpecMap& specs = specs_;
  const ConditionKind condition = opts_.condition;
  const fuzz::FailurePredicate fails = [&](const History& cand) {
    const CheckResult r =
        checkCondition(condition, cand, m, specs, limits, /*requireFcw=*/false);
    return !r.satisfied && !r.inconclusive;
  };
  MonitorViolation v;
  v.description = std::move(description);
  v.shrunk = fuzz::shrinkHistory(window, fails).history;
  v.window = std::move(window);
  violations_.push_back(std::move(v));
}

History StreamChecker::windowHistory(const StreamUnit* extra) const {
  struct Ref {
    const MonitorEvent* ev;
    ProcessId pid;
  };
  std::vector<Ref> evs;
  evs.reserve(windowEvents_ + (extra ? extra->events.size() : 0));
  for (const StreamUnit& u : window_) {
    for (const MonitorEvent& e : u.events) evs.push_back({&e, u.pid});
  }
  for (const StreamUnit& u : undecided_) {
    for (const MonitorEvent& e : u.events) evs.push_back({&e, u.pid});
  }
  if (extra) {
    for (const MonitorEvent& e : extra->events) evs.push_back({&e, extra->pid});
  }
  // Interior events share their unit's start ticket (event.hpp), so the
  // sort must be stable: ties are intra-unit and the flatten order above
  // is the recorded program order.
  std::stable_sort(
      evs.begin(), evs.end(),
      [](const Ref& a, const Ref& b) { return a.ev->ticket < b.ev->ticket; });

  ProcessId maxPid = 0;
  std::unordered_set<ObjectId> referenced;
  for (const Ref& r : evs) {
    maxPid = std::max(maxPid, r.pid);
    if (r.ev->obj != kNoObject) referenced.insert(r.ev->obj);
  }

  HistoryBuilder b;
  // Synthetic initializer: installs the GC'd prefix's values for every
  // object the window touches (zero-valued entries match the engine's
  // initial state and are skipped).
  std::vector<std::pair<ObjectId, Word>> init;
  for (const auto& [obj, val] : prefixState_) {
    if (val != 0 && referenced.contains(obj)) init.emplace_back(obj, val);
  }
  if (!init.empty()) {
    std::sort(init.begin(), init.end());
    const ProcessId initPid = maxPid + 1;
    b.start(initPid);
    for (const auto& [obj, val] : init) b.write(initPid, obj, val);
    b.commit(initPid);
  }

  for (const Ref& r : evs) {
    const MonitorEvent& e = *r.ev;
    switch (e.kind) {
      case EventKind::kTxStart:
        b.start(r.pid);
        break;
      case EventKind::kTxRead:
      case EventKind::kNtRead:
        b.read(r.pid, e.obj, e.value);
        break;
      case EventKind::kTxWrite:
      case EventKind::kNtWrite:
        b.write(r.pid, e.obj, e.value);
        break;
      case EventKind::kTxCommit:
        b.commit(r.pid);
        break;
      case EventKind::kTxAbort:
        b.abort(r.pid);
        break;
      case EventKind::kGapMarker:
        break;  // meta-unit, never reaches the checker
    }
  }
  return b.build();
}

void StreamChecker::notePeaks() {
  stats_.windowUnits = window_.size() + undecided_.size();
  stats_.windowEvents = windowEvents_;
  stats_.peakWindowUnits =
      std::max(stats_.peakWindowUnits, window_.size() + undecided_.size());
  stats_.peakWindowEvents = std::max(stats_.peakWindowEvents, windowEvents_);
}

}  // namespace jungle::monitor
