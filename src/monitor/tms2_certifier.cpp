#include "monitor/tms2_certifier.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace jungle::monitor {

namespace {

bool isReadEvent(EventKind k) {
  return k == EventKind::kTxRead || k == EventKind::kNtRead;
}

bool isWriteEvent(EventKind k) {
  return k == EventKind::kTxWrite || k == EventKind::kNtWrite;
}

/// Own-write overlay: the latest same-unit write to `e.obj` before index
/// `i`, if any (transactional reads see it instead of shared memory).
bool ownWriteBefore(const StreamUnit& u, std::size_t i, Word& out) {
  for (std::size_t j = i; j-- > 0;) {
    const MonitorEvent& w = u.events[j];
    if (isWriteEvent(w.kind) && w.obj == u.events[i].obj) {
      out = w.value;
      return true;
    }
  }
  return false;
}

}  // namespace

Tms2Certifier::Tms2Certifier(std::size_t depth, bool startUnknown)
    : depth_(depth), known_(!startUnknown) {
  JUNGLE_CHECK(depth_ >= 1);
}

bool Tms2Certifier::updatesMemory(const StreamUnit& u) {
  if (u.kind == StreamUnit::Kind::kAbortedTx) return false;
  for (const MonitorEvent& e : u.events) {
    if (isWriteEvent(e.kind)) return true;
  }
  return false;
}

std::uint64_t Tms2Certifier::endTicket(const StreamUnit& u) {
  return u.events.empty() ? u.epoch : u.events.back().ticket;
}

bool Tms2Certifier::anySlotWrites(ObjectId obj) const {
  for (const Slot& s : slots_) {
    for (const auto& [o, v] : s.writes) {
      if (o == obj) return true;
    }
  }
  return false;
}

bool Tms2Certifier::valueAt(std::size_t p, ObjectId obj, Word& out) const {
  // Newest-first scan from slot p down: the last write at or before p wins.
  if (p != kBase) {
    for (std::size_t s = p + 1; s-- > 0;) {
      const Slot& slot = slots_[s];
      for (std::size_t w = slot.writes.size(); w-- > 0;) {
        if (slot.writes[w].first == obj) {
          out = slot.writes[w].second;
          return true;
        }
      }
    }
  }
  auto it = base_.find(obj);
  if (it != base_.end()) {
    out = it->second;
    return true;
  }
  if (known_) {
    // Never written since the runtime started: initial value.
    out = 0;
    return true;
  }
  return false;
}

bool Tms2Certifier::externalReads(
    const StreamUnit& u, std::vector<std::pair<ObjectId, Word>>* out) {
  for (std::size_t i = 0; i < u.events.size(); ++i) {
    const MonitorEvent& e = u.events[i];
    if (!isReadEvent(e.kind)) continue;
    Word own;
    if (e.kind == EventKind::kTxRead && ownWriteBefore(u, i, own)) {
      if (own != e.value) return false;
      continue;
    }
    out->emplace_back(e.obj, e.value);
  }
  return true;
}

void Tms2Certifier::trackReads(
    std::size_t p, const std::vector<std::pair<ObjectId, Word>>& reads) {
  std::vector<ObjectId>& objs = slots_[p].readObjs;
  for (const auto& [obj, val] : reads) {
    if (std::find(objs.begin(), objs.end(), obj) == objs.end()) {
      objs.push_back(obj);
    }
  }
}

bool Tms2Certifier::readsMatchAt(
    std::size_t p, const std::vector<std::pair<ObjectId, Word>>& reads,
    std::vector<std::pair<ObjectId, Word>>* adopt) const {
  adopt->clear();
  for (const auto& [obj, val] : reads) {
    Word have;
    if (valueAt(p, obj, have)) {
      if (have != val) return false;
      continue;
    }
    // Unknown object: adoptable only when NO retained snapshot writes it
    // (then base == every memory for it, and the checker's running state
    // can adopt the same value consistently).
    if (anySlotWrites(obj)) return false;
    bool clash = false;
    bool seen = false;
    for (const auto& [o, v] : *adopt) {
      if (o == obj) {
        seen = true;
        clash = v != val;
        break;
      }
    }
    if (clash) return false;
    if (!seen) adopt->emplace_back(obj, val);
  }
  return true;
}

void Tms2Certifier::adoptUnknownReads(const StreamUnit& u) {
  if (known_) return;
  for (std::size_t i = 0; i < u.events.size(); ++i) {
    const MonitorEvent& e = u.events[i];
    if (!isReadEvent(e.kind)) continue;
    Word own;
    if (e.kind == EventKind::kTxRead && ownWriteBefore(u, i, own)) continue;
    if (base_.contains(e.obj) || anySlotWrites(e.obj)) continue;
    // The fast path validated this read against the checker's running
    // state, so adopting it as the base value stays in lockstep (no
    // retained snapshot writes the object, so base == latest for it).
    base_.emplace(e.obj, e.value);
  }
}

void Tms2Certifier::noteAdmitted(const StreamUnit& u) {
  adoptUnknownReads(u);
  std::vector<std::pair<ObjectId, Word>> reads;
  const bool readsOk = externalReads(u, &reads);
  if (updatesMemory(u)) {
    std::vector<std::pair<ObjectId, Word>> writes;
    for (const MonitorEvent& e : u.events) {
      if (isWriteEvent(e.kind)) writes.emplace_back(e.obj, e.value);
    }
    // The committer's reads saw the LATEST memory, so appending is always
    // a valid serialization — but when its footprint is disjoint from the
    // retained suffix, so is any lower insertion point, and serializing it
    // as early as possible keeps its close ticket from flooring a later
    // stale reader above a concurrent late-closing writer.  Same
    // feasibility scan as the stale-updater path; append is the fallback
    // when the reads cannot be reconstructed.
    std::size_t p = slots_.size();
    if (readsOk) {
      std::size_t low;
      if (lowestFeasibleInsertion(u, reads, writes, &low)) p = low;
    }
    insertUpdater(p, u, readsOk ? reads
                                : std::vector<std::pair<ObjectId, Word>>{},
                  std::move(writes));
    return;
  }
  // Read-only unit serialized at the latest memory.  With no retained
  // snapshot it reads the base, which is after every folded unit — later
  // units are automatically after it, nothing to track.
  if (!slots_.empty()) {
    slots_.back().minEnd = std::min(slots_.back().minEnd, endTicket(u));
    if (readsOk) trackReads(slots_.size() - 1, reads);
  }
}

bool Tms2Certifier::tryCertifyReader(
    const StreamUnit& u, std::vector<std::pair<ObjectId, Word>>* adopted) {
  if (updatesMemory(u)) return false;
  // Effective external reads after the own-write overlay (an aborted
  // transaction's writes are own-only, so it reduces to a reader too).
  std::vector<std::pair<ObjectId, Word>> reads;
  if (!externalReads(u, &reads)) return false;
  // Real-time floor: a slot whose minEnd precedes this unit's start holds
  // a unit that ended before this one began — serializing below it would
  // invert real time.  A TIE (minEnd == start) also separates: the window
  // history interleaves events by ticket with a stable sort, so the
  // earlier-fed unit's close event lands before this unit's start event
  // and the engine sees real-time precedence.
  std::size_t floor = kBase;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].minEnd <= u.epoch) floor = s;
  }
  // Oldest feasible memory first: certifying low keeps future floors low.
  std::vector<std::pair<ObjectId, Word>> adopt;
  for (std::size_t p = floor;; p = (p == kBase ? 0 : p + 1)) {
    if (p != kBase && p >= slots_.size()) break;
    if (!readsMatchAt(p, reads, &adopt)) continue;
    // Feasible at p: serialize here.
    for (const auto& [o, v] : adopt) base_.emplace(o, v);
    if (adopted) *adopted = std::move(adopt);
    if (p != kBase) {
      slots_[p].minEnd = std::min(slots_[p].minEnd, endTicket(u));
      trackReads(p, reads);
    }
    return true;
  }
  return false;
}

bool Tms2Certifier::lowestFeasibleInsertion(
    const StreamUnit& u, const std::vector<std::pair<ObjectId, Word>>& reads,
    const std::vector<std::pair<ObjectId, Word>>& writes,
    std::size_t* pos) const {
  // Real-time floor as in the reader path (ties separate): the insertion
  // index must leave every slot whose minEnd reaches this unit's start
  // below it.
  std::size_t floor = kBase;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].minEnd <= u.epoch) floor = s;
  }
  const std::size_t lo = floor == kBase ? 0 : floor + 1;
  // Scan insertion points from the latest down, keeping the LOWEST
  // feasible one — serializing a committer as early as possible keeps
  // its (possibly early) close ticket from flooring later stale readers
  // above concurrent late-closing writers.  Walking the boundary down
  // past a slot adds it to the set serialized ABOVE the unit; the moment
  // any such slot writes or reads one of the unit's written objects,
  // every lower insertion point is infeasible too (the conflict only
  // accumulates), so the scan stops for good.
  bool found = false;
  std::vector<std::pair<ObjectId, Word>> adopt;
  for (std::size_t p = slots_.size();; --p) {
    const std::size_t below = p == 0 ? kBase : p - 1;
    if (readsMatchAt(below, reads, &adopt)) {
      *pos = p;
      found = true;
    }
    if (p == lo) break;
    // Crossing slot p-1: it will now be serialized above the unit.
    const Slot& above = slots_[p - 1];
    bool conflict = false;
    for (const auto& [obj, val] : writes) {
      for (const auto& [o, v] : above.writes) {
        if (o == obj) {
          conflict = true;
          break;
        }
      }
      if (!conflict &&
          std::find(above.readObjs.begin(), above.readObjs.end(), obj) !=
              above.readObjs.end()) {
        conflict = true;
      }
      if (conflict) break;
    }
    if (conflict) break;
  }
  return found;
}

void Tms2Certifier::insertUpdater(
    std::size_t p, const StreamUnit& u,
    const std::vector<std::pair<ObjectId, Word>>& reads,
    std::vector<std::pair<ObjectId, Word>>&& writes) {
  Slot s;
  s.minEnd = endTicket(u);
  s.writes = std::move(writes);
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(p),
                std::move(s));
  trackReads(p, reads);
  trim();
}

bool Tms2Certifier::tryCertifyUpdater(
    const StreamUnit& u, std::vector<std::pair<ObjectId, Word>>* adopted) {
  if (!updatesMemory(u)) return false;
  std::vector<std::pair<ObjectId, Word>> reads;
  if (!externalReads(u, &reads)) return false;
  std::vector<std::pair<ObjectId, Word>> writes;
  for (const MonitorEvent& e : u.events) {
    if (isWriteEvent(e.kind)) writes.emplace_back(e.obj, e.value);
  }
  std::size_t p;
  if (!lowestFeasibleInsertion(u, reads, writes, &p)) return false;
  // Feasible at p: the unit's snapshot becomes position p.  Nobody above
  // reads or writes its objects, so its writes reach the latest memory
  // unshadowed (the caller applies them to the running state) and every
  // already-validated read above stays untouched.
  std::vector<std::pair<ObjectId, Word>> adopt;
  JUNGLE_CHECK(readsMatchAt(p == 0 ? kBase : p - 1, reads, &adopt));
  for (const auto& [o, v] : adopt) base_.emplace(o, v);
  if (adopted) *adopted = std::move(adopt);
  insertUpdater(p, u, reads, std::move(writes));
  return true;
}

void Tms2Certifier::trim() {
  while (slots_.size() > depth_) {
    for (const auto& [o, v] : slots_.front().writes) base_[o] = v;
    slots_.pop_front();
  }
}

void Tms2Certifier::reset() {
  base_.clear();
  slots_.clear();
  known_ = false;
}

void Tms2Certifier::rebuild(const std::unordered_map<ObjectId, Word>& state,
                            bool known) {
  base_ = state;
  slots_.clear();
  known_ = known;
}

}  // namespace jungle::monitor
