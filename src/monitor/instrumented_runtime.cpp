#include "monitor/instrumented_runtime.hpp"

#include <exception>

#include "common/check.hpp"

namespace jungle::monitor {

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::kTxStart:
      return "tx-start";
    case EventKind::kTxRead:
      return "tx-read";
    case EventKind::kTxWrite:
      return "tx-write";
    case EventKind::kTxCommit:
      return "tx-commit";
    case EventKind::kTxAbort:
      return "tx-abort";
    case EventKind::kNtRead:
      return "nt-read";
    case EventKind::kNtWrite:
      return "nt-write";
    case EventKind::kGapMarker:
      return "gap-marker";
  }
  return "?";
}

EventCapture::EventCapture(std::size_t maxProcs, const CaptureOptions& opts)
    : opts_(opts), gapFlags_(maxProcs) {
  JUNGLE_CHECK(maxProcs > 0);
  rings_.reserve(maxProcs);
  for (std::size_t p = 0; p < maxProcs; ++p) {
    rings_.push_back(std::make_unique<EventRing>(opts.ringCapacity));
  }
}

void EventCapture::maybePushGapMarker(ProcessId p) {
  if (!gapFlags_[p].armed) return;
  EventRing& r = *rings_[p];
  // The producer is the drop counter's only writer, so this relaxed read
  // is the *exact* number of units this ring lost before the gap — the
  // collector cannot compute that itself (its counter reads may already
  // include drops that happen after whatever unit it is assembling,
  // mis-attributing the gap and leaving its true successor unmarked).
  // The marker's ticket field carries the ring's cumulative drop-taint
  // mask: the counter read above sequences after every footprint OR of
  // the drops it counts (producer program order), so the snapshot covers
  // them all.  Cumulative is deliberate — a mask reset here could hide
  // the taint of drops an earlier pushed-but-unpopped marker accounts
  // for.
  const MonitorEvent marker{r.taintMask(), kNoObject, EventKind::kGapMarker,
                            r.droppedUnits()};
  if (r.tryPushUnit(&marker, 1, /*countDrop=*/false)) {
    gapFlags_[p].armed = false;
  }
}

void EventCapture::flushUnit(ProcessId p, std::vector<MonitorEvent>& buf,
                             EventKind endKind) {
  // beginUnit's announcement is still active and must not be raised here:
  // the unit's merge key (the start ticket) is already claimed, so a newer
  // — higher — bound would let the frontier pass it before the push lands.
  EventRing& r = *rings_[p];
  maybePushGapMarker(p);
  const std::uint64_t closing =
      ticket_.fetch_add(1, std::memory_order_seq_cst);
  // Interior reads/writes recorded with a zero placeholder inherit the
  // start event's ticket (event.hpp): two counter RMWs per unit total,
  // which is most of what keeps the capture hot path cheap.
  const std::uint64_t startTicket = buf.front().ticket;
  for (MonitorEvent& e : buf) {
    if (e.ticket == 0) e.ticket = startTicket;
  }
  buf.push_back({closing, kNoObject, endKind, 0});
  // The drop-taint footprint is exact here — the unit's events are in
  // hand — so a full ring taints only the variables this unit touched
  // instead of blinding every shard.
  std::uint64_t taintBits = 0;
  for (const MonitorEvent& e : buf) taintBits |= eventTaintBits(e);
  if (!r.tryPushUnit(buf.data(), buf.size(), /*countDrop=*/true, taintBits)) {
    gapFlags_[p].armed = true;
  }
  r.clearFlush();
  buf.clear();
}

void EventCapture::flushSingle(ProcessId p, EventKind kind, ObjectId obj,
                               Word value) {
  EventRing& r = *rings_[p];
  maybePushGapMarker(p);
  const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_seq_cst);
  const MonitorEvent ev{t, obj, kind, value};
  if (!r.tryPushUnit(&ev, 1, /*countDrop=*/true, eventTaintBits(ev))) {
    gapFlags_[p].armed = true;
  }
  r.clearFlush();
}

Word EventCapture::maybeCorrupt(Word v) {
  if (opts_.injectBug != InjectedBug::kCorruptTxRead) return v;
  if (bugFired_.load(std::memory_order_relaxed)) return v;
  // The ticket counter (two claims per unit) is the trigger's coarse
  // progress proxy.
  if (ticket_.load(std::memory_order_relaxed) < opts_.injectAfterEvents) {
    return v;
  }
  bool expected = false;
  if (bugFired_.compare_exchange_strong(expected, true,
                                        std::memory_order_relaxed)) {
    return v + 1;
  }
  return v;
}

std::uint64_t EventCapture::totalPushed() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->pushed();
  return n;
}

std::uint64_t EventCapture::totalDropped() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->dropped();
  return n;
}

std::uint64_t EventCapture::totalDroppedUnits() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->droppedUnits();
  return n;
}

namespace {

class MonitoredRuntime final : public TmRuntime {
 public:
  MonitoredRuntime(TmRuntime& inner, EventCapture& cap)
      : inner_(inner), cap_(cap), perProc_(cap.procs()) {}

  const char* name() const override { return inner_.name(); }
  TmKind kind() const override { return inner_.kind(); }
  bool instrumentsNtReads() const override {
    return inner_.instrumentsNtReads();
  }
  bool instrumentsNtWrites() const override {
    return inner_.instrumentsNtWrites();
  }
  std::uint64_t abortCount() const override { return inner_.abortCount(); }

  bool transaction(ProcessId p,
                   const std::function<void(TxContext&)>& body) override {
    JUNGLE_CHECK(p < perProc_.size());
    PerProc& s = perProc_[p];
    // The announcement must be live before the TM can make any of this
    // transaction's writes visible: it stalls the merge frontier so no
    // reader of those writes is fed ahead of this unit, no matter how long
    // the gap between the TM's internal commit point and our flush (a
    // preempted thread can be thousands of tickets late).
    cap_.beginUnit(p);
    std::uint64_t attempts = 0;
    const bool ok = inner_.transaction(p, [&](TxContext& tx) {
      ++attempts;
      s.buf.clear();
      s.record(EventKind::kTxStart, kNoObject, 0, cap_.claimTicket());
      Shim shim(tx, *this, p);
      body(shim);
    });
    if (attempts > 1) cap_.noteRetries(attempts - 1);
    if (ok) {
      cap_.flushUnit(p, s.buf, EventKind::kTxCommit);
    } else if (cap_.options().recordUserAborts) {
      cap_.flushUnit(p, s.buf, EventKind::kTxAbort);
    } else {
      s.buf.clear();
      cap_.discardUnit(p);
    }
    return ok;
  }

  Word ntRead(ProcessId p, ObjectId x) override {
    if (!cap_.options().recordNonTx) return inner_.ntRead(p, x);
    cap_.beginUnit(p);
    const Word v = inner_.ntRead(p, x);
    cap_.flushSingle(p, EventKind::kNtRead, x, v);
    return v;
  }

  void ntWrite(ProcessId p, ObjectId x, Word v) override {
    if (!cap_.options().recordNonTx) {
      inner_.ntWrite(p, x, v);
      return;
    }
    cap_.beginUnit(p);
    inner_.ntWrite(p, x, v);
    cap_.flushSingle(p, EventKind::kNtWrite, x, v);
  }

 private:
  /// Per-process attempt buffer; each entry is owned by the single OS
  /// thread driving that ProcessId.
  struct alignas(kCacheLine) PerProc {
    std::vector<MonitorEvent> buf;

    void record(EventKind kind, ObjectId obj, Word value,
                std::uint64_t ticket) {
      buf.push_back({ticket, obj, kind, value});
    }
  };

  class Shim final : public TxContext {
   public:
    Shim(TxContext& tx, MonitoredRuntime& rt, ProcessId p)
        : tx_(tx), rt_(rt), p_(p) {}

    Word read(ObjectId x) override {
      // Interior events carry a placeholder ticket; the flush rewrites it
      // to the start event's (claiming a ticket per access would put a
      // seq_cst RMW on every read of the application's hot path).
      const Word v = rt_.cap_.maybeCorrupt(tx_.read(x));
      rt_.perProc_[p_].record(EventKind::kTxRead, x, v, 0);
      return v;
    }

    void write(ObjectId x, Word v) override {
      tx_.write(x, v);
      rt_.perProc_[p_].record(EventKind::kTxWrite, x, v, 0);
    }

    [[noreturn]] void abort() override {
      tx_.abort();
      // tx_.abort() is itself [[noreturn]]; the compiler cannot see that
      // through the virtual call.
      std::terminate();
    }

   private:
    TxContext& tx_;
    MonitoredRuntime& rt_;
    ProcessId p_;
  };

  TmRuntime& inner_;
  EventCapture& cap_;
  std::vector<PerProc> perProc_;
};

}  // namespace

std::unique_ptr<TmRuntime> makeMonitoredRuntime(TmRuntime& inner,
                                                EventCapture& capture) {
  return std::make_unique<MonitoredRuntime>(inner, capture);
}

}  // namespace jungle::monitor
