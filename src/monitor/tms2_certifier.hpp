// TMS2 incremental certifier: the monitor's middle tier between the
// read-set fast path and the DecisionEngine escalation.
//
// Armstrong/Dongol/Doherty ("Reducing Opacity to Linearizability: A Sound
// and Complete Method") show that a history is opaque iff it linearizes
// against the TMS2 automaton, whose shared state is a *sequence of memory
// snapshots*: an updating transaction commits by validating its reads
// against the LATEST memory and appending a new one; a read-only (or
// aborted, or non-transactional-read) unit commits by validating against
// ANY memory no older than its real-time floor.  This class simulates
// exactly that automaton over the monitor's unit stream:
//
//   * base_   — the memory before the oldest retained snapshot (folded,
//               like the stream checker's prefix summary),
//   * slots_  — the retained snapshot suffix as per-committer write
//               deltas; slot i is the memory created by the i-th retained
//               updating unit,
//   * minEnd  — per slot, the smallest close ticket over the committer
//               and every reader serialized at that slot: a later unit
//               whose start ticket reaches some slot's minEnd is
//               real-time-after a unit serialized there, so its own
//               serialization point must not precede that slot.  Ticket
//               TIES separate (floor uses <=): the window history's
//               stable per-ticket interleave puts the earlier-fed unit's
//               close event before the later unit's start event, so the
//               engine would see real-time precedence there.
//
// The certifier is ACCEPT-ONLY: success constructs a genuine
// serialization witness (so the unit is certified under every condition
// the monitor checks — ticket intervals over-approximate program order
// per process, and the monitored models all have identity transforms);
// any failure means "cannot decide here" and the caller falls back to the
// existing buffering + escalation path, which keeps the engine as the
// single source of convictions.  Certifier-on and certifier-off monitors
// therefore agree on verdicts by construction; the corpus/fuzz
// differential harness (tests/test_tms2_certifier.cpp, fuzz_jungle's
// tms2Disagreements leg) checks that empirically.
//
// Readers may certify at any retained slot at or above their floor; the
// oldest feasible slot is chosen because it constrains future floors the
// least.  Reading at base_ is always real-time-safe with respect to
// folded units (base_ sits after all of them), so only retained slots
// contribute floors.
//
// Updating units whose reads saw the latest memory APPEND (TMS2's
// doCommit) — that is the checker's plain fast path.  A committer whose
// reads are STALE (the dominant real escalation: a writer that
// linearized before a competitor but was fed after it) can still be
// certified by INSERTING its snapshot below the slots it did not see,
// provided the insertion disturbs nobody already serialized above it:
// its reads must match the memory at the insertion point, every slot
// above must keep its real-time floor (minEnd > the unit's start), and
// — the load-bearing condition — no slot at or above the insertion
// point may have WRITTEN or READ any object the unit writes (each slot
// tracks the read set of its committer and of every reader serialized
// there for exactly this check).  The read-intersection guard is what
// keeps genuinely cyclic windows escalating: in store buffering each
// writer's read of the other's variable blocks the other's insertion,
// so the engine still decides — and convicts — that family.
//
// EVERY committer — fast-path-admitted ones included — is serialized at
// the LOWEST feasible insertion point, not appended blindly.  Feed order
// between two concurrent disjoint-footprint committers is arbitrary
// (tickets are claimed at flush), and appending pins the order the
// collector happened to see: when the early-closing one is fed second it
// sits above the late-closing one and its close ticket floors every
// later stale reader too high to reach the snapshot that explains its
// reads.  Sinking committers low keeps those floors low; the engine
// explores both orders, so the automaton must not pin the wrong one.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "monitor/event.hpp"

namespace jungle::monitor {

class Tms2Certifier {
 public:
  /// `depth`: retained memory snapshots (older ones fold into the base
  /// summary; a reader that would need an older memory cannot be decided
  /// here and escalates).  `startUnknown` mirrors StreamOptions: objects
  /// absent from the base are unknown-adopt-on-first-read rather than
  /// implicitly zero.
  Tms2Certifier(std::size_t depth, bool startUnknown);

  /// Mirror a unit the stream checker's plain fast path admitted (its
  /// reads saw the latest memory): an updating unit appends a snapshot, a
  /// read-only unit is serialized at the latest one.  Keeps the automaton
  /// in lockstep with the checker's running state, including unknown-read
  /// adoption.
  void noteAdmitted(const StreamUnit& u);

  /// Try to certify a NON-updating unit whose reads did not all see the
  /// latest memory.  On success the unit is serialized at the oldest
  /// feasible retained memory, its close ticket tightens that slot's
  /// minEnd, its reads join that slot's tracked read set, and any
  /// unknown-object adoptions are committed into the base and returned in
  /// `adopted` so the caller can mirror them.  False = cannot decide.
  bool tryCertifyReader(const StreamUnit& u,
                        std::vector<std::pair<ObjectId, Word>>* adopted);

  /// Try to certify an UPDATING unit whose reads did not all see the
  /// latest memory, by inserting its snapshot below the slots it did not
  /// see (see the file comment).  On success the caller must treat the
  /// unit as admitted: apply its writes to the running state (sound
  /// because no slot above the insertion point writes any of its
  /// objects, so its writes reach the latest memory unshadowed) and
  /// retain it as escalation context.  False = cannot decide.
  bool tryCertifyUpdater(const StreamUnit& u,
                         std::vector<std::pair<ObjectId, Word>>* adopted);

  /// Ring drop / inconclusive escalation: everything is unknown again.
  void reset();

  /// Escalation collapse: the engine decided the whole window and the
  /// checker's prefix summary became `state` — restart the automaton from
  /// that memory as the sole snapshot.
  void rebuild(const std::unordered_map<ObjectId, Word>& state, bool known);

  /// Does the unit append a memory snapshot when certified?  (Committed
  /// transactional writes and non-transactional writes do; aborted
  /// transactions' writes are own-only.)
  static bool updatesMemory(const StreamUnit& u);

  /// Close ticket of the unit (the flush-claimed end of its real-time
  /// interval); start is `u.epoch`.
  static std::uint64_t endTicket(const StreamUnit& u);

  std::size_t retainedSlots() const { return slots_.size(); }

 private:
  struct Slot {
    /// The committer's writes in program order (value at this slot for an
    /// object = its last write here, else the newest older slot's, else
    /// base).
    std::vector<std::pair<ObjectId, Word>> writes;
    /// Objects read (externally) by the committer and by every reader
    /// serialized at this slot: an updater inserting below this slot must
    /// not write any of them (its snapshot would sit inside their
    /// validated memories).
    std::vector<ObjectId> readObjs;
    /// Min close ticket over the committer and every reader serialized at
    /// this slot: floors later units that started after it.
    std::uint64_t minEnd = 0;
  };

  static constexpr std::size_t kBase = static_cast<std::size_t>(-1);

  /// Value of `obj` in the memory at slot `p` (kBase = before all retained
  /// slots).  Returns false when the object is unknown there.
  bool valueAt(std::size_t p, ObjectId obj, Word& out) const;
  bool anySlotWrites(ObjectId obj) const;
  /// External reads of the unit after the own-write overlay; false when an
  /// own-read disagrees with the unit's own prior write (cannot certify).
  static bool externalReads(const StreamUnit& u,
                            std::vector<std::pair<ObjectId, Word>>* out);
  /// Record `reads` in slot `p`'s tracked read set (dedup by object).
  void trackReads(std::size_t p,
                  const std::vector<std::pair<ObjectId, Word>>& reads);
  /// Validate `reads` against the memory at slot `p`, collecting
  /// unknown-object adoptions (allowed only when no retained slot writes
  /// the object) into `adopt`.  False when any read disagrees.
  bool readsMatchAt(std::size_t p,
                    const std::vector<std::pair<ObjectId, Word>>& reads,
                    std::vector<std::pair<ObjectId, Word>>* adopt) const;
  /// Mirror of the fast path's unknown-read adoption for admitted units.
  void adoptUnknownReads(const StreamUnit& u);
  /// Lowest insertion index for an updating unit that satisfies the three
  /// insertion conditions (reads match the memory below, real-time floor,
  /// no write/read conflict with any slot above).  False = none.
  bool lowestFeasibleInsertion(
      const StreamUnit& u, const std::vector<std::pair<ObjectId, Word>>& reads,
      const std::vector<std::pair<ObjectId, Word>>& writes,
      std::size_t* pos) const;
  /// Materialize the unit's snapshot at index `p` and track its reads.
  void insertUpdater(std::size_t p, const StreamUnit& u,
                     const std::vector<std::pair<ObjectId, Word>>& reads,
                     std::vector<std::pair<ObjectId, Word>>&& writes);
  void trim();

  std::size_t depth_;
  bool known_;
  std::unordered_map<ObjectId, Word> base_;
  std::deque<Slot> slots_;
};

}  // namespace jungle::monitor
