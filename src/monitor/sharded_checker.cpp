#include "monitor/sharded_checker.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.hpp"

namespace jungle::monitor {

std::uint64_t shardTaintBits(std::size_t s, std::size_t k) {
  std::uint64_t bits = 0;
  for (std::size_t b = s; b < 64; b += k) bits |= 1ULL << b;
  return bits;
}

StreamUnit projectUnitOntoBits(const StreamUnit& u, std::uint64_t bits) {
  StreamUnit out;
  out.kind = u.kind;
  out.pid = u.pid;
  out.epoch = u.epoch;
  out.gapBefore = u.gapBefore;
  out.dropsCovered = u.dropsCovered;
  out.taintMask = u.taintMask;
  out.events.reserve(u.events.size());
  for (const MonitorEvent& e : u.events) {
    if (e.obj == kNoObject || (eventTaintBits(e) & bits) != 0) {
      out.events.push_back(e);
    }
  }
  return out;
}

StreamUnit projectUnit(const StreamUnit& u, std::size_t s, std::size_t k) {
  return projectUnitOntoBits(u, shardTaintBits(s, k));
}

// ------------------------------------------------- FootprintPlacement

FootprintPlacement::FootprintPlacement(std::size_t shards,
                                       std::size_t rebuildWindow)
    : shards_(shards), window_(rebuildWindow), bits_(shards, 0) {
  for (std::size_t b = 0; b < 64; ++b) {
    owner_[b] = static_cast<std::uint8_t>(b % shards_);
    parent_[b] = static_cast<std::uint8_t>(b);
    clusterBits_[b] = 1;
    bits_[owner_[b]] |= 1ULL << b;
  }
}

std::size_t FootprintPlacement::find(std::size_t b) {
  while (parent_[b] != b) {
    parent_[b] = parent_[parent_[b]];  // path halving
    b = parent_[b];
  }
  return b;
}

void FootprintPlacement::observe(std::uint64_t footprint) {
  if (window_ == 0) return;
  ++observed_;
  if (footprint == 0) return;
  // Cap clusters at the per-shard bit budget so a balanced assignment
  // always exists; a rejected union just leaves the bits in separate
  // clusters (occasional cross-cluster accesses stay cross-shard joins
  // instead of collapsing everything into one mega-cluster).
  const std::size_t cap = 64 / shards_;
  std::size_t first = 64;
  for (std::size_t b = 0; b < 64; ++b) {
    if (((footprint >> b) & 1) == 0) continue;
    ++weight_[b];
    if (first == 64) {
      first = b;
      continue;
    }
    const std::size_t ra = find(first);
    const std::size_t rb = find(b);
    if (ra == rb) continue;
    if (clusterBits_[ra] + clusterBits_[rb] > cap) continue;
    parent_[rb] = static_cast<std::uint8_t>(ra);
    clusterBits_[ra] =
        static_cast<std::uint8_t>(clusterBits_[ra] + clusterBits_[rb]);
  }
}

std::size_t FootprintPlacement::rebuild() {
  ++rebuilds_;
  observed_ = 0;
  // Gather this window's clusters.
  std::array<std::uint64_t, 64> cbits{};
  std::array<std::uint64_t, 64> cweight{};
  for (std::size_t b = 0; b < 64; ++b) {
    const std::size_t r = find(b);
    cbits[r] |= 1ULL << b;
    cweight[r] += weight_[b];
  }
  std::array<std::uint8_t, 64> next{};
  std::vector<std::uint64_t> load(shards_, 0);
  // Estimated per-bit traffic this window, used to charge unobserved bits
  // below: an absent producer (drop-starved for a whole window) will
  // likely come back, so its parked bits must count as load or a fresh
  // cluster lands on top of them and evicts them next window.
  std::uint64_t totalW = 0;
  std::size_t observedBits = 0;
  for (std::size_t b = 0; b < 64; ++b) {
    totalW += weight_[b];
    if (weight_[b] > 0) ++observedBits;
  }
  const std::uint64_t perBit = observedBits > 0 ? totalW / observedBits : 0;
  // Singletons observed this window with no surviving co-access go to the
  // mod-K home — with no co-access at all the placement is exactly mod-K.
  // Singletons NOT observed this window keep their current owner: a burst-
  // heavy window says nothing about an absent bit, and bouncing it home
  // and back would churn the shard checkers with resyncs every rebuild.
  std::vector<std::pair<std::uint64_t, std::size_t>> clusters;
  for (std::size_t r = 0; r < 64; ++r) {
    if (cbits[r] == 0) continue;
    if (std::popcount(cbits[r]) == 1) {
      const bool seen = weight_[r] > 0;
      const auto home =
          seen ? static_cast<std::uint8_t>(r % shards_) : owner_[r];
      next[r] = home;
      load[home] += seen ? cweight[r] : perBit;
    } else {
      clusters.emplace_back(cweight[r], r);
    }
  }
  // Heaviest clusters first onto the least-loaded shard; ties prefer the
  // shard already owning most of the cluster's bits (placement stability),
  // then the lowest index (determinism).
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (const auto& [w, r] : clusters) {
    std::size_t best = 0;
    int bestOverlap = -1;
    for (std::size_t s = 0; s < shards_; ++s) {
      const int overlap = std::popcount(cbits[r] & bits_[s]);
      if (s == 0 || load[s] < load[best] ||
          (load[s] == load[best] && overlap > bestOverlap)) {
        best = s;
        bestOverlap = overlap;
      }
    }
    for (std::size_t b = 0; b < 64; ++b) {
      if ((cbits[r] >> b) & 1) next[b] = static_cast<std::uint8_t>(best);
    }
    load[best] += w;
  }
  std::size_t moved = 0;
  for (std::size_t b = 0; b < 64; ++b) {
    if (next[b] != owner_[b]) ++moved;
  }
  moves_ += moved;
  owner_ = next;
  std::fill(bits_.begin(), bits_.end(), 0);
  for (std::size_t b = 0; b < 64; ++b) {
    bits_[owner_[b]] |= 1ULL << b;
    parent_[b] = static_cast<std::uint8_t>(b);
    clusterBits_[b] = 1;
    weight_[b] = 0;
  }
  return moved;
}

// ---------------------------------------------- ShardedStreamChecker

ShardedStreamChecker::ShardedStreamChecker(const StreamOptions& opts,
                                           std::size_t shards,
                                           std::size_t placementWindow)
    : opts_(opts), placement_(shards, shards > 1 ? placementWindow : 0) {
  JUNGLE_CHECK(shards >= 1);
  JUNGLE_CHECK(64 % shards == 0);
  checkers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    checkers_.push_back(std::make_unique<StreamChecker>(opts));
  }
  queues_.resize(shards);
  routing_.resize(shards);
  placementBits_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    placementBits_[s] = placement_.ownedBits(s);
  }
  if (shards > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<unsigned>(shards));
    // The joiner checks a suffix of the execution from each (re)start, so
    // it must adopt unknown state from first reads rather than assume the
    // initial zeros it never witnessed.
    StreamOptions jo = opts_;
    jo.startUnknown = true;
    joiner_ = std::make_unique<StreamChecker>(jo);
  }
}

std::uint64_t ShardedStreamChecker::shardMaskOf(std::uint64_t footprint) const {
  std::uint64_t mask = 0;
  for (std::size_t s = 0; s < placementBits_.size(); ++s) {
    if (footprint & placementBits_[s]) mask |= 1ULL << s;
  }
  return mask;
}

std::size_t ShardedStreamChecker::backlogCap() const {
  // Matches the escalation reach of a serial window (cooldownSpan): any
  // cross-shard cycle young enough that a serial checker's window could
  // still hold it survives a joiner restart via the replay.
  return opts_.gcRetain + 2 * opts_.settleUnits + 1;
}

void ShardedStreamChecker::enqueueJoinerProjection(const StreamUnit& u) {
  const bool tainted = u.gapBefore && (u.taintMask & crossBits_) != 0;
  StreamUnit proj = projectUnitOntoBits(u, crossBits_);
  proj.gapBefore = tainted;
  ++joinerTelemetry_.unitsRouted;
  if (tainted) {
    ++joinerTelemetry_.gapSignals;
  } else if (u.gapBefore) {
    Cmd skip;
    skip.kind = Cmd::Kind::kTaintSkip;
    joinerQueue_.push_back(std::move(skip));
  }
  Cmd c;
  c.kind = Cmd::Kind::kUnit;
  c.unit = std::move(proj);
  joinerQueue_.push_back(std::move(c));
}

void ShardedStreamChecker::growJoiner(std::uint64_t bits) {
  crossBits_ |= bits;
  ++joinerTelemetry_.restarts;
  // Restarting abandons the old joiner's in-flight window (its variable
  // set is stale); its published violations and counters are harvested.
  mergeStreamStats(joinerStatsAcc_, joiner_->stats());
  for (const MonitorViolation& v : joiner_->violations()) {
    joinerViolations_.push_back(v);
  }
  StreamOptions jo = opts_;
  jo.startUnknown = true;
  joiner_ = std::make_unique<StreamChecker>(jo);
  // Undrained queue entries are projections onto the old bit set; the
  // backlog replay below re-delivers those same units (a contiguous
  // suffix of the stream) projected onto the grown set.
  joinerQueue_.clear();
  for (const BacklogEntry& e : backlog_) {
    if (e.dropMaskBefore & crossBits_) {
      ++joinerTelemetry_.gapSignals;
      Cmd g;
      g.kind = Cmd::Kind::kGap;
      joinerQueue_.push_back(std::move(g));
    }
    if (e.footprint & crossBits_) enqueueJoinerProjection(e.unit);
  }
  if (pendingBacklogDropMask_ & crossBits_) {
    ++joinerTelemetry_.gapSignals;
    Cmd g;
    g.kind = Cmd::Kind::kGap;
    joinerQueue_.push_back(std::move(g));
  }
}

void ShardedStreamChecker::feed(StreamUnit unit) {
  const std::size_t k = shards();
  std::uint64_t footprint = 0;
  for (const MonitorEvent& e : unit.events) footprint |= eventTaintBits(e);

  if (k > 1) {
    placement_.observe(footprint);
    if (placement_.rebuildDue() && placement_.rebuild() > 0) {
      // Ownership moved: every shard's per-object stream restarts under
      // the new map.  A gap signal per shard resyncs and cools down the
      // checkers (post-resync adoption re-learns state), and the per-pid
      // shard-switch tracking restarts so the transition cannot fake
      // joiner growth.
      for (std::size_t s = 0; s < k; ++s) {
        Cmd g;
        g.kind = Cmd::Kind::kGap;
        queues_[s].push_back(std::move(g));
      }
      for (std::size_t s = 0; s < k; ++s) {
        placementBits_[s] = placement_.ownedBits(s);
      }
      std::fill(lastShardMask_.begin(), lastShardMask_.end(), 0);
    }
  }

  const std::uint64_t shardMask = shardMaskOf(footprint);
  const int touched = std::popcount(shardMask);

  if (joiner_) {
    // Cross-bit growth triggers: a footprint spanning shards, or a
    // process whose consecutive units land on different shards (the
    // program-order edge a store-buffer cycle crosses shards on).
    std::uint64_t grow = 0;
    if (touched > 1) grow = footprint;
    if (footprint != 0) {
      if (lastShardMask_.size() <= unit.pid) {
        lastShardMask_.resize(unit.pid + 1, 0);
        lastFootprint_.resize(unit.pid + 1, 0);
      }
      const std::uint64_t prev = lastShardMask_[unit.pid];
      if (prev != 0 && prev != shardMask) {
        grow |= footprint | lastFootprint_[unit.pid];
      }
      lastShardMask_[unit.pid] = shardMask;
      lastFootprint_[unit.pid] = footprint;
    }
    if ((grow & ~crossBits_) != 0) growJoiner(grow);
    if ((footprint & crossBits_) != 0) {
      enqueueJoinerProjection(unit);
    } else if (unit.gapBefore && (unit.taintMask & crossBits_) != 0) {
      ++joinerTelemetry_.gapSignals;
      Cmd g;
      g.kind = Cmd::Kind::kGap;
      joinerQueue_.push_back(std::move(g));
    }
  }

  for (std::size_t s = 0; s < k; ++s) {
    const std::uint64_t bits = placementBits_[s];
    // Delimiter-only units (e.g. an empty transaction) touch no shard's
    // variables and can explain nothing — shard 0 keeps them so the
    // aggregate unitsChecked still counts every merged unit.
    const bool routed =
        (footprint & bits) != 0 || (footprint == 0 && s == 0);
    const bool tainted =
        unit.gapBefore && (unit.taintMask & bits) != 0;
    Cmd c;
    if (routed) {
      StreamUnit proj = k == 1 ? unit : projectUnitOntoBits(unit, bits);
      // The gap applies to shard s only when the dropped footprint hits
      // its variables; an untainted shard's projection arrives gap-free
      // and its window survives — recorded as a taint skip, the honest
      // "the old rule would have resynced here" telemetry.
      proj.gapBefore = tainted;
      ++routing_[s].unitsRouted;
      if (touched > 1) ++routing_[s].crossShardJoins;
      if (tainted) ++routing_[s].gapSignals;
      if (unit.gapBefore && !tainted) {
        Cmd skip;
        skip.kind = Cmd::Kind::kTaintSkip;
        queues_[s].push_back(std::move(skip));
      }
      c.kind = Cmd::Kind::kUnit;
      c.unit = std::move(proj);
    } else if (tainted) {
      // The drop hit this shard's variables but the carrying unit does
      // not route here: deliver the gap standalone so the shard still
      // resyncs (position within its stream is the same — right before
      // whatever next unit routes to it).
      ++routing_[s].gapSignals;
      c.kind = Cmd::Kind::kGap;
    } else if (unit.gapBefore) {
      c.kind = Cmd::Kind::kTaintSkip;
    } else {
      continue;
    }
    queues_[s].push_back(std::move(c));
  }

  if (joiner_ && footprint != 0) {
    BacklogEntry e;
    e.footprint = footprint;
    e.dropMaskBefore = pendingBacklogDropMask_;
    e.unit = std::move(unit);
    pendingBacklogDropMask_ = 0;
    backlog_.push_back(std::move(e));
    while (backlog_.size() > backlogCap()) backlog_.pop_front();
  }
}

void ShardedStreamChecker::noteDrops(std::uint64_t taintMask) {
  enqueueGapSignals(taintMask);
  if (joiner_) {
    pendingBacklogDropMask_ |= taintMask;
    if ((taintMask & crossBits_) != 0) {
      ++joinerTelemetry_.gapSignals;
      Cmd g;
      g.kind = Cmd::Kind::kGap;
      joinerQueue_.push_back(std::move(g));
    } else if (crossBits_ != 0) {
      Cmd skip;
      skip.kind = Cmd::Kind::kTaintSkip;
      joinerQueue_.push_back(std::move(skip));
    }
  }
}

void ShardedStreamChecker::enqueueGapSignals(std::uint64_t taintMask) {
  const std::size_t k = shards();
  for (std::size_t s = 0; s < k; ++s) {
    Cmd c;
    if (taintMask & placementBits_[s]) {
      ++routing_[s].gapSignals;
      c.kind = Cmd::Kind::kGap;
    } else {
      c.kind = Cmd::Kind::kTaintSkip;
    }
    queues_[s].push_back(std::move(c));
  }
}

void ShardedStreamChecker::drainShard(std::size_t s) {
  StreamChecker& ck = *checkers_[s];
  std::deque<Cmd>& q = queues_[s];
  while (!q.empty()) {
    Cmd c = std::move(q.front());
    q.pop_front();
    switch (c.kind) {
      case Cmd::Kind::kUnit:
        ck.feed(std::move(c.unit));
        break;
      case Cmd::Kind::kGap:
        ck.noteDrops();
        break;
      case Cmd::Kind::kTaintSkip:
        ck.noteTaintSkip();
        break;
    }
  }
}

void ShardedStreamChecker::drainJoiner() {
  StreamChecker& ck = *joiner_;
  while (!joinerQueue_.empty()) {
    Cmd c = std::move(joinerQueue_.front());
    joinerQueue_.pop_front();
    switch (c.kind) {
      case Cmd::Kind::kUnit:
        ck.feed(std::move(c.unit));
        break;
      case Cmd::Kind::kGap:
        ck.noteDrops();
        break;
      case Cmd::Kind::kTaintSkip:
        ck.noteTaintSkip();
        break;
    }
  }
}

void ShardedStreamChecker::pump() {
  const std::size_t k = shards();
  if (!pool_) {
    drainShard(0);
    return;
  }
  bool any = false;
  for (std::size_t s = 0; s < k; ++s) {
    if (queues_[s].empty()) continue;
    any = true;
    pool_->submit([this, s] { drainShard(s); });
  }
  if (joiner_ && !joinerQueue_.empty()) {
    any = true;
    pool_->submit([this] { drainJoiner(); });
  }
  if (any) pool_->wait();
}

void ShardedStreamChecker::setDropSuspect(std::uint64_t suspectMask) {
  const std::size_t k = shards();
  for (std::size_t s = 0; s < k; ++s) {
    checkers_[s]->setDropSuspect((suspectMask & placementBits_[s]) != 0);
  }
  if (joiner_) joiner_->setDropSuspect((suspectMask & crossBits_) != 0);
}

void ShardedStreamChecker::onQuiescent() {
  for (auto& ck : checkers_) ck->onQuiescent();
  if (joiner_) joiner_->onQuiescent();
}

bool ShardedStreamChecker::hasPendingConviction() const {
  for (const auto& ck : checkers_) {
    if (ck->hasPendingConviction()) return true;
  }
  return joiner_ && joiner_->hasPendingConviction();
}

void ShardedStreamChecker::onIdle() {
  if (!pool_) {
    checkers_[0]->onIdle();
    return;
  }
  for (auto& ck : checkers_) {
    pool_->submit([c = ck.get()] { c->onIdle(); });
  }
  pool_->submit([c = joiner_.get()] { c->onIdle(); });
  pool_->wait();
}

void ShardedStreamChecker::finish() {
  pump();
  if (!pool_) {
    checkers_[0]->finish();
    return;
  }
  // Final escalations can each burn a full recheck deadline; run them
  // side by side and join before returning.
  for (auto& ck : checkers_) {
    pool_->submit([c = ck.get()] { c->finish(); });
  }
  pool_->submit([c = joiner_.get()] { c->finish(); });
  pool_->wait();
}

StreamStats ShardedStreamChecker::stats() const {
  StreamStats agg;
  for (const auto& ck : checkers_) mergeStreamStats(agg, ck->stats());
  return agg;
}

std::vector<ShardStats> ShardedStreamChecker::shardStats() const {
  std::vector<ShardStats> out = routing_;
  for (std::size_t s = 0; s < checkers_.size(); ++s) {
    out[s].stream = checkers_[s]->stats();
  }
  return out;
}

JoinerStats ShardedStreamChecker::joinerStats() const {
  JoinerStats out = joinerTelemetry_;
  out.crossBits = crossBits_;
  out.placementRebuilds = placement_.rebuilds();
  out.placementMoves = placement_.moves();
  out.stream = joinerStatsAcc_;
  if (joiner_) mergeStreamStats(out.stream, joiner_->stats());
  return out;
}

std::size_t ShardedStreamChecker::placementOf(std::size_t bit) const {
  return placement_.ownerOf(bit);
}

std::uint64_t ShardedStreamChecker::placementBits(std::size_t s) const {
  return placementBits_[s];
}

std::vector<MonitorViolation> ShardedStreamChecker::violations() const {
  std::vector<MonitorViolation> out;
  for (std::size_t s = 0; s < checkers_.size(); ++s) {
    for (MonitorViolation v : checkers_[s]->violations()) {
      if (shards() > 1) {
        v.description += " [shard " + std::to_string(s) + " of " +
                         std::to_string(shards()) + "]";
      }
      out.push_back(std::move(v));
    }
  }
  auto addJoiner = [&](const MonitorViolation& v) {
    MonitorViolation j = v;
    j.description += " [cross-shard joiner]";
    out.push_back(std::move(j));
  };
  for (const MonitorViolation& v : joinerViolations_) addJoiner(v);
  if (joiner_) {
    for (const MonitorViolation& v : joiner_->violations()) addJoiner(v);
  }
  return out;
}

}  // namespace jungle::monitor
