#include "monitor/sharded_checker.hpp"

#include <utility>

#include "common/check.hpp"

namespace jungle::monitor {

std::uint64_t shardTaintBits(std::size_t s, std::size_t k) {
  std::uint64_t bits = 0;
  for (std::size_t b = s; b < 64; b += k) bits |= 1ULL << b;
  return bits;
}

StreamUnit projectUnit(const StreamUnit& u, std::size_t s, std::size_t k) {
  StreamUnit out;
  out.kind = u.kind;
  out.pid = u.pid;
  out.epoch = u.epoch;
  out.gapBefore = u.gapBefore;
  out.dropsCovered = u.dropsCovered;
  out.taintMask = u.taintMask;
  out.events.reserve(u.events.size());
  for (const MonitorEvent& e : u.events) {
    if (e.obj == kNoObject || shardOfVar(e.obj, k) == s) {
      out.events.push_back(e);
    }
  }
  return out;
}

ShardedStreamChecker::ShardedStreamChecker(const StreamOptions& opts,
                                           std::size_t shards) {
  JUNGLE_CHECK(shards >= 1);
  JUNGLE_CHECK(64 % shards == 0);
  checkers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    checkers_.push_back(std::make_unique<StreamChecker>(opts));
  }
  queues_.resize(shards);
  routing_.resize(shards);
  if (shards > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<unsigned>(shards));
  }
}

void ShardedStreamChecker::feed(StreamUnit unit) {
  const std::size_t k = shards();
  std::uint64_t footprint = 0;
  for (const MonitorEvent& e : unit.events) footprint |= eventTaintBits(e);
  std::size_t touched = 0;
  for (std::size_t s = 0; s < k; ++s) {
    if (footprint & shardTaintBits(s, k)) ++touched;
  }
  for (std::size_t s = 0; s < k; ++s) {
    const std::uint64_t bits = shardTaintBits(s, k);
    // Delimiter-only units (e.g. an empty transaction) touch no shard's
    // variables and can explain nothing — shard 0 keeps them so the
    // aggregate unitsChecked still counts every merged unit.
    const bool routed =
        (footprint & bits) != 0 || (footprint == 0 && s == 0);
    const bool tainted =
        unit.gapBefore && (unit.taintMask & bits) != 0;
    Cmd c;
    if (routed) {
      StreamUnit proj = k == 1 ? unit : projectUnit(unit, s, k);
      // The gap applies to shard s only when the dropped footprint hits
      // its variables; an untainted shard's projection arrives gap-free
      // and its window survives — recorded as a taint skip, the honest
      // "the old rule would have resynced here" telemetry.
      proj.gapBefore = tainted;
      ++routing_[s].unitsRouted;
      if (touched > 1) ++routing_[s].crossShardJoins;
      if (tainted) ++routing_[s].gapSignals;
      if (unit.gapBefore && !tainted) {
        Cmd skip;
        skip.kind = Cmd::Kind::kTaintSkip;
        queues_[s].push_back(std::move(skip));
      }
      c.kind = Cmd::Kind::kUnit;
      c.unit = std::move(proj);
    } else if (tainted) {
      // The drop hit this shard's variables but the carrying unit does
      // not route here: deliver the gap standalone so the shard still
      // resyncs (position within its stream is the same — right before
      // whatever next unit routes to it).
      ++routing_[s].gapSignals;
      c.kind = Cmd::Kind::kGap;
    } else if (unit.gapBefore) {
      c.kind = Cmd::Kind::kTaintSkip;
    } else {
      continue;
    }
    queues_[s].push_back(std::move(c));
  }
}

void ShardedStreamChecker::noteDrops(std::uint64_t taintMask) {
  enqueueGapSignals(taintMask);
}

void ShardedStreamChecker::enqueueGapSignals(std::uint64_t taintMask) {
  const std::size_t k = shards();
  for (std::size_t s = 0; s < k; ++s) {
    Cmd c;
    if (taintMask & shardTaintBits(s, k)) {
      ++routing_[s].gapSignals;
      c.kind = Cmd::Kind::kGap;
    } else {
      c.kind = Cmd::Kind::kTaintSkip;
    }
    queues_[s].push_back(std::move(c));
  }
}

void ShardedStreamChecker::drainShard(std::size_t s) {
  StreamChecker& ck = *checkers_[s];
  std::deque<Cmd>& q = queues_[s];
  while (!q.empty()) {
    Cmd c = std::move(q.front());
    q.pop_front();
    switch (c.kind) {
      case Cmd::Kind::kUnit:
        ck.feed(std::move(c.unit));
        break;
      case Cmd::Kind::kGap:
        ck.noteDrops();
        break;
      case Cmd::Kind::kTaintSkip:
        ck.noteTaintSkip();
        break;
    }
  }
}

void ShardedStreamChecker::pump() {
  const std::size_t k = shards();
  if (!pool_) {
    drainShard(0);
    return;
  }
  bool any = false;
  for (std::size_t s = 0; s < k; ++s) {
    if (queues_[s].empty()) continue;
    any = true;
    pool_->submit([this, s] { drainShard(s); });
  }
  if (any) pool_->wait();
}

void ShardedStreamChecker::setDropSuspect(std::uint64_t suspectMask) {
  const std::size_t k = shards();
  for (std::size_t s = 0; s < k; ++s) {
    checkers_[s]->setDropSuspect((suspectMask & shardTaintBits(s, k)) != 0);
  }
}

void ShardedStreamChecker::onQuiescent() {
  for (auto& ck : checkers_) ck->onQuiescent();
}

bool ShardedStreamChecker::hasPendingConviction() const {
  for (const auto& ck : checkers_) {
    if (ck->hasPendingConviction()) return true;
  }
  return false;
}

void ShardedStreamChecker::onIdle() {
  if (!pool_) {
    checkers_[0]->onIdle();
    return;
  }
  for (auto& ck : checkers_) {
    pool_->submit([c = ck.get()] { c->onIdle(); });
  }
  pool_->wait();
}

void ShardedStreamChecker::finish() {
  pump();
  if (!pool_) {
    checkers_[0]->finish();
    return;
  }
  // Final escalations can each burn a full recheck deadline; run them
  // side by side and join before returning.
  for (auto& ck : checkers_) {
    pool_->submit([c = ck.get()] { c->finish(); });
  }
  pool_->wait();
}

StreamStats ShardedStreamChecker::stats() const {
  StreamStats agg;
  for (const auto& ck : checkers_) mergeStreamStats(agg, ck->stats());
  return agg;
}

std::vector<ShardStats> ShardedStreamChecker::shardStats() const {
  std::vector<ShardStats> out = routing_;
  for (std::size_t s = 0; s < checkers_.size(); ++s) {
    out[s].stream = checkers_[s]->stats();
  }
  return out;
}

std::vector<MonitorViolation> ShardedStreamChecker::violations() const {
  std::vector<MonitorViolation> out;
  for (std::size_t s = 0; s < checkers_.size(); ++s) {
    for (MonitorViolation v : checkers_[s]->violations()) {
      if (shards() > 1) {
        v.description += " [shard " + std::to_string(s) + " of " +
                         std::to_string(shards()) + "]";
      }
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace jungle::monitor
