// Instrumented TmRuntime wrapper: the producer half of the monitor.
//
// MonitoredRuntime delegates every call to the wrapped runtime and records
// what the application actually observed — transactional reads with the
// values the TM returned, writes, commits/aborts, and (optionally)
// non-transactional accesses — into per-thread lock-free SPSC rings
// (monitor/event_ring.hpp).  Recording never blocks the application: a
// full ring drops the unit and counts it.
//
// A transaction attempt buffers its events thread-locally and flushes to
// the ring only when the attempt completes (commit or user abort), so
// conflict-aborted retries — whose reads the TM itself already vetoed —
// never enter the stream; they are counted in retriesDiscarded().  The
// merge announcement spans the whole call (beginUnit at entry, cleared by
// the flush or discardUnit), not just the flush: a thread preempted
// between the TM's internal commit point and its flush must keep the
// collector's frontier stalled, or other threads' reads of its writes are
// fed — and convicted — arbitrarily far ahead of the writer's unit (see
// event_ring.hpp for the protocol).
//
// Bug injection (InjectedBug) corrupts the *captured* stream, not the TM:
// it emulates a TM returning a wrong value, giving the end-to-end
// "monitor catches a broken TM" self-test a deterministic defect
// (mirroring the fuzz harness's --inject-bug; see docs/TESTING.md).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "monitor/event_ring.hpp"
#include "tm/runtime.hpp"

namespace jungle::monitor {

enum class InjectedBug : std::uint8_t {
  kNone,
  /// One transactional read event, once the ticket counter (a coarse
  /// progress proxy: two claims per captured unit) reaches
  /// injectAfterEvents, reports value+1 — the defect class of a TM serving
  /// a torn or stale read.
  kCorruptTxRead,
};

struct CaptureOptions {
  /// Events per per-thread ring (rounded up to a power of two).
  std::size_t ringCapacity = 1 << 14;
  /// Capture ntRead/ntWrite (off for TMs that only claim transactional
  /// correctness, e.g. tl2-weak).
  bool recordNonTx = true;
  /// Capture user-aborted transactions (their reads escaped to the
  /// application, so opacity constrains them too).
  bool recordUserAborts = true;
  InjectedBug injectBug = InjectedBug::kNone;
  std::uint64_t injectAfterEvents = 64;
};

/// The shared producer/consumer surface: one ring per process plus the
/// global ticket counter.  Owned by TmMonitor; referenced by every
/// MonitoredRuntime attached to it.
class EventCapture {
 public:
  EventCapture(std::size_t maxProcs, const CaptureOptions& opts);

  const CaptureOptions& options() const { return opts_; }
  std::size_t procs() const { return rings_.size(); }
  EventRing& ring(std::size_t p) { return *rings_[p]; }

  /// Collector: snapshot of the ticket counter (seq_cst; the merge
  /// frontier's upper bound).
  std::uint64_t ticketWatermark() const {
    return ticket_.load(std::memory_order_seq_cst);
  }

  /// Producer: unit-endpoint ticket (claimed when a transaction's body
  /// begins — the unit's merge key — and again at the flush for the
  /// closing event).
  std::uint64_t claimTicket() {
    return ticket_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Producer, at the start of any operation that will flush a unit:
  /// announces a lower bound on every ticket the unit will claim, stalling
  /// the collector's frontier until the flush (or discardUnit) clears it.
  void beginUnit(ProcessId p) {
    rings_[p]->announceFlush(ticket_.load(std::memory_order_seq_cst));
  }

  /// Producer: the begun unit will not be flushed (conflict-aborted
  /// transaction with recordUserAborts off); release the frontier.
  void discardUnit(ProcessId p) { rings_[p]->clearFlush(); }

  /// Producer: closes `buf` with `endKind`, claims the closing-event
  /// ticket, publishes the whole unit, and clears the announcement.  A
  /// failed publish arms a gap: the next successful flush is preceded by a
  /// kGapMarker unit placed exactly where the loss happened.
  void flushUnit(ProcessId p, std::vector<MonitorEvent>& buf,
                 EventKind endKind);

  /// Producer: single-event non-transactional unit (beginUnit must be
  /// active; the event's ticket is claimed here).
  void flushSingle(ProcessId p, EventKind kind, ObjectId obj, Word value);

  /// Applies the configured bug injection to a transactional read value.
  Word maybeCorrupt(Word v);

  void noteRetries(std::uint64_t n) {
    retriesDiscarded_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t retriesDiscarded() const {
    return retriesDiscarded_.load(std::memory_order_relaxed);
  }

  std::uint64_t totalPushed() const;
  std::uint64_t totalDropped() const;
  std::uint64_t totalDroppedUnits() const;

 private:
  /// Pushes the armed gap marker for ring `p`, if any (see flushUnit).
  void maybePushGapMarker(ProcessId p);

  /// One per ring, producer-owned (padded: neighbours belong to other
  /// threads): set when a unit push fails, cleared once the marker that
  /// records the gap's exact ring position lands.
  struct alignas(kCacheLine) GapFlag {
    bool armed = false;
  };

  CaptureOptions opts_;
  std::vector<std::unique_ptr<EventRing>> rings_;
  std::vector<GapFlag> gapFlags_;
  alignas(kCacheLine) std::atomic<std::uint64_t> ticket_{1};
  alignas(kCacheLine) std::atomic<bool> bugFired_{false};
  std::atomic<std::uint64_t> retriesDiscarded_{0};
};

/// TmRuntime wrapper recording into `capture`.  The wrapped runtime must
/// outlive the wrapper; each ProcessId must be driven by at most one OS
/// thread at a time (the contract TmRuntime already imposes).
std::unique_ptr<TmRuntime> makeMonitoredRuntime(TmRuntime& inner,
                                                EventCapture& capture);

}  // namespace jungle::monitor
