// Sharded merge-and-check stage: K independent StreamCheckers, each owning
// a set of variable taint bits, fed the *projection* of every merged unit
// onto its variable group — plus a cross-shard joiner that closes the
// projection completeness gap for cross-shard cycles.
//
// Routing is by projection, not whole-unit copy: shard s receives a unit's
// delimiters plus exactly the command events whose object belongs to s.
// Because every unit touching a shard-s variable routes a projection to
// shard s, each shard sees ALL accesses to its variables — its stream is
// complete for the objects it owns, which is what the StreamChecker's
// running-state fast path requires.  A unit spanning shards goes to each
// (a cross-shard join, counted per participating shard).
//
// Placement: the default bit→shard map is `bit mod K` (the free functions
// below), but when a rebuild window is configured the router learns a
// footprint-clustered placement instead: a union-find over the taint bits
// co-accessed within one unit (cluster size capped at 64/K bits so a
// balanced assignment always exists), rebuilt every placementWindow units
// from that window's co-access counts.  Co-accessed bits land on one
// shard, so structured workloads stop paying the ~always-cross-shard join
// tax of blind mod-K striping; singleton bits with no observed co-access
// keep their mod-K home, making the learned placement equal to mod-K when
// no co-access is observed.  A rebuild that actually moves bits resyncs
// every shard checker (their per-object streams restart under the new
// ownership; the usual post-resync adoption and gap cooldown keep
// convictions honest across the transition).
//
// Soundness of per-shard conviction: restricting any witness for the real
// execution to shard-s variables yields a witness for the shard-s
// projection — delimiters and real-time order survive, per-object legality
// is untouched for kept objects, and removing commands only removes
// constraints under every model the engine parametrizes over.  So if a
// projection conclusively violates the model, no witness for the full
// execution can exist either: a shard conviction is a real conviction.
//
// The cross-shard joiner closes the projection completeness gap for the
// store-buffer family: an anomaly whose only evidence is a cycle THROUGH
// variables in different shards (per-process program order crossing
// shards, or a multi-shard footprint) evades every per-shard projection.
// The router tracks the set of "cross" taint bits — grown whenever a
// unit's footprint spans shards, or a process's consecutive units land on
// different shards — and feeds one extra StreamChecker the projection of
// every unit onto that bit set.  The joiner's stream is complete for its
// bits from its (re)start point on; it starts in the post-resync adopt-on-
// first-read posture (StreamOptions::startUnknown) because everything
// before that point is unseen history.  When the cross set grows, the
// joiner restarts and replays a bounded backlog of recent whole units
// (projected onto the new set, with recorded drop positions re-signalled),
// so a cycle already in flight — store_buffer's is only 4 units — is still
// assembled.  The same witness-restriction argument applies to the joiner
// projection, so its convictions are sound; cycles bridged purely by
// real-time edges between shard-confined processes remain out of reach
// (no unit ever links the shards), the now-much-narrower residual gap
// DESIGN.md §9 documents.
//
// Per-variable drop taint replaces the serial "any drop suppresses
// everything" rule: a gap's taint mask (the ring's cumulative dropped
// footprint, event.hpp varTaintBit) resyncs and cools down only the shards
// whose variable bits it intersects; untouched shards keep their windows
// and may still convict (taintedWindowSkips counts the survivals).  A
// taint bit maps to exactly one shard under either placement, so the
// intersection test is exact per shard; the joiner participates with its
// cross-bit set.
//
// The joining stage: per-shard convictions stay pending in their shard and
// are published only at a GLOBAL quiescent instant (onQuiescent(), driven
// by the collector's whole-capture barrier) or at finish(), after each
// shard's own dropSuspect gate.  Quiescence is deliberately not per-shard:
// an in-flight unit's footprint is unknown until it lands, so no shard can
// prove the missing explanation isn't headed its way.
//
// Threading: feed()/noteDrops() only enqueue onto per-shard (and joiner)
// command queues; pump() drains every queue — one task per non-empty queue
// on the shared ThreadPool (inline when K == 1) — and barriers on
// completion.  Outside pump() the shards are quiescent, so the collector
// may touch per-shard state (setDropSuspect, hasPendingConviction, stats)
// directly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "monitor/stream_checker.hpp"

namespace jungle::monitor {

/// Per-shard routing + checking telemetry (ShardedStreamChecker::shardStats).
struct ShardStats {
  /// Non-empty projections fed to this shard's checker.
  std::uint64_t unitsRouted = 0;
  /// Routed units that were shared with at least one other shard.
  std::uint64_t crossShardJoins = 0;
  /// Gap/drop signals delivered to this shard (its taint bits were hit).
  std::uint64_t gapSignals = 0;
  /// The shard checker's own counters (incl. taintedWindowSkips and
  /// escalation latency min/total/max).
  StreamStats stream;
};

/// Cross-shard joiner + placement telemetry (zero/inert when K == 1).
struct JoinerStats {
  /// Units projected onto the cross-bit set and fed to the joiner.
  std::uint64_t unitsRouted = 0;
  /// Gap/drop signals whose taint intersected the cross-bit set.
  std::uint64_t gapSignals = 0;
  /// Cross-set growths, each restarting the joiner with a backlog replay.
  std::uint64_t restarts = 0;
  /// Current cross-bit set (bit v & 63 of every variable the joiner owns).
  std::uint64_t crossBits = 0;
  /// Placement rebuilds run, and taint bits whose owner changed across all
  /// rebuilds (0/0 when the rebuild window is off or never reached).
  std::uint64_t placementRebuilds = 0;
  std::uint64_t placementMoves = 0;
  /// The joiner checker's own counters, cumulative across restarts.
  StreamStats stream;
};

/// Default (mod-K) shard of variable x under K shards: bit (x & 63)
/// belongs to shard (x & 63) mod K == x mod K.  The learned placement can
/// override this per bit; these free functions describe the static map
/// (and stay the single source of truth for the no-co-access fallback).
inline std::size_t shardOfVar(ObjectId x, std::size_t k) {
  return static_cast<std::size_t>(x % k);
}

/// Union of the taint bits shard s owns under the default mod-K placement.
std::uint64_t shardTaintBits(std::size_t s, std::size_t k);

/// Shard-s projection of a unit under the default mod-K placement:
/// delimiters plus the command events whose object belongs to shard s
/// (exposed for the routing-exactness tests).  gapBefore/taintMask are
/// copied verbatim — the router decides per shard whether the gap applies.
StreamUnit projectUnit(const StreamUnit& u, std::size_t s, std::size_t k);

/// Projection of a unit onto an arbitrary taint-bit set: delimiters plus
/// the command events whose bit is in `bits` (the placement-aware and
/// joiner routing primitive).
StreamUnit projectUnitOntoBits(const StreamUnit& u, std::uint64_t bits);

/// Footprint-clustered bit→shard placement: a union-find over the 64
/// variable taint bits, merged along observed intra-unit co-access and
/// rebuilt on a unit-count cadence.  Clusters are capped at 64/K bits (a
/// balanced assignment always exists) and assigned greedily by co-access
/// weight to the least-loaded shard; bits observed without any co-access
/// return to their mod-K home, while bits not observed at all during the
/// window keep their current owner (an absence of evidence — often a
/// drop-starved producer — must not bounce placements around).  So with
/// no co-access ever observed the placement is exactly mod-K.  Observation
/// state resets at each rebuild; the placement tracks the current window's
/// access pattern and converges (no further moves) under a stable
/// workload, even when ring drops starve whole producers per window.
class FootprintPlacement {
 public:
  FootprintPlacement(std::size_t shards, std::size_t rebuildWindow);

  /// Record one unit's footprint (union its bits, bump their weights).
  void observe(std::uint64_t footprint);

  /// True once rebuildWindow units have been observed since the last
  /// rebuild (always false when the window is 0 = static mod-K).
  bool rebuildDue() const {
    return window_ != 0 && observed_ >= window_;
  }

  /// Re-cluster from the window's observations; returns the number of
  /// bits whose owner changed.  Resets the observation window.
  std::size_t rebuild();

  std::size_t ownerOf(std::size_t bit) const { return owner_[bit]; }
  /// Union of the taint bits shard s currently owns.
  std::uint64_t ownedBits(std::size_t s) const { return bits_[s]; }
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t moves() const { return moves_; }

 private:
  std::size_t find(std::size_t b);

  std::size_t shards_;
  std::size_t window_;
  std::size_t observed_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t moves_ = 0;
  std::array<std::uint8_t, 64> owner_{};
  std::vector<std::uint64_t> bits_;  // per shard, cached from owner_
  // Per-window union-find + co-access weights (reset at rebuild).
  std::array<std::uint8_t, 64> parent_{};
  std::array<std::uint8_t, 64> clusterBits_{};  // bits in the root's cluster
  std::array<std::uint64_t, 64> weight_{};
};

class ShardedStreamChecker {
 public:
  /// `shards` must divide 64 (1, 2, 4, 8, ...) so variable taint bits map
  /// to exactly one shard.  K == 1 degenerates to the serial checker plus
  /// taint-aware drop handling, with no thread pool and no joiner.
  /// `placementWindow` > 0 enables footprint-clustered placement rebuilt
  /// every that many fed units; 0 keeps the static mod-K map (the default,
  /// so short unit streams behave exactly as before).
  ShardedStreamChecker(const StreamOptions& opts, std::size_t shards,
                       std::size_t placementWindow = 0);

  ShardedStreamChecker(const ShardedStreamChecker&) = delete;
  ShardedStreamChecker& operator=(const ShardedStreamChecker&) = delete;

  std::size_t shards() const { return checkers_.size(); }

  /// Routes the unit's projections (and, when gapBefore, its gap signal)
  /// onto the per-shard queues, maintains the cross-bit set and joiner
  /// backlog, and applies due placement rebuilds.  Call pump() to run the
  /// queued work.  Units must arrive in ascending epoch order, as for
  /// StreamChecker.
  void feed(StreamUnit unit);

  /// The capture dropped units with (cumulative) footprint `taintMask`
  /// before any gap marker could be placed: resync the intersecting
  /// shards (and the joiner when its bits are hit), leave the rest
  /// checking (they record a taint skip).
  void noteDrops(std::uint64_t taintMask);

  /// Drains every shard (and joiner) queue; parallel when K > 1.  On
  /// return the checkers are quiescent and may be inspected directly.
  void pump();

  /// Per-shard dropSuspect from the collector's unresolved-drop taint
  /// union: shard s is suspect iff `suspectMask` intersects its bits.
  /// Call after pump() (shards must be quiescent).
  void setDropSuspect(std::uint64_t suspectMask);

  /// Global quiescent instant certified by the collector: every shard may
  /// publish its pending conviction (the joining stage; see file comment).
  void onQuiescent();

  /// True while any shard (or the joiner) holds a confirmed-but-
  /// unpublished conviction.
  bool hasPendingConviction() const;

  /// Stream idle: give every checker with a pending escalation its engine
  /// run (parallel across shards when K > 1).
  void onIdle();

  /// Stream fully drained; runs each checker's final escalation (parallel)
  /// and publishes surviving convictions.  Call exactly once.
  void finish();

  /// Aggregated stream stats across the K shards (mergeStreamStats).  The
  /// joiner's counters are reported separately (joinerStats) — its units
  /// are re-projections of units the shards already count.
  StreamStats stats() const;

  /// Per-shard telemetry; `stream` fields are snapshotted at call time.
  std::vector<ShardStats> shardStats() const;

  /// Joiner + placement telemetry (all-zero when K == 1).
  JoinerStats joinerStats() const;

  /// All shards' violations (annotated with the owning shard when K > 1)
  /// followed by the joiner's (annotated "[cross-shard joiner]").
  std::vector<MonitorViolation> violations() const;

  /// Direct access for white-box tests (only meaningful between pumps).
  const StreamChecker& shard(std::size_t s) const { return *checkers_[s]; }
  /// Current bit→shard placement (mod-K until a rebuild moves bits).
  std::size_t placementOf(std::size_t bit) const;
  std::uint64_t placementBits(std::size_t s) const;

 private:
  struct Cmd {
    enum class Kind : std::uint8_t {
      kUnit,      // feed `unit` to the shard checker
      kGap,       // drop hit this shard with no carrying projection: resync
      kTaintSkip  // drop missed this shard: telemetry only
    };
    Kind kind = Kind::kUnit;
    StreamUnit unit;
  };

  /// Joiner backlog entry: a whole recent unit plus the cumulative taint
  /// of drops noted between the previous entry and this one (re-signalled
  /// on replay so a restarted joiner cannot read a dropped write as an
  /// unexplainable value).
  struct BacklogEntry {
    StreamUnit unit;
    std::uint64_t footprint = 0;
    std::uint64_t dropMaskBefore = 0;
  };

  void enqueueGapSignals(std::uint64_t taintMask);
  void drainShard(std::size_t s);
  void drainJoiner();
  /// Shard-index mask of the shards a footprint touches.
  std::uint64_t shardMaskOf(std::uint64_t footprint) const;
  /// Grow the cross-bit set, restart the joiner, replay the backlog.
  void growJoiner(std::uint64_t bits);
  void enqueueJoinerProjection(const StreamUnit& u);
  std::size_t backlogCap() const;

  StreamOptions opts_;
  std::vector<std::unique_ptr<StreamChecker>> checkers_;
  std::vector<std::deque<Cmd>> queues_;
  std::vector<ShardStats> routing_;  // stream fields filled on snapshot
  std::unique_ptr<ThreadPool> pool_;  // null when K == 1

  // Footprint-clustered placement (bits_ mirrors mod-K until a rebuild).
  FootprintPlacement placement_;
  std::vector<std::uint64_t> placementBits_;  // per shard, cached

  // Cross-shard joiner state (all unused when K == 1).
  std::unique_ptr<StreamChecker> joiner_;  // null when K == 1
  std::deque<Cmd> joinerQueue_;
  std::deque<BacklogEntry> backlog_;
  std::uint64_t crossBits_ = 0;
  std::uint64_t pendingBacklogDropMask_ = 0;
  /// Last routed footprint + shard mask per process (program-order shard
  /// switches are the store-buffer-family trigger).
  std::vector<std::uint64_t> lastShardMask_;  // indexed by pid
  std::vector<std::uint64_t> lastFootprint_;
  JoinerStats joinerTelemetry_;         // stream merged on snapshot
  StreamStats joinerStatsAcc_;          // harvested across restarts
  std::vector<MonitorViolation> joinerViolations_;  // harvested
};

}  // namespace jungle::monitor
