// Sharded merge-and-check stage: K independent StreamCheckers, each owning
// the variables v with v mod K == its index, fed the *projection* of every
// merged unit onto its variable group.
//
// Routing is by projection, not whole-unit copy: shard s receives a unit's
// delimiters plus exactly the command events whose object belongs to s.
// Because every unit touching a shard-s variable routes a projection to
// shard s, each shard sees ALL accesses to its variables — its stream is
// complete for the objects it owns, which is what the StreamChecker's
// running-state fast path requires.  A unit spanning shards goes to each
// (a cross-shard join, counted per participating shard).
//
// Soundness of per-shard conviction: restricting any witness for the real
// execution to shard-s variables yields a witness for the shard-s
// projection — delimiters and real-time order survive, per-object legality
// is untouched for kept objects, and removing commands only removes
// constraints under every model the engine parametrizes over.  So if a
// projection conclusively violates the model, no witness for the full
// execution can exist either: a shard conviction is a real conviction.
// The price is completeness, not soundness — an anomaly visible only as a
// cycle THROUGH variables in different shards can evade every projection
// (each shard's slice individually explainable).  K = 1 retains the serial
// checker's full power; the sweep in EXPERIMENTS.md quantifies the
// tradeoff.
//
// Per-variable drop taint replaces the serial "any drop suppresses
// everything" rule: a gap's taint mask (the ring's cumulative dropped
// footprint, event.hpp varTaintBit) resyncs and cools down only the shards
// whose variable bits it intersects; untouched shards keep their windows
// and may still convict (taintedWindowSkips counts the survivals).  Since
// the supported shard counts divide 64, a taint bit maps to exactly one
// shard and the intersection test is exact per shard.
//
// The joining stage: per-shard convictions stay pending in their shard and
// are published only at a GLOBAL quiescent instant (onQuiescent(), driven
// by the collector's whole-capture barrier) or at finish(), after each
// shard's own dropSuspect gate.  Quiescence is deliberately not per-shard:
// an in-flight unit's footprint is unknown until it lands, so no shard can
// prove the missing explanation isn't headed its way.
//
// Threading: feed()/noteDrops() only enqueue onto per-shard command
// queues; pump() drains every queue — one task per non-empty shard on the
// shared ThreadPool (inline when K == 1) — and barriers on completion.
// Outside pump() the shards are quiescent, so the collector may touch
// per-shard state (setDropSuspect, hasPendingConviction, stats) directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "monitor/stream_checker.hpp"

namespace jungle::monitor {

/// Per-shard routing + checking telemetry (ShardedStreamChecker::shardStats).
struct ShardStats {
  /// Non-empty projections fed to this shard's checker.
  std::uint64_t unitsRouted = 0;
  /// Routed units that were shared with at least one other shard.
  std::uint64_t crossShardJoins = 0;
  /// Gap/drop signals delivered to this shard (its taint bits were hit).
  std::uint64_t gapSignals = 0;
  /// The shard checker's own counters (incl. taintedWindowSkips and
  /// escalation latency min/total/max).
  StreamStats stream;
};

/// Shard owning variable x when K shards are configured (K divides 64, so
/// this agrees with the taint-bit mapping: bit (x & 63) belongs to shard
/// (x & 63) mod K == x mod K).
inline std::size_t shardOfVar(ObjectId x, std::size_t k) {
  return static_cast<std::size_t>(x % k);
}

/// Union of the taint bits shard s owns under K shards.
std::uint64_t shardTaintBits(std::size_t s, std::size_t k);

/// Shard-s projection of a unit: delimiters plus the command events whose
/// object belongs to shard s (exposed for the routing-exactness tests).
/// gapBefore/taintMask are copied verbatim — the router decides per shard
/// whether the gap applies.
StreamUnit projectUnit(const StreamUnit& u, std::size_t s, std::size_t k);

class ShardedStreamChecker {
 public:
  /// `shards` must divide 64 (1, 2, 4, 8, ...) so variable taint bits map
  /// to exactly one shard.  K == 1 degenerates to the serial checker plus
  /// taint-aware drop handling, with no thread pool.
  ShardedStreamChecker(const StreamOptions& opts, std::size_t shards);

  ShardedStreamChecker(const ShardedStreamChecker&) = delete;
  ShardedStreamChecker& operator=(const ShardedStreamChecker&) = delete;

  std::size_t shards() const { return checkers_.size(); }

  /// Routes the unit's projections (and, when gapBefore, its gap signal)
  /// onto the per-shard queues.  Call pump() to run the queued work.
  /// Units must arrive in ascending epoch order, as for StreamChecker.
  void feed(StreamUnit unit);

  /// The capture dropped units with (cumulative) footprint `taintMask`
  /// before any gap marker could be placed: resync the intersecting
  /// shards, leave the rest checking (they record a taint skip).
  void noteDrops(std::uint64_t taintMask);

  /// Drains every shard queue; parallel across shards when K > 1.  On
  /// return the shards are quiescent and may be inspected directly.
  void pump();

  /// Per-shard dropSuspect from the collector's unresolved-drop taint
  /// union: shard s is suspect iff `suspectMask` intersects its bits.
  /// Call after pump() (shards must be quiescent).
  void setDropSuspect(std::uint64_t suspectMask);

  /// Global quiescent instant certified by the collector: every shard may
  /// publish its pending conviction (the joining stage; see file comment).
  void onQuiescent();

  /// True while any shard holds a confirmed-but-unpublished conviction.
  bool hasPendingConviction() const;

  /// Stream idle: give every shard with a pending escalation its engine
  /// run (parallel across shards when K > 1).
  void onIdle();

  /// Stream fully drained; runs each shard's final escalation (parallel)
  /// and publishes surviving convictions.  Call exactly once.
  void finish();

  /// Aggregated stream stats across shards (mergeStreamStats).
  StreamStats stats() const;

  /// Per-shard telemetry; `stream` fields are snapshotted at call time.
  std::vector<ShardStats> shardStats() const;

  /// All shards' violations, shard-major; descriptions are annotated with
  /// the owning shard when K > 1.
  std::vector<MonitorViolation> violations() const;

  /// Direct access for white-box tests (only meaningful between pumps).
  const StreamChecker& shard(std::size_t s) const { return *checkers_[s]; }

 private:
  struct Cmd {
    enum class Kind : std::uint8_t {
      kUnit,      // feed `unit` to the shard checker
      kGap,       // drop hit this shard with no carrying projection: resync
      kTaintSkip  // drop missed this shard: telemetry only
    };
    Kind kind = Kind::kUnit;
    StreamUnit unit;
  };

  void enqueueGapSignals(std::uint64_t taintMask);
  void drainShard(std::size_t s);

  std::vector<std::unique_ptr<StreamChecker>> checkers_;
  std::vector<std::deque<Cmd>> queues_;
  std::vector<ShardStats> routing_;  // stream fields filled on snapshot
  std::unique_ptr<ThreadPool> pool_;  // null when K == 1
};

}  // namespace jungle::monitor
