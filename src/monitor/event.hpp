// Monitor events: what the instrumented runtime captures per operation.
//
// Tickets come from one global atomic counter and are claimed twice per
// unit, not per event: once when the transaction's body begins (the start
// event — the unit's *merge epoch*, the key the collector orders
// per-thread streams by) and once at the flush (the closing event).  The
// start ticket is the merge key because it is claimed before any of the
// unit's writes can be visible to another thread, so start order never
// feeds a reader ahead of the writer it read from; the closing ticket is
// claimed after the TM's internal commit point and can be arbitrarily
// late under preemption, but together the two endpoints bound the unit's
// real-time interval, which is what the escalation history needs.
// Interior reads and writes inherit the start event's ticket at flush
// time; a stable sort of a window's events by ticket therefore yields an
// interleaving whose per-process projections are the real executions and
// whose unit endpoints are in true claim order — the history the
// escalation path hands to the DecisionEngine.  (Interior placement
// between the endpoints is semantically free: transactional real-time
// precedence only depends on where units begin and end.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace jungle::monitor {

enum class EventKind : std::uint8_t {
  kTxStart,
  kTxRead,
  kTxWrite,
  kTxCommit,
  kTxAbort,
  kNtRead,
  kNtWrite,
  /// Producer-pushed one-event unit marking the exact ring position where
  /// at least one unit was dropped (`value` = the ring's total dropped
  /// units up to that gap, exact because the producer is the counter's
  /// only writer; `ticket` = the ring's cumulative drop-taint mask — see
  /// varTaintBit — so the collector knows which variables the losses could
  /// have touched).  A consumer-side read of the drop counter cannot place
  /// a gap: it may observe drops that happen after the unit it is
  /// assembling, mis-attributing the gap and leaving its true successor
  /// unmarked.  Never becomes a StreamUnit.
  kGapMarker,
};

const char* eventKindName(EventKind k);

struct MonitorEvent {
  std::uint64_t ticket = 0;
  ObjectId obj = kNoObject;  // kNoObject for start/commit/abort
  EventKind kind = EventKind::kTxStart;
  Word value = 0;  // read result or written value; 0 for delimiters
};

inline bool endsUnit(EventKind k) {
  return k == EventKind::kTxCommit || k == EventKind::kTxAbort ||
         k == EventKind::kNtRead || k == EventKind::kNtWrite;
}

/// Drop-taint footprints are 64-bit variable masks: variable v owns bit
/// v mod 64.  Shard counts that divide 64 (the supported 1/2/4/8/...)
/// make the mapping exact per shard: shard s = v mod K owns exactly the
/// bits {b : b mod K == s}, so a taint mask intersects a shard's bits iff
/// some possibly-dropped access hashed into that shard.
inline std::uint64_t varTaintBit(ObjectId x) { return 1ULL << (x & 63); }

/// Footprint of one event for taint purposes (delimiters carry none).
inline std::uint64_t eventTaintBits(const MonitorEvent& e) {
  return e.obj == kNoObject ? 0 : varTaintBit(e.obj);
}

/// One merge unit of the stream: a whole transaction (start..commit/abort)
/// or a single non-transactional access.  Units are flushed to the ring
/// atomically, so the collector always sees them intact.
struct StreamUnit {
  enum class Kind : std::uint8_t { kCommittedTx, kAbortedTx, kNonTx };

  Kind kind = Kind::kCommittedTx;
  ProcessId pid = 0;
  /// Merge epoch: the START ticket (first event); the collector emits
  /// units to the checker in ascending epoch order across all threads.
  std::uint64_t epoch = 0;
  /// The producer dropped at least one unit between this unit and its ring
  /// predecessor (set by the collector from the kGapMarker the producer
  /// pushed at the gap's exact ring position): the checker must
  /// resynchronize exactly here, not merely "soon", or the missing writes
  /// masquerade as corrupt reads.
  bool gapBefore = false;
  /// When gapBefore: the marker's drop count — the ring's total dropped
  /// units up to this gap.  Once this unit is fed, every drop the counter
  /// showed up to that value is accounted for (collector bookkeeping for
  /// verdict suppression).
  std::uint64_t dropsCovered = 0;
  /// When gapBefore: the producing ring's cumulative drop-taint mask as
  /// snapshotted by the gap marker (varTaintBit per possibly-lost access).
  /// Checkers whose variables miss the mask entirely may keep convicting;
  /// a set bit inside a checker's footprint forces the usual resync +
  /// cooldown there.  Cumulative (never reset) so late marker pushes stay
  /// conservative.
  std::uint64_t taintMask = 0;
  std::vector<MonitorEvent> events;
};

}  // namespace jungle::monitor
