// TmMonitor: always-on runtime verification for live TM runtimes.
//
// Attach a monitor to any TmRuntime and drive the monitored wrapper it
// hands back; while the workload runs, the collector merges the
// per-thread event rings into one epoch-ordered stream — single-threaded
// by default, or as a two-level merge tree (ring groups leaf-merged by
// collectorThreads workers, root merge preserving the global start-ticket
// order) — and an incremental checker (stream_checker.hpp) verifies it
// against the model the TM kind claims — the same claims the fuzz harness and the conformance theorems
// use (Theorems 3-5, §6.1).  On a conclusive violation the window is
// delta-shrunk and persisted as a .hist repro that check_history and the
// litmus tooling can replay.
//
// The monitor never blocks or slows the application beyond the wrapper's
// ring pushes: full rings drop units (counted in MonitorStats and answered
// with a checker resync), and all checking happens on the collector
// thread.  Pipeline: instrumented_runtime.hpp (producers) → event_ring.hpp
// (SPSC rings) → collector (this file) → stream_checker.hpp (incremental
// engine) → snapshot persistence.  See DESIGN.md §9.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "monitor/instrumented_runtime.hpp"
#include "monitor/sharded_checker.hpp"
#include "monitor/stream_checker.hpp"
#include "tm/runtime.hpp"

namespace jungle::monitor {

/// What a TM kind is on the hook for at runtime — mirrors the fuzz
/// harness's tmClaims() (fuzz_driver.cpp) and the conformance theorems.
struct MonitorClaim {
  const MemoryModel* model = nullptr;
  /// The TM only claims correctness of purely transactional workloads
  /// (tl2-weak): the capture skips non-transactional accesses.
  bool pureTxOnly = false;
  /// Condition the escalation engine checks: the single-version TMs claim
  /// opacity parametrized by `model`; the MVCC family claims snapshot
  /// isolation (si-mvcc) or strict serializability (si-ssn).
  ConditionKind condition = ConditionKind::kParametrizedOpacity;
};

MonitorClaim monitorModelFor(TmKind kind);

struct MonitorOptions {
  CaptureOptions capture;
  /// Checker knobs (stream_checker.hpp).
  std::size_t gcRetain = 8;
  std::size_t settleUnits = 4;
  std::chrono::milliseconds recheckTimeout{2000};
  std::uint64_t recheckMaxExpansions = 0;
  /// Engine portfolio width per escalation (SearchLimits.threads): > 1
  /// runs the escalation's serialization-order branches in parallel.
  unsigned recheckThreads = 1;
  /// TMS2 incremental certifier (stream_checker.hpp StreamOptions):
  /// certifies fast-path misses in O(conflicts) before escalating; accept-
  /// only, so verdicts match the engine-only configuration.
  bool certifier = true;
  /// Certifier snapshot retention (0 = gcRetain).
  std::size_t certifierDepth = 0;
  /// Checker shards (sharded_checker.hpp): variables are partitioned
  /// across shards (footprint-clustered placement, mod-K fallback), each
  /// group checked by its own StreamChecker (on a thread pool when > 1).
  /// Must divide 64.  1 = the serial checker plus per-variable drop taint.
  std::size_t shards = 1;
  /// Placement rebuild cadence in merged units (sharded_checker.hpp):
  /// every this many units the router re-clusters variables by observed
  /// co-access so co-accessed variables share a shard.  0 = static mod-K.
  std::size_t placementWindow = 4096;
  /// Collector ingest workers: rings are split into this many groups,
  /// each drained and leaf-merged by a worker, with the collector thread
  /// running the root merge (two-level tree).  1 = the single-thread
  /// collector.  Clamped to the producer count.
  unsigned collectorThreads = 1;
  /// Collector sleep when a full round found nothing to do.
  std::chrono::microseconds pollInterval{50};
  /// Directory for violation .hist snapshots; empty disables persistence.
  std::string snapshotDir;
  /// Override the claimed model (tests and the fuzz differential leg);
  /// nullptr = monitorModelFor(kind).model.
  const MemoryModel* modelOverride = nullptr;
};

struct MonitorStats {
  // Capture side (producers).
  std::uint64_t eventsCaptured = 0;
  std::uint64_t eventsDropped = 0;
  std::uint64_t unitsDropped = 0;
  std::uint64_t retriesDiscarded = 0;
  // Collector side.
  std::uint64_t unitsMerged = 0;
  /// Largest epoch-reorder backlog (units parsed but above the merge
  /// frontier): the collector-lag gauge.
  std::size_t peakPendingUnits = 0;
  std::chrono::microseconds monitoredFor{0};
  double eventsPerSec = 0.0;
  // Checker side, aggregated across shards (window size, rechecks, GC'd
  // prefix, violations, escalation latency, taint skips).
  StreamStats stream;
  /// Per-shard routing + checking telemetry (size = MonitorOptions.shards).
  std::vector<ShardStats> shards;
  /// Cross-shard joiner + placement telemetry (inert when shards == 1).
  JoinerStats joiner;
};

/// One monitor per runtime: construction starts the collector; stop()
/// (or destruction) drains the stream, finalizes the checker, and makes
/// stats()/violations() valid.
class TmMonitor {
 public:
  TmMonitor(TmRuntime& inner, std::size_t maxProcs,
            const MonitorOptions& opts = {});
  ~TmMonitor();

  TmMonitor(const TmMonitor&) = delete;
  TmMonitor& operator=(const TmMonitor&) = delete;

  /// The instrumented wrapper the workload must drive.  Same threading
  /// contract as any TmRuntime: one OS thread per ProcessId at a time.
  TmRuntime& runtime() { return *monitored_; }

  const MemoryModel& model() const { return *model_; }

  /// Stops the collector after draining every ring (call only once the
  /// workload threads are joined).  Idempotent.
  void stop();

  /// Valid after stop().
  const MonitorStats& stats() const { return stats_; }
  const std::vector<MonitorViolation>& violations() const {
    return violations_;
  }
  bool ok() const { return violations_.empty(); }

 private:
  void collectorLoop();
  void persistViolations();

  MonitorOptions opts_;
  const MemoryModel* model_;
  const char* tmName_;
  EventCapture capture_;
  std::unique_ptr<TmRuntime> monitored_;
  ShardedStreamChecker checker_;
  std::thread collector_;
  std::atomic<bool> stopRequested_{false};
  bool stopped_ = false;
  std::chrono::steady_clock::time_point startedAt_;
  MonitorStats stats_;
  std::vector<MonitorViolation> violations_;
};

/// Random mixed workload against a (typically monitored) runtime: the
/// shared driver behind examples/monitor_tm, the monitor tests, and the
/// fuzz harness's monitor leg.  Threads run transactions (reads/writes
/// with occasional user aborts) and non-transactional accesses over a
/// small variable set; written values are full 64-bit (every TM kind —
/// single-version and MVCC alike — accepts identical workloads).
struct WorkloadOptions {
  std::size_t threads = 4;
  std::size_t numVars = 12;
  std::uint64_t opsPerThread = 1000;
  std::uint64_t seed = 1;
  /// Percent of top-level ops that are transactions (rest non-transactional,
  /// skipped entirely for pure-tx-only TMs).
  unsigned txPercent = 75;
  unsigned writePercent = 50;
  /// Ops per transaction: 1..txOpsMax.
  std::size_t txOpsMax = 4;
  /// Percent of transactions the body aborts explicitly.
  unsigned abortPercent = 4;
  bool allowNonTx = true;
  /// Sleep between top-level ops; lets CI smoke runs stay drop-free on one
  /// core (0 = full speed).
  std::chrono::microseconds pace{0};
};

struct WorkloadResult {
  std::uint64_t commits = 0;
  std::uint64_t userAborts = 0;
  std::uint64_t ntOps = 0;
};

WorkloadResult runMonitoredWorkload(TmRuntime& rt, const WorkloadOptions& w);

}  // namespace jungle::monitor
