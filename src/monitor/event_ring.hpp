// Lock-free SPSC event ring: one producer (an instrumented application
// thread), one consumer (the collector).
//
// Fixed power-of-two capacity; head and tail live on their own cache lines
// and each side keeps a cached copy of the other's index so the hot path
// touches a shared line only when its cached view runs out.  A full ring
// never blocks the producer: the whole unit is dropped and counted
// (dropped()/droppedUnits()), and the producer later pushes a kGapMarker
// unit at the exact ring position of the loss (instrumented_runtime.cpp)
// so the collector can resynchronize the checker precisely there.  Units
// are pushed all-or-nothing so the stream stays unit-aligned across drops.
//
// The flush-epoch slot implements the collector's merge frontier.  Before
// a unit claims ANY ticket — and before the TM can make any of its writes
// visible — the producer *announces* a lower bound (the counter's current
// value), and clears the announcement only after the unit's events are
// published:
//
//   announceFlush(counter.load());      // at operation entry, <= every
//                                       //   ticket this unit will claim
//   s = counter.fetch_add(1);           // start ticket = the merge epoch
//   ... TM runs; commit point; flush ...
//   e = counter.fetch_add(1);           // closing-event ticket
//   tryPushUnit(events);                // publish
//   clearFlush();
//
// The collector reads the counter, then every ring's announcement, then
// drains; any unit it has not yet seen either has a merge epoch >= the
// counter snapshot or is covered by a still-set announcement, so emitting
// pending units with epochs below the minimum is safe.  Holding the
// announcement across the whole operation (not just the flush) is what
// bounds merge skew: a thread preempted between the TM's commit point and
// its flush stalls the frontier, so readers of its writes — whose merge
// epochs are necessarily above the writer's announcement — cannot be
// emitted ahead of it.  The announcement is never raised mid-unit: once
// the start ticket is claimed, a higher bound would let the frontier pass
// it before the push lands.  All accesses are seq_cst: the argument needs
// the single total order (a published unit whose announcement was already
// cleared must be visible to the drain that follows the clear's
// observation).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "monitor/event.hpp"

namespace jungle::monitor {

inline constexpr std::uint64_t kNoEpoch = ~0ULL;

class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : capacity_(roundUpPow2(capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<MonitorEvent[]>(capacity_)) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Producer: publishes all `n` events or none.  On failure the unit is
  /// counted dropped (unless it is meta-traffic: a gap marker's own push
  /// failure must not inflate the lost-unit count) and the ring untouched.
  /// `taintBits` is the dropped unit's variable footprint (varTaintBit per
  /// accessed object; ~0 when unknown): it is OR'd into the cumulative
  /// taint mask BEFORE the unit counter moves, with release/acquire
  /// pairing on the counter, so any collector that observes a drop count
  /// of d reads a mask covering at least the first d drops' footprints.
  bool tryPushUnit(const MonitorEvent* events, std::size_t n,
                   bool countDrop = true, std::uint64_t taintBits = ~0ULL) {
    const std::uint64_t tail = tail_.value.load(std::memory_order_relaxed);
    if (capacity_ - (tail - cachedHead_) < n) {
      cachedHead_ = head_.value.load(std::memory_order_acquire);
      if (capacity_ - (tail - cachedHead_) < n) {
        if (countDrop) {
          dropped_.value.fetch_add(n, std::memory_order_relaxed);
          taint_.value.fetch_or(taintBits, std::memory_order_relaxed);
          droppedUnits_.value.fetch_add(1, std::memory_order_release);
        }
        return false;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = events[i];
    }
    tail_.value.store(tail + n, std::memory_order_release);
    pushed_.value.fetch_add(n, std::memory_order_relaxed);
    return true;
  }

  /// Consumer: true when no events are waiting (fresh tail read; used by
  /// the collector's quiescence check, so it must not trust the cache).
  bool empty() const {
    return head_.value.load(std::memory_order_relaxed) ==
           tail_.value.load(std::memory_order_acquire);
  }

  /// Consumer: pops one event; false when the ring is empty.
  bool tryPop(MonitorEvent& out) {
    const std::uint64_t head = head_.value.load(std::memory_order_relaxed);
    if (head == cachedTail_) {
      cachedTail_ = tail_.value.load(std::memory_order_acquire);
      if (head == cachedTail_) return false;
    }
    out = slots_[head & mask_];
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer-side flush announcement (see file comment).  The announce
  /// must be seq_cst (the frontier argument needs it ordered before the
  /// ticket claim in the single total order); the clear only needs
  /// release — a collector that acquire-reads the cleared slot
  /// synchronizes with it and therefore sees the push sequenced before.
  void announceFlush(std::uint64_t lowerBound) {
    flushEpoch_.value.store(lowerBound, std::memory_order_seq_cst);
  }
  void clearFlush() {
    flushEpoch_.value.store(kNoEpoch, std::memory_order_release);
  }
  /// Collector: kNoEpoch when no flush is in flight.
  std::uint64_t flushEpoch() const {
    return flushEpoch_.value.load(std::memory_order_seq_cst);
  }

  std::uint64_t pushed() const {
    return pushed_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t droppedUnits() const {
    return droppedUnits_.value.load(std::memory_order_acquire);
  }
  /// Cumulative drop-taint mask (union of every dropped unit's footprint
  /// since construction; never reset — resetting at marker-push time would
  /// hide the taint of drops recorded in a pushed-but-unpopped marker).
  /// Read AFTER droppedUnits(): the producer ORs the mask before bumping
  /// the counter (release), so count-then-mask yields a mask that covers
  /// every counted drop.
  std::uint64_t taintMask() const {
    return taint_.value.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t roundUpPow2(std::size_t n) {
    JUNGLE_CHECK(n >= 2);
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<MonitorEvent[]> slots_;

  alignas(kCacheLine) PaddedAtomicWord head_;  // consumer-owned
  alignas(kCacheLine) PaddedAtomicWord tail_;  // producer-owned
  alignas(kCacheLine) PaddedAtomicWord pushed_;
  PaddedAtomicWord dropped_;
  PaddedAtomicWord droppedUnits_;
  PaddedAtomicWord taint_;
  struct alignas(kCacheLine) {
    std::atomic<std::uint64_t> value{kNoEpoch};
  } flushEpoch_;

  // Side-local index caches (unshared; false sharing avoided by padding
  // the atomics above).
  alignas(kCacheLine) std::uint64_t cachedHead_ = 0;  // producer-owned
  alignas(kCacheLine) std::uint64_t cachedTail_ = 0;  // consumer-owned
};

}  // namespace jungle::monitor
