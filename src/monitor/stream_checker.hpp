// Streaming incremental opacity checker: the consumer half of the monitor.
//
// The collector feeds StreamUnits in ascending merge-epoch (start-ticket)
// order.  Three tiers keep the cost proportional to the event rate:
//
//   * Fast path — replay the unit against the running object state (the
//     state after the window's units in epoch order).  A committed or
//     aborted transaction's reads must see that state (modulo its own
//     writes); a non-transactional read must see it exactly.  One hash-map
//     lookup per operation.
//
//   * TMS2 certifier (tms2_certifier.hpp) — on a fast-path miss, try to
//     certify the unit incrementally against the retained memory-snapshot
//     sequence (read-only units at an older snapshot; buffered suffixes by
//     greedy linearization).  Accept-only: success is a serialization
//     witness, failure falls through to escalation, so verdicts match the
//     engine's by construction.
//
//   * Escalation — on any certifier miss, materialize the retained
//     window as a real concurrent history (events interleaved by capture
//     ticket, prefix state installed by a synthetic initializer
//     transaction) and ask the existing DecisionEngine whether the TM's
//     claimed memory model admits a witness.  This is where benign
//     reorderings (a transaction that linearized before a competitor but
//     claimed its epoch later) are told apart from real violations.
//
// Escalation is deferred, not immediate: the unit that explains a
// mismatched read may have linearized already but not yet claimed its
// epoch (the capture claims epochs a few instructions after the TM's
// internal commit point), so the checker buffers settleUnits more units
// before running the engine, and a violated verdict must be confirmed by
// a second run over a later window — or by any run once the stream is
// drained (finish()) — before it is reported.  Satisfied escalations
// collapse the whole window into the GC summary via the witness's final
// object state.
//
// The decided committed prefix is garbage-collected: once the window
// exceeds gcRetain units, the oldest units fold their committed writes
// into the prefix state and are dropped, so memory stays bounded on
// arbitrarily long runs (peakWindowEvents in the stats is the proof).
//
// Honesty rules: an inconclusive escalation (deadline) is never reported
// as a violation — it resynchronizes the window instead; after ring drops
// the object state is unknown, so the checker resyncs and re-learns state
// from the first read of each object (drop-free runs are fully checked).
// Drops are handled position-exactly: the producer pushes a gap marker at
// the exact ring position of the loss, the collector marks the next real
// unit (StreamUnit::gapBefore), and the checker resyncs at that unit's
// feed — resyncing merely "when the drop was noticed" lets units
// straddling the gap share one window, where the dropped unit's writes
// masquerade as corrupt reads.  Convictions are gated three ways: while
// any drop has no fed gap-marked successor (setDropSuspect); for a
// cooldown of gcRetain + 2*settleUnits + 1 feeds after every gap (a
// dropped write stays the TM's current value until overwritten, so a unit
// whose claim window overlapped the gap can read it and, inside an
// escalation window, be indistinguishable from corruption); and — the
// decisive one — a confirmed conviction is only *published* at a
// quiescent instant (onQuiescent(): every ring drained, no flush in
// flight, every drop gap-covered) or at finish().  The barrier exists
// because an optimistic TM publishes writes at its internal commit point
// but the unit records the loss only when its flush fails, arbitrarily
// later: a reader of the doomed write can be fed, escalated, and
// convicted before the drop is even counted, and no counter-based gate
// can see a drop that has not happened yet.  At a quiescent instant every
// write any fed read could have observed belongs to a unit that was
// either fed (the engine saw it) or gap-marked (the marker's feed
// discards the pending conviction).  Discarded verdicts are counted in
// suppressedVerdicts, never reported.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "memmodel/memory_model.hpp"
#include "monitor/event.hpp"
#include "monitor/tms2_certifier.hpp"
#include "opacity/popacity.hpp"

namespace jungle::monitor {

struct StreamOptions {
  /// Memory model the TM claims (monitorModelFor(kind)); required.
  const MemoryModel* model = nullptr;
  /// Condition the TM claims; escalations and shrink reruns dispatch on it
  /// (model is consulted only for kParametrizedOpacity).  SI escalations
  /// run without the first-committer-wins pre-check: apparent intervals
  /// over-approximate the real ones (epochs are claim order), so an
  /// interval test could convict real-time-ordered writers as concurrent.
  ConditionKind condition = ConditionKind::kParametrizedOpacity;
  /// Units kept after the decided prefix is folded away.
  std::size_t gcRetain = 8;
  /// Units buffered after a fast-path mismatch before the engine runs, so
  /// the competitor that explains a benign reordering can arrive.
  std::size_t settleUnits = 4;
  /// Per-escalation engine deadline; an expired recheck is inconclusive.
  std::chrono::milliseconds recheckTimeout{2000};
  /// Per-escalation engine expansion budget (0 = unlimited): the other way
  /// to bound checking cost per window; an exhausted run is inconclusive.
  std::uint64_t recheckMaxExpansions = 0;
  unsigned recheckThreads = 1;
  /// Start in the post-resync posture: objects are unknown until first
  /// read (adopted) instead of implicitly zero.  For checkers attached
  /// mid-stream — the cross-shard joiner sees only a suffix of the
  /// execution, so a nonzero first read must adopt, not convict.
  bool startUnknown = false;
  /// Enable the TMS2 incremental certifier (monitor/tms2_certifier.hpp):
  /// a third path between the read-set fast path and the engine that
  /// certifies benign reorderings (old-snapshot readers, claim-inverted
  /// writer/reader pairs) in O(conflicts) instead of by search.  Accept-
  /// only — convictions still go through the engine — so verdicts are
  /// unchanged; only escalation counts drop.  Auto-disabled when the
  /// claimed model's transform is not the identity (the certified history
  /// would not be the checked one).
  bool certify = true;
  /// Memory snapshots the certifier retains (0 = gcRetain).  A reader that
  /// would need an older snapshot cannot be decided and escalates.
  std::size_t certifierDepth = 0;
};

struct MonitorViolation {
  std::string description;
  /// The escalated window history that conclusively violates the model.
  History window;
  /// Delta-shrunk repro (fuzz/shrinker.hpp over the same predicate).
  History shrunk;
  /// Path of the persisted .hist snapshot; empty when persistence is off.
  std::string file;
};

struct StreamStats {
  std::uint64_t unitsChecked = 0;
  std::uint64_t opsChecked = 0;
  /// Per-path decision accounting; the four buckets partition
  /// unitsChecked: accepted by the plain read-set fast path, accepted by
  /// the TMS2 certifier (old-snapshot readers + buffered-drain
  /// linearizations), consumed by an engine escalation verdict, or
  /// discarded undecided by a drop-triggered resync.
  std::uint64_t fastPathUnits = 0;
  std::uint64_t certifiedUnits = 0;
  std::uint64_t escalatedUnits = 0;
  std::uint64_t discardedUnits = 0;
  /// Certifier-path latency: attempts (fast-path misses offered to the
  /// automaton, successful or not) and their total wall time.  Mean =
  /// total / attempts; the plain fast path is untimed (it is the baseline).
  std::uint64_t certifierAttempts = 0;
  std::uint64_t certifierUsTotal = 0;
  std::uint64_t rechecks = 0;
  std::uint64_t inconclusiveRechecks = 0;
  /// Committed-prefix units folded into the GC summary.
  std::uint64_t gcUnits = 0;
  /// Drop- or inconclusive-triggered window resets.
  std::uint64_t resyncs = 0;
  /// Conclusive violated verdicts discarded because ring drops overlapped
  /// the window (the missing unit could explain them).
  std::uint64_t suppressedVerdicts = 0;
  std::uint64_t violations = 0;
  std::size_t windowUnits = 0;
  std::size_t windowEvents = 0;
  std::size_t peakWindowUnits = 0;
  std::size_t peakWindowEvents = 0;
  /// Engine-run (escalation) wall latency in microseconds; min is 0 until
  /// the first escalation runs.  Mean = total / rechecks.
  std::uint64_t escalationUsTotal = 0;
  std::uint64_t escalationUsMin = 0;
  std::uint64_t escalationUsMax = 0;
  /// Gap markers whose taint footprint missed this checker's variables
  /// entirely, so the window survived where the pre-taint rule would have
  /// resynced and suppressed (per-variable drop-taint telemetry).
  std::uint64_t taintedWindowSkips = 0;
};

/// Fold `from` into `into` (sharded collectors aggregate per-shard stream
/// stats; counters add, peaks/extrema combine).
void mergeStreamStats(StreamStats& into, const StreamStats& from);

class StreamChecker {
 public:
  explicit StreamChecker(const StreamOptions& opts);

  /// Units must arrive in ascending epoch order (the collector's merge
  /// guarantees it).  A unit with gapBefore set resyncs first: the drop it
  /// records sits exactly between this unit and its ring predecessor.
  void feed(StreamUnit unit);

  /// The capture dropped events since the last call: the running state can
  /// no longer be trusted, resync.
  void noteDrops();

  /// Collector each round: true while some observed drop has not yet been
  /// resolved by feeding its gap-marked successor unit (or never will be —
  /// the ring went quiet after the drop).  Gates violation reporting.
  void setDropSuspect(bool suspect) { dropSuspect_ = suspect; }

  /// The collector certified a quiescent instant: every ring drained and
  /// fed, no flush announcement active, every drop gap-covered.  A pending
  /// (confirmed but unpublished) conviction becomes reportable — no unit
  /// whose writes the window could have read is still in flight or
  /// unaccounted for (see the file comment).
  void onQuiescent();

  /// True while a confirmed conviction awaits publication (lets the
  /// collector skip the quiescence check when there is nothing to publish).
  bool hasPendingConviction() const { return pending_.has_value(); }

  /// The stream went idle (collector drained everything and slept): if an
  /// escalation is pending, run it now instead of waiting for more units.
  void onIdle();

  /// The stream is fully drained and the producers are done; a pending
  /// escalation's verdict is now final (no explaining unit can still be in
  /// flight).  Call exactly once, after the last feed().
  void finish();

  /// A gap marker's taint footprint missed this checker's variables: the
  /// routing layer kept the window alive instead of resyncing (telemetry
  /// only; the checker's state is untouched).
  void noteTaintSkip() { ++stats_.taintedWindowSkips; }

  const StreamStats& stats() const { return stats_; }
  const std::vector<MonitorViolation>& violations() const {
    return violations_;
  }

  /// The escalation history for the current window plus `extra` (exposed
  /// for white-box tests; the synthetic initializer's pid is one past the
  /// largest pid appearing in the window).
  History windowHistory(const StreamUnit* extra) const;

 private:
  enum class Mode : std::uint8_t {
    kFast,       // fast path live; window is a decided suffix
    kBuffering,  // mismatch seen; buffering units toward an engine run
  };

  /// Reads see the running state (plus the unit's own writes); unknown
  /// objects (post-resync) adopt the value read into both state maps.
  /// Returns false on the first mismatch.
  bool fastPathAccepts(const StreamUnit& u);
  void applyWrites(const StreamUnit& u,
                   std::unordered_map<ObjectId, Word>& state) const;
  void admit(StreamUnit unit);
  /// Certifier path for a fast-path miss in kFast mode: a read-only unit
  /// serialized at an older retained memory.  Counts the attempt either way.
  bool tryCertify(const StreamUnit& u);
  /// Greedy TMS2 linearization of the undecided buffered suffix: repeatedly
  /// certify any unit all of whose real-time predecessors among the
  /// remaining undecided are gone (committers must see the latest memory,
  /// readers any feasible one).  True when the suffix fully drained — the
  /// window is decided without an engine run.
  bool drainUndecided();
  void gc();
  /// Runs the engine over the whole window.  `final` means the stream is
  /// drained, so a violated verdict needs no confirmation run.
  void runEscalation(bool final);
  /// Window decided satisfiable: fold everything into the prefix summary
  /// using the witness's final object state.
  void collapse(const History& witness);
  void resync();
  void reportViolation(History window, std::string description);
  /// Drop evidence arrived (gap or counter): a pending conviction's
  /// missing explanation may be the dropped unit — discard it.
  void discardPending();
  void notePeaks();
  /// Feeds a gap-adjacent unit can still appear in an escalation window.
  std::size_t cooldownSpan() const;

  StreamOptions opts_;
  SpecMap specs_;
  /// Null when disabled (option off, or non-identity model transform).
  std::unique_ptr<Tms2Certifier> certifier_;
  /// Decided units retained as escalation context (epoch/decision order).
  std::deque<StreamUnit> window_;
  /// Buffered units not yet decided (kBuffering mode); escalation windows
  /// cover window_ + undecided_.
  std::deque<StreamUnit> undecided_;
  /// State before the window (the GC summary) and after it (epoch order).
  std::unordered_map<ObjectId, Word> prefixState_;
  std::unordered_map<ObjectId, Word> state_;
  /// False after the first resync: objects absent from state_ are unknown
  /// (adopt on first read) rather than implicitly zero.
  bool allKnown_ = true;
  Mode mode_ = Mode::kFast;
  /// Units still to buffer before the pending escalation runs.
  std::size_t settleLeft_ = 0;
  /// A previous (non-final) run of this window's escalation came back
  /// violated; the next run confirms or retracts it.
  bool confirming_ = false;
  /// See setDropSuspect().
  bool dropSuspect_ = false;
  /// Feeds remaining before convictions are trusted again after a gap
  /// (claim-inversion reach of a dropped unit's writes; see file comment).
  std::size_t convictionCooldown_ = 0;
  /// A confirmed conviction awaiting a quiescent instant to be published
  /// (or discarded by intervening drop evidence).  Shrinking is deferred
  /// to publication so discarded verdicts cost nothing.
  struct PendingConviction {
    History window;
    std::string description;
  };
  std::optional<PendingConviction> pending_;
  std::size_t windowEvents_ = 0;
  StreamStats stats_;
  std::vector<MonitorViolation> violations_;
};

}  // namespace jungle::monitor
