#include "monitor/monitor.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"

namespace jungle::monitor {

MonitorClaim monitorModelFor(TmKind kind) {
  // Mirrors fuzz_driver.cpp's tmClaims(): the theorem each TM is on the
  // hook for (Theorems 3-5, §6.1; tl2-weak only claims opacity on purely
  // transactional workloads).
  switch (kind) {
    case TmKind::kGlobalLock:
      return {&idealizedModel(), false};
    case TmKind::kWriteAsTx:
      return {&alphaModel(), false};
    case TmKind::kVersionedWrite:
      return {&alphaModel(), false};
    case TmKind::kStrongAtomicity:
      return {&scModel(), false};
    case TmKind::kTl2Weak:
      return {&scModel(), true};
    case TmKind::kSnapshotIsolation:
      return {&scModel(), false, ConditionKind::kSnapshotIsolation};
    case TmKind::kSiSsn:
      return {&scModel(), false, ConditionKind::kStrictSerializability};
  }
  return {&scModel(), false};
}

namespace {

CaptureOptions captureOptsFor(const MonitorOptions& o, TmKind kind) {
  CaptureOptions c = o.capture;
  if (monitorModelFor(kind).pureTxOnly) c.recordNonTx = false;
  return c;
}

StreamOptions streamOptsFor(const MonitorOptions& o, const MemoryModel* m,
                            ConditionKind condition) {
  StreamOptions s;
  s.model = m;
  s.condition = condition;
  s.gcRetain = o.gcRetain;
  s.settleUnits = o.settleUnits;
  s.recheckTimeout = o.recheckTimeout;
  s.recheckMaxExpansions = o.recheckMaxExpansions;
  s.recheckThreads = o.recheckThreads;
  s.certify = o.certifier;
  s.certifierDepth = o.certifierDepth;
  return s;
}

StreamUnit::Kind unitKindFor(EventKind end) {
  switch (end) {
    case EventKind::kTxCommit:
      return StreamUnit::Kind::kCommittedTx;
    case EventKind::kTxAbort:
      return StreamUnit::Kind::kAbortedTx;
    default:
      return StreamUnit::Kind::kNonTx;
  }
}

struct EpochAfter {
  bool operator()(const StreamUnit& a, const StreamUnit& b) const {
    return a.epoch > b.epoch;  // min-heap on epoch
  }
};

}  // namespace

TmMonitor::TmMonitor(TmRuntime& inner, std::size_t maxProcs,
                     const MonitorOptions& opts)
    : opts_(opts),
      model_(opts.modelOverride ? opts.modelOverride
                                : monitorModelFor(inner.kind()).model),
      tmName_(inner.name()),
      capture_(maxProcs, captureOptsFor(opts, inner.kind())),
      monitored_(makeMonitoredRuntime(inner, capture_)),
      checker_(streamOptsFor(opts, model_,
                             monitorModelFor(inner.kind()).condition),
               opts.shards == 0 ? 1 : opts.shards, opts.placementWindow),
      startedAt_(std::chrono::steady_clock::now()) {
  collector_ = std::thread([this] { collectorLoop(); });
}

TmMonitor::~TmMonitor() { stop(); }

void TmMonitor::collectorLoop() {
  const std::size_t procs = capture_.procs();
  // Two-level merge tree: rings are split into `groups` leaf groups (ring
  // p belongs to group p % groups, a fixed assignment), each drained and
  // leaf-merged into a group-local epoch min-heap by a worker task; the
  // collector thread then runs the root merge — repeatedly emitting the
  // globally smallest group head below the frontier — so the stream the
  // checker sees is byte-identical to the single-thread collector's.
  // groups == 1 degenerates to exactly the old single-heap code, inline.
  const std::size_t groups = std::max<std::size_t>(
      1, std::min<std::size_t>(opts_.collectorThreads, procs));
  std::unique_ptr<ThreadPool> pool;
  if (groups > 1) pool = std::make_unique<ThreadPool>(groups);
  // Per-producer unit assembly (units are ring-aligned: pushes are
  // all-or-nothing, so an assembly is only ever partial mid-drain).
  std::vector<std::vector<MonitorEvent>> assembly(procs);
  // Parsed units above the merge frontier: per-group min-heaps by epoch.
  std::vector<std::vector<StreamUnit>> pending(groups);
  // Gap bookkeeping (all from the producers' kGapMarker units, which carry
  // the exact drop count at the gap's ring position and the ring's
  // cumulative drop-taint mask — consumer-side counter reads cannot place
  // a gap, they may already include later drops).  A popped marker arms
  // `ringGapPending`; the next real unit from that ring is marked
  // gapBefore and carries the marker's count + taint; feeding it records
  // the count in `ringDropsCovered`.  All per-RING state is only touched
  // by the ring's (fixed) owning group, so workers never contend.
  std::vector<std::uint8_t> ringGapPending(procs, 0);
  std::vector<std::uint64_t> ringPendingCover(procs, 0);
  std::vector<std::uint64_t> ringPendingTaint(procs, 0);
  std::vector<std::uint64_t> ringDropsCovered(procs, 0);
  // Per-ring drop counts already announced to the checker (noteDrops with
  // the ring's taint mask when the counter moves).
  std::vector<std::uint64_t> ringDropsSeen(procs, 0);
  // Per-group round results, read by the root after the barrier: gap-
  // marked units pushed, and whether the group made any progress.
  std::vector<std::size_t> groupGapsAdded(groups, 0);
  std::vector<std::uint8_t> groupProgress(groups, 0);
  // Gap-marked units sitting in the heaps; while any exist (or a drop has
  // no fed gap-marked successor yet) violation verdicts are suppressed on
  // the shards their taint touches.
  std::size_t gapsInFlight = 0;
  std::uint64_t idleRounds = 0;

  // Leaf merge: drain every ring of group g into its heap.  Consecutive
  // rounds may run a group's task on different pool threads; the pool's
  // submit/wait synchronization orders round r's pops before round r+1's,
  // so each SPSC ring still has one consumer at a time.
  const auto drainGroup = [&](std::size_t g) {
    for (std::size_t p = g; p < procs; p += groups) {
      EventRing& ring = capture_.ring(p);
      MonitorEvent ev;
      while (ring.tryPop(ev)) {
        groupProgress[g] = 1;
        if (ev.kind == EventKind::kGapMarker) {
          // Standalone meta-unit: never fed, only remembered.  Markers are
          // pushed between real units, so the assembly must be empty.
          // The marker's ticket field carries the ring's cumulative taint
          // mask at push time (instrumented_runtime.cpp).
          JUNGLE_CHECK(assembly[p].empty());
          ringGapPending[p] = 1;
          ringPendingCover[p] = ev.value;
          ringPendingTaint[p] = ev.ticket;
          continue;
        }
        assembly[p].push_back(ev);
        if (endsUnit(ev.kind)) {
          StreamUnit u;
          u.kind = unitKindFor(ev.kind);
          u.pid = static_cast<ProcessId>(p);
          // Merge key: the START ticket (first event), not the closing
          // one.  The closing ticket is claimed after the TM's internal
          // commit point and can be arbitrarily late (preemption), whereas
          // the start ticket is claimed before the unit's writes can be
          // visible to anyone — so start order never feeds a reader ahead
          // of the writer it read from.
          u.epoch = assembly[p].front().ticket;
          if (ringGapPending[p]) {
            ringGapPending[p] = 0;
            u.gapBefore = true;
            u.dropsCovered = ringPendingCover[p];
            u.taintMask = ringPendingTaint[p];
            ++groupGapsAdded[g];
          }
          u.events = std::move(assembly[p]);
          assembly[p].clear();
          pending[g].push_back(std::move(u));
          std::push_heap(pending[g].begin(), pending[g].end(), EpochAfter{});
        }
      }
    }
  };

  // Root merge step: emit the globally smallest pending unit.  Each
  // group's heap front is its minimum; the cross-group minimum is the
  // global one, so emission preserves ascending start-ticket order.
  const auto minGroup = [&]() -> std::size_t {
    std::size_t best = groups;
    for (std::size_t g = 0; g < groups; ++g) {
      if (pending[g].empty()) continue;
      if (best == groups ||
          pending[g].front().epoch < pending[best].front().epoch) {
        best = g;
      }
    }
    return best;  // == groups when every heap is empty
  };
  const auto emitFrom = [&](std::size_t g) {
    std::pop_heap(pending[g].begin(), pending[g].end(), EpochAfter{});
    StreamUnit u = std::move(pending[g].back());
    pending[g].pop_back();
    if (u.gapBefore) {
      --gapsInFlight;
      ringDropsCovered[u.pid] = u.dropsCovered;
    }
    ++stats_.unitsMerged;
    checker_.feed(std::move(u));
  };

  // Taint union of every drop that has no fed gap-marked successor yet —
  // either its marker is still in flight (heap or ring side), or the ring
  // went quiet right after the drop and it never gets one.  Shards whose
  // variables this union misses may keep convicting (per-variable taint);
  // reading the drop counter (acquire) before the mask keeps the mask a
  // superset of the counted drops' footprints.
  const auto suspectTaint = [&]() -> std::uint64_t {
    std::uint64_t taint = 0;
    for (const std::vector<StreamUnit>& heap : pending) {
      for (const StreamUnit& u : heap) {
        if (u.gapBefore) taint |= u.taintMask;
      }
    }
    for (std::size_t p = 0; p < procs; ++p) {
      if (ringGapPending[p]) taint |= ringPendingTaint[p];
      const EventRing& r = capture_.ring(p);
      if (r.droppedUnits() != ringDropsCovered[p]) taint |= r.taintMask();
    }
    return taint;
  };

  while (true) {
    // Protocol order matters (event_ring.hpp): counter snapshot, then the
    // announcements, then the drain — any unit invisible to this round's
    // drain has an epoch >= this frontier.
    std::uint64_t frontier = capture_.ticketWatermark();
    for (std::size_t p = 0; p < procs; ++p) {
      const std::uint64_t a = capture_.ring(p).flushEpoch();
      if (a != kNoEpoch && a < frontier) frontier = a;
    }
    // Fork the leaf merges, barrier, then fold the per-group results.
    if (pool) {
      for (std::size_t g = 0; g < groups; ++g) {
        pool->submit([&drainGroup, g] { drainGroup(g); });
      }
      pool->wait();
    } else {
      drainGroup(0);
    }
    bool progress = false;
    std::size_t pendingTotal = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      if (groupProgress[g]) progress = true;
      groupProgress[g] = 0;
      gapsInFlight += groupGapsAdded[g];
      groupGapsAdded[g] = 0;
      pendingTotal += pending[g].size();
    }
    stats_.peakPendingUnits = std::max(stats_.peakPendingUnits, pendingTotal);
    for (std::size_t p = 0; p < procs; ++p) {
      const EventRing& r = capture_.ring(p);
      const std::uint64_t drops = r.droppedUnits();  // acquire, before mask
      if (drops != ringDropsSeen[p]) {
        ringDropsSeen[p] = drops;
        checker_.noteDrops(r.taintMask());
        progress = true;
      }
    }
    // Direct per-shard state writes are safe here: the shards are only
    // active inside pump(), which has not started this round.
    checker_.setDropSuspect(suspectTaint());
    for (std::size_t g = minGroup();
         g != groups && pending[g].front().epoch < frontier; g = minGroup()) {
      emitFrom(g);
      progress = true;
    }
    // Run this round's routed work (one task per touched shard; barrier).
    checker_.pump();
    if (progress) {
      idleRounds = 0;
      continue;
    }
    if (stopRequested_.load(std::memory_order_acquire)) break;
    ++idleRounds;
    // A confirmed conviction is only published at a quiescent instant:
    // merge heaps empty, every assembly empty, no gap uncovered, no flush
    // announcement active, and — re-checked *after* the announcement
    // reads, so a push racing the drain is caught either by its still-set
    // announcement or by the ring no longer being empty — every ring still
    // empty with all drops covered.  At such an instant every write any
    // fed read could have observed belongs to a unit that was fed or
    // gap-covered; in particular no in-flight unit can still be doomed to
    // drop (the hole counter-based gating cannot see, stream_checker.hpp).
    if (checker_.hasPendingConviction()) {
      const auto quiescent = [&] {
        if (gapsInFlight > 0) return false;
        for (const std::vector<StreamUnit>& heap : pending) {
          if (!heap.empty()) return false;
        }
        for (std::size_t p = 0; p < procs; ++p) {
          if (!assembly[p].empty() || ringGapPending[p]) return false;
        }
        for (std::size_t p = 0; p < procs; ++p) {
          if (capture_.ring(p).flushEpoch() != kNoEpoch) return false;
        }
        for (std::size_t p = 0; p < procs; ++p) {
          const EventRing& r = capture_.ring(p);
          if (!r.empty()) return false;
          if (r.droppedUnits() != ringDropsCovered[p]) return false;
        }
        return true;
      };
      if (quiescent()) checker_.onQuiescent();
    }
    // A long-idle stream with an escalation pending will not get more
    // units soon: let the checker decide on what it has.  The spacing
    // (once after ~20 polls, then every ~200) keeps the confirmation run
    // well separated in time from the first.
    if (idleRounds == 20 || (idleRounds > 20 && (idleRounds - 20) % 200 == 0)) {
      checker_.onIdle();
    }
    std::this_thread::sleep_for(opts_.pollInterval);
  }

  // Producers are quiescent: no announcement is in flight and the counter
  // is final, so everything parsed can be emitted in epoch order.
  for (std::size_t g = minGroup(); g != groups; g = minGroup()) emitFrom(g);
  for (std::size_t p = 0; p < procs; ++p) JUNGLE_CHECK(assembly[p].empty());
  checker_.pump();
  // Trailing drops with no successor unit stay unresolved forever: the
  // final escalation must not convict a window on a shard that may be
  // missing them (untainted shards still publish).
  checker_.setDropSuspect(suspectTaint());
  checker_.finish();
}

void TmMonitor::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopRequested_.store(true, std::memory_order_release);
  if (collector_.joinable()) collector_.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - startedAt_);
  stats_.eventsCaptured = capture_.totalPushed();
  stats_.eventsDropped = capture_.totalDropped();
  stats_.unitsDropped = capture_.totalDroppedUnits();
  stats_.retriesDiscarded = capture_.retriesDiscarded();
  stats_.monitoredFor = elapsed;
  stats_.eventsPerSec =
      elapsed.count() > 0
          ? static_cast<double>(stats_.eventsCaptured) * 1e6 /
                static_cast<double>(elapsed.count())
          : 0.0;
  stats_.stream = checker_.stats();
  stats_.shards = checker_.shardStats();
  stats_.joiner = checker_.joinerStats();
  violations_ = checker_.violations();
  persistViolations();
}

void TmMonitor::persistViolations() {
  if (opts_.snapshotDir.empty() || violations_.empty()) return;
  std::filesystem::create_directories(opts_.snapshotDir);
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    MonitorViolation& v = violations_[i];
    const std::string path = opts_.snapshotDir + "/monitor-" +
                             std::string(tmName_) + "-v" + std::to_string(i) +
                             ".hist";
    std::ofstream out(path);
    out << "# monitor violation snapshot (delta-shrunk window; replay with "
           "check_history)\n";
    out << "# tm=" << tmName_ << " model=" << model_->name() << "\n";
    std::istringstream desc(v.description);
    for (std::string line; std::getline(desc, line);) {
      out << "# " << line << "\n";
    }
    out << litmus::printHistory(v.shrunk);
    v.file = path;
  }
}

WorkloadResult runMonitoredWorkload(TmRuntime& rt, const WorkloadOptions& w) {
  JUNGLE_CHECK(w.threads >= 1);
  JUNGLE_CHECK(w.numVars >= 1);
  JUNGLE_CHECK(w.txOpsMax >= 1);
  // A pure-tx-only TM (tl2-weak) makes no claim about workloads with
  // non-transactional accesses; running them would produce real — but
  // unclaimed — violations.
  const bool allowNonTx =
      w.allowNonTx && !monitorModelFor(rt.kind()).pureTxOnly;
  std::vector<WorkloadResult> per(w.threads);
  SpinBarrier barrier(static_cast<std::uint32_t>(w.threads));
  std::vector<std::thread> threads;
  threads.reserve(w.threads);
  for (std::size_t t = 0; t < w.threads; ++t) {
    threads.emplace_back([&, t] {
      const ProcessId p = static_cast<ProcessId>(t);
      Rng rng(w.seed + 0x9e3779b97f4a7c15ULL * (t + 1));
      barrier.arriveAndWait();
      for (std::uint64_t i = 0; i < w.opsPerThread; ++i) {
        if (w.pace.count() > 0) std::this_thread::sleep_for(w.pace);
        if (!allowNonTx || rng.chance(w.txPercent, 100)) {
          // Pre-draw the plan so retried attempts replay identical bodies.
          struct PlannedOp {
            bool write;
            ObjectId x;
            Word v;
          };
          std::vector<PlannedOp> plan(1 + rng.below(w.txOpsMax));
          for (PlannedOp& op : plan) {
            op.write = rng.chance(w.writePercent, 100);
            op.x = static_cast<ObjectId>(rng.below(w.numVars));
            // Full-width payloads: bit 63 forced so every write exercises
            // the range the old packed versioned-write encoding rejected.
            op.v = rng() | (Word{1} << 63);
          }
          const bool doAbort = rng.chance(w.abortPercent, 100);
          const bool ok = rt.transaction(p, [&](TxContext& tx) {
            for (const PlannedOp& op : plan) {
              if (op.write) {
                tx.write(op.x, op.v);
              } else {
                (void)tx.read(op.x);
              }
            }
            if (doAbort) tx.abort();
          });
          if (ok) {
            ++per[t].commits;
          } else {
            ++per[t].userAborts;
          }
        } else {
          ++per[t].ntOps;
          const ObjectId x = static_cast<ObjectId>(rng.below(w.numVars));
          if (rng.chance(w.writePercent, 100)) {
            rt.ntWrite(p, x, rng() | (Word{1} << 63));
          } else {
            (void)rt.ntRead(p, x);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  WorkloadResult total;
  for (const WorkloadResult& r : per) {
    total.commits += r.commits;
    total.userAborts += r.userAborts;
    total.ntOps += r.ntOps;
  }
  return total;
}

}  // namespace jungle::monitor
