#include "opacity/popacity.hpp"

#include "common/check.hpp"
#include "memmodel/models.hpp"

namespace jungle {

CheckResult checkParametrizedOpacity(const History& h, const MemoryModel& m,
                                     const SpecMap& specs,
                                     const SearchLimits& limits) {
  CheckResult result;

  const History ht = m.transform(h);
  HistoryAnalysis analysis(ht);
  JUNGLE_CHECK_MSG(analysis.wellFormed(),
                   "parametrized opacity is defined on well-formed histories");

  UnitGraph base(ht, analysis);
  base.addViewEdges(requiredViewPairs(m, ht, analysis));
  if (base.hasCycle()) return result;  // ≺h ∪ v already contradictory

  bool sawBudgetExhaustion = false;
  std::size_t bestDepth = 0;
  std::string bestExplanation = "no serialization order is consistent with "
                                "the real-time and view constraints";
  const bool found = forEachTxOrder(base, [&](const std::vector<std::size_t>&
                                                  txOrder) {
    UnitGraph g = base.withTxChain(txOrder);
    if (g.hasCycle()) return false;
    // The minimal view is identical for every process (see
    // requiredViewPairs), so one per-order search answers the
    // for-all-processes quantifier.
    SearchOutcome out = findLegalOrder(g, specs, limits);
    sawBudgetExhaustion |= out.exhaustedBudget;
    if (!out.found) {
      if (out.bestPrefix.size() + 1 > bestDepth) {
        bestDepth = out.bestPrefix.size() + 1;
        std::string e = "deepest dead end scheduled " +
                        std::to_string(out.bestPrefix.size()) + "/" +
                        std::to_string(g.unitCount()) + " units; blocked:";
        for (const std::string& b : out.blockers) {
          e += "\n  - " + b;
        }
        bestExplanation = std::move(e);
      }
      return false;
    }
    result.witness = sequentialHistoryFromOrder(g, out.order);
    return true;
  });

  result.satisfied = found;
  result.inconclusive = !found && sawBudgetExhaustion;
  if (!found) result.explanation = std::move(bestExplanation);
  return result;
}

CheckResult checkOpacity(const History& h, const SpecMap& specs,
                         const SearchLimits& limits) {
  return checkParametrizedOpacity(h, scModel(), specs, limits);
}

CheckResult checkStrictSerializability(const History& h, const SpecMap& specs,
                                       const SearchLimits& limits) {
  HistoryAnalysis analysis(h);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");

  std::vector<std::size_t> keep;
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    auto tx = analysis.transactionOf(pos);
    if (!tx.has_value() || analysis.transactions()[*tx].committed) {
      keep.push_back(pos);
    }
  }
  return checkOpacity(h.subsequence(keep), specs, limits);
}

}  // namespace jungle
