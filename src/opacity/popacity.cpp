#include "opacity/popacity.hpp"

#include "common/check.hpp"
#include "opacity/engine.hpp"

namespace jungle {

CheckResult checkParametrizedOpacity(const History& h, const MemoryModel& m,
                                     const SpecMap& specs,
                                     const SearchLimits& limits) {
  return DecisionEngine(ConditionPolicy::parametrizedOpacity(m), specs, limits)
      .check(h);
}

CheckResult checkOpacity(const History& h, const SpecMap& specs,
                         const SearchLimits& limits) {
  return DecisionEngine(ConditionPolicy::opacity(), specs, limits).check(h);
}

CheckResult checkStrictSerializability(const History& h, const SpecMap& specs,
                                       const SearchLimits& limits) {
  return DecisionEngine(ConditionPolicy::strictSerializability(), specs,
                        limits)
      .check(h);
}

CheckResult checkSnapshotIsolation(const History& h, const SpecMap& specs,
                                   const SearchLimits& limits,
                                   bool requireFcw) {
  return DecisionEngine(ConditionPolicy::snapshotIsolation(requireFcw), specs,
                        limits)
      .check(h);
}

const char* conditionKindName(ConditionKind kind) {
  switch (kind) {
    case ConditionKind::kParametrizedOpacity:
      return "popacity";
    case ConditionKind::kOpacity:
      return "opacity";
    case ConditionKind::kStrictSerializability:
      return "strict-ser";
    case ConditionKind::kSnapshotIsolation:
      return "si";
  }
  return "?";
}

CheckResult checkCondition(ConditionKind kind, const History& h,
                           const MemoryModel& m, const SpecMap& specs,
                           const SearchLimits& limits, bool requireFcw) {
  switch (kind) {
    case ConditionKind::kParametrizedOpacity:
      return checkParametrizedOpacity(h, m, specs, limits);
    case ConditionKind::kOpacity:
      return checkOpacity(h, specs, limits);
    case ConditionKind::kStrictSerializability:
      return checkStrictSerializability(h, specs, limits);
    case ConditionKind::kSnapshotIsolation:
      return checkSnapshotIsolation(h, specs, limits, requireFcw);
  }
  JUNGLE_CHECK_MSG(false, "unknown condition kind");
  return {};
}

}  // namespace jungle
