#include "opacity/popacity.hpp"

#include "opacity/engine.hpp"

namespace jungle {

CheckResult checkParametrizedOpacity(const History& h, const MemoryModel& m,
                                     const SpecMap& specs,
                                     const SearchLimits& limits) {
  return DecisionEngine(ConditionPolicy::parametrizedOpacity(m), specs, limits)
      .check(h);
}

CheckResult checkOpacity(const History& h, const SpecMap& specs,
                         const SearchLimits& limits) {
  return DecisionEngine(ConditionPolicy::opacity(), specs, limits).check(h);
}

CheckResult checkStrictSerializability(const History& h, const SpecMap& specs,
                                       const SearchLimits& limits) {
  return DecisionEngine(ConditionPolicy::strictSerializability(), specs,
                        limits)
      .check(h);
}

}  // namespace jungle
