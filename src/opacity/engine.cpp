#include "opacity/engine.hpp"

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitset64.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "memmodel/models.hpp"
#include "opacity/snapshot.hpp"

namespace jungle {

ConditionPolicy ConditionPolicy::parametrizedOpacity(const MemoryModel& m) {
  ConditionPolicy p;
  p.name = "parametrized opacity";
  p.model = &m;
  return p;
}

ConditionPolicy ConditionPolicy::opacity() {
  ConditionPolicy p;
  p.name = "opacity";
  p.model = &scModel();
  return p;
}

ConditionPolicy ConditionPolicy::strictSerializability() {
  ConditionPolicy p;
  p.name = "strict serializability";
  p.model = &scModel();
  p.eraseNonCommitted = true;
  return p;
}

ConditionPolicy ConditionPolicy::sgla(const MemoryModel& m,
                                      bool enforceTxRealTime) {
  ConditionPolicy p;
  p.name = "SGLA";
  p.model = &m;
  p.txOnlySequential = true;
  p.enforceTxRealTime = enforceTxRealTime;
  return p;
}

ConditionPolicy ConditionPolicy::snapshotIsolation(bool requireFcw) {
  ConditionPolicy p;
  p.name = "snapshot isolation";
  p.model = &scModel();
  p.eraseNonCommitted = true;
  p.snapshotSplit = true;
  p.requireFcw = requireFcw;
  return p;
}

namespace {

constexpr std::uint64_t kSuffixSeed = 0x2545f4914f6cdd1dULL;
constexpr std::uint64_t kBudgetChunk = 1024;
constexpr std::uint64_t kDeadlineMask = 1023;

/// Hash of each suffix of a serialization order: suffixes[k] identifies
/// order[k..].  Mixed into memo keys so failed configurations transfer
/// between orders that agree on the not-yet-scheduled tail.
std::vector<std::uint64_t> suffixHashes(const std::vector<std::size_t>& order) {
  std::vector<std::uint64_t> suf(order.size() + 1);
  suf[order.size()] = kSuffixSeed;
  for (std::size_t k = order.size(); k-- > 0;) {
    std::uint64_t s = suf[k + 1];
    hashCombine(s, order[k]);
    suf[k] = s;
  }
  return suf;
}

// ------------------------------------------------ ≪-enumeration portfolio

/// The precedence constraints the ≪-enumeration must respect, over dense
/// transaction indices 0..n-1.
struct TxPrecedence {
  std::size_t n = 0;
  std::vector<bool> before;  // row-major: before[i*n+j] ⇔ i must precede j

  bool mustPrecede(std::size_t i, std::size_t j) const {
    return before[i * n + j];
  }

  bool ready(std::size_t i, const std::vector<bool>& used) const {
    for (std::size_t j = 0; j < n; ++j) {
      if (!used[j] && j != i && mustPrecede(j, i)) return false;
    }
    return true;
  }
};

/// Enumerates, in lexicographic index order, every completion of `order`
/// to a full linear extension, invoking fn(order) for each.  Checks the
/// stop flag between orders so a found witness halts the enumeration.
template <class Fn>
void forEachCompletion(const TxPrecedence& p, std::vector<std::size_t>& order,
                       std::vector<bool>& used, SearchContext& ctx,
                       const Fn& fn) {
  if (ctx.stop().stopRequested()) return;
  if (order.size() == p.n) {
    // The per-searcher expansion counter may never reach the in-search poll
    // interval on instances with many cheap orders, so the deadline is also
    // polled here, once per serialization order.
    if (ctx.deadline().expired()) {
      ctx.noteDeadlineExpired();
      return;
    }
    fn(order);
    return;
  }
  for (std::size_t i = 0; i < p.n; ++i) {
    if (used[i] || !p.ready(i, used)) continue;
    used[i] = true;
    order.push_back(i);
    forEachCompletion(p, order, used, ctx, fn);
    order.pop_back();
    used[i] = false;
  }
}

/// Expands the enumeration tree breadth-first (in lexicographic order)
/// until at least `target` top-level branches exist — the work items the
/// portfolio distributes over its workers.
std::vector<std::vector<std::size_t>> topLevelBranches(const TxPrecedence& p,
                                                       std::size_t target) {
  std::vector<std::vector<std::size_t>> prefixes{{}};
  bool grew = true;
  while (grew && prefixes.size() < target) {
    grew = false;
    std::vector<std::vector<std::size_t>> next;
    for (const auto& pre : prefixes) {
      if (pre.size() == p.n) {
        next.push_back(pre);
        continue;
      }
      std::vector<bool> used(p.n, false);
      for (std::size_t i : pre) used[i] = true;
      for (std::size_t i = 0; i < p.n; ++i) {
        if (used[i] || !p.ready(i, used)) continue;
        auto ext = pre;
        ext.push_back(i);
        next.push_back(std::move(ext));
        grew = true;
      }
    }
    prefixes = std::move(next);
  }
  return prefixes;
}

/// Drives fn over every linear extension of `p`.  With one thread this is
/// the exact sequential enumeration; with more, top-level branches are
/// distributed over a worker pool in submission (= lexicographic) order.
template <class Fn>
void runPortfolio(const TxPrecedence& p, SearchContext& ctx, unsigned threads,
                  const Fn& fn) {
  const std::size_t target =
      threads <= 1 ? 1 : static_cast<std::size_t>(threads) * 8;
  auto branches = topLevelBranches(p, target);
  if (threads > 1 && branches.size() > 1) {
    // First-move diversity: interleave the branch queue round-robin over the
    // top-level choice, so workers claim one branch from each first-move
    // subtree before returning to any of them.  An adversarial lexicographic
    // ordering (every early order barren, the witness behind a later first
    // move) can then pin at most one worker per barren cone; the first
    // witness raises the stop flag and cancels the rest.  Sequential runs
    // (threads <= 1) never reorder, keeping them bit-identical to the
    // pre-portfolio enumeration.
    std::vector<std::vector<std::vector<std::size_t>>> groups(p.n);
    std::size_t rounds = 0;
    for (auto& b : branches) {
      auto& g = groups[b.front()];
      g.push_back(std::move(b));
      rounds = g.size() > rounds ? g.size() : rounds;
    }
    branches.clear();
    for (std::size_t off = 0; off < rounds; ++off) {
      for (auto& g : groups) {
        if (off < g.size()) branches.push_back(std::move(g[off]));
      }
    }
  }
  auto runBranch = [&](const std::vector<std::size_t>& prefix) {
    std::vector<bool> used(p.n, false);
    std::vector<std::size_t> order;
    order.reserve(p.n);
    for (std::size_t i : prefix) {
      used[i] = true;
      order.push_back(i);
    }
    forEachCompletion(p, order, used, ctx, fn);
  };
  if (threads <= 1) {
    for (const auto& b : branches) {
      if (ctx.stop().stopRequested()) break;
      runBranch(b);
    }
    return;
  }
  ThreadPool pool(threads);
  for (const auto& b : branches) {
    pool.submit([&runBranch, &ctx, b] {
      if (!ctx.stop().stopRequested()) runBranch(b);
    });
  }
  pool.wait();
}

/// Witness / explanation accumulator shared by the portfolio's workers.
struct PortfolioState {
  std::mutex mu;
  bool found = false;
  std::optional<History> witness;
  std::size_t bestDepth = 0;
  std::string bestText;
};

void mergeExplanation(PortfolioState& ps, const SearchOutcome& out,
                      const char* noun, std::size_t total) {
  // A search aborted by the stop flag before reaching any dead end has
  // nothing to report (a failed one always records ≥ 1 blocker).
  if (out.blockers.empty()) return;
  const std::size_t depth = out.bestPrefix.size() + 1;
  std::lock_guard<std::mutex> lock(ps.mu);
  if (depth <= ps.bestDepth) return;
  ps.bestDepth = depth;
  std::string e = "deepest dead end scheduled " +
                  std::to_string(out.bestPrefix.size()) + "/" +
                  std::to_string(total) + " " + noun + "; blocked:";
  for (const std::string& b : out.blockers) e += "\n  - " + b;
  ps.bestText = std::move(e);
}

void finishResult(PortfolioState& ps, SearchContext& ctx, CheckResult& result,
                  const char* defaultExplanation) {
  result.satisfied = ps.found;
  result.inconclusive = !ps.found && ctx.resourceStop();
  if (ps.found) {
    result.witness = std::move(ps.witness);
  } else {
    result.explanation =
        ps.bestDepth > 0 ? std::move(ps.bestText) : defaultExplanation;
  }
}

// ------------------------------------------------------- SGLA inner search

using PosSet = BitsetN<2>;

/// Per-check immutable inputs of the SGLA search, computed once and shared
/// by every serialization order and worker: the constraint edges (memory
/// model inside critical sections, roach-motel lock edges), the objects
/// each transaction touches, and its instance count.
struct SglaStatics {
  std::vector<PosSet> preds;
  std::vector<std::vector<ObjectId>> touched;
  std::vector<std::size_t> opCount;

  SglaStatics(const History& h, const HistoryAnalysis& analysis,
              const MemoryModel& m) {
    const std::size_t n = h.size();
    JUNGLE_CHECK_MSG(n <= PosSet::kCapacity,
                     "history too large for the SGLA decision procedure");
    preds.assign(n, PosSet{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (h[i].pid != h[j].pid) continue;
        const bool iSpecial = !h[i].isCommand();
        const bool jSpecial = !h[j].isCommand();
        bool edge = false;
        if (iSpecial && jSpecial) {
          edge = true;  // lock operations stay in program order
        } else if (h[i].isStart()) {
          edge = true;  // acquire: nothing moves before the start
        } else if (h[j].isCommit() || h[j].isAbort()) {
          edge = true;  // release: nothing moves past the commit/abort
        } else if (!iSpecial && !jSpecial) {
          edge = m.requiresOrder(h, i, j);
        }
        if (edge) preds[j].set(i);
      }
    }

    const auto& txns = analysis.transactions();
    touched.resize(txns.size());
    opCount.resize(txns.size());
    for (std::size_t t = 0; t < txns.size(); ++t) {
      opCount[t] = txns[t].positions.size();
      std::unordered_map<ObjectId, bool> seen;
      for (std::size_t pos : txns[t].positions) {
        const OpInstance& inst = h[pos];
        if (inst.isCommand() && !seen.count(inst.obj)) {
          seen.emplace(inst.obj, true);
          touched[t].push_back(inst.obj);
        }
      }
    }
  }
};

/// Op-granularity search for a transactionally sequential, everywhere-legal
/// permutation respecting the extended view and one transaction order ≪.
class SglaSearcher {
 public:
  SglaSearcher(const History& h, const HistoryAnalysis& analysis,
               const SglaStatics& st, const SpecMap& specs,
               const std::vector<std::size_t>& txOrder,
               const std::vector<std::uint64_t>& suffixes, SearchContext& ctx)
      : h_(h),
        analysis_(analysis),
        st_(st),
        txOrder_(txOrder),
        suffixes_(suffixes),
        ctx_(ctx),
        base_(specs),
        remaining_(st.opCount) {}

  SearchOutcome run() {
    SearchOutcome out;
    out.found = dfs() == Dfs::kFound;
    out.exhaustedBudget = ctx_.resourceStop();
    if (out.found) {
      out.order = order_;
    } else {
      out.bestPrefix = bestPrefix_;
      out.blockers = bestBlockers_;
    }
    ctx_.addExpansions(expansions_);
    ctx_.addMemoCounts(memoHits_, memoMisses_);
    ctx_.noteDepth(maxDepth_);
    ctx_.returnExpansions(grant_);
    return out;
  }

 private:
  enum class Dfs { kFound, kFail, kAborted };

  struct Undo {
    StateTable::Snapshot baseSnap;
    std::vector<std::pair<ObjectId, std::unique_ptr<SpecState>>> overlaySnap;
    std::unordered_map<ObjectId, std::unique_ptr<SpecState>> overlaySaved;
    int prevOpen = -1;
    std::size_t prevNextTx = 0;
    /// The op completed a live (never-committing) transaction, closing its
    /// critical section with abort semantics (its effects become invisible
    /// once anything follows — visible()'s rule for non-committed
    /// transactions).
    bool autoClosed = false;
  };

  bool chargeExpansion() {
    if (grant_ == 0) {
      grant_ = ctx_.claimExpansions(kBudgetChunk);
      if (grant_ == 0) return false;
    }
    --grant_;
    ++expansions_;
    if ((expansions_ & kDeadlineMask) == 0 && ctx_.deadline().expired()) {
      ctx_.noteDeadlineExpired();
      return false;
    }
    return true;
  }

  std::uint64_t overlayDigest() const {
    std::uint64_t d = 0x6a09e667f3bcc909ULL;
    for (const auto& [obj, st] : overlay_) {
      std::uint64_t c = st->digest();
      hashCombine(c, obj + 0x85ebca6bULL);
      d ^= c;
    }
    return d;
  }

  Dfs dfs() {
    if (order_.size() > maxDepth_) maxDepth_ = order_.size();
    if (order_.size() == h_.size()) return Dfs::kFound;
    if (ctx_.stop().stopRequested()) return Dfs::kAborted;
    if (!chargeExpansion()) return Dfs::kAborted;

    const bool useMemo = ctx_.limits().useMemo;
    ShardedMemoTable::Key key{};
    if (useMemo) {
      const std::uint64_t stateDigest =
          base_.digest() ^ overlayDigest() ^
          (static_cast<std::uint64_t>(open_ + 2) * 0xff51afd7ed558ccdULL);
      key = {{scheduled_.word(0), scheduled_.word(1)},
             stateDigest,
             suffixes_[nextTx_]};
      if (ctx_.memo().containsFailed(key)) {
        ++memoHits_;
        return Dfs::kFail;
      }
      ++memoMisses_;
    }

    bool progressed = false;
    bool aborted = false;
    for (std::size_t pos = 0; pos < h_.size(); ++pos) {
      if (scheduled_.test(pos)) continue;
      if (!scheduled_.contains(st_.preds[pos])) continue;
      if (!structurallyReady(pos)) continue;
      Undo undo;
      if (!apply(pos, undo)) continue;
      progressed = true;
      scheduled_.set(pos);
      order_.push_back(pos);
      const Dfs r = dfs();
      if (r == Dfs::kFound) return r;
      order_.pop_back();
      scheduled_.reset(pos);
      revert(pos, std::move(undo));
      if (r == Dfs::kAborted) {
        aborted = true;
        break;
      }
    }
    if (!progressed && order_.size() >= bestPrefix_.size()) {
      recordDeadEnd();
    }
    if (aborted) return Dfs::kAborted;

    if (useMemo) ctx_.memo().insertFailed(key);
    return Dfs::kFail;
  }

  /// Captures why this dead-end configuration cannot extend — SGLA's share
  /// of CheckResult::explanation.
  void recordDeadEnd() {
    bestPrefix_ = order_;
    bestBlockers_.clear();
    for (std::size_t pos = 0; pos < h_.size(); ++pos) {
      if (scheduled_.test(pos)) continue;
      std::string why;
      if (!scheduled_.contains(st_.preds[pos])) {
        why = "waits for its program-order and lock predecessors";
      } else if (!structurallyReady(pos)) {
        why = h_[pos].isStart()
                  ? "its transaction is not next in the order ≪ (or another "
                    "critical section is open)"
                  : "its transaction's critical section is not open";
      } else {
        Undo undo;
        if (apply(pos, undo)) {
          revert(pos, std::move(undo));
          why = "unexpectedly schedulable";  // defensive
        } else {
          why = "operation " + h_[pos].toString() +
                " is illegal in the current state";
        }
      }
      bestBlockers_.push_back("instance " + std::to_string(h_[pos].id) + ": " +
                              why);
    }
  }

  bool structurallyReady(std::size_t pos) const {
    auto tx = analysis_.transactionOf(pos);
    if (!tx.has_value()) return true;  // non-transactional: anywhere
    if (h_[pos].isStart()) {
      return open_ < 0 && nextTx_ < txOrder_.size() &&
             txOrder_[nextTx_] == *tx;
    }
    return open_ >= 0 && static_cast<std::size_t>(open_) == *tx;
  }

  bool apply(std::size_t pos, Undo& undo) {
    const OpInstance& inst = h_[pos];
    auto tx = analysis_.transactionOf(pos);
    undo.prevOpen = open_;
    undo.prevNextTx = nextTx_;

    if (inst.isStart()) {
      // Open the critical section with a snapshot of its touched objects.
      open_ = static_cast<int>(*tx);
      ++nextTx_;
      JUNGLE_DCHECK(overlay_.empty());
      for (ObjectId obj : st_.touched[*tx]) {
        overlay_.emplace(obj, base_.cloneState(obj));
      }
      --remaining_[*tx];
      maybeAutoClose(*tx, undo);
      return true;
    }
    if (inst.isCommit()) {
      // Merge: the visible prefix at the commit is base ∪ overlay, already
      // validated op by op; publish the overlay into the base.
      undo.baseSnap = base_.snapshot(st_.touched[*tx]);
      for (auto& [obj, st] : overlay_) {
        base_.setState(obj, st->clone());
      }
      undo.overlaySaved = std::move(overlay_);
      overlay_.clear();
      open_ = -1;
      --remaining_[*tx];
      return true;
    }
    if (inst.isAbort()) {
      undo.overlaySaved = std::move(overlay_);
      overlay_.clear();
      open_ = -1;
      --remaining_[*tx];
      return true;
    }

    // Command instance.
    if (tx.has_value()) {
      auto it = overlay_.find(inst.obj);
      JUNGLE_DCHECK(it != overlay_.end());
      undo.overlaySnap.emplace_back(inst.obj, it->second->clone());
      if (!it->second->apply(inst.cmd)) {
        revertOverlay(undo);
        return false;
      }
      --remaining_[*tx];
      maybeAutoClose(*tx, undo);
      return true;
    }

    // Non-transactional command: legal in its own prefix (base, where an
    // open transaction is invisible) and, if the open transaction touches
    // the object, also inside the critical-section interleaving (overlay).
    undo.baseSnap = base_.snapshot({inst.obj});
    if (!base_.apply(inst.obj, inst.cmd)) {
      base_.restore(std::move(undo.baseSnap));
      undo.baseSnap.clear();
      return false;
    }
    if (open_ >= 0) {
      auto it = overlay_.find(inst.obj);
      if (it != overlay_.end()) {
        undo.overlaySnap.emplace_back(inst.obj, it->second->clone());
        if (!it->second->apply(inst.cmd)) {
          revertOverlay(undo);
          base_.restore(std::move(undo.baseSnap));
          undo.baseSnap.clear();
          return false;
        }
      }
    }
    return true;
  }

  void revertOverlay(Undo& undo) {
    for (auto& [obj, st] : undo.overlaySnap) {
      overlay_[obj] = std::move(st);
    }
    undo.overlaySnap.clear();
  }

  /// Closes the critical section of a live transaction whose instances are
  /// all scheduled: nothing will commit it, so once anything follows, its
  /// effects are invisible (abort semantics).  Keeping it "open" would
  /// wrongly block other transactions from ever being scheduled.
  void maybeAutoClose(std::size_t tx, Undo& undo) {
    if (remaining_[tx] != 0 || analysis_.transactions()[tx].completed()) {
      return;
    }
    undo.autoClosed = true;
    undo.overlaySaved = std::move(overlay_);
    overlay_.clear();
    open_ = -1;
  }

  void revert(std::size_t pos, Undo undo) {
    const OpInstance& inst = h_[pos];
    auto tx = analysis_.transactionOf(pos);
    if (tx.has_value()) ++remaining_[*tx];
    if (undo.autoClosed) {
      overlay_ = std::move(undo.overlaySaved);
    }
    if (inst.isStart()) {
      overlay_.clear();
    } else if (inst.isCommit()) {
      base_.restore(std::move(undo.baseSnap));
      overlay_ = std::move(undo.overlaySaved);
    } else if (inst.isAbort()) {
      overlay_ = std::move(undo.overlaySaved);
    } else {
      revertOverlay(undo);
      if (!undo.baseSnap.empty()) base_.restore(std::move(undo.baseSnap));
    }
    open_ = undo.prevOpen;
    nextTx_ = undo.prevNextTx;
  }

  const History& h_;
  const HistoryAnalysis& analysis_;
  const SglaStatics& st_;
  const std::vector<std::size_t>& txOrder_;
  const std::vector<std::uint64_t>& suffixes_;
  SearchContext& ctx_;
  StateTable base_;
  std::unordered_map<ObjectId, std::unique_ptr<SpecState>> overlay_;
  std::vector<std::size_t> remaining_;
  PosSet scheduled_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> bestPrefix_;
  std::vector<std::string> bestBlockers_;
  int open_ = -1;
  std::size_t nextTx_ = 0;
  std::uint64_t expansions_ = 0;
  std::uint64_t memoHits_ = 0;
  std::uint64_t memoMisses_ = 0;
  std::uint64_t maxDepth_ = 0;
  std::uint64_t grant_ = 0;
};

/// Strict serializability's erasure: drop aborted and incomplete
/// transactions before checking.
History eraseNonCommitted(const History& h) {
  HistoryAnalysis analysis(h);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");
  std::vector<std::size_t> keep;
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    auto tx = analysis.transactionOf(pos);
    if (!tx.has_value() || analysis.transactions()[*tx].committed) {
      keep.push_back(pos);
    }
  }
  return h.subsequence(keep);
}

}  // namespace

DecisionEngine::DecisionEngine(const ConditionPolicy& policy,
                               const SpecMap& specs,
                               const SearchLimits& limits)
    : policy_(policy), specs_(&specs), limits_(limits) {
  JUNGLE_CHECK_MSG(policy_.model != nullptr,
                   "a ConditionPolicy needs a memory model");
}

CheckResult DecisionEngine::check(const History& h) const {
  const auto start = std::chrono::steady_clock::now();

  History ht = policy_.eraseNonCommitted ? eraseNonCommitted(h) : h;
  std::vector<std::pair<OpId, OpId>> extraOrder;
  if (policy_.snapshotSplit) {
    if (policy_.requireFcw) {
      if (auto violation = firstCommitterWinsViolation(ht)) {
        CheckResult result;
        result.explanation = std::move(*violation);
        result.stats.elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start);
        return result;
      }
    }
    SnapshotSplit split = snapshotSplitHistory(ht);
    ht = std::move(split.history);
    extraOrder = std::move(split.orderPairs);
  }
  ht = policy_.model->transform(ht);
  HistoryAnalysis analysis(ht);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");

  SearchContext ctx(limits_);
  CheckResult result;
  if (policy_.txOnlySequential) {
    runTxOnly(ht, analysis, ctx, result);
  } else {
    runUnitLevel(ht, analysis, extraOrder, ctx, result);
  }

  result.stats = ctx.stats();
  result.stats.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return result;
}

void DecisionEngine::runUnitLevel(
    const History& ht, const HistoryAnalysis& analysis,
    const std::vector<std::pair<OpId, OpId>>& extraOrder, SearchContext& ctx,
    CheckResult& result) const {
  UnitGraph base(ht, analysis);
  base.addViewEdges(requiredViewPairs(*policy_.model, ht, analysis));
  base.addViewEdges(extraOrder);
  if (base.hasCycle()) {
    // ≺h ∪ v already contradictory: definitely violated, no search needed.
    result.explanation =
        "the real-time and view constraints are already cyclic";
    return;
  }

  const auto& txs = base.txUnits();
  TxPrecedence prec;
  prec.n = txs.size();
  prec.before.assign(prec.n * prec.n, false);
  for (std::size_t i = 0; i < prec.n; ++i) {
    for (std::size_t j = 0; j < prec.n; ++j) {
      if (i != j && base.txMustPrecede(i, j)) prec.before[i * prec.n + j] = true;
    }
  }

  PortfolioState ps;
  runPortfolio(prec, ctx, limits_.threads,
               [&](const std::vector<std::size_t>& idxOrder) {
                 std::vector<std::size_t> orderUnits(idxOrder.size());
                 for (std::size_t k = 0; k < idxOrder.size(); ++k) {
                   orderUnits[k] = txs[idxOrder[k]];
                 }
                 UnitGraph g = base.withTxChain(orderUnits);
                 if (g.hasCycle()) return;
                 ctx.noteBranch();
                 // The minimal view is identical for every process (see
                 // requiredViewPairs), so one per-order search answers the
                 // for-all-processes quantifier.
                 const auto suf = suffixHashes(orderUnits);
                 SearchOutcome out = findLegalOrder(g, *specs_, ctx, &suf);
                 if (out.found) {
                   std::lock_guard<std::mutex> lock(ps.mu);
                   if (!ps.found) {
                     ps.found = true;
                     ps.witness = sequentialHistoryFromOrder(g, out.order);
                   }
                   ctx.stop().requestStop();
                 } else {
                   mergeExplanation(ps, out, "units", g.unitCount());
                 }
               });

  finishResult(ps, ctx, result,
               "no serialization order is consistent with the real-time and "
               "view constraints");
}

void DecisionEngine::runTxOnly(const History& ht,
                               const HistoryAnalysis& analysis,
                               SearchContext& ctx, CheckResult& result) const {
  const SglaStatics statics(ht, analysis, *policy_.model);

  const auto& txns = analysis.transactions();
  TxPrecedence prec;
  prec.n = txns.size();
  prec.before.assign(prec.n * prec.n, false);
  for (std::size_t a = 0; a < prec.n; ++a) {
    for (std::size_t b = 0; b < prec.n; ++b) {
      if (a == b) continue;
      bool before = txns[a].pid == txns[b].pid &&
                    txns[a].firstPos() < txns[b].firstPos();
      if (policy_.enforceTxRealTime && txns[a].completed() &&
          txns[a].lastPos() < txns[b].firstPos()) {
        before = true;
      }
      if (before) prec.before[a * prec.n + b] = true;
    }
  }

  PortfolioState ps;
  runPortfolio(prec, ctx, limits_.threads,
               [&](const std::vector<std::size_t>& txOrder) {
                 ctx.noteBranch();
                 const auto suf = suffixHashes(txOrder);
                 SglaSearcher searcher(ht, analysis, statics, *specs_, txOrder,
                                       suf, ctx);
                 SearchOutcome out = searcher.run();
                 if (out.found) {
                   std::lock_guard<std::mutex> lock(ps.mu);
                   if (!ps.found) {
                     ps.found = true;
                     ps.witness = ht.subsequence(out.order);
                   }
                   ctx.stop().requestStop();
                 } else {
                   mergeExplanation(ps, out, "instances", ht.size());
                 }
               });

  finishResult(ps, ctx, result,
               "no transaction order ≪ admits a transactionally sequential, "
               "everywhere-legal permutation");
}

}  // namespace jungle
