// Legality-directed topological search (the checker's inner engine).
//
// Given a unit graph with all constraints installed (≺h, minimal view,
// serialization chain), decides whether some topological order of units
// yields a sequential history in which every operation is legal (§2's
// prefix-visible legality).  The incremental evaluation exploits
// contiguity: a transaction's commands run against a snapshot of the
// object states; committed transactions merge their snapshot back, aborted
// and incomplete ones discard it — exactly visible()'s semantics for
// sequential histories.
//
// Failed configurations (scheduled-unit set + object-state digest) are
// memoized; a digest collision can at worst suppress a retry of a state we
// believe failed, with probability ~2^-64 per pair (documented in
// DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "opacity/unit_graph.hpp"
#include "spec/spec_map.hpp"

namespace jungle {

struct SearchLimits {
  /// Upper bound on DFS node expansions; 0 = unlimited.
  std::uint64_t maxExpansions = 20'000'000;
  /// Failed-configuration memoization (ablatable; see bench_checker).
  bool useMemo = true;
};

struct SearchOutcome {
  bool found = false;
  /// True if the budget ran out before the space was exhausted; a negative
  /// answer is then inconclusive.
  bool exhaustedBudget = false;
  /// Unit order of the witness, when found.
  std::vector<std::size_t> order;
  /// On failure: the deepest prefix any branch scheduled, and why each
  /// remaining candidate was rejected there (diagnostics for explain()).
  std::vector<std::size_t> bestPrefix;
  std::vector<std::string> blockers;
};

/// Runs the search.  The graph must be acyclic (callers check).
SearchOutcome findLegalOrder(const UnitGraph& g, const SpecMap& specs,
                             const SearchLimits& limits = {});

/// Reconstructs the witness sequential history from a unit order.
History sequentialHistoryFromOrder(const UnitGraph& g,
                                   const std::vector<std::size_t>& order);

}  // namespace jungle
