// Legality-directed topological search (the checker's inner engine).
//
// Given a unit graph with all constraints installed (≺h, minimal view,
// serialization chain), decides whether some topological order of units
// yields a sequential history in which every operation is legal (§2's
// prefix-visible legality).  The incremental evaluation exploits
// contiguity: a transaction's commands run against a snapshot of the
// object states; committed transactions merge their snapshot back, aborted
// and incomplete ones discard it — exactly visible()'s semantics for
// sequential histories.
//
// Failed configurations (scheduled-unit set + object-state digest + chain
// suffix) are memoized in a table shared across every serialization order
// and every worker of one check (see ShardedMemoTable); a digest collision
// can at worst suppress a retry of a state we believe failed, with
// probability ~2^-64 per pair (documented in DESIGN.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/cancellation.hpp"
#include "opacity/state_table.hpp"
#include "opacity/unit_graph.hpp"
#include "spec/spec_map.hpp"

namespace jungle {

struct SearchLimits {
  /// Upper bound on DFS node expansions, shared globally across all
  /// serialization orders and workers of one check; 0 = unlimited.
  std::uint64_t maxExpansions = 20'000'000;
  /// Failed-configuration memoization (ablatable; see bench_checker).
  bool useMemo = true;
  /// Worker threads for the portfolio search over serialization orders.
  /// 1 (the default) runs the branches sequentially on the calling thread,
  /// visiting them in exactly the order the pre-portfolio checkers did.
  unsigned threads = 1;
  /// Wall-clock deadline for the whole check; zero means none.  A negative
  /// verdict reached after the deadline expires is reported inconclusive.
  std::chrono::milliseconds timeout{0};
};

/// Where the search spent its effort; attached to every CheckResult so
/// benches and the check_history CLI can report where time goes.
struct SearchStats {
  std::uint64_t expansions = 0;
  std::uint64_t memoHits = 0;
  std::uint64_t memoMisses = 0;
  /// Deepest scheduled prefix (units or instances) any branch reached.
  std::uint64_t maxDepth = 0;
  /// Serialization orders (≪ candidates) actually searched.
  std::uint64_t branchesExplored = 0;
  std::chrono::microseconds elapsed{0};
  unsigned threadsUsed = 1;
};

/// Shared state of one portfolio search: the failed-configuration memo,
/// the cooperative stop flag, the global expansion budget, the deadline,
/// and the telemetry accumulators.  One instance per check() invocation;
/// referenced by every worker.
class SearchContext {
 public:
  explicit SearchContext(const SearchLimits& limits)
      : limits_(limits),
        deadline_(limits.timeout.count() > 0 ? Deadline::after(limits.timeout)
                                             : Deadline{}),
        budgetRemaining_(limits.maxExpansions) {}

  const SearchLimits& limits() const { return limits_; }
  ShardedMemoTable& memo() { return memo_; }
  StopFlag& stop() { return stop_; }
  const Deadline& deadline() const { return deadline_; }

  /// Claims up to `want` expansions from the global budget; returns the
  /// number granted.  0 means the budget is exhausted — the exhaustion is
  /// recorded and the whole portfolio is asked to stop.
  std::uint64_t claimExpansions(std::uint64_t want) {
    if (limits_.maxExpansions == 0) return want;  // unlimited
    std::uint64_t cur = budgetRemaining_.load(std::memory_order_relaxed);
    while (cur > 0) {
      const std::uint64_t grant = want < cur ? want : cur;
      if (budgetRemaining_.compare_exchange_weak(cur, cur - grant,
                                                 std::memory_order_relaxed)) {
        return grant;
      }
    }
    budgetExhausted_.store(true, std::memory_order_relaxed);
    stop_.requestStop();
    return 0;
  }

  /// Hands back the unused part of a claimed chunk, keeping the global
  /// budget exact for sequential runs.
  void returnExpansions(std::uint64_t n) {
    if (limits_.maxExpansions == 0 || n == 0) return;
    budgetRemaining_.fetch_add(n, std::memory_order_relaxed);
  }

  void noteDeadlineExpired() {
    deadlineExpired_.store(true, std::memory_order_relaxed);
    stop_.requestStop();
  }

  bool budgetExhausted() const {
    return budgetExhausted_.load(std::memory_order_relaxed);
  }
  bool deadlineExpired() const {
    return deadlineExpired_.load(std::memory_order_relaxed);
  }
  /// The search stopped before exhausting the space for a resource reason:
  /// a false negative is inconclusive.
  bool resourceStop() const { return budgetExhausted() || deadlineExpired(); }

  void addExpansions(std::uint64_t n) {
    expansions_.fetch_add(n, std::memory_order_relaxed);
  }
  void addMemoCounts(std::uint64_t hits, std::uint64_t misses) {
    memoHits_.fetch_add(hits, std::memory_order_relaxed);
    memoMisses_.fetch_add(misses, std::memory_order_relaxed);
  }
  void noteDepth(std::uint64_t depth) {
    std::uint64_t cur = maxDepth_.load(std::memory_order_relaxed);
    while (depth > cur && !maxDepth_.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }
  void noteBranch() { branches_.fetch_add(1, std::memory_order_relaxed); }

  SearchStats stats() const {
    SearchStats s;
    s.expansions = expansions_.load(std::memory_order_relaxed);
    s.memoHits = memoHits_.load(std::memory_order_relaxed);
    s.memoMisses = memoMisses_.load(std::memory_order_relaxed);
    s.maxDepth = maxDepth_.load(std::memory_order_relaxed);
    s.branchesExplored = branches_.load(std::memory_order_relaxed);
    s.threadsUsed = limits_.threads > 0 ? limits_.threads : 1;
    return s;
  }

 private:
  SearchLimits limits_;
  Deadline deadline_;
  ShardedMemoTable memo_;
  StopFlag stop_;
  std::atomic<std::uint64_t> budgetRemaining_;
  std::atomic<bool> budgetExhausted_{false};
  std::atomic<bool> deadlineExpired_{false};
  std::atomic<std::uint64_t> expansions_{0};
  std::atomic<std::uint64_t> memoHits_{0};
  std::atomic<std::uint64_t> memoMisses_{0};
  std::atomic<std::uint64_t> maxDepth_{0};
  std::atomic<std::uint64_t> branches_{0};
};

struct SearchOutcome {
  bool found = false;
  /// True if the search stopped on a resource limit (expansion budget or
  /// deadline) before the space was exhausted; a negative answer is then
  /// inconclusive.
  bool exhaustedBudget = false;
  /// Unit order of the witness, when found.
  std::vector<std::size_t> order;
  /// On failure: the deepest prefix any branch scheduled, and why each
  /// remaining candidate was rejected there (diagnostics for explain()).
  std::vector<std::size_t> bestPrefix;
  std::vector<std::string> blockers;
};

/// Runs the search with a private context (the graph must be acyclic —
/// callers check).  Kept for white-box tests and one-shot callers.
SearchOutcome findLegalOrder(const UnitGraph& g, const SpecMap& specs,
                             const SearchLimits& limits = {});

/// Runs the search against a shared portfolio context.
/// `chainSuffixHashes`, when given, holds at index k the hash of the
/// serialization order's suffix once k transactions are scheduled; it is
/// mixed into memo keys so entries transfer soundly between orders.
/// Cooperatively stops (without recording unexplored configurations as
/// failed) when the context's stop flag rises.
SearchOutcome findLegalOrder(const UnitGraph& g, const SpecMap& specs,
                             SearchContext& ctx,
                             const std::vector<std::uint64_t>* chainSuffixHashes);

/// Reconstructs the witness sequential history from a unit order.
History sequentialHistoryFromOrder(const UnitGraph& g,
                                   const std::vector<std::size_t>& order);

}  // namespace jungle
