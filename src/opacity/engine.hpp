// The shared DecisionEngine behind all four correctness conditions.
//
// Parametrized opacity (§3.3), classical opacity, strict serializability,
// and SGLA (§6.2) all have the same decision skeleton: transform the
// history (τ, plus erasure for strict serializability), install the
// condition's constraints, enumerate total serialization orders ≪ of the
// transactions, and run a legality-directed search per order.  A
// ConditionPolicy captures exactly where the four differ:
//
//   condition               | model     | erase non-committed | unit shape
//   ------------------------+-----------+---------------------+-----------
//   parametrized opacity    | any M     | no                  | tx blocks
//   opacity                 | M_SC      | no                  | tx blocks
//   strict serializability  | M_SC      | yes                 | tx blocks
//   SGLA                    | any M     | no                  | per-op (tx-
//                           |           |                     | only seq.)
//
// The engine also owns the *portfolio* parallelization: top-level branches
// of the ≪ enumeration are distributed over a small worker pool, all
// workers share one failed-configuration memo table (sound because entries
// are keyed by scheduled set × state digest × order suffix; see
// DESIGN.md §5) and one cooperative stop flag, so the first witness halts
// everyone.  With limits.threads == 1 the engine degenerates to the exact
// sequential enumeration the pre-portfolio checkers performed.
#pragma once

#include "memmodel/memory_model.hpp"
#include "opacity/popacity.hpp"

namespace jungle {

/// What makes a correctness condition concrete: which τ/view supplies the
/// constraints, which instances survive erasure, and whether sequentiality
/// is required of all instances (opacity family) or only transactions
/// (SGLA, where non-transactional instances may enter critical sections).
struct ConditionPolicy {
  const char* name = "parametrized opacity";
  const MemoryModel* model = nullptr;
  /// Strict serializability: drop aborted and incomplete transactions
  /// before checking — their reads need not be consistent.
  bool eraseNonCommitted = false;
  /// SGLA: the witness only needs to be *transactionally* sequential, so
  /// the unit decomposition relaxes from transaction blocks to single
  /// instances scheduled under lock (roach-motel) edges.
  bool txOnlySequential = false;
  /// SGLA only: keep real-time order between completed transactions.
  bool enforceTxRealTime = true;
  /// Snapshot isolation: split every committed transaction into a
  /// snapshot-read part and a commit-write part (opacity/snapshot.hpp)
  /// before checking; implies eraseNonCommitted.
  bool snapshotSplit = false;
  /// SI only: run the first-committer-wins pre-check.  Off for monitor
  /// escalations, whose apparent intervals over-approximate the real ones
  /// and could convict real-time-ordered writers as concurrent.
  bool requireFcw = true;

  static ConditionPolicy parametrizedOpacity(const MemoryModel& m);
  static ConditionPolicy opacity();
  static ConditionPolicy strictSerializability();
  static ConditionPolicy sgla(const MemoryModel& m,
                              bool enforceTxRealTime = true);
  static ConditionPolicy snapshotIsolation(bool requireFcw = true);
};

class DecisionEngine {
 public:
  DecisionEngine(const ConditionPolicy& policy, const SpecMap& specs,
                 const SearchLimits& limits = {});

  /// Decides the policy's condition for `h`.  Thread-safe (each call owns
  /// its context); spawns limits.threads - 1 extra workers when > 1.
  CheckResult check(const History& h) const;

 private:
  void runUnitLevel(const History& ht, const HistoryAnalysis& analysis,
                    const std::vector<std::pair<OpId, OpId>>& extraOrder,
                    SearchContext& ctx, CheckResult& result) const;
  void runTxOnly(const History& ht, const HistoryAnalysis& analysis,
                 SearchContext& ctx, CheckResult& result) const;

  ConditionPolicy policy_;
  const SpecMap* specs_;
  SearchLimits limits_;
};

}  // namespace jungle
