#include "opacity/sgla.hpp"

#include "opacity/engine.hpp"

namespace jungle {

CheckResult checkSgla(const History& h, const MemoryModel& m,
                      const SpecMap& specs, const SglaOptions& opts) {
  return DecisionEngine(ConditionPolicy::sgla(m, opts.enforceTxRealTime),
                        specs, opts.limits)
      .check(h);
}

}  // namespace jungle
