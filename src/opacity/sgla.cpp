#include "opacity/sgla.hpp"

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitset64.hpp"
#include "common/check.hpp"
#include "opacity/state_table.hpp"

namespace jungle {

namespace {

using PosSet = BitsetN<2>;

/// Op-granularity search for a transactionally sequential, everywhere-legal
/// permutation respecting the extended view and one transaction order ≪.
class SglaSearcher {
 public:
  SglaSearcher(const History& h, const HistoryAnalysis& analysis,
               const MemoryModel& m, const SpecMap& specs,
               const std::vector<std::size_t>& txOrder,
               const SearchLimits& limits)
      : h_(h),
        analysis_(analysis),
        txOrder_(txOrder),
        limits_(limits),
        base_(specs) {
    const std::size_t n = h.size();
    JUNGLE_CHECK_MSG(n <= PosSet::kCapacity,
                     "history too large for the SGLA decision procedure");
    preds_.assign(n, PosSet{});
    buildEdges(m);

    // Touched objects and op counts per transaction.
    const auto& txns = analysis.transactions();
    touched_.resize(txns.size());
    remaining_.resize(txns.size());
    for (std::size_t t = 0; t < txns.size(); ++t) {
      remaining_[t] = txns[t].positions.size();
      std::unordered_map<ObjectId, bool> seen;
      for (std::size_t pos : txns[t].positions) {
        const OpInstance& inst = h[pos];
        if (inst.isCommand() && !seen.count(inst.obj)) {
          seen.emplace(inst.obj, true);
          touched_[t].push_back(inst.obj);
        }
      }
    }
  }

  SearchOutcome run() {
    SearchOutcome out;
    out.found = dfs();
    out.exhaustedBudget = budgetExhausted_;
    if (out.found) out.order = order_;
    return out;
  }

 private:
  struct Undo {
    StateTable::Snapshot baseSnap;
    std::vector<std::pair<ObjectId, std::unique_ptr<SpecState>>> overlaySnap;
    std::unordered_map<ObjectId, std::unique_ptr<SpecState>> overlaySaved;
    int prevOpen = -1;
    std::size_t prevNextTx = 0;
    /// The op completed a live (never-committing) transaction, closing its
    /// critical section with abort semantics (its effects become invisible
    /// once anything follows — visible()'s rule for non-committed
    /// transactions).
    bool autoClosed = false;
  };

  void buildEdges(const MemoryModel& m) {
    const std::size_t n = h_.size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (h_[i].pid != h_[j].pid) continue;
        const bool iSpecial = !h_[i].isCommand();
        const bool jSpecial = !h_[j].isCommand();
        bool edge = false;
        if (iSpecial && jSpecial) {
          edge = true;  // lock operations stay in program order
        } else if (h_[i].isStart()) {
          edge = true;  // acquire: nothing moves before the start
        } else if (h_[j].isCommit() || h_[j].isAbort()) {
          edge = true;  // release: nothing moves past the commit/abort
        } else if (!iSpecial && !jSpecial) {
          edge = m.requiresOrder(h_, i, j);
        }
        if (edge) preds_[j].set(i);
      }
    }
  }

  std::uint64_t overlayDigest() const {
    std::uint64_t d = 0x6a09e667f3bcc909ULL;
    for (const auto& [obj, st] : overlay_) {
      std::uint64_t c = st->digest();
      hashCombine(c, obj + 0x85ebca6bULL);
      d ^= c;
    }
    return d;
  }

  bool dfs() {
    if (order_.size() == h_.size()) return true;
    if (limits_.maxExpansions && expansions_ >= limits_.maxExpansions) {
      budgetExhausted_ = true;
      return false;
    }
    ++expansions_;

    const std::uint64_t stateDigest =
        base_.digest() ^ overlayDigest() ^
        (static_cast<std::uint64_t>(open_ + 2) * 0xff51afd7ed558ccdULL);
    const std::uint64_t memoKey =
        scheduled_.hash() ^ (stateDigest * 0x9e3779b97f4a7c15ULL);
    if (limits_.useMemo) {
      if (auto it = failed_.find(memoKey); it != failed_.end()) {
        for (const auto& [mask, digest] : it->second) {
          if (mask == scheduled_ && digest == stateDigest) return false;
        }
      }
    }

    for (std::size_t pos = 0; pos < h_.size(); ++pos) {
      if (scheduled_.test(pos)) continue;
      if (!scheduled_.contains(preds_[pos])) continue;
      if (!structurallyReady(pos)) continue;
      Undo undo;
      if (!apply(pos, undo)) continue;
      scheduled_.set(pos);
      order_.push_back(pos);
      if (dfs()) return true;
      order_.pop_back();
      scheduled_.reset(pos);
      revert(pos, std::move(undo));
      if (budgetExhausted_) return false;
    }

    if (limits_.useMemo) {
      failed_[memoKey].emplace_back(scheduled_, stateDigest);
    }
    return false;
  }

  bool structurallyReady(std::size_t pos) const {
    auto tx = analysis_.transactionOf(pos);
    if (!tx.has_value()) return true;  // non-transactional: anywhere
    if (h_[pos].isStart()) {
      return open_ < 0 && nextTx_ < txOrder_.size() &&
             txOrder_[nextTx_] == *tx;
    }
    return open_ >= 0 && static_cast<std::size_t>(open_) == *tx;
  }

  bool apply(std::size_t pos, Undo& undo) {
    const OpInstance& inst = h_[pos];
    auto tx = analysis_.transactionOf(pos);
    undo.prevOpen = open_;
    undo.prevNextTx = nextTx_;

    if (inst.isStart()) {
      // Open the critical section with a snapshot of its touched objects.
      open_ = static_cast<int>(*tx);
      ++nextTx_;
      JUNGLE_DCHECK(overlay_.empty());
      for (ObjectId obj : touched_[*tx]) {
        overlay_.emplace(obj, base_.cloneState(obj));
      }
      --remaining_[*tx];
      maybeAutoClose(*tx, undo);
      return true;
    }
    if (inst.isCommit()) {
      // Merge: the visible prefix at the commit is base ∪ overlay, already
      // validated op by op; publish the overlay into the base.
      undo.baseSnap = base_.snapshot(touched_[*tx]);
      for (auto& [obj, st] : overlay_) {
        base_.setState(obj, st->clone());
      }
      undo.overlaySaved = std::move(overlay_);
      overlay_.clear();
      open_ = -1;
      --remaining_[*tx];
      return true;
    }
    if (inst.isAbort()) {
      undo.overlaySaved = std::move(overlay_);
      overlay_.clear();
      open_ = -1;
      --remaining_[*tx];
      return true;
    }

    // Command instance.
    if (tx.has_value()) {
      auto it = overlay_.find(inst.obj);
      JUNGLE_DCHECK(it != overlay_.end());
      undo.overlaySnap.emplace_back(inst.obj, it->second->clone());
      if (!it->second->apply(inst.cmd)) {
        revertOverlay(undo);
        return false;
      }
      --remaining_[*tx];
      maybeAutoClose(*tx, undo);
      return true;
    }

    // Non-transactional command: legal in its own prefix (base, where an
    // open transaction is invisible) and, if the open transaction touches
    // the object, also inside the critical-section interleaving (overlay).
    undo.baseSnap = base_.snapshot({inst.obj});
    if (!base_.apply(inst.obj, inst.cmd)) {
      base_.restore(std::move(undo.baseSnap));
      undo.baseSnap.clear();
      return false;
    }
    if (open_ >= 0) {
      auto it = overlay_.find(inst.obj);
      if (it != overlay_.end()) {
        undo.overlaySnap.emplace_back(inst.obj, it->second->clone());
        if (!it->second->apply(inst.cmd)) {
          revertOverlay(undo);
          base_.restore(std::move(undo.baseSnap));
          undo.baseSnap.clear();
          return false;
        }
      }
    }
    return true;
  }

  void revertOverlay(Undo& undo) {
    for (auto& [obj, st] : undo.overlaySnap) {
      overlay_[obj] = std::move(st);
    }
    undo.overlaySnap.clear();
  }

  /// Closes the critical section of a live transaction whose instances are
  /// all scheduled: nothing will commit it, so once anything follows, its
  /// effects are invisible (abort semantics).  Keeping it "open" would
  /// wrongly block other transactions from ever being scheduled.
  void maybeAutoClose(std::size_t tx, Undo& undo) {
    if (remaining_[tx] != 0 ||
        analysis_.transactions()[tx].completed()) {
      return;
    }
    undo.autoClosed = true;
    undo.overlaySaved = std::move(overlay_);
    overlay_.clear();
    open_ = -1;
  }

  void revert(std::size_t pos, Undo undo) {
    const OpInstance& inst = h_[pos];
    auto tx = analysis_.transactionOf(pos);
    if (tx.has_value()) ++remaining_[*tx];
    if (undo.autoClosed) {
      overlay_ = std::move(undo.overlaySaved);
    }
    if (inst.isStart()) {
      overlay_.clear();
    } else if (inst.isCommit()) {
      base_.restore(std::move(undo.baseSnap));
      overlay_ = std::move(undo.overlaySaved);
    } else if (inst.isAbort()) {
      overlay_ = std::move(undo.overlaySaved);
    } else {
      revertOverlay(undo);
      if (!undo.baseSnap.empty()) base_.restore(std::move(undo.baseSnap));
    }
    open_ = undo.prevOpen;
    nextTx_ = undo.prevNextTx;
  }

  const History& h_;
  const HistoryAnalysis& analysis_;
  const std::vector<std::size_t>& txOrder_;
  SearchLimits limits_;
  StateTable base_;
  std::unordered_map<ObjectId, std::unique_ptr<SpecState>> overlay_;
  std::vector<PosSet> preds_;
  std::vector<std::vector<ObjectId>> touched_;
  std::vector<std::size_t> remaining_;
  PosSet scheduled_;
  std::vector<std::size_t> order_;
  int open_ = -1;
  std::size_t nextTx_ = 0;
  std::uint64_t expansions_ = 0;
  bool budgetExhausted_ = false;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<PosSet, std::uint64_t>>>
      failed_;
};

/// Enumerates total orders of transactions consistent with same-process
/// program order and (optionally) real-time order.
bool forEachSglaTxOrder(
    const HistoryAnalysis& analysis, bool enforceRealTime,
    const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  const auto& txns = analysis.transactions();
  const std::size_t n = txns.size();
  std::vector<std::vector<bool>> before(n, std::vector<bool>(n, false));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (txns[a].pid == txns[b].pid && txns[a].firstPos() < txns[b].firstPos())
        before[a][b] = true;
      if (enforceRealTime && txns[a].completed() &&
          txns[a].lastPos() < txns[b].firstPos())
        before[a][b] = true;
    }
  }
  std::vector<std::size_t> order;
  std::vector<bool> used(n, false);
  std::function<bool()> rec = [&]() -> bool {
    if (order.size() == n) return fn(order);
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool ready = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (!used[j] && j != i && before[j][i]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      used[i] = true;
      order.push_back(i);
      if (rec()) return true;
      order.pop_back();
      used[i] = false;
    }
    return false;
  };
  return rec();
}

}  // namespace

CheckResult checkSgla(const History& h, const MemoryModel& m,
                      const SpecMap& specs, const SglaOptions& opts) {
  CheckResult result;

  const History ht = m.transform(h);
  HistoryAnalysis analysis(ht);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");

  bool sawBudgetExhaustion = false;
  const bool found = forEachSglaTxOrder(
      analysis, opts.enforceTxRealTime,
      [&](const std::vector<std::size_t>& txOrder) {
        SglaSearcher searcher(ht, analysis, m, specs, txOrder, opts.limits);
        SearchOutcome out = searcher.run();
        sawBudgetExhaustion |= out.exhaustedBudget;
        if (!out.found) return false;
        result.witness = ht.subsequence(out.order);
        return true;
      });

  result.satisfied = found;
  result.inconclusive = !found && sawBudgetExhaustion;
  return result;
}

}  // namespace jungle
