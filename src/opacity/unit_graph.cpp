#include "opacity/unit_graph.hpp"

#include <functional>

#include "common/check.hpp"

namespace jungle {

UnitGraph::UnitGraph(const History& h, const HistoryAnalysis& analysis)
    : h_(&h), analysis_(&analysis) {
  JUNGLE_CHECK(&analysis.history() == &h);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");

  unitOf_.assign(h.size(), 0);

  // One unit per transaction, in order of first instance.
  const auto& txns = analysis.transactions();
  std::vector<std::size_t> txUnitIndex(txns.size());
  for (std::size_t t = 0; t < txns.size(); ++t) {
    Unit u;
    u.isTx = true;
    u.txIndex = t;
    u.positions = txns[t].positions;
    txUnitIndex[t] = units_.size();
    txUnits_.push_back(units_.size());
    units_.push_back(std::move(u));
  }
  // One singleton unit per non-transactional instance.
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    auto tx = analysis.transactionOf(pos);
    if (tx.has_value()) {
      unitOf_[pos] = txUnitIndex[*tx];
    } else {
      Unit u;
      u.positions = {pos};
      unitOf_[pos] = units_.size();
      units_.push_back(std::move(u));
    }
  }
  JUNGLE_CHECK_MSG(units_.size() <= UnitSet::kCapacity,
                   "history too large for the decision procedure");
  preds_.assign(units_.size(), UnitSet{});

  // Lift ≺h to unit edges.
  for (std::size_t i = 0; i < h.size(); ++i) {
    for (std::size_t j = 0; j < h.size(); ++j) {
      if (i == j || unitOf_[i] == unitOf_[j]) continue;
      if (analysis.realTimePrecedes(i, j)) addEdge(unitOf_[i], unitOf_[j]);
    }
  }
}

void UnitGraph::addEdge(std::size_t from, std::size_t to) {
  JUNGLE_DCHECK(from < units_.size() && to < units_.size());
  if (from == to) return;
  preds_[to].set(from);
}

void UnitGraph::addViewEdges(
    const std::vector<std::pair<OpId, OpId>>& pairs) {
  for (const auto& [i, j] : pairs) {
    const std::size_t a = unitOf_[h_->positionOf(i)];
    const std::size_t b = unitOf_[h_->positionOf(j)];
    if (a != b) addEdge(a, b);
  }
}

bool UnitGraph::hasCycle() const {
  // Kahn's algorithm: the graph is acyclic iff all units can be peeled.
  UnitSet done;
  std::size_t remaining = units_.size();
  bool progress = true;
  while (progress && remaining > 0) {
    progress = false;
    for (std::size_t u = 0; u < units_.size(); ++u) {
      if (done.test(u)) continue;
      if (done.contains(preds_[u])) {
        done.set(u);
        --remaining;
        progress = true;
      }
    }
  }
  return remaining > 0;
}

UnitGraph UnitGraph::withTxChain(
    const std::vector<std::size_t>& txOrder) const {
  UnitGraph g = *this;
  for (std::size_t i = 0; i + 1 < txOrder.size(); ++i) {
    g.addEdge(txOrder[i], txOrder[i + 1]);
  }
  return g;
}

bool forEachTxOrder(
    const UnitGraph& g,
    const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  const auto& txs = g.txUnits();
  std::vector<std::size_t> order;
  std::vector<bool> used(txs.size(), false);
  std::function<bool()> rec = [&]() -> bool {
    if (order.size() == txs.size()) return fn(order);
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (used[i]) continue;
      // All tx predecessors of txs[i] must already be placed.
      bool ready = true;
      for (std::size_t jIdx = 0; jIdx < txs.size(); ++jIdx) {
        if (used[jIdx] || jIdx == i) continue;
        if (g.txMustPrecede(jIdx, i)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      used[i] = true;
      order.push_back(txs[i]);
      if (rec()) return true;
      order.pop_back();
      used[i] = false;
    }
    return false;
  };
  return rec();
}

}  // namespace jungle
