// Object-state table with snapshot/restore and an incremental digest —
// the mutable core of both the opacity and the SGLA searches — plus the
// sharded failed-configuration memo table shared by the parallel portfolio
// search.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "spec/spec_map.hpp"

namespace jungle {

class StateTable {
 public:
  explicit StateTable(const SpecMap& specs) : specs_(&specs) {}

  /// Order-independent digest of all object states (memo keys).
  std::uint64_t digest() const { return digest_; }

  /// Applies `cmd` on `obj`; returns false if illegal.  On failure the
  /// object's state is unspecified — callers restore from a snapshot.
  bool apply(ObjectId obj, const Command& cmd) {
    SpecState* st = stateFor(obj);
    removeDigest(obj, *st);
    const bool ok = st->apply(cmd);
    addDigest(obj, *st);
    return ok;
  }

  using Snapshot = std::vector<std::pair<ObjectId, std::unique_ptr<SpecState>>>;

  /// Snapshot of the named objects' current states.
  Snapshot snapshot(const std::vector<ObjectId>& objs) {
    Snapshot snap;
    snap.reserve(objs.size());
    for (ObjectId o : objs) snap.emplace_back(o, stateFor(o)->clone());
    return snap;
  }

  void restore(Snapshot snap) {
    for (auto& [obj, st] : snap) {
      removeDigest(obj, *states_.at(obj));
      addDigest(obj, *st);
      states_[obj] = std::move(st);
    }
  }

  /// Clone of one object's current state (materializing it if untouched).
  std::unique_ptr<SpecState> cloneState(ObjectId obj) {
    return stateFor(obj)->clone();
  }

  /// Replaces one object's state (used by SGLA's commit merge).
  void setState(ObjectId obj, std::unique_ptr<SpecState> st) {
    SpecState* cur = stateFor(obj);
    removeDigest(obj, *cur);
    addDigest(obj, *st);
    states_[obj] = std::move(st);
  }

 private:
  SpecState* stateFor(ObjectId obj) {
    auto it = states_.find(obj);
    if (it == states_.end()) {
      it = states_.emplace(obj, specs_->specFor(obj).initial()).first;
      addDigest(obj, *it->second);
    }
    return it->second.get();
  }

  static std::uint64_t contribution(ObjectId obj, const SpecState& st) {
    std::uint64_t h = st.digest();
    hashCombine(h, 0x1000193ULL + obj);
    return h;
  }

  void addDigest(ObjectId obj, const SpecState& st) {
    digest_ ^= contribution(obj, st);
  }
  void removeDigest(ObjectId obj, const SpecState& st) {
    digest_ ^= contribution(obj, st);
  }

  const SpecMap* specs_;
  std::unordered_map<ObjectId, std::unique_ptr<SpecState>> states_;
  std::uint64_t digest_ = 0x811c9dc5a3c1f935ULL;
};

/// Failed-configuration memo shared by every worker of one portfolio
/// search.  A configuration is (scheduled-unit mask, object-state digest,
/// hash of the serialization order's remaining suffix): the residual
/// subproblem is fully determined by those three (DESIGN.md §5), so a
/// configuration that failed under one serialization order is also dead
/// under any other order with the same scheduled set, state, and suffix.
///
/// Entries are published under per-shard mutexes, so an entry is either
/// fully visible or not yet visible; a lookup racing an insert may miss it.
/// That is sound: only *failed* configurations are stored, so a missed
/// entry costs a re-search, never a wrong verdict.
class ShardedMemoTable {
 public:
  struct Key {
    std::array<std::uint64_t, 2> mask;
    std::uint64_t digest;
    std::uint64_t suffix;

    bool operator==(const Key&) const = default;

    std::uint64_t hash() const {
      std::uint64_t h = digest;
      hashCombine(h, mask[0]);
      hashCombine(h, mask[1]);
      hashCombine(h, suffix);
      return h;
    }
  };

  bool containsFailed(const Key& key) const {
    const std::uint64_t h = key.hash();
    const Shard& shard = shards_[h % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(h);
    if (it == shard.map.end()) return false;
    for (const Key& k : it->second) {
      if (k == key) return true;
    }
    return false;
  }

  void insertFailed(const Key& key) {
    const std::uint64_t h = key.hash();
    Shard& shard = shards_[h % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[h].push_back(key);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [h, keys] : shard.map) n += keys.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<Key>> map;
  };

  static constexpr std::size_t kShards = 64;
  std::array<Shard, kShards> shards_;
};

}  // namespace jungle
