// Object-state table with snapshot/restore and an incremental digest —
// the mutable core of both the opacity and the SGLA searches.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "spec/spec_map.hpp"

namespace jungle {

class StateTable {
 public:
  explicit StateTable(const SpecMap& specs) : specs_(&specs) {}

  /// Order-independent digest of all object states (memo keys).
  std::uint64_t digest() const { return digest_; }

  /// Applies `cmd` on `obj`; returns false if illegal.  On failure the
  /// object's state is unspecified — callers restore from a snapshot.
  bool apply(ObjectId obj, const Command& cmd) {
    SpecState* st = stateFor(obj);
    removeDigest(obj, *st);
    const bool ok = st->apply(cmd);
    addDigest(obj, *st);
    return ok;
  }

  using Snapshot = std::vector<std::pair<ObjectId, std::unique_ptr<SpecState>>>;

  /// Snapshot of the named objects' current states.
  Snapshot snapshot(const std::vector<ObjectId>& objs) {
    Snapshot snap;
    snap.reserve(objs.size());
    for (ObjectId o : objs) snap.emplace_back(o, stateFor(o)->clone());
    return snap;
  }

  void restore(Snapshot snap) {
    for (auto& [obj, st] : snap) {
      removeDigest(obj, *states_.at(obj));
      addDigest(obj, *st);
      states_[obj] = std::move(st);
    }
  }

  /// Clone of one object's current state (materializing it if untouched).
  std::unique_ptr<SpecState> cloneState(ObjectId obj) {
    return stateFor(obj)->clone();
  }

  /// Replaces one object's state (used by SGLA's commit merge).
  void setState(ObjectId obj, std::unique_ptr<SpecState> st) {
    SpecState* cur = stateFor(obj);
    removeDigest(obj, *cur);
    addDigest(obj, *st);
    states_[obj] = std::move(st);
  }

 private:
  SpecState* stateFor(ObjectId obj) {
    auto it = states_.find(obj);
    if (it == states_.end()) {
      it = states_.emplace(obj, specs_->specFor(obj).initial()).first;
      addDigest(obj, *it->second);
    }
    return it->second.get();
  }

  static std::uint64_t contribution(ObjectId obj, const SpecState& st) {
    std::uint64_t h = st.digest();
    hashCombine(h, 0x1000193ULL + obj);
    return h;
  }

  void addDigest(ObjectId obj, const SpecState& st) {
    digest_ ^= contribution(obj, st);
  }
  void removeDigest(ObjectId obj, const SpecState& st) {
    digest_ ^= contribution(obj, st);
  }

  const SpecMap* specs_;
  std::unordered_map<ObjectId, std::unique_ptr<SpecState>> states_;
  std::uint64_t digest_ = 0x811c9dc5a3c1f935ULL;
};

}  // namespace jungle
