#include "opacity/legal_search.hpp"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "opacity/state_table.hpp"

namespace jungle {

namespace {

class Searcher {
 public:
  Searcher(const UnitGraph& g, const SpecMap& specs,
           const SearchLimits& limits)
      : g_(g), limits_(limits), table_(specs) {
    // Precompute per-unit touched objects and whether the unit commits.
    const auto& h = g.history();
    touched_.resize(g.unitCount());
    commits_.resize(g.unitCount(), false);
    for (std::size_t u = 0; u < g.unitCount(); ++u) {
      const Unit& unit = g.unit(u);
      std::unordered_set<ObjectId> seen;
      for (std::size_t pos : unit.positions) {
        const OpInstance& inst = h[pos];
        if (inst.isCommand() && seen.insert(inst.obj).second) {
          touched_[u].push_back(inst.obj);
        }
        if (inst.isCommit()) commits_[u] = true;
      }
      if (!unit.isTx) commits_[u] = true;  // non-tx ops are always visible
    }
  }

  SearchOutcome run() {
    SearchOutcome out;
    out.found = dfs();
    out.exhaustedBudget = budgetExhausted_;
    if (out.found) {
      out.order = order_;
    } else {
      out.bestPrefix = bestPrefix_;
      out.blockers = bestBlockers_;
    }
    return out;
  }

 private:
  bool dfs() {
    if (order_.size() == g_.unitCount()) return true;
    if (limits_.maxExpansions && expansions_ >= limits_.maxExpansions) {
      budgetExhausted_ = true;
      return false;
    }
    ++expansions_;

    const std::uint64_t memoKey =
        scheduled_.hash() ^ (table_.digest() * 0x9e3779b97f4a7c15ULL);
    if (limits_.useMemo) {
      if (auto it = failed_.find(memoKey); it != failed_.end()) {
        for (const auto& [mask, digest] : it->second) {
          if (mask == scheduled_ && digest == table_.digest()) return false;
        }
      }
    }

    bool progressed = false;
    for (std::size_t u = 0; u < g_.unitCount(); ++u) {
      if (scheduled_.test(u)) continue;
      if (!scheduled_.contains(g_.preds(u))) continue;
      if (!tryUnit(u)) continue;
      progressed = true;
      if (dfs()) return true;
      popUnit();
      if (budgetExhausted_) return false;
    }
    if (!progressed && order_.size() >= bestPrefix_.size()) {
      recordDeadEnd();
    }

    if (limits_.useMemo) {
      failed_[memoKey].emplace_back(scheduled_, table_.digest());
    }
    return false;
  }

  /// Captures why this dead-end configuration cannot extend (diagnostics).
  void recordDeadEnd() {
    bestPrefix_ = order_;
    bestBlockers_.clear();
    const auto& h = g_.history();
    for (std::size_t u = 0; u < g_.unitCount(); ++u) {
      if (scheduled_.test(u)) continue;
      std::string why;
      if (!scheduled_.contains(g_.preds(u))) {
        why = "waits for constraint predecessors";
      } else {
        // Re-run the unit to find its first illegal instance.
        auto snap = table_.snapshot(touched_[u]);
        for (std::size_t pos : g_.unit(u).positions) {
          const OpInstance& inst = h[pos];
          if (!inst.isCommand()) continue;
          if (!table_.apply(inst.obj, inst.cmd)) {
            why = "operation " + inst.toString() +
                  " is illegal in the current state";
            break;
          }
        }
        table_.restore(std::move(snap));
        if (why.empty()) why = "unexpectedly schedulable";  // defensive
      }
      const OpInstance& head = h[g_.unit(u).positions.front()];
      bestBlockers_.push_back(
          (g_.unit(u).isTx ? "transaction starting at op " +
                                 std::to_string(head.id)
                           : "operation " + std::to_string(head.id)) +
          ": " + why);
    }
  }

  /// Attempts to schedule unit u.  Returns false with the table unchanged
  /// if some instance of the unit is illegal at this point; returns true
  /// with the unit applied and an undo snapshot queued (popUnit reverses).
  bool tryUnit(std::size_t u) {
    const auto& h = g_.history();
    const Unit& unit = g_.unit(u);
    auto snap = table_.snapshot(touched_[u]);

    bool legal = true;
    for (std::size_t pos : unit.positions) {
      const OpInstance& inst = h[pos];
      if (!inst.isCommand()) continue;
      if (!table_.apply(inst.obj, inst.cmd)) {
        legal = false;
        break;
      }
    }
    if (!legal) {
      table_.restore(std::move(snap));
      return false;
    }

    if (!commits_[u]) {
      // Aborted or incomplete transaction: its effects are never visible to
      // later instances (visible() drops it once anything follows).
      table_.restore(std::move(snap));
      undo_.emplace_back();  // nothing further to undo on backtrack
    } else {
      undo_.push_back(std::move(snap));
    }
    scheduled_.set(u);
    order_.push_back(u);
    return true;
  }

  void popUnit() {
    const std::size_t u = order_.back();
    order_.pop_back();
    scheduled_.reset(u);
    if (!undo_.back().empty()) table_.restore(std::move(undo_.back()));
    undo_.pop_back();
  }

  const UnitGraph& g_;
  SearchLimits limits_;
  StateTable table_;

  std::vector<std::vector<ObjectId>> touched_;
  std::vector<bool> commits_;

  UnitSet scheduled_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> bestPrefix_;
  std::vector<std::string> bestBlockers_;
  std::vector<StateTable::Snapshot> undo_;
  std::uint64_t expansions_ = 0;
  bool budgetExhausted_ = false;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<UnitSet, std::uint64_t>>>
      failed_;
};

}  // namespace

SearchOutcome findLegalOrder(const UnitGraph& g, const SpecMap& specs,
                             const SearchLimits& limits) {
  Searcher s(g, specs, limits);
  return s.run();
}

History sequentialHistoryFromOrder(const UnitGraph& g,
                                   const std::vector<std::size_t>& order) {
  std::vector<std::size_t> positions;
  for (std::size_t u : order) {
    for (std::size_t pos : g.unit(u).positions) positions.push_back(pos);
  }
  return g.history().subsequence(positions);
}

}  // namespace jungle
