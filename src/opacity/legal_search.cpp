#include "opacity/legal_search.hpp"

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace jungle {

namespace {

/// Expansion-budget chunk claimed from the shared context at a time; keeps
/// the hot path off the shared atomic.  Unused grant is returned, so the
/// global budget stays exact at threads = 1.
constexpr std::uint64_t kBudgetChunk = 1024;
/// Deadline poll interval, in expansions.
constexpr std::uint64_t kDeadlineMask = 1023;

class Searcher {
 public:
  Searcher(const UnitGraph& g, const SpecMap& specs, SearchContext& ctx,
           const std::vector<std::uint64_t>* suffixHashes)
      : g_(g), ctx_(ctx), suffixHashes_(suffixHashes), table_(specs) {
    // Precompute per-unit touched objects and whether the unit commits.
    const auto& h = g.history();
    touched_.resize(g.unitCount());
    commits_.resize(g.unitCount(), false);
    for (std::size_t u = 0; u < g.unitCount(); ++u) {
      const Unit& unit = g.unit(u);
      std::unordered_set<ObjectId> seen;
      for (std::size_t pos : unit.positions) {
        const OpInstance& inst = h[pos];
        if (inst.isCommand() && seen.insert(inst.obj).second) {
          touched_[u].push_back(inst.obj);
        }
        if (inst.isCommit()) commits_[u] = true;
      }
      if (!unit.isTx) commits_[u] = true;  // non-tx ops are always visible
    }
  }

  SearchOutcome run() {
    SearchOutcome out;
    out.found = dfs() == Dfs::kFound;
    out.exhaustedBudget = ctx_.resourceStop();
    if (out.found) {
      out.order = order_;
    } else {
      out.bestPrefix = bestPrefix_;
      out.blockers = bestBlockers_;
    }
    // Flush telemetry and hand back the unused part of the budget grant.
    ctx_.addExpansions(expansions_);
    ctx_.addMemoCounts(memoHits_, memoMisses_);
    ctx_.noteDepth(maxDepth_);
    ctx_.returnExpansions(grant_);
    return out;
  }

 private:
  enum class Dfs {
    kFound,
    kFail,     // subtree fully explored without a witness — memoizable
    kAborted,  // stopped early (budget, deadline, or another worker won)
  };

  /// Accounts one node expansion; false when the search must stop (budget
  /// exhausted or deadline expired — both recorded in the context).
  bool chargeExpansion() {
    if (grant_ == 0) {
      grant_ = ctx_.claimExpansions(kBudgetChunk);
      if (grant_ == 0) return false;
    }
    --grant_;
    ++expansions_;
    if ((expansions_ & kDeadlineMask) == 0 && ctx_.deadline().expired()) {
      ctx_.noteDeadlineExpired();
      return false;
    }
    return true;
  }

  std::uint64_t suffixHash() const {
    return suffixHashes_ ? (*suffixHashes_)[txScheduled_] : 0;
  }

  Dfs dfs() {
    if (order_.size() > maxDepth_) maxDepth_ = order_.size();
    if (order_.size() == g_.unitCount()) return Dfs::kFound;
    if (ctx_.stop().stopRequested()) return Dfs::kAborted;
    if (!chargeExpansion()) return Dfs::kAborted;

    const bool useMemo = ctx_.limits().useMemo;
    ShardedMemoTable::Key key{};
    if (useMemo) {
      key = {{scheduled_.word(0), scheduled_.word(1)},
             table_.digest(),
             suffixHash()};
      if (ctx_.memo().containsFailed(key)) {
        ++memoHits_;
        return Dfs::kFail;
      }
      ++memoMisses_;
    }

    bool progressed = false;
    bool aborted = false;
    for (std::size_t u = 0; u < g_.unitCount(); ++u) {
      if (scheduled_.test(u)) continue;
      if (!scheduled_.contains(g_.preds(u))) continue;
      if (!tryUnit(u)) continue;
      progressed = true;
      const Dfs r = dfs();
      if (r == Dfs::kFound) return r;
      popUnit();
      if (r == Dfs::kAborted) {
        aborted = true;
        break;
      }
    }
    if (!progressed && order_.size() >= bestPrefix_.size()) {
      recordDeadEnd();
    }
    if (aborted) return Dfs::kAborted;

    // Only fully explored configurations enter the shared memo: an entry
    // recorded under an early stop could suppress a live branch later.
    if (useMemo) ctx_.memo().insertFailed(key);
    return Dfs::kFail;
  }

  /// Captures why this dead-end configuration cannot extend (diagnostics).
  void recordDeadEnd() {
    bestPrefix_ = order_;
    bestBlockers_.clear();
    const auto& h = g_.history();
    for (std::size_t u = 0; u < g_.unitCount(); ++u) {
      if (scheduled_.test(u)) continue;
      std::string why;
      if (!scheduled_.contains(g_.preds(u))) {
        why = "waits for constraint predecessors";
      } else {
        // Re-run the unit to find its first illegal instance.
        auto snap = table_.snapshot(touched_[u]);
        for (std::size_t pos : g_.unit(u).positions) {
          const OpInstance& inst = h[pos];
          if (!inst.isCommand()) continue;
          if (!table_.apply(inst.obj, inst.cmd)) {
            why = "operation " + inst.toString() +
                  " is illegal in the current state";
            break;
          }
        }
        table_.restore(std::move(snap));
        if (why.empty()) why = "unexpectedly schedulable";  // defensive
      }
      const OpInstance& head = h[g_.unit(u).positions.front()];
      bestBlockers_.push_back(
          (g_.unit(u).isTx ? "transaction starting at op " +
                                 std::to_string(head.id)
                           : "operation " + std::to_string(head.id)) +
          ": " + why);
    }
  }

  /// Attempts to schedule unit u.  Returns false with the table unchanged
  /// if some instance of the unit is illegal at this point; returns true
  /// with the unit applied and an undo snapshot queued (popUnit reverses).
  bool tryUnit(std::size_t u) {
    const auto& h = g_.history();
    const Unit& unit = g_.unit(u);
    auto snap = table_.snapshot(touched_[u]);

    bool legal = true;
    for (std::size_t pos : unit.positions) {
      const OpInstance& inst = h[pos];
      if (!inst.isCommand()) continue;
      if (!table_.apply(inst.obj, inst.cmd)) {
        legal = false;
        break;
      }
    }
    if (!legal) {
      table_.restore(std::move(snap));
      return false;
    }

    if (!commits_[u]) {
      // Aborted or incomplete transaction: its effects are never visible to
      // later instances (visible() drops it once anything follows).
      table_.restore(std::move(snap));
      undo_.emplace_back();  // nothing further to undo on backtrack
    } else {
      undo_.push_back(std::move(snap));
    }
    scheduled_.set(u);
    order_.push_back(u);
    if (unit.isTx) ++txScheduled_;
    return true;
  }

  void popUnit() {
    const std::size_t u = order_.back();
    order_.pop_back();
    scheduled_.reset(u);
    if (g_.unit(u).isTx) --txScheduled_;
    if (!undo_.back().empty()) table_.restore(std::move(undo_.back()));
    undo_.pop_back();
  }

  const UnitGraph& g_;
  SearchContext& ctx_;
  const std::vector<std::uint64_t>* suffixHashes_;
  StateTable table_;

  std::vector<std::vector<ObjectId>> touched_;
  std::vector<bool> commits_;

  UnitSet scheduled_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> bestPrefix_;
  std::vector<std::string> bestBlockers_;
  std::vector<StateTable::Snapshot> undo_;
  std::size_t txScheduled_ = 0;
  std::uint64_t expansions_ = 0;
  std::uint64_t memoHits_ = 0;
  std::uint64_t memoMisses_ = 0;
  std::uint64_t maxDepth_ = 0;
  std::uint64_t grant_ = 0;
};

}  // namespace

SearchOutcome findLegalOrder(const UnitGraph& g, const SpecMap& specs,
                             const SearchLimits& limits) {
  SearchContext ctx(limits);
  return findLegalOrder(g, specs, ctx, nullptr);
}

SearchOutcome findLegalOrder(
    const UnitGraph& g, const SpecMap& specs, SearchContext& ctx,
    const std::vector<std::uint64_t>* chainSuffixHashes) {
  Searcher s(g, specs, ctx, chainSuffixHashes);
  return s.run();
}

History sequentialHistoryFromOrder(const UnitGraph& g,
                                   const std::vector<std::size_t>& order) {
  std::vector<std::size_t> positions;
  for (std::size_t u : order) {
    for (std::size_t pos : g.unit(u).positions) positions.push_back(pos);
  }
  return g.history().subsequence(positions);
}

}  // namespace jungle
