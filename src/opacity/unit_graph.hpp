// Unit decomposition for the opacity search.
//
// Condition 2 of parametrized opacity (§3.3) asks for a *sequential*
// permutation s of τ(h) respecting ≪ ∪ ≺h ∪ v(p).  In a sequential history
// every transaction is contiguous and its internal order is fixed by ≺h
// (same-process clause), so the search space is exactly the set of
// topological orders of *units* — whole transactions and individual
// non-transactional instances — under unit-lifted constraints.  This file
// builds the units and the constraint graph.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/bitset64.hpp"
#include "history/history.hpp"
#include "memmodel/memory_model.hpp"

namespace jungle {

struct Unit {
  bool isTx = false;
  /// Index into HistoryAnalysis::transactions() when isTx.
  std::size_t txIndex = 0;
  /// History positions of the unit's instances, in history (program) order.
  std::vector<std::size_t> positions;
};

class UnitGraph {
 public:
  /// Decomposes `h` into units and installs the ≺h constraints.
  /// `analysis` must be over `h`.
  UnitGraph(const History& h, const HistoryAnalysis& analysis);

  const History& history() const { return *h_; }
  const HistoryAnalysis& analysis() const { return *analysis_; }

  std::size_t unitCount() const { return units_.size(); }
  const Unit& unit(std::size_t u) const { return units_[u]; }
  const std::vector<Unit>& units() const { return units_; }

  /// Unit containing the instance at history position `pos`.
  std::size_t unitOf(std::size_t pos) const { return unitOf_[pos]; }

  /// Indices of transaction units, in history order of their first op.
  const std::vector<std::size_t>& txUnits() const { return txUnits_; }

  /// Must txUnits()[i] precede txUnits()[j] in every serialization order?
  /// Only direct tx→tx edges constrain the order; indirect constraints
  /// (through non-transactional units) surface as search failures, so
  /// enumerating against this relation is complete.
  bool txMustPrecede(std::size_t i, std::size_t j) const {
    return preds_[txUnits_[j]].test(txUnits_[i]);
  }

  void addEdge(std::size_t from, std::size_t to);
  /// Adds the view constraints (identifier pairs over non-transactional
  /// instances) as unit edges.
  void addViewEdges(const std::vector<std::pair<OpId, OpId>>& pairs);

  const UnitSet& preds(std::size_t u) const { return preds_[u]; }

  bool hasCycle() const;

  /// Deep copy for per-serialization-order augmentation.
  UnitGraph withTxChain(const std::vector<std::size_t>& txOrder) const;

 private:
  const History* h_;
  const HistoryAnalysis* analysis_;
  std::vector<Unit> units_;
  std::vector<std::size_t> unitOf_;
  std::vector<std::size_t> txUnits_;
  std::vector<UnitSet> preds_;
};

/// Enumerates all total orders of the graph's transaction units consistent
/// with the tx→tx edges already present, invoking `fn` with each order
/// (vector of unit indices).  Stops early when fn returns true; returns
/// whether any invocation returned true.
bool forEachTxOrder(const UnitGraph& g,
                    const std::function<bool(const std::vector<std::size_t>&)>& fn);

}  // namespace jungle
