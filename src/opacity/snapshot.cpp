#include "opacity/snapshot.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace jungle {

namespace {

/// Plan for one transaction of the input history.
struct TxPlan {
  bool split = false;     // emit R/W parts instead of the original ops
  bool hasReads = false;  // R-part is non-empty
  bool hasWrites = false;
  ProcessId writePid = 0;  // W-part process (fresh when both parts exist)
  OpId wStartId = 0;       // synthetic delimiters for a two-part split
  OpId wCommitId = 0;
  std::vector<bool> dropRead;  // per tx position: read-own-write, dropped
};

Command normalized(const Command& c) {
  if (c.isControlDependent() || c.isDataDependent()) {
    return c.isReadLike() ? cmdRead(c.value) : cmdWrite(c.value);
  }
  return c;
}

}  // namespace

SnapshotSplit snapshotSplitHistory(const History& h) {
  HistoryAnalysis analysis(h);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");

  ProcessId nextPid = 0;
  for (ProcessId p : h.processes()) nextPid = std::max(nextPid, p);
  ++nextPid;
  OpId nextId = 0;
  for (const OpInstance& inst : h) nextId = std::max(nextId, inst.id);
  ++nextId;

  const auto& txns = analysis.transactions();
  std::vector<TxPlan> plans(txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    const Transaction& tx = txns[i];
    TxPlan& plan = plans[i];
    plan.dropRead.assign(tx.positions.size(), false);
    if (!tx.committed) continue;  // pass through intact
    bool splittable = true;
    std::vector<ObjectId> written;
    for (std::size_t k = 0; k < tx.positions.size(); ++k) {
      const OpInstance& inst = h[tx.positions[k]];
      if (!inst.isCommand()) continue;
      const bool r = inst.cmd.isReadLike();
      const bool w = inst.cmd.isWriteLike();
      if (r == w) {  // dequeue-style (or havoc): no read/write split
        splittable = false;
        break;
      }
      if (r) {
        if (std::find(written.begin(), written.end(), inst.obj) !=
            written.end()) {
          // Read-own-write: observes the buffered value, says nothing
          // about the snapshot.
          plan.dropRead[k] = true;
        } else {
          plan.hasReads = true;
        }
      } else {
        written.push_back(inst.obj);
        plan.hasWrites = true;
      }
    }
    if (!splittable || !(plan.hasReads && plan.hasWrites)) {
      // Read-only and blind-write transactions keep one part on the
      // original process; nothing to split.
      plan.hasReads = plan.hasWrites = false;
      continue;
    }
    plan.split = true;
    plan.writePid = nextPid++;
    plan.wStartId = nextId++;
    plan.wCommitId = nextId++;
  }

  SnapshotSplit out;
  std::vector<OpInstance> ops;
  ops.reserve(h.size() + 2 * txns.size());
  std::vector<std::size_t> posInTx(txns.size(), 0);
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    OpInstance inst = h[pos];
    const auto txIdx = analysis.transactionOf(pos);
    if (!txIdx.has_value()) {
      ops.push_back(std::move(inst));
      continue;
    }
    const TxPlan& plan = plans[*txIdx];
    const std::size_t k = posInTx[*txIdx]++;
    if (!plan.split) {
      ops.push_back(std::move(inst));
      continue;
    }
    switch (inst.type) {
      case OpType::kStart:
        ops.push_back(inst);  // R-part keeps the original delimiters
        ops.push_back(opStart(plan.writePid, plan.wStartId));
        out.orderPairs.emplace_back(inst.id, plan.wStartId);
        break;
      case OpType::kCommit:
        ops.push_back(inst);
        ops.push_back(opCommit(plan.writePid, plan.wCommitId));
        break;
      case OpType::kAbort:
        JUNGLE_CHECK_MSG(false, "split transaction cannot abort");
        break;
      case OpType::kCommand:
        if (plan.dropRead[k]) break;
        inst.cmd = normalized(inst.cmd);
        if (inst.cmd.isWriteLike()) inst.pid = plan.writePid;
        ops.push_back(std::move(inst));
        break;
    }
  }
  out.history = History(std::move(ops));
  return out;
}

std::optional<std::string> firstCommitterWinsViolation(const History& h) {
  HistoryAnalysis analysis(h);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");

  struct Writer {
    ProcessId pid;
    std::size_t lo, hi;
    std::vector<ObjectId> objs;  // sorted
  };
  std::vector<Writer> writers;
  for (const Transaction& tx : analysis.transactions()) {
    if (!tx.committed) continue;
    std::vector<ObjectId> objs;
    for (std::size_t pos : tx.positions) {
      const OpInstance& inst = h[pos];
      if (inst.isCommand() && inst.cmd.isWriteLike()) objs.push_back(inst.obj);
    }
    if (objs.empty()) continue;
    std::sort(objs.begin(), objs.end());
    objs.erase(std::unique(objs.begin(), objs.end()), objs.end());
    writers.push_back({tx.pid, tx.firstPos(), tx.lastPos(), std::move(objs)});
  }

  const auto report = [](ProcessId a, ProcessId b, ObjectId x) {
    std::ostringstream os;
    os << "first-committer-wins violated: concurrent committed writers of "
       << "object " << x << " on processes p" << a << " and p" << b;
    return os.str();
  };

  for (std::size_t i = 0; i < writers.size(); ++i) {
    for (std::size_t j = i + 1; j < writers.size(); ++j) {
      const Writer& a = writers[i];
      const Writer& b = writers[j];
      if (a.hi < b.lo || b.hi < a.lo) continue;  // real-time ordered
      std::vector<ObjectId> common;
      std::set_intersection(a.objs.begin(), a.objs.end(), b.objs.begin(),
                            b.objs.end(), std::back_inserter(common));
      if (!common.empty()) return report(a.pid, b.pid, common.front());
    }
  }

  // Non-transactional writes are singleton committed writers.
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    if (analysis.isTransactional(pos)) continue;
    const OpInstance& inst = h[pos];
    if (!inst.isCommand() || !inst.cmd.isWriteLike()) continue;
    for (const Writer& w : writers) {
      if (w.lo < pos && pos < w.hi &&
          std::binary_search(w.objs.begin(), w.objs.end(), inst.obj)) {
        return report(w.pid, inst.pid, inst.obj);
      }
    }
  }
  return std::nullopt;
}

}  // namespace jungle
