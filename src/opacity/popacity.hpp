// Parametrized opacity (§3.3) and related correctness conditions.
//
// A history h ensures opacity parametrized by M = (τ, R) iff there exist a
// total order ≪ on transactional operations and a view v ∈ R(τ(h)) such
// that for every process p some sequential permutation s of τ(h) respects
// ≪ ∪ ≺h ∪ v(p) and makes every operation legal.
//
// The checker is exact for finite histories: it enumerates serialization
// orders consistent with ≺h, uses the model's minimal view (sound and
// complete — see DESIGN.md §5), and runs the legality-directed search.
#pragma once

#include <optional>

#include "opacity/legal_search.hpp"

namespace jungle {

struct CheckResult {
  /// The condition holds.
  bool satisfied = false;
  /// The search stopped on a resource limit (expansion budget or wall-clock
  /// deadline); a false `satisfied` is then inconclusive.  Set uniformly by
  /// all four entry points (parametrized opacity, opacity, strict
  /// serializability, SGLA).
  bool inconclusive = false;
  /// Witness sequential history (of τ(h)) when satisfied.
  std::optional<History> witness;
  /// On violation: a human-readable account of the deepest dead end the
  /// search reached — the scheduled prefix and why each remaining unit (or,
  /// for SGLA, instance) was rejected.  Empty on success.
  std::string explanation;
  /// Search telemetry (expansions, memo hits/misses, depth, branches,
  /// elapsed time, worker count).
  SearchStats stats;

  explicit operator bool() const { return satisfied; }
};

/// Does h ensure opacity parametrized by m?
CheckResult checkParametrizedOpacity(const History& h, const MemoryModel& m,
                                     const SpecMap& specs,
                                     const SearchLimits& limits = {});

/// Classical opacity — the SC-parametrized instance.  For purely
/// transactional histories this is Guerraoui–Kapalka opacity; with
/// non-transactional operations it is Larus-style strong atomicity (§1).
CheckResult checkOpacity(const History& h, const SpecMap& specs,
                         const SearchLimits& limits = {});

/// Strict serializability baseline: like opacity, but aborted and
/// incomplete transactions are erased before checking — their reads need
/// not be consistent.
CheckResult checkStrictSerializability(const History& h, const SpecMap& specs,
                                       const SearchLimits& limits = {});

/// Snapshot isolation: aborted and incomplete transactions are erased,
/// first-committer-wins is certified (unless requireFcw is false — monitor
/// escalations, whose apparent intervals over-approximate the real ones),
/// and each committed transaction is split into a snapshot-read part and a
/// commit-write part (opacity/snapshot.hpp) before the serialization
/// search.  Admits write skew; rejects lost update.
CheckResult checkSnapshotIsolation(const History& h, const SpecMap& specs,
                                   const SearchLimits& limits = {},
                                   bool requireFcw = true);

/// The conditions a TM kind can claim, in decreasing strength on the
/// transactional fragment (popacity additionally depends on the model).
/// Where a component needs "check the condition this TM claims" — the
/// monitor's escalation, the trace-conformance verifier, the CLIs — this
/// enum plus checkCondition() is the dispatch point.
enum class ConditionKind {
  kParametrizedOpacity,
  kOpacity,
  kStrictSerializability,
  kSnapshotIsolation,
};

const char* conditionKindName(ConditionKind kind);

/// Dispatches to the matching checker.  `m` is consulted only for
/// kParametrizedOpacity; the other conditions are SC-based.
CheckResult checkCondition(ConditionKind kind, const History& h,
                           const MemoryModel& m, const SpecMap& specs,
                           const SearchLimits& limits = {},
                           bool requireFcw = true);

}  // namespace jungle
