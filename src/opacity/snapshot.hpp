// Snapshot isolation as a history transformation.
//
// SI's defining split — reads execute against a committed snapshot, writes
// install atomically at commit — becomes a *history* transformation the
// shared DecisionEngine can check with its existing serialization search:
// every committed transaction is split into
//
//   * an R-part (original process): the transaction's snapshot reads, i.e.
//     its read-like commands minus reads of variables it had already
//     written itself, and
//   * a W-part (a fresh process id): its write-like commands,
//
// both spanning the original transaction's real-time interval, plus an
// explicit serialization constraint R-part ≪ W-part.  A history is then
// SI iff (a) no two concurrent committed writers intersect on a variable
// (first-committer-wins), and (b) the split history is strictly
// serializable under SC.  The interval slack makes the R-part free to
// serialize at any consistent point before the W-part, which is the
// generalized-SI reading; the TMs only ever produce begin-timestamp
// snapshots, a subset.
//
// Transactions containing a command that both observes and mutates (FIFO
// dequeue) have no meaningful read/write split; they pass through intact
// and are checked as atomic blocks.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "history/history.hpp"

namespace jungle {

struct SnapshotSplit {
  History history;
  /// Serialization-order constraints (earlier op must precede later op in
  /// the witness): one R-part ≪ W-part edge per split transaction.
  std::vector<std::pair<OpId, OpId>> orderPairs;
};

/// Splits every committed transaction of `h` (non-committed transactions
/// pass through intact; callers erase them first).  Dependence-annotated
/// commands are normalized to plain reads/writes — SI is defined over SC.
SnapshotSplit snapshotSplitHistory(const History& h);

/// First-committer-wins certification over the unsplit history: two
/// committed transactions whose write sets intersect and whose real-time
/// intervals overlap cannot both commit under SI; nor can a committed
/// transaction overlap a non-transactional write to a variable it writes.
/// Returns a description of the first violating pair, or nullopt.
std::optional<std::string> firstCommitterWinsViolation(const History& h);

}  // namespace jungle
