// Single global lock atomicity (§6.2), parametrized by a memory model.
//
// SGLA weakens parametrized opacity in two ways: the witness history only
// needs to be *transactionally* sequential (non-transactional instances may
// interleave with transactions), and the constraint order is the memory
// model's view extended with lock semantics for start/commit/abort — not
// the real-time order ≺h.
//
// The minimal well-formed extension we check against (DESIGN.md §5):
//   * the base model's required pairs, applied to all same-process command
//     instances (inside a critical section the memory model still governs
//     reorderings);
//   * roach-motel lock edges per process: start → every later instance of
//     the process (acquire), every earlier instance → commit/abort
//     (release) — instances may migrate *into* a critical section but not
//     out of it, matching extension conditions (ii)/(iii);
//   * agreement of all processes on the transaction order (condition (i)),
//     realized by enumerating one total order ≪;
//   * optionally, real-time order between completed transactions (on by
//     default; a real global lock enforces it, and keeping it preserves
//     Theorem 6 since parametrized opacity implies it too).
#pragma once

#include "opacity/popacity.hpp"

namespace jungle {

struct SglaOptions {
  bool enforceTxRealTime = true;
  SearchLimits limits;
};

CheckResult checkSgla(const History& h, const MemoryModel& m,
                      const SpecMap& specs, const SglaOptions& opts = {});

}  // namespace jungle
