#include "fuzz/generator.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/zipf.hpp"
#include "memmodel/models.hpp"
#include "spec/counter_spec.hpp"

namespace jungle::fuzz {

GeneratedInstance randomHistory(Rng& rng, const GenOptions& opts) {
  GeneratedInstance out;
  const Zipfian objDraw(opts.numObjects, opts.zipfTheta);

  // Counter objects are drawn once per instance; the SpecMap must agree
  // with the commands the generator emits on them.
  std::vector<bool> isCounter(opts.numObjects, false);
  for (std::size_t x = 0; x < opts.numObjects; ++x) {
    if (rng.chance(opts.pctCounter, 100)) {
      isCounter[x] = true;
      out.counterObjects.push_back(static_cast<ObjectId>(x));
      out.specs.assign(static_cast<ObjectId>(x),
                       std::make_shared<CounterSpec>(0));
    }
  }

  // Serial shadow state: the value a fully serial execution in emission
  // order would hold.  Consistent draws read it; noisy draws don't.
  std::vector<Word> shadow(opts.numObjects, 0);
  std::vector<bool> inTx(opts.numProcs, false);

  HistoryBuilder b;
  for (std::size_t i = 0; i < opts.numOps; ++i) {
    const auto p = static_cast<ProcessId>(rng.below(opts.numProcs));
    const auto x = static_cast<ObjectId>(objDraw.next(rng));
    switch (rng.below(6)) {
      case 0:
        if (!inTx[p]) {
          b.start(p);
          inTx[p] = true;
          break;
        }
        [[fallthrough]];
      case 1:
        if (inTx[p]) {
          rng.chance(opts.pctAbort, 100) ? b.abort(p) : b.commit(p);
          inTx[p] = false;
          break;
        }
        [[fallthrough]];
      default: {
        const bool mutate = rng.chance(opts.pctWrite, 100);
        if (isCounter[x]) {
          if (mutate) {
            const Word d = 1 + rng.below(2);
            shadow[x] += d;
            b.cmd(p, x, cmdCtrInc(d));
          } else {
            const Word v =
                rng.chance(opts.pctConsistent, 100) ? shadow[x] : rng.below(3);
            b.cmd(p, x, cmdCtrRead(v));
          }
        } else {
          if (mutate) {
            const Word v = rng.below(2);
            shadow[x] = v;
            b.write(p, x, v);
          } else {
            const Word v =
                rng.chance(opts.pctConsistent, 100) ? shadow[x] : rng.below(2);
            b.read(p, x, v);
          }
        }
        break;
      }
    }
  }
  out.history = b.build();
  return out;
}

GenOptions randomGenOptions(Rng& rng) {
  GenOptions opts;
  opts.numProcs = 2 + rng.below(2);     // 2-3
  opts.numObjects = 1 + rng.below(3);   // 1-3
  opts.numOps = 5 + rng.below(8);       // 5-12
  opts.pctCounter = rng.chance(1, 3) ? 50 : 0;
  opts.pctAbort = static_cast<unsigned>(rng.below(50));
  opts.pctWrite = 30 + static_cast<unsigned>(rng.below(40));
  opts.pctConsistent = 40 + static_cast<unsigned>(rng.below(55));
  // A third of the instances hammer a hot object (YCSB-style skew); the
  // rest stay uniform so sparse-conflict corners keep getting coverage.
  opts.zipfTheta = rng.chance(1, 3) ? 0.9 : 0.0;
  return opts;
}

theorems::StressOptions randomStressOptions(Rng& rng, std::uint64_t seed) {
  theorems::StressOptions opts;
  opts.seed = seed;
  opts.numProcs = 2 + rng.below(2);       // 2-3
  opts.numVars = 2 + rng.below(2);        // 2-3
  opts.actionsPerProc = 2 + rng.below(2); // 2-3
  opts.txLen = 1 + rng.below(3);          // 1-3
  opts.pctTx = 30 + static_cast<unsigned>(rng.below(70));
  opts.pctWrite = 30 + static_cast<unsigned>(rng.below(50));
  opts.zipfTheta = rng.chance(1, 3) ? 0.9 : 0.0;
  return opts;
}

const MemoryModel& randomModel(Rng& rng) {
  const auto models = allModels();
  return *models[rng.below(models.size())];
}

}  // namespace jungle::fuzz
