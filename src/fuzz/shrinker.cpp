#include "fuzz/shrinker.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace jungle::fuzz {

namespace {

/// The candidate is admissible iff it parses as a well-formed history and
/// still fails.  Ill-formed candidates (e.g. a dropped start leaving an
/// unmatched commit) are skipped, not treated as failures.
bool admissible(const History& candidate, const FailurePredicate& fails,
                std::size_t& tried) {
  ++tried;
  HistoryAnalysis analysis(candidate);
  if (!analysis.wellFormed()) return false;
  return fails(candidate);
}

History dropPositions(const History& h, const std::vector<std::size_t>& drop) {
  std::vector<std::size_t> keep;
  keep.reserve(h.size());
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    if (!std::binary_search(drop.begin(), drop.end(), pos)) keep.push_back(pos);
  }
  return h.subsequence(keep);
}

History mergeObjects(const History& h, ObjectId from, ObjectId onto) {
  std::vector<OpInstance> ops = h.ops();
  for (OpInstance& inst : ops) {
    if (inst.isCommand() && inst.obj == from) inst.obj = onto;
  }
  return History(std::move(ops));
}

}  // namespace

ShrinkResult shrinkHistory(const History& h, const FailurePredicate& fails) {
  JUNGLE_CHECK_MSG(fails(h), "shrinkHistory needs a failing input");
  ShrinkResult res;
  res.history = h;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    ++res.rounds;
    const History& cur = res.history;

    // 1. Whole transactions, largest first — the biggest single cut.
    {
      HistoryAnalysis analysis(cur);
      std::vector<std::size_t> order(analysis.transactions().size());
      for (std::size_t t = 0; t < order.size(); ++t) order[t] = t;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return analysis.transactions()[a].positions.size() >
               analysis.transactions()[b].positions.size();
      });
      for (std::size_t t : order) {
        std::vector<std::size_t> drop = analysis.transactions()[t].positions;
        std::sort(drop.begin(), drop.end());
        History candidate = dropPositions(cur, drop);
        if (admissible(candidate, fails, res.candidatesTried)) {
          res.history = std::move(candidate);
          progressed = true;
          break;
        }
      }
      if (progressed) continue;
    }

    // 2. Single instances, back to front (later drops disturb less).
    for (std::size_t pos = cur.size(); pos-- > 0;) {
      History candidate = dropPositions(cur, {pos});
      if (admissible(candidate, fails, res.candidatesTried)) {
        res.history = std::move(candidate);
        progressed = true;
        break;
      }
    }
    if (progressed) continue;

    // 3. Object merges: fold the highest object onto a lower one.
    {
      const std::vector<ObjectId> objs = cur.objects();
      for (std::size_t a = 0; a < objs.size() && !progressed; ++a) {
        for (std::size_t b = a + 1; b < objs.size(); ++b) {
          const ObjectId lo = std::min(objs[a], objs[b]);
          const ObjectId hi = std::max(objs[a], objs[b]);
          History candidate = mergeObjects(cur, hi, lo);
          if (admissible(candidate, fails, res.candidatesTried)) {
            res.history = std::move(candidate);
            progressed = true;
            break;
          }
        }
      }
    }
  }
  return res;
}

}  // namespace jungle::fuzz
