// Random-instance generators for the property-based testing subsystem.
//
// Two generator families mirror the paper's two levels:
//   * random *histories* (§2) — well-formed by construction, over a mix of
//     register and counter objects (the commutativity knob), with tunable
//     process count, object count, abort rate, and size; and
//   * random *TM workloads* — randomized StressOptions for the live TM
//     implementations of src/tm/, whose recorded traces (§4) are then
//     checked against the memory model each theorem claims.
//
// Everything is seeded and reproducible: the same Rng stream yields the
// same instance on every platform (see common/rng.hpp), so any failure is
// replayed from its seed alone.
#pragma once

#include "common/rng.hpp"
#include "history/history.hpp"
#include "memmodel/memory_model.hpp"
#include "spec/spec_map.hpp"
#include "theorems/conformance.hpp"

namespace jungle::fuzz {

struct GenOptions {
  std::size_t numProcs = 3;
  std::size_t numObjects = 2;
  /// Target number of operation instances (the generator may emit slightly
  /// fewer when a draw lands on an inapplicable move).
  std::size_t numOps = 9;
  /// Percent of objects given counter semantics (increments commute, so
  /// more serializations are legal than with registers).
  unsigned pctCounter = 0;
  /// Percent of transaction closings that abort instead of committing.
  unsigned pctAbort = 25;
  /// Percent of command draws that mutate (write / inc) vs observe.
  unsigned pctWrite = 50;
  /// Percent of observing commands that return the value a serial shadow
  /// execution would produce; the rest return small noise values.  High
  /// values lean satisfiable, low values lean violating — the differential
  /// oracle needs a healthy mix of both verdicts.
  unsigned pctConsistent = 60;
  /// Zipfian skew of the object draws (common/zipf.hpp); 0 = uniform.
  /// Skewed draws concentrate the history on a hot object, the regime
  /// where write-write conflicts and version chains actually form.
  double zipfTheta = 0.0;
};

/// A generated instance: the history plus the specification map its
/// objects were generated against (counters need CounterSpec).
struct GeneratedInstance {
  History history;
  SpecMap specs;
  std::vector<ObjectId> counterObjects;
};

/// Draws a well-formed random history.  Never produces nested starts or
/// unmatched commits; transactions left incomplete at the end are allowed
/// (the paper's histories are prefixes of executions).
GeneratedInstance randomHistory(Rng& rng, const GenOptions& opts);

/// Diversifies the generator parameters themselves, so one fuzz run sweeps
/// many corners of the instance space (sizes, abort-heavy, counter-heavy,
/// noise-heavy, ...).  Sizes stay small enough that the decision
/// procedures are exhaustive, which keeps every verdict conclusive.
GenOptions randomGenOptions(Rng& rng);

/// Randomized TM workload parameters for trace-mode fuzzing.  Sizes are
/// bounded so the per-trace conformance check completes within the fuzz
/// loop's deadline.
theorems::StressOptions randomStressOptions(Rng& rng, std::uint64_t seed);

/// A memory model drawn uniformly from allModels().
const MemoryModel& randomModel(Rng& rng);

}  // namespace jungle::fuzz
