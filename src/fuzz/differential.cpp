#include "fuzz/differential.hpp"

#include <set>
#include <string>
#include <utility>

#include "history/sequential.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"

namespace jungle::fuzz {

namespace {

bool hasAbortedTransaction(const History& h) {
  HistoryAnalysis analysis(h);
  for (const Transaction& t : analysis.transactions()) {
    if (t.aborted) return true;
  }
  return false;
}

const char* verdictName(bool satisfied) {
  return satisfied ? "satisfied" : "violated";
}

/// Compares one condition's three verdicts, folding into `out`.  Either
/// engine being inconclusive voids the whole comparison for this
/// condition — a resource stop is not evidence.
void compare(DiffOutcome& out, const std::string& condition,
             const CheckResult& serial, const CheckResult& parallel,
             bool parallelSatisfied, RefVerdict ref) {
  if (serial.inconclusive || parallel.inconclusive) {
    out.inconclusive = true;
    return;
  }
  if (serial.satisfied != parallelSatisfied) {
    out.mismatch = true;
    out.description += condition + ": serial=" + verdictName(serial.satisfied) +
                       " parallel=" + verdictName(parallelSatisfied) + "\n";
  }
  if (ref != RefVerdict::kTooLarge) {
    out.referenceUsed = true;
    const bool refSat = ref == RefVerdict::kSatisfied;
    if (refSat != serial.satisfied) {
      out.mismatch = true;
      out.description += condition +
                         ": reference=" + refVerdictName(ref) +
                         " serial=" + verdictName(serial.satisfied) + "\n";
    }
    if (refSat != parallelSatisfied) {
      out.mismatch = true;
      out.description += condition +
                         ": reference=" + refVerdictName(ref) +
                         " parallel=" + verdictName(parallelSatisfied) + "\n";
    }
  }
}

}  // namespace

DiffOutcome diffCheckHistory(const GeneratedInstance& gen,
                             const MemoryModel& m, const DiffOptions& opts) {
  DiffOutcome out;
  const History& h = gen.history;
  const SpecMap& specs = gen.specs;

  // Parametrized opacity under the drawn model — the mutation target.
  {
    const CheckResult a = checkParametrizedOpacity(h, m, specs, opts.serial);
    const CheckResult b = checkParametrizedOpacity(h, m, specs, opts.parallel);
    bool bSat = b.satisfied;
    if (opts.mutation == Mutation::kAcceptAborted && hasAbortedTransaction(h)) {
      bSat = true;
    }
    compare(out, std::string("popacity/") + m.name(), a, b, bSat,
            referencePopacity(h, m, specs, opts.reference));
  }

  // Classical opacity (SC instance).
  {
    const CheckResult a = checkOpacity(h, specs, opts.serial);
    const CheckResult b = checkOpacity(h, specs, opts.parallel);
    compare(out, "opacity", a, b, b.satisfied,
            referenceOpacity(h, specs, opts.reference));
  }

  // Strict serializability (erasure path).
  {
    const CheckResult a = checkStrictSerializability(h, specs, opts.serial);
    const CheckResult b = checkStrictSerializability(h, specs, opts.parallel);
    compare(out, "strict-ser", a, b, b.satisfied,
            referenceStrictSerializability(h, specs, opts.reference));
  }

  // Snapshot isolation (first-committer-wins pre-check + interval-slack
  // split).  SI is defined over SC snapshots, so no model parameter.
  {
    const CheckResult a = checkSnapshotIsolation(h, specs, opts.serial);
    const CheckResult b = checkSnapshotIsolation(h, specs, opts.parallel);
    compare(out, "si", a, b, b.satisfied,
            referenceSnapshotIsolation(h, specs, opts.reference));
  }

  // SGLA under the drawn model (engine-vs-engine only; the brute-force
  // reference implements the opacity family, not lock-based sequentiality).
  {
    SglaOptions sa;
    sa.limits = opts.serial;
    SglaOptions sb;
    sb.limits = opts.parallel;
    const CheckResult a = checkSgla(h, m, specs, sa);
    const CheckResult b = checkSgla(h, m, specs, sb);
    compare(out, std::string("sgla/") + m.name(), a, b, b.satisfied,
            RefVerdict::kTooLarge);
  }

  return out;
}

namespace {

/// One exploration leg of the schedule differential.
struct ScheduleLeg {
  ExplorationStats stats;
  std::uint64_t failures = 0;
  std::uint64_t inconclusiveRuns = 0;
};

ScheduleLeg exploreLeg(const theorems::ExplorerWorkload& w,
                       ExploreOptions opts) {
  ScheduleLeg leg;
  if (w.passingModel == nullptr) {
    leg.stats = exploreSchedules(w.numThreads, w.words, w.program, opts,
                                 [](const RunOutcome&) { return true; });
    return leg;
  }
  const SpecMap registers;
  const theorems::ModelCheckReport rep = theorems::modelCheckProgram(
      w.numThreads, w.words, w.program, *w.passingModel, registers, opts,
      /*maxViolationSamples=*/0);
  leg.stats = rep.stats;
  leg.failures = rep.stats.failures;
  leg.inconclusiveRuns = rep.inconclusiveRuns;
  return leg;
}

/// True when the exploration did not cover the whole schedule space, so
/// set-equality across strategies proves nothing.
bool partialExploration(const ExplorationStats& s) {
  return s.runBudgetExhausted || s.deadlineExpired || s.cutRuns > 0;
}

void compareKeySets(ScheduleDiffOutcome& out, const std::string& name,
                    const ExplorationStats& dfs, const ExplorationStats& other,
                    std::uint64_t dfsFailures, std::uint64_t otherFailures) {
  if ((dfsFailures > 0) != (otherFailures > 0)) {
    out.mismatch = true;
    out.description += name + ": verdict differs (dfs failures=" +
                       std::to_string(dfsFailures) + ", " + name +
                       " failures=" + std::to_string(otherFailures) + ")\n";
  }
  if (dfs.historyKeys == other.historyKeys) return;
  out.mismatch = true;
  // Both key lists are sorted; surface the first key present in exactly
  // one of the two sets as the witness.
  std::uint64_t witness = 0;
  std::size_t i = 0, j = 0;
  while (i < dfs.historyKeys.size() && j < other.historyKeys.size()) {
    if (dfs.historyKeys[i] == other.historyKeys[j]) {
      ++i;
      ++j;
    } else if (dfs.historyKeys[i] < other.historyKeys[j]) {
      witness = dfs.historyKeys[i];
      break;
    } else {
      witness = other.historyKeys[j];
      break;
    }
  }
  if (witness == 0) {
    witness = i < dfs.historyKeys.size() ? dfs.historyKeys[i]
                                         : other.historyKeys[j];
  }
  out.description += name + ": history sets differ (dfs " +
                     std::to_string(dfs.historyKeys.size()) + " vs " + name +
                     " " + std::to_string(other.historyKeys.size()) +
                     "; first one-sided key " + std::to_string(witness) +
                     ")\n";
}

}  // namespace

ScheduleDiffOutcome diffCheckSchedules(const theorems::ExplorerWorkload& w,
                                       const ExploreOptions& base) {
  ScheduleDiffOutcome out;

  ExploreOptions dfsOpts = base;
  dfsOpts.strategy = ExploreStrategyKind::kExhaustiveDfs;
  dfsOpts.threads = 1;
  ExploreOptions dporOpts = base;
  dporOpts.strategy = ExploreStrategyKind::kSleepSetDpor;
  dporOpts.threads = 1;
  ExploreOptions dporParOpts = dporOpts;
  dporParOpts.threads = 2;

  const ScheduleLeg dfs = exploreLeg(w, dfsOpts);
  const ScheduleLeg dpor = exploreLeg(w, dporOpts);
  const ScheduleLeg dporPar = exploreLeg(w, dporParOpts);
  out.dfs = dfs.stats;
  out.dpor = dpor.stats;
  out.dporParallel = dporPar.stats;

  if (partialExploration(dfs.stats) || partialExploration(dpor.stats) ||
      partialExploration(dporPar.stats) || dfs.inconclusiveRuns > 0 ||
      dpor.inconclusiveRuns > 0 || dporPar.inconclusiveRuns > 0) {
    out.inconclusive = true;
    return out;
  }

  compareKeySets(out, "dpor", dfs.stats, dpor.stats, dfs.failures,
                 dpor.failures);
  compareKeySets(out, "dpor-par", dfs.stats, dporPar.stats, dfs.failures,
                 dporPar.failures);
  return out;
}

PropertyOutcome checkHistoryProperties(const GeneratedInstance& gen,
                                       const MemoryModel& m,
                                       const SearchLimits& limits) {
  PropertyOutcome out;
  const History& h = gen.history;
  const SpecMap& specs = gen.specs;

  const CheckResult po = checkParametrizedOpacity(h, m, specs, limits);
  if (po.inconclusive) {
    out.inconclusive = true;
    return out;
  }

  // Witness self-validation: a satisfied verdict must come with a witness
  // that passes the reference definitions directly.
  if (po.satisfied) {
    if (!po.witness.has_value()) {
      out.violated = true;
      out.description += "satisfied but no witness\n";
      return out;
    }
    const History ht = m.transform(h);
    HistoryAnalysis analysis(ht);
    const History& w = *po.witness;
    if (!isSequential(w)) {
      out.violated = true;
      out.description += "witness is not sequential\n";
    }
    if (!everyOperationLegal(w, specs)) {
      out.violated = true;
      out.description += "witness has an illegal operation\n";
    }
    if (!respectsOrder(w, analysis.realTimePairs())) {
      out.violated = true;
      out.description += "witness violates the real-time order\n";
    }
    if (!respectsOrder(w, requiredViewPairs(m, ht, analysis))) {
      out.violated = true;
      out.description += "witness violates the minimal view\n";
    }
  }

  // Theorem 6: parametrized opacity implies SGLA for the same model.
  SglaOptions sglaOpts;
  sglaOpts.limits = limits;
  const CheckResult sg = checkSgla(h, m, specs, sglaOpts);
  if (po.satisfied && !sg.satisfied) {
    if (sg.inconclusive) {
      out.inconclusive = true;
    } else {
      out.violated = true;
      out.description +=
          std::string("Theorem 6 broken: popacity/") + m.name() +
          " satisfied but SGLA violated\n";
    }
  }

  // Constraint monotonicity: when m's minimal view is a subset of SC's
  // (and both use the identity τ), an SC witness is an m witness, so
  // satisfied-under-SC forces satisfied-under-m.
  if (&m != &scModel() && &m != &junkScModel()) {
    HistoryAnalysis analysis(h);
    const auto viewM = requiredViewPairs(m, h, analysis);
    const auto viewSc = requiredViewPairs(scModel(), h, analysis);
    std::set<std::pair<OpId, OpId>> scSet(viewSc.begin(), viewSc.end());
    bool subset = true;
    for (const auto& pr : viewM) {
      if (!scSet.count(pr)) {
        subset = false;
        break;
      }
    }
    if (subset) {
      const CheckResult sc = checkOpacity(h, specs, limits);
      if (sc.inconclusive) {
        out.inconclusive = true;
      } else if (sc.satisfied && !po.satisfied) {
        out.violated = true;
        out.description += std::string("monotonicity broken: SC satisfied "
                                       "but weaker model ") +
                           m.name() + " violated\n";
      }
    }
  }

  return out;
}

}  // namespace jungle::fuzz
