// Brute-force reference checker — the differential oracle's third voice.
//
// Decides parametrized opacity (and its opacity / strict-serializability
// instances) by naive enumeration: every permutation of τ(h) is tested
// against the *reference* definitions of history/sequential.hpp
// (sequentiality, prefix-visible legality, ≺h, minimal view).  It shares no
// code with the DecisionEngine's legality-directed search — no unit graph,
// no memoization, no pruning, no portfolio — so agreement between the two
// on random instances is evidence about the definitions, not about a shared
// bug.  Only viable for tiny instances (≤ 4 transactions and a handful of
// operations); larger inputs report kTooLarge rather than guessing.
#pragma once

#include "history/history.hpp"
#include "memmodel/memory_model.hpp"
#include "spec/spec_map.hpp"

namespace jungle::fuzz {

enum class RefVerdict {
  kSatisfied,
  kViolated,
  /// The instance exceeds the enumeration caps; no verdict.
  kTooLarge,
};

const char* refVerdictName(RefVerdict v);

struct ReferenceLimits {
  /// Enumeration caps: |τ(h)| ≤ maxOps and ≤ maxTransactions transactions.
  /// 9! ≈ 363k permutations is the most the naive loop should ever chew.
  std::size_t maxOps = 9;
  std::size_t maxTransactions = 4;
};

/// ∃ permutation s of τ(h): sequential, every operation legal, respecting
/// ≺h and the model's minimal view — parametrized opacity by enumeration.
RefVerdict referencePopacity(const History& h, const MemoryModel& m,
                             const SpecMap& specs,
                             const ReferenceLimits& limits = {});

/// Classical opacity: the SC-parametrized instance.
RefVerdict referenceOpacity(const History& h, const SpecMap& specs,
                            const ReferenceLimits& limits = {});

/// Strict serializability: erase aborted and incomplete transactions, then
/// referenceOpacity on the remainder.
RefVerdict referenceStrictSerializability(const History& h,
                                          const SpecMap& specs,
                                          const ReferenceLimits& limits = {});

/// Snapshot isolation by enumeration: erase non-committed transactions,
/// reject first-committer-wins violations, apply the interval-slack
/// read/write split (opacity/snapshot.hpp), then enumerate serializations
/// of the split history honoring the R-part ≺ W-part order — independent
/// of the DecisionEngine's unit-graph search.
RefVerdict referenceSnapshotIsolation(const History& h, const SpecMap& specs,
                                      const ReferenceLimits& limits = {});

/// The erasure shared by the strict-serializability reference and the
/// engine (reimplemented here from the definition; exposed for tests).
History eraseNonCommittedTransactions(const History& h);

}  // namespace jungle::fuzz
