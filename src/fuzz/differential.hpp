// The differential oracle: one instance, three independent deciders.
//
// For a generated history the oracle cross-checks, per condition, the
// sequential engine (threads = 1 — the exact pre-portfolio enumeration),
// the parallel portfolio engine (threads = 4), and — when the instance is
// small enough — the brute-force reference checker.  Any conclusive
// disagreement is a bug in one of the three; inconclusive verdicts
// (budget / deadline stops) void the comparison instead of counting as
// violations.
//
// Histories mode adds metamorphic properties that need no second decider:
// witness self-validation against the reference definitions, Theorem 6
// (parametrized opacity ⇒ SGLA for the same model), and constraint
// monotonicity (fewer required view pairs can only make satisfaction
// easier).
#pragma once

#include <string>

#include "fuzz/generator.hpp"
#include "fuzz/reference_checker.hpp"
#include "opacity/legal_search.hpp"
#include "theorems/explorer_workloads.hpp"

namespace jungle::fuzz {

/// Engine-bug mutations for self-testing the fuzz harness: the mutated
/// verdict emulates a representative defect class, and the harness must
/// catch and shrink it (see docs/TESTING.md).
enum class Mutation {
  kNone,
  /// The parallel engine wrongly accepts any history containing an aborted
  /// transaction — the defect class where erasure semantics leak from
  /// strict serializability into opacity.
  kAcceptAborted,
};

struct DiffOptions {
  /// Per-decider limits; serial must keep threads == 1.
  SearchLimits serial;
  SearchLimits parallel;
  ReferenceLimits reference;
  Mutation mutation = Mutation::kNone;

  DiffOptions() { parallel.threads = 4; }
};

struct DiffOutcome {
  /// Two conclusive deciders disagreed.
  bool mismatch = false;
  /// Some decider stopped on a resource limit; the instance proves nothing
  /// and must never be persisted or counted as a violation.
  bool inconclusive = false;
  /// The brute-force reference produced a verdict for ≥ 1 condition.
  bool referenceUsed = false;
  std::string description;
};

/// Cross-checks parametrized opacity (under `m`), opacity, strict
/// serializability, and SGLA (under `m`) on one instance.
DiffOutcome diffCheckHistory(const GeneratedInstance& gen,
                             const MemoryModel& m, const DiffOptions& opts);

struct PropertyOutcome {
  bool violated = false;
  bool inconclusive = false;
  std::string description;
};

/// Histories-mode metamorphic properties on one instance.
PropertyOutcome checkHistoryProperties(const GeneratedInstance& gen,
                                       const MemoryModel& m,
                                       const SearchLimits& limits);

struct ScheduleDiffOutcome {
  /// Conclusive strategy disagreement: different distinct-canonical-history
  /// sets, or (with a model to check against) different verdicts.
  bool mismatch = false;
  /// Some exploration was cut, budget-capped, or deadline-stopped —
  /// history-set equivalence is only defined for full explorations.
  bool inconclusive = false;
  std::string description;
  ExplorationStats dfs;
  ExplorationStats dpor;
  ExplorationStats dporParallel;
};

/// Explores the workload three ways — exhaustive DFS, serial sleep-set
/// DPOR, and 2-thread frontier-parallel DPOR — and cross-checks the
/// distinct-canonical-history sets (and, when `w.passingModel` is set, the
/// conformance verdicts).  The strategy-equivalence differential oracle:
/// DPOR prunes schedules, never histories.
ScheduleDiffOutcome diffCheckSchedules(const theorems::ExplorerWorkload& w,
                                       const ExploreOptions& base);

}  // namespace jungle::fuzz
