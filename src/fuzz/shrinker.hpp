// Delta-debugging shrinker: minimize a failing history while preserving
// the failure.
//
// Given a history and a predicate "still exhibits the bug", the shrinker
// greedily applies three reduction moves until a fixpoint:
//   * drop a whole transaction (all of its instances),
//   * drop a single instance (command, start, commit, or abort — the
//     candidate is discarded if removal leaves the history ill-formed), and
//   * merge two objects (remap every command on the higher-numbered object
//     onto the lower-numbered one).
// Every accepted candidate is re-validated through the predicate, so the
// result is the smallest history this move set can reach that still fails.
// Predicates should treat inconclusive verdicts as "not failing" — a
// shrink step must never turn a resource-limited check into evidence.
#pragma once

#include <functional>

#include "history/history.hpp"

namespace jungle::fuzz {

/// Returns true when the candidate still exhibits the failure under
/// investigation.  Candidates are always well-formed.
using FailurePredicate = std::function<bool(const History&)>;

struct ShrinkResult {
  History history;
  /// Fixpoint rounds and total predicate evaluations, for telemetry.
  std::size_t rounds = 0;
  std::size_t candidatesTried = 0;
};

/// Minimizes `h` under `fails`.  `fails(h)` must hold on entry (checked).
ShrinkResult shrinkHistory(const History& h, const FailurePredicate& fails);

}  // namespace jungle::fuzz
