#include "fuzz/reference_checker.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "history/sequential.hpp"
#include "memmodel/models.hpp"
#include "opacity/snapshot.hpp"

namespace jungle::fuzz {

const char* refVerdictName(RefVerdict v) {
  switch (v) {
    case RefVerdict::kSatisfied:
      return "satisfied";
    case RefVerdict::kViolated:
      return "violated";
    case RefVerdict::kTooLarge:
      return "too-large";
  }
  return "?";
}

namespace {

/// Dependence annotations are program-order metadata of the *original*
/// history: they feed ≺h and requiredViewPairs, but a serialization that
/// the model allows to reorder a dependent command ahead of its source is
/// still a valid witness.  Well-formedness would reject such an order
/// (deps must reference earlier instances), so once the order constraints
/// are extracted the annotations are erased — cdrd/ddrd behave as rd,
/// cdwr/ddwr as wr — before enumerating candidate serializations.
History eraseDependenceAnnotations(const History& h) {
  std::vector<OpInstance> ops = h.ops();
  for (OpInstance& inst : ops) {
    if (!inst.isCommand()) continue;
    if (inst.cmd.isReadLike() && !inst.cmd.deps.empty()) {
      inst.cmd.kind = CmdKind::kRead;
    } else if (inst.cmd.isWriteLike() && !inst.cmd.deps.empty()) {
      inst.cmd.kind = CmdKind::kWrite;
    }
    inst.cmd.deps.clear();
  }
  return History(std::move(ops));
}

/// The shared enumeration core: ∃ permutation of `h` (after `m`'s
/// annotation transform) that is sequential, legal, and respects the
/// real-time order, the model's minimal view, and `extraOrder`.
RefVerdict enumerateSerializations(
    const History& h, const MemoryModel& m, const SpecMap& specs,
    const ReferenceLimits& limits,
    const std::vector<std::pair<OpId, OpId>>& extraOrder) {
  const History annotated = m.transform(h);
  HistoryAnalysis analysis(annotated);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");
  if (annotated.size() > limits.maxOps ||
      analysis.transactions().size() > limits.maxTransactions) {
    return RefVerdict::kTooLarge;
  }
  const auto rt = analysis.realTimePairs();
  const auto view = requiredViewPairs(m, annotated, analysis);
  const History ht = eraseDependenceAnnotations(annotated);

  std::vector<std::size_t> perm(ht.size());
  std::iota(perm.begin(), perm.end(), 0);
  do {
    History s = ht.subsequence(perm);
    if (!isSequential(s)) continue;
    if (!respectsOrder(s, rt)) continue;
    if (!respectsOrder(s, view)) continue;
    if (!respectsOrder(s, extraOrder)) continue;
    if (!everyOperationLegal(s, specs)) continue;
    return RefVerdict::kSatisfied;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return RefVerdict::kViolated;
}

}  // namespace

RefVerdict referencePopacity(const History& h, const MemoryModel& m,
                             const SpecMap& specs,
                             const ReferenceLimits& limits) {
  return enumerateSerializations(h, m, specs, limits, {});
}

RefVerdict referenceOpacity(const History& h, const SpecMap& specs,
                            const ReferenceLimits& limits) {
  return referencePopacity(h, scModel(), specs, limits);
}

RefVerdict referenceStrictSerializability(const History& h,
                                          const SpecMap& specs,
                                          const ReferenceLimits& limits) {
  return referenceOpacity(eraseNonCommittedTransactions(h), specs, limits);
}

RefVerdict referenceSnapshotIsolation(const History& h, const SpecMap& specs,
                                      const ReferenceLimits& limits) {
  const History erased = eraseNonCommittedTransactions(h);
  if (firstCommitterWinsViolation(erased).has_value()) {
    return RefVerdict::kViolated;
  }
  SnapshotSplit split = snapshotSplitHistory(erased);
  // The caps apply to the split history: the split doubles read-write
  // transactions, so instances near the popacity caps may report
  // too-large here — correctness over coverage for the oracle.
  return enumerateSerializations(split.history, scModel(), specs, limits,
                                 split.orderPairs);
}

History eraseNonCommittedTransactions(const History& h) {
  HistoryAnalysis analysis(h);
  JUNGLE_CHECK_MSG(analysis.wellFormed(), "ill-formed history");
  std::vector<std::size_t> keep;
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    auto tx = analysis.transactionOf(pos);
    if (!tx.has_value() || analysis.transactions()[*tx].committed) {
      keep.push_back(pos);
    }
  }
  return h.subsequence(keep);
}

}  // namespace jungle::fuzz
