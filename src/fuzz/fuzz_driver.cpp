#include "fuzz/fuzz_driver.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "fuzz/reference_checker.hpp"
#include "fuzz/shrinker.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "monitor/monitor.hpp"
#include "opacity/popacity.hpp"
#include "sim/memory_policy.hpp"
#include "tm/runtime.hpp"

namespace jungle::fuzz {

namespace {

const char* mutationName(Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return "none";
    case Mutation::kAcceptAborted:
      return "accept-aborted";
  }
  return "?";
}

/// Writes a shrunk repro as a commented .hist file; returns its path.
std::string persistRepro(const std::string& dir, const std::string& stem,
                         const History& h, const std::string& description) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + stem + ".hist";
  std::ofstream out(path);
  out << "# fuzz_jungle repro (delta-shrunk; regenerate with the header "
         "below)\n";
  std::istringstream desc(description);
  for (std::string line; std::getline(desc, line);) {
    out << "# " << line << "\n";
  }
  out << litmus::printHistory(h);
  return path;
}

void recordFailure(FuzzReport& report, const FuzzOptions& opts,
                   std::uint64_t iter, const std::string& description,
                   const History& failing, const FailurePredicate& fails) {
  FuzzFailure f;
  f.description = description;
  f.shrunk = shrinkHistory(failing, fails).history;
  if (!opts.reproDir.empty()) {
    const std::string stem = std::string(fuzzModeName(opts.mode)) + "-s" +
                             std::to_string(opts.seed) + "-i" +
                             std::to_string(iter);
    f.file = persistRepro(opts.reproDir, stem, f.shrunk, description);
  }
  report.failures.push_back(std::move(f));
}

/// The theorem each live TM is on the hook for (Theorems 3-5, §6.1); the
/// Tl2 baseline only claims opacity on purely transactional workloads,
/// and the MVCC family claims snapshot isolation (si-mvcc) or strict
/// serializability (si-ssn) rather than parametrized opacity — the same
/// table the monitor uses (monitorModelFor).
struct TmClaim {
  TmKind kind;
  const MemoryModel* model;
  bool pureTxOnly;
  ConditionKind condition;
};

const std::vector<TmClaim>& tmClaims() {
  static const std::vector<TmClaim> claims = [] {
    std::vector<TmClaim> c{
        {TmKind::kGlobalLock, &idealizedModel(), false,
         ConditionKind::kParametrizedOpacity},
        {TmKind::kWriteAsTx, &alphaModel(), false,
         ConditionKind::kParametrizedOpacity},
        {TmKind::kVersionedWrite, &alphaModel(), false,
         ConditionKind::kParametrizedOpacity},
        {TmKind::kStrongAtomicity, &scModel(), false,
         ConditionKind::kParametrizedOpacity},
        {TmKind::kTl2Weak, &scModel(), true,
         ConditionKind::kParametrizedOpacity},
        {TmKind::kSnapshotIsolation, &scModel(), false,
         ConditionKind::kSnapshotIsolation},
        {TmKind::kSiSsn, &scModel(), false,
         ConditionKind::kStrictSerializability},
    };
    JUNGLE_CHECK(c.size() == kTmKindCount);  // every kind has a claim
    return c;
  }();
  return claims;
}

/// Uniform claim draw, or the pinned kind when --tm restricts the run.
const TmClaim& drawClaim(const FuzzOptions& opts, Rng& rng) {
  const auto& claims = tmClaims();
  if (opts.tmFilter.has_value()) {
    for (const TmClaim& c : claims) {
      if (c.kind == *opts.tmFilter) return c;
    }
  }
  return claims[rng.below(claims.size())];
}

void runEngineDiffIteration(const FuzzOptions& opts, std::uint64_t iter,
                            Rng& rng, const DiffOptions& diffOpts,
                            FuzzReport& report) {
  const GeneratedInstance gen = randomHistory(rng, randomGenOptions(rng));
  const MemoryModel& m = randomModel(rng);
  const DiffOutcome out = diffCheckHistory(gen, m, diffOpts);
  if (out.referenceUsed) ++report.referenceChecks;
  if (out.mismatch) {
    ++report.disagreements;
    const std::string desc = "mode=engine-diff seed=" +
                             std::to_string(opts.seed) + " iter=" +
                             std::to_string(iter) + " model=" + m.name() +
                             " mutation=" + mutationName(opts.mutation) +
                             "\n" + out.description;
    recordFailure(report, opts, iter, desc, gen.history,
                  [&](const History& cand) {
                    GeneratedInstance g{cand, gen.specs, gen.counterObjects};
                    return diffCheckHistory(g, m, diffOpts).mismatch;
                  });
  } else if (out.inconclusive) {
    ++report.inconclusive;
  }
}

void runHistoriesIteration(const FuzzOptions& opts, std::uint64_t iter,
                           Rng& rng, const SearchLimits& limits,
                           FuzzReport& report) {
  const GeneratedInstance gen = randomHistory(rng, randomGenOptions(rng));
  const MemoryModel& m = randomModel(rng);
  const PropertyOutcome out = checkHistoryProperties(gen, m, limits);
  if (out.violated) {
    ++report.propertyViolations;
    const std::string desc = "mode=histories seed=" +
                             std::to_string(opts.seed) + " iter=" +
                             std::to_string(iter) + " model=" + m.name() +
                             "\n" + out.description;
    recordFailure(report, opts, iter, desc, gen.history,
                  [&](const History& cand) {
                    GeneratedInstance g{cand, gen.specs, gen.counterObjects};
                    return checkHistoryProperties(g, m, limits).violated;
                  });
  } else if (out.inconclusive) {
    ++report.inconclusive;
  }
}

/// Explorer-sampled TM stress: random schedules of a live TM workload,
/// every completed trace checked against the TM's claimed model.
void runTraceSampleIteration(const FuzzOptions& opts, std::uint64_t iter,
                             Rng& rng, FuzzReport& report) {
  const TmClaim& claim = drawClaim(opts, rng);
  theorems::StressOptions stress = randomStressOptions(rng, rng());
  if (claim.pureTxOnly) stress.pctTx = 100;

  ExploreOptions eopts;
  eopts.strategy = ExploreStrategyKind::kRandomSampling;
  eopts.samples = 3;
  eopts.seed = rng();
  eopts.maxSteps = 2000;  // TM retry loops need headroom
  eopts.dedupHistories = true;
  eopts.timeout = opts.traceCheckTimeout * eopts.samples;

  const theorems::ModelCheckReport mc = theorems::modelCheckProgram(
      stress.numProcs, theorems::stressWords(claim.kind, stress),
      theorems::stressProgram(claim.kind, stress), *claim.model, SpecMap{},
      eopts, /*maxViolationSamples=*/2, claim.condition);
  report.schedulesExplored += mc.stats.runs;
  report.cutRuns += mc.stats.cutRuns;
  report.dedupHits += mc.stats.dedupHits;
  if (mc.inconclusiveRuns > 0 || mc.stats.deadlineExpired) {
    ++report.inconclusive;
  }
  if (mc.stats.failures == 0) return;

  ++report.traceViolations;
  std::string desc =
      "mode=traces seed=" + std::to_string(opts.seed) + " iter=" +
      std::to_string(iter) + " tm=" + tmKindName(claim.kind) + " model=" +
      claim.model->name() + " condition=" +
      conditionKindName(claim.condition) + " stress-seed=" +
      std::to_string(stress.seed) + " explore-seed=" +
      std::to_string(eopts.seed) +
      "\nno corresponding history of an explored trace satisfies the\n"
      "claimed condition; the shrunk canonical corresponding history below\n"
      "still violates it (diagnostic repro; replay the seeds for the full\n"
      "schedule)";
  if (mc.violations.empty()) {
    FuzzFailure f;
    f.description = desc;
    report.failures.push_back(std::move(f));
    return;
  }
  // The canonical history is itself a corresponding history, so a negative
  // trace verdict means it is conclusively violated; shrink that.
  SearchLimits limits;
  limits.maxExpansions = 0;
  limits.timeout = opts.traceCheckTimeout;
  const SpecMap registers;
  const MemoryModel& m = *claim.model;
  const History& canonical = mc.violations.front().second;
  // Shrinking keeps only "some condition violation", which can collapse a
  // subtle anomaly into a vacuous core (e.g. a lone unjustified read once
  // the writer is dropped) — so the unshrunk canonical history rides along
  // in the description for triage.
  desc += "\ncanonical corresponding history (unshrunk):\n" +
          litmus::formatHistory(canonical);
  auto canonicalFails = [&](const History& cand) {
    const CheckResult c =
        checkCondition(claim.condition, cand, m, registers, limits);
    return !c.satisfied && !c.inconclusive;
  };
  if (canonicalFails(canonical)) {
    recordFailure(report, opts, iter, desc, canonical, canonicalFails);
  } else {
    FuzzFailure f;
    f.description = desc;
    f.shrunk = canonical;
    report.failures.push_back(std::move(f));
  }
}

/// Strategy differential: DFS vs serial DPOR vs frontier-parallel DPOR on
/// a generated raw-marker workload — verdicts and distinct canonical
/// history sets must match exactly.
void runScheduleDiffIteration(const FuzzOptions& opts, std::uint64_t iter,
                              Rng& rng, FuzzReport& report) {
  const theorems::ExplorerWorkload w = theorems::generatedWorkload(rng());
  ExploreOptions base;
  base.maxRuns = 20'000;
  base.timeout = std::chrono::milliseconds(20'000);
  const ScheduleDiffOutcome out = diffCheckSchedules(w, base);
  report.schedulesExplored +=
      out.dfs.runs + out.dpor.runs + out.dporParallel.runs;
  report.cutRuns += out.dfs.cutRuns + out.dpor.cutRuns +
                    out.dporParallel.cutRuns;
  if (out.inconclusive) {
    ++report.inconclusive;
    return;
  }
  if (!out.mismatch) return;

  ++report.disagreements;
  FuzzFailure f;
  f.description =
      "mode=traces seed=" + std::to_string(opts.seed) + " iter=" +
      std::to_string(iter) + " workload=" + w.name +
      " (strategy differential)\n" + out.description +
      "dfs: " + out.dfs.summary() + "\ndpor: " + out.dpor.summary() +
      "\ndpor-par: " + out.dporParallel.summary();
  report.failures.push_back(std::move(f));
}

/// Monitor leg: the same TMs on real OS threads under the always-on
/// runtime monitor (src/monitor/) — the fourth differential surface.  The
/// explorer legs check simulated interleavings; this one checks genuinely
/// concurrent executions, so the verdicts must agree: any conclusive
/// monitor violation of a stock TM is a bug in the TM or in the monitor,
/// and its already-shrunk window is the repro.
/// Reference-checker voice for the monitor's claimed condition — the
/// third leg of the certifier/engine/reference differential.
RefVerdict referenceForCondition(ConditionKind cond, const History& h,
                                 const MemoryModel& m) {
  switch (cond) {
    case ConditionKind::kParametrizedOpacity:
      return referencePopacity(h, m, SpecMap{});
    case ConditionKind::kOpacity:
      return referenceOpacity(h, SpecMap{});
    case ConditionKind::kStrictSerializability:
      return referenceStrictSerializability(h, SpecMap{});
    case ConditionKind::kSnapshotIsolation:
      return referenceSnapshotIsolation(h, SpecMap{});
  }
  return RefVerdict::kTooLarge;
}

/// One monitored run at a given shard count; returns true when the
/// monitor convicted and a failure was recorded.
bool runMonitorOnce(const FuzzOptions& opts, std::uint64_t iter,
                    const TmClaim& claim, const monitor::WorkloadOptions& w,
                    std::size_t shards, unsigned collectorThreads,
                    std::size_t placementWindow, bool certifier,
                    FuzzReport& report) {
  NativeMemory mem(runtimeMemoryWords(claim.kind, w.numVars));
  const auto tm = makeNativeRuntime(claim.kind, mem, w.numVars, w.threads);
  monitor::MonitorOptions mo;
  mo.recheckTimeout = opts.traceCheckTimeout;
  mo.shards = shards;
  mo.collectorThreads = collectorThreads;
  mo.placementWindow = placementWindow;
  mo.certifier = certifier;
  monitor::TmMonitor mon(*tm, w.threads, mo);
  monitor::runMonitoredWorkload(mon.runtime(), w);
  mon.stop();

  report.monitorEvents += mon.stats().eventsCaptured;
  if (mon.stats().stream.inconclusiveRechecks > 0) ++report.inconclusive;
  if (mon.ok()) return false;

  ++report.monitorViolations;
  // The checker already delta-shrunk each violation window; record the
  // first (the rest are usually echoes of the same defect).
  const monitor::MonitorViolation& v = mon.violations().front();
  FuzzFailure f;
  f.description = "mode=traces seed=" + std::to_string(opts.seed) +
                  " iter=" + std::to_string(iter) + " tm=" +
                  tmKindName(claim.kind) + " model=" +
                  mon.model().name() + " workload-seed=" +
                  std::to_string(w.seed) + " shards=" +
                  std::to_string(shards) + " certifier=" +
                  (certifier ? "on" : "off") + " (monitor leg)\n" +
                  v.description;
  f.shrunk = v.shrunk;
  if (!opts.reproDir.empty()) {
    const std::string stem = std::string(fuzzModeName(opts.mode)) + "-s" +
                             std::to_string(opts.seed) + "-i" +
                             std::to_string(iter) + "-k" +
                             std::to_string(shards);
    f.file = persistRepro(opts.reproDir, stem, f.shrunk, f.description);
  }
  report.failures.push_back(std::move(f));

  // Third voice on small windows: a certifier-enabled conviction came
  // from the engine (the certifier is accept-only), so on windows within
  // the enumeration caps (≤ 4 transactions) the brute-force reference
  // must convict too.  An acquittal is a certifier/engine/reference
  // 3-way disagreement, the strongest possible signal that the
  // incremental path corrupted the checker's state.
  if (certifier) {
    const RefVerdict rv = referenceForCondition(
        monitor::monitorModelFor(claim.kind).condition, v.shrunk,
        mon.model());
    if (rv != RefVerdict::kTooLarge) {
      ++report.tms2ReferenceChecks;
      if (rv == RefVerdict::kSatisfied) {
        ++report.tms2Disagreements;
        FuzzFailure rf;
        rf.description =
            "mode=traces seed=" + std::to_string(opts.seed) + " iter=" +
            std::to_string(iter) + " tm=" + tmKindName(claim.kind) +
            " (tms2 3-way disagreement: certifier-on monitor convicted, "
            "reference checker satisfied)";
        rf.shrunk = v.shrunk;
        report.failures.push_back(std::move(rf));
      }
    }
  }
  return true;
}

void runMonitorIteration(const FuzzOptions& opts, std::uint64_t iter,
                         Rng& rng, FuzzReport& report) {
  const TmClaim& claim = drawClaim(opts, rng);

  // Per-iteration workload diversity: the old leg pinned vars to 4..9,
  // the tx mix to 50..94% and never paced or user-aborted — a narrow
  // slice of the capture paths.  Each dimension now draws independently
  // so low-contention, abort-heavy and bursty (paced) schedules all
  // appear in the corpus.
  monitor::WorkloadOptions w;
  w.threads = 2 + rng.below(3);
  w.numVars = 2 + rng.below(15);  // 2 = maximal contention, 16 = sparse
  w.opsPerThread = 100 + rng.below(300);
  w.seed = rng();
  w.txPercent = 30 + rng.below(70);
  w.txOpsMax = 1 + rng.below(6);
  w.abortPercent = rng.below(3) == 0 ? 15 : 2;
  w.pace = std::chrono::microseconds(rng.below(4) == 0 ? rng.below(3) : 0);

  // Shard-count sampling: half the runs stay serial (K=1, the reference
  // configuration), half draw K in {2,4} and double as a differential —
  // the same workload replayed serially must reach the same verdict, so
  // a sharded conviction without a serial one (or vice versa) is a bug
  // in the routing/taint/join layer itself.
  const std::size_t shards = rng.below(2) == 0 ? 1 : (rng.below(2) == 0 ? 2 : 4);
  // Collector tree width and placement cadence ride along: half the runs
  // use the grouped tree merge, and a deliberately small rebuild window
  // exercises mid-stream placement moves (the serial reference leg below
  // stays single-collector mod-K — it is the baseline being compared to).
  const unsigned collectorThreads =
      rng.below(2) == 0 ? 1u : static_cast<unsigned>(2 + 2 * rng.below(2));
  const std::size_t placementWindow = rng.below(2) == 0 ? 0 : 64;
  // Certifier sampling: the primary run draws the TMS2 certifier on or
  // off, so both dispatch paths stay in the corpus.
  const bool certify = rng.below(2) == 0;

  ++report.monitorRuns;
  const bool shardedConvicted =
      runMonitorOnce(opts, iter, claim, w, shards, collectorThreads,
                     placementWindow, certify, report);
  if (shards == 1) {
    // Serial runs double as the certifier differential: the same workload
    // with the certifier toggled must reach the same verdict.  (As with
    // the sharded-vs-serial leg, the two runs observe different real
    // interleavings — for stock TMs both must be clean, so a mismatch is
    // still a recorded disagreement.)
    ++report.tms2DifferentialRuns;
    const bool flippedConvicted =
        runMonitorOnce(opts, iter, claim, w, /*shards=*/1,
                       /*collectorThreads=*/1, /*placementWindow=*/0,
                       !certify, report);
    if (flippedConvicted != shardedConvicted) {
      ++report.tms2Disagreements;
      FuzzFailure f;
      f.description =
          "mode=traces seed=" + std::to_string(opts.seed) + " iter=" +
          std::to_string(iter) + " tm=" + tmKindName(claim.kind) +
          " workload-seed=" + std::to_string(w.seed) +
          " (tms2 certifier on/off disagreement: certifier-" +
          (certify ? "on" : "off") + " convicted=" +
          (shardedConvicted ? "yes" : "no") + ", certifier-" +
          (certify ? "off" : "on") + " convicted=" +
          (flippedConvicted ? "yes" : "no") + ")";
      report.failures.push_back(std::move(f));
    }
    return;
  }

  ++report.monitorShardedRuns;
  const bool serialConvicted =
      runMonitorOnce(opts, iter, claim, w, /*shards=*/1,
                     /*collectorThreads=*/1, /*placementWindow=*/0, certify,
                     report);
  if (shardedConvicted == serialConvicted) return;

  // Verdict disagreement between the sharded and serial checkers on the
  // same workload configuration.  (The two runs observe different real
  // interleavings, so this records context rather than auto-failing:
  // for stock TMs both verdicts should be "clean", and either conviction
  // was already counted and persisted above.)
  ++report.disagreements;
  FuzzFailure f;
  f.description = "mode=traces seed=" + std::to_string(opts.seed) +
                  " iter=" + std::to_string(iter) + " tm=" +
                  tmKindName(claim.kind) + " workload-seed=" +
                  std::to_string(w.seed) +
                  " (monitor sharded-vs-serial disagreement: shards=" +
                  std::to_string(shards) + " convicted=" +
                  (shardedConvicted ? "yes" : "no") + ", serial convicted=" +
                  (serialConvicted ? "yes" : "no") + ")";
  report.failures.push_back(std::move(f));
}

void runTracesIteration(const FuzzOptions& opts, std::uint64_t iter, Rng& rng,
                        FuzzReport& report) {
  if (iter % 4 == 3) {
    runScheduleDiffIteration(opts, iter, rng, report);
  } else if (iter % 4 == 1) {
    runMonitorIteration(opts, iter, rng, report);
  } else {
    runTraceSampleIteration(opts, iter, rng, report);
  }
}

}  // namespace

const char* fuzzModeName(FuzzOptions::Mode mode) {
  switch (mode) {
    case FuzzOptions::Mode::kEngineDiff:
      return "engine-diff";
    case FuzzOptions::Mode::kHistories:
      return "histories";
    case FuzzOptions::Mode::kTraces:
      return "traces";
  }
  return "?";
}

FuzzReport runFuzz(const FuzzOptions& opts) {
  FuzzReport report;

  DiffOptions diffOpts;
  diffOpts.serial = opts.checkLimits;
  diffOpts.serial.threads = 1;
  diffOpts.parallel = opts.checkLimits;
  diffOpts.parallel.threads = 4;
  diffOpts.mutation = opts.mutation;
  SearchLimits propLimits = opts.checkLimits;
  propLimits.threads = 1;

  const auto start = std::chrono::steady_clock::now();
  Rng master(opts.seed);
  for (std::uint64_t iter = 0; iter < opts.iterations; ++iter) {
    if (opts.budget.count() > 0 &&
        std::chrono::steady_clock::now() - start >= opts.budget) {
      report.budgetExhausted = true;
      break;
    }
    // Each iteration owns an independent, seed-derived stream, so a
    // failure replays from (seed, iter) without re-running the prefix.
    Rng rng(master());
    switch (opts.mode) {
      case FuzzOptions::Mode::kEngineDiff:
        runEngineDiffIteration(opts, iter, rng, diffOpts, report);
        break;
      case FuzzOptions::Mode::kHistories:
        runHistoriesIteration(opts, iter, rng, propLimits, report);
        break;
      case FuzzOptions::Mode::kTraces:
        runTracesIteration(opts, iter, rng, report);
        break;
    }
    ++report.iterationsRun;
  }
  return report;
}

std::string formatReport(const FuzzOptions& opts, const FuzzReport& report) {
  std::ostringstream out;
  out << "fuzz_jungle mode=" << fuzzModeName(opts.mode) << " seed="
      << opts.seed << " iterations=" << report.iterationsRun << "/"
      << opts.iterations;
  if (report.budgetExhausted) out << " (budget exhausted)";
  out << "\n  reference checks: " << report.referenceChecks
      << "\n  inconclusive (excluded): " << report.inconclusive
      << "\n  disagreements: " << report.disagreements
      << "\n  property violations: " << report.propertyViolations
      << "\n  trace violations: " << report.traceViolations
      << "\n  schedules explored: " << report.schedulesExplored << " (cut "
      << report.cutRuns << ", dedup hits " << report.dedupHits << ")"
      << "\n  monitor runs: " << report.monitorRuns << " ("
      << report.monitorEvents << " events, " << report.monitorViolations
      << " violations, " << report.monitorShardedRuns
      << " sharded-vs-serial)"
      << "\n  tms2 differential: " << report.tms2DifferentialRuns
      << " on/off pairs, " << report.tms2ReferenceChecks
      << " reference checks, " << report.tms2Disagreements
      << " disagreements\n";
  for (const FuzzFailure& f : report.failures) {
    out << "\nFAILURE: " << f.description << "\n";
    if (!f.file.empty()) out << "repro written to " << f.file << "\n";
    out << "shrunk history (" << f.shrunk.size() << " instances):\n"
        << litmus::printHistory(f.shrunk);
  }
  return out.str();
}

}  // namespace jungle::fuzz
