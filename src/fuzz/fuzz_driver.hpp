// The fuzz loop: seeded, budgeted, reproducible.
//
// Three modes, matching the repo's three correctness surfaces:
//   * engine-diff — random histories through the differential oracle
//     (serial engine vs 4-thread portfolio vs brute-force reference);
//   * histories   — random histories through the metamorphic properties
//     (witness self-validation, Theorem 6, constraint monotonicity);
//   * traces      — random TM workloads on the live implementations of
//     src/tm/, driven through the schedule explorer: most iterations
//     sample schedules of a stress program and check every completed
//     trace through checkTraceCondition against the condition and memory
//     model its theorem claims — parametrized opacity for the
//     single-version kinds (Theorems 3-5, 7, §6.1), snapshot isolation
//     for si-mvcc, strict serializability for si-ssn; every fourth
//     iteration
//     cross-checks the exploration strategies themselves (exhaustive DFS
//     vs sleep-set DPOR, serial and frontier-parallel) on a generated
//     raw-marker workload — the strategies must agree on the verdict and
//     on the exact set of distinct canonical histories; and another
//     quarter of the iterations is the monitor leg: the same TMs on real
//     OS threads under the runtime monitor (src/monitor/), whose verdict
//     must agree with the other surfaces — any conclusive monitor
//     violation of a stock TM is a bug in the TM or the monitor.
//
// Any failure is delta-shrunk (fuzz/shrinker.hpp) and, when a repro
// directory is configured, persisted as a commented .hist file that
// round-trips through the parser.  Inconclusive verdicts (budget or
// deadline stops) are counted separately and are never persisted nor
// reported as violations.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "tm/runtime.hpp"

namespace jungle::fuzz {

struct FuzzOptions {
  enum class Mode { kEngineDiff, kHistories, kTraces };
  Mode mode = Mode::kEngineDiff;
  std::uint64_t seed = 1;
  std::uint64_t iterations = 100;
  /// Traces mode: restrict the TM-claim draws (trace-sample and monitor
  /// legs) to one kind — e.g. hammer just si-mvcc or si-ssn from the CLI.
  /// nullopt = draw uniformly over all seven kinds.
  std::optional<TmKind> tmFilter;
  /// Wall-clock budget for the whole run; zero means iterations only.
  std::chrono::milliseconds budget{0};
  /// Where shrunk repros are written (created on demand); empty disables
  /// persistence.
  std::string reproDir;
  /// Engine-bug injection for harness self-tests; see fuzz/differential.hpp.
  Mutation mutation = Mutation::kNone;
  /// Per-check limits for both engine runs (threads is overridden: the
  /// serial decider always runs with 1, the portfolio with 4).
  SearchLimits checkLimits;
  /// Deadline per conformance check in traces mode.
  std::chrono::milliseconds traceCheckTimeout{2000};
};

const char* fuzzModeName(FuzzOptions::Mode mode);

struct FuzzFailure {
  std::string description;
  /// The delta-shrunk failing history (for traces, the shrunk canonical
  /// corresponding history of the failing trace).
  History shrunk;
  /// Path of the persisted .hist repro; empty when persistence is off.
  std::string file;
};

struct FuzzReport {
  std::uint64_t iterationsRun = 0;
  std::uint64_t referenceChecks = 0;
  std::uint64_t disagreements = 0;
  std::uint64_t propertyViolations = 0;
  std::uint64_t traceViolations = 0;
  /// Traces mode: schedules run by the explorer across all iterations,
  /// runs cut by the step bound, and verifier calls skipped because the
  /// run's canonical history had already been checked.
  std::uint64_t schedulesExplored = 0;
  std::uint64_t cutRuns = 0;
  std::uint64_t dedupHits = 0;
  /// Traces mode, monitor leg: monitored native runs, the events their
  /// captures recorded, and runs ending in a conclusive monitor violation.
  std::uint64_t monitorRuns = 0;
  std::uint64_t monitorEvents = 0;
  std::uint64_t monitorViolations = 0;
  /// Monitor-leg runs that drew shards > 1 and therefore also exercised
  /// the sharded routing/join path against the serial verdict.
  std::uint64_t monitorShardedRuns = 0;
  /// TMS2-certifier differential: serial monitor runs replayed with the
  /// certifier toggled (on-vs-off verdict pairs), plus reference-checker
  /// confirmations of small certifier-on conviction windows.  A
  /// disagreement — verdict pair mismatch, or a reference acquittal of a
  /// window the certifier-enabled monitor convicted — breaks the
  /// accept-only contract and counts as a failure.
  std::uint64_t tms2DifferentialRuns = 0;
  std::uint64_t tms2ReferenceChecks = 0;
  std::uint64_t tms2Disagreements = 0;
  /// Instances voided by a resource-limited verdict — tracked, never
  /// counted as (or persisted like) violations.
  std::uint64_t inconclusive = 0;
  bool budgetExhausted = false;
  std::vector<FuzzFailure> failures;

  std::uint64_t failureCount() const {
    return disagreements + propertyViolations + traceViolations +
           monitorViolations + tms2Disagreements;
  }
};

FuzzReport runFuzz(const FuzzOptions& opts);

/// Human-readable summary (CLI output; also embedded in test messages).
std::string formatReport(const FuzzOptions& opts, const FuzzReport& report);

}  // namespace jungle::fuzz
