// Concrete memory models (§3.2): SC, TSO, PSO, RMO, Alpha, Junk-SC, an
// IA-32-style model with non-atomic stores, and the idealized fully-relaxed
// model used by Theorem 3.
#pragma once

#include <memory>
#include <vector>

#include "memmodel/memory_model.hpp"

namespace jungle {

/// Sequential consistency: program order fully preserved, identical views.
class ScModel final : public MemoryModel {
 public:
  const char* name() const override { return "SC"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// Total store order: write→read to a different variable may reorder;
/// a read satisfied from the process's own store buffer may reorder with a
/// subsequent read of a different variable (§3.2's forwarding clause; see
/// DESIGN.md §5 on the paper's typo — we implement the stated intuition).
class TsoModel final : public MemoryModel {
 public:
  const char* name() const override { return "TSO"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// Partial store order: TSO plus write→write relaxation.
class PsoModel final : public MemoryModel {
 public:
  const char* name() const override { return "PSO"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// Relaxed memory order: everything to different variables may reorder
/// except read → {data-dependent read, control- or data-dependent write}.
class RmoModel final : public MemoryModel {
 public:
  const char* name() const override { return "RMO"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// Alpha: only same-variable order and read → dependent-write order are
/// preserved; famously even data-dependent reads may reorder.
class AlphaModel final : public MemoryModel {
 public:
  const char* name() const override { return "Alpha"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// Junk-SC (§3.2): sequentially consistent reordering, but τ maps every
/// plain write (wr,x,v) to havoc(x)·(wr,x,v), modeling out-of-thin-air
/// values for racy accesses.
class JunkScModel final : public MemoryModel {
 public:
  const char* name() const override { return "Junk-SC"; }
  History transform(const History& h) const override;
  bool identityTransform() const override { return false; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// IA-32-style model: TSO-like ordering restrictions but views need not be
/// identical across processes (non-atomic stores).
class Ia32Model final : public MemoryModel {
 public:
  const char* name() const override { return "IA-32"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  bool identicalViews() const override { return false; }
  Classification classification() const override;
};

/// Idealized fully-relaxed model of Theorem 3: only same-variable program
/// order is preserved; outside all four restriction classes.
class IdealizedModel final : public MemoryModel {
 public:
  const char* name() const override { return "Idealized"; }
  bool requiresOrder(const History& h, std::size_t a,
                     std::size_t b) const override;
  Classification classification() const override;
};

/// All models above, for parameterized tests and benches.
std::vector<const MemoryModel*> allModels();

/// Lookup by name(); nullptr if unknown.
const MemoryModel* modelByName(const std::string& name);

/// Singletons (models are stateless).
const ScModel& scModel();
const TsoModel& tsoModel();
const PsoModel& psoModel();
const RmoModel& rmoModel();
const AlphaModel& alphaModel();
const JunkScModel& junkScModel();
const Ia32Model& ia32Model();
const IdealizedModel& idealizedModel();

}  // namespace jungle
