#include "memmodel/memory_model.hpp"

#include <vector>

#include "common/check.hpp"

namespace jungle {

std::vector<std::pair<OpId, OpId>> requiredViewPairs(
    const MemoryModel& m, const History& h,
    const HistoryAnalysis& analysis) {
  JUNGLE_CHECK(&analysis.history() == &h);
  const std::size_t n = h.size();

  // Collect non-transactional command positions per process.
  std::vector<std::size_t> nt;
  nt.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (h[i].isCommand() && !analysis.isTransactional(i)) nt.push_back(i);
  }

  // Pairwise required edges (program order, same process).
  std::vector<std::vector<bool>> edge(nt.size(),
                                      std::vector<bool>(nt.size(), false));
  for (std::size_t a = 0; a < nt.size(); ++a) {
    for (std::size_t b = a + 1; b < nt.size(); ++b) {
      if (h[nt[a]].pid != h[nt[b]].pid) continue;
      if (m.requiresOrder(h, nt[a], nt[b])) edge[a][b] = true;
    }
  }

  // A view is a partial order; the minimal member of R(h) is the transitive
  // closure of the required pairs.
  for (std::size_t k = 0; k < nt.size(); ++k) {
    for (std::size_t a = 0; a < nt.size(); ++a) {
      if (!edge[a][k]) continue;
      for (std::size_t b = 0; b < nt.size(); ++b) {
        if (edge[k][b]) edge[a][b] = true;
      }
    }
  }

  std::vector<std::pair<OpId, OpId>> pairs;
  for (std::size_t a = 0; a < nt.size(); ++a) {
    for (std::size_t b = 0; b < nt.size(); ++b) {
      if (edge[a][b]) pairs.emplace_back(h[nt[a]].id, h[nt[b]].id);
    }
  }
  return pairs;
}

namespace {

/// Builds a two-instance non-transactional history for one process and asks
/// the model whether the pair must stay ordered.
bool probePair(const MemoryModel& m, Command first, Command second) {
  // Objects differ (x=0, y=1) as all class definitions require x ≠ y.
  HistoryBuilder b;
  b.cmd(/*p=*/0, /*x=*/0, std::move(first), /*id=*/1);
  b.cmd(/*p=*/0, /*x=*/1, std::move(second), /*id=*/2);
  History h = b.build();
  return m.requiresOrder(h, 0, 1);
}

}  // namespace

Classification probeClassification(const MemoryModel& m) {
  Classification c;
  c.rr_independent = probePair(m, cmdRead(0), cmdRead(0));
  c.rr_control = probePair(m, cmdRead(0), cmdCdRead(0, {1}));
  c.rr_data = probePair(m, cmdRead(0), cmdDdRead(0, {1}));
  c.rw_independent = probePair(m, cmdRead(0), cmdWrite(1));
  c.rw_control = probePair(m, cmdRead(0), cmdCdWrite(1, {1}));
  c.rw_data = probePair(m, cmdRead(0), cmdDdWrite(1, {1}));
  c.wr = probePair(m, cmdWrite(1), cmdRead(0));
  c.ww = probePair(m, cmdWrite(1), cmdWrite(1));
  return c;
}

}  // namespace jungle
