// Memory models (§3.1): M = (τ, R), a transformation function on operations
// plus a reordering function mapping histories to sets of per-process views.
//
// Representation choice (see DESIGN.md §5): every concrete model in the
// paper defines R(h) as "all well-formed views containing these *required*
// pairs".  Existence questions (does some view in R admit a legal sequential
// history?) are therefore decided against the **minimal view** — the
// transitive closure of the required pairs — because any larger view only
// adds constraints.  A MemoryModel consequently exposes:
//   * transform(h)            — τ lifted to histories,
//   * requiresOrder(h, a, b)  — is (a, b) a required pair of every view,
//                               for same-process non-transactional a before
//                               b in program order,
//   * identicalViews()        — whether R only contains views identical
//                               across processes (false for IA-32-style
//                               non-atomic stores),
//   * classification()        — membership in the M_rr/M_rw/M_wr/M_ww
//                               restriction classes of §3.2.
#pragma once

#include <string>
#include <vector>

#include "history/history.hpp"

namespace jungle {

/// Membership in the restriction classes of §3.2.  The *_independent /
/// *_control / *_data flags correspond to M^i, M^c, M^d sub-variants; a
/// model is in M_rr iff any rr flag is set (M^i ⊆ M^c ∩ M^d noted in the
/// paper holds at the flag level: independent restriction implies the
/// dependent ones are also enforced by requiresOrder).
struct Classification {
  bool rr_independent = false;
  bool rr_control = false;
  bool rr_data = false;
  bool rw_independent = false;
  bool rw_control = false;
  bool rw_data = false;
  bool wr = false;
  bool ww = false;

  bool inMrr() const { return rr_independent || rr_control || rr_data; }
  bool inMrw() const { return rw_independent || rw_control || rw_data; }
  bool inMwr() const { return wr; }
  bool inMww() const { return ww; }
  /// In the union of Theorem 1's four classes ⇒ uninstrumented
  /// parametrized opacity is impossible.
  bool restrictive() const {
    return inMrr() || inMrw() || inMwr() || inMww();
  }
};

class MemoryModel {
 public:
  virtual ~MemoryModel() = default;

  virtual const char* name() const = 0;

  /// τ lifted to histories (identity by default).  Inserted instances
  /// receive fresh identifiers; an inserted instance inherits the process
  /// (and hence transactional context) of the instance it expands.
  virtual History transform(const History& h) const { return h; }

  /// Whether transform() is the identity.  Models that insert operations
  /// must override alongside transform(): incremental certification (the
  /// monitor's TMS2 fast path) is only sound when the checked history is
  /// the captured one, so a non-identity τ disables it.
  virtual bool identityTransform() const { return true; }

  /// Required-view predicate.  Preconditions (checked by callers): the
  /// instances at posA and posB are non-transactional commands of the same
  /// process and posA < posB.  Returns true iff every view in R(h) must
  /// order a before b.
  virtual bool requiresOrder(const History& h, std::size_t posA,
                             std::size_t posB) const = 0;

  /// Whether views are identical across processes (condition (a) of the
  /// concrete models).  Models with non-atomic stores return false.
  virtual bool identicalViews() const { return true; }

  virtual Classification classification() const = 0;
};

/// Computes the minimal view of `h` under `m` as identifier pairs:
/// transitive closure of all required same-process program-order pairs of
/// non-transactional instances.  `analysis` must be over `h`.
std::vector<std::pair<OpId, OpId>> requiredViewPairs(
    const MemoryModel& m, const History& h, const HistoryAnalysis& analysis);

/// Behavioral probes that re-derive a model's classification from its
/// requiresOrder predicate using synthetic two-operation histories.  Used
/// by tests to prove the declared classification() matches behavior.
Classification probeClassification(const MemoryModel& m);

}  // namespace jungle
