#include "memmodel/models.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace jungle {

namespace {

/// True iff the read at position `pos` obtained its value from the same
/// process's latest preceding write to the same object (store-buffer
/// forwarding, the TSO clause of §3.2).
bool readForwardedFromOwnStore(const History& h, std::size_t pos) {
  const OpInstance& rd = h[pos];
  JUNGLE_DCHECK(rd.isCommand() && rd.cmd.isReadLike());
  for (std::size_t i = pos; i-- > 0;) {
    const OpInstance& prev = h[i];
    if (!prev.isCommand() || prev.pid != rd.pid || prev.obj != rd.obj)
      continue;
    if (prev.cmd.isWriteLike()) {
      return prev.cmd.value == rd.cmd.value;
    }
  }
  return false;
}

/// Shared TSO/IA-32 ordering predicate.
bool tsoRequiresOrder(const History& h, std::size_t a, std::size_t b) {
  const Command& ca = h[a].cmd;
  const Command& cb = h[b].cmd;
  if (h[a].obj == h[b].obj) return true;
  if (cb.isWriteLike()) return true;  // R→W and W→W preserved
  if (ca.isWriteLike()) return false;  // W→R relaxed (store buffer)
  // R→R: preserved unless the first read was satisfied by forwarding.
  return !readForwardedFromOwnStore(h, a);
}

}  // namespace

// ---------------------------------------------------------------- SC

bool ScModel::requiresOrder(const History&, std::size_t,
                            std::size_t) const {
  return true;
}

Classification ScModel::classification() const {
  Classification c;
  c.rr_independent = c.rr_control = c.rr_data = true;
  c.rw_independent = c.rw_control = c.rw_data = true;
  c.wr = true;
  c.ww = true;
  return c;
}

// ---------------------------------------------------------------- TSO

bool TsoModel::requiresOrder(const History& h, std::size_t a,
                             std::size_t b) const {
  return tsoRequiresOrder(h, a, b);
}

Classification TsoModel::classification() const {
  Classification c;
  c.rr_independent = c.rr_control = c.rr_data = true;
  c.rw_independent = c.rw_control = c.rw_data = true;
  c.ww = true;
  c.wr = false;
  return c;
}

// ---------------------------------------------------------------- PSO

bool PsoModel::requiresOrder(const History& h, std::size_t a,
                             std::size_t b) const {
  if (h[a].obj == h[b].obj) return true;
  // Reads are not reordered with anything that follows them; writes may
  // pass both later reads and later writes to other variables.
  if (h[a].cmd.isReadLike()) {
    if (h[b].cmd.isReadLike()) return !readForwardedFromOwnStore(h, a);
    return true;
  }
  return false;
}

Classification PsoModel::classification() const {
  Classification c;
  c.rr_independent = c.rr_control = c.rr_data = true;
  c.rw_independent = c.rw_control = c.rw_data = true;
  c.wr = false;
  c.ww = false;
  return c;
}

// ---------------------------------------------------------------- RMO

bool RmoModel::requiresOrder(const History& h, std::size_t a,
                             std::size_t b) const {
  if (h[a].obj == h[b].obj) return true;
  const Command& ca = h[a].cmd;
  const Command& cb = h[b].cmd;
  if (!ca.isReadLike()) return false;
  // read → control/data-dependent write, or read → data-dependent read,
  // when the dependence is on this very read.
  if ((cb.isControlDependent() || cb.isDataDependent()) &&
      cb.isWriteLike() && cb.dependsOn(h[a].id)) {
    return true;
  }
  if (cb.kind == CmdKind::kDdRead && cb.dependsOn(h[a].id)) return true;
  return false;
}

Classification RmoModel::classification() const {
  Classification c;
  c.rr_data = true;  // data-dependent reads stay ordered
  c.rw_control = c.rw_data = true;
  return c;
}

// ---------------------------------------------------------------- Alpha

bool AlphaModel::requiresOrder(const History& h, std::size_t a,
                               std::size_t b) const {
  if (h[a].obj == h[b].obj) return true;
  const Command& ca = h[a].cmd;
  const Command& cb = h[b].cmd;
  // Alpha forbids out-of-thin-air stores: a write dependent on a read may
  // not retire before it — but even data-dependent reads may reorder.
  if (ca.isReadLike() && cb.isWriteLike() &&
      (cb.isControlDependent() || cb.isDataDependent()) &&
      cb.dependsOn(h[a].id)) {
    return true;
  }
  return false;
}

Classification AlphaModel::classification() const {
  Classification c;
  c.rw_control = c.rw_data = true;
  return c;
}

// ---------------------------------------------------------------- Junk-SC

History JunkScModel::transform(const History& h) const {
  // τ(wr, x, v) = havoc(x) · (wr, x, v); identity elsewhere.  Fresh
  // identifiers for inserted instances start above the maximum in h.
  OpId next = 0;
  for (const OpInstance& inst : h) next = std::max(next, inst.id);
  ++next;
  std::vector<OpInstance> out;
  out.reserve(h.size() * 2);
  for (const OpInstance& inst : h) {
    if (inst.isCommand() && inst.cmd.kind == CmdKind::kWrite) {
      out.push_back(opCmd(inst.pid, inst.obj, cmdHavoc(), next++));
    }
    out.push_back(inst);
  }
  return History(std::move(out));
}

bool JunkScModel::requiresOrder(const History&, std::size_t,
                                std::size_t) const {
  return true;  // SC ordering
}

Classification JunkScModel::classification() const {
  return ScModel{}.classification();
}

// ---------------------------------------------------------------- IA-32

bool Ia32Model::requiresOrder(const History& h, std::size_t a,
                              std::size_t b) const {
  return tsoRequiresOrder(h, a, b);
}

Classification Ia32Model::classification() const {
  return TsoModel{}.classification();
}

// ---------------------------------------------------------------- Idealized

bool IdealizedModel::requiresOrder(const History& h, std::size_t a,
                                   std::size_t b) const {
  return h[a].obj == h[b].obj;
}

Classification IdealizedModel::classification() const {
  return Classification{};  // outside every restriction class
}

// ---------------------------------------------------------------- registry

const ScModel& scModel() {
  static const ScModel m;
  return m;
}
const TsoModel& tsoModel() {
  static const TsoModel m;
  return m;
}
const PsoModel& psoModel() {
  static const PsoModel m;
  return m;
}
const RmoModel& rmoModel() {
  static const RmoModel m;
  return m;
}
const AlphaModel& alphaModel() {
  static const AlphaModel m;
  return m;
}
const JunkScModel& junkScModel() {
  static const JunkScModel m;
  return m;
}
const Ia32Model& ia32Model() {
  static const Ia32Model m;
  return m;
}
const IdealizedModel& idealizedModel() {
  static const IdealizedModel m;
  return m;
}

std::vector<const MemoryModel*> allModels() {
  return {&scModel(),    &tsoModel(),   &psoModel(),
          &rmoModel(),   &alphaModel(), &junkScModel(),
          &ia32Model(),  &idealizedModel()};
}

const MemoryModel* modelByName(const std::string& name) {
  for (const MemoryModel* m : allModels()) {
    if (name == m->name()) return m;
  }
  return nullptr;
}

}  // namespace jungle
