// Transactional data structures built on the public TmRuntime API.
//
// Every structure is a thin layout over TM variables and performs its
// operations through TxContext reads/writes, so it inherits whichever
// parametrized-opacity guarantee the chosen TM implementation provides —
// the composability story the paper's coarse-grained-blocks intuition
// promises (§1).  Operations compose: several structure operations inside
// one transaction() body commit or abort together.
//
// Capacities are fixed at construction (the TM variable space is flat);
// value/key 0 is reserved as the empty sentinel where noted.
#pragma once

#include <optional>

#include "common/check.hpp"
#include "tm/runtime.hpp"

namespace jungle {

/// Contiguous slot allocator for structure layouts.
class SlotAllocator {
 public:
  explicit SlotAllocator(std::size_t capacity, ObjectId base = 0)
      : next_(base), end_(base + capacity) {}

  ObjectId take(std::size_t n) {
    JUNGLE_CHECK_MSG(next_ + n <= end_, "TM variable space exhausted");
    const ObjectId at = static_cast<ObjectId>(next_);
    next_ += n;
    return at;
  }

  std::size_t used() const { return next_; }

 private:
  std::size_t next_;
  std::size_t end_;
};

/// Shared counter.
class TxCounter {
 public:
  TxCounter(TmRuntime& tm, SlotAllocator& slots)
      : tm_(&tm), slot_(slots.take(1)) {}

  void add(TxContext& tx, Word delta) const {
    tx.write(slot_, tx.read(slot_) + delta);
  }
  Word get(TxContext& tx) const { return tx.read(slot_); }

  /// Whole-operation conveniences (one transaction each).
  void addAtomic(ProcessId p, Word delta) const {
    tm_->transaction(p, [&](TxContext& tx) { add(tx, delta); });
  }
  Word readAtomic(ProcessId p) const {
    Word v = 0;
    tm_->transaction(p, [&](TxContext& tx) { v = get(tx); });
    return v;
  }

 private:
  TmRuntime* tm_;
  ObjectId slot_;
};

/// Bounded stack of words.
class TxStack {
 public:
  TxStack(TmRuntime& tm, SlotAllocator& slots, std::size_t capacity)
      : tm_(&tm),
        topSlot_(slots.take(1)),
        cellBase_(slots.take(capacity)),
        capacity_(capacity) {}

  bool push(TxContext& tx, Word v) const {
    const Word top = tx.read(topSlot_);
    if (top >= capacity_) return false;  // full
    tx.write(static_cast<ObjectId>(cellBase_ + top), v);
    tx.write(topSlot_, top + 1);
    return true;
  }

  std::optional<Word> pop(TxContext& tx) const {
    const Word top = tx.read(topSlot_);
    if (top == 0) return std::nullopt;
    const Word v = tx.read(static_cast<ObjectId>(cellBase_ + top - 1));
    tx.write(topSlot_, top - 1);
    return v;
  }

  Word size(TxContext& tx) const { return tx.read(topSlot_); }
  std::size_t capacity() const { return capacity_; }

 private:
  TmRuntime* tm_;
  ObjectId topSlot_;
  ObjectId cellBase_;
  std::size_t capacity_;
};

/// Bounded FIFO queue (ring buffer).
class TxQueue {
 public:
  TxQueue(TmRuntime& tm, SlotAllocator& slots, std::size_t capacity)
      : tm_(&tm),
        headSlot_(slots.take(1)),
        tailSlot_(slots.take(1)),
        cellBase_(slots.take(capacity)),
        capacity_(capacity) {}

  bool enqueue(TxContext& tx, Word v) const {
    const Word head = tx.read(headSlot_);
    const Word tail = tx.read(tailSlot_);
    if (tail - head >= capacity_) return false;  // full
    tx.write(static_cast<ObjectId>(cellBase_ + tail % capacity_), v);
    tx.write(tailSlot_, tail + 1);
    return true;
  }

  std::optional<Word> dequeue(TxContext& tx) const {
    const Word head = tx.read(headSlot_);
    const Word tail = tx.read(tailSlot_);
    if (head == tail) return std::nullopt;  // empty
    const Word v = tx.read(static_cast<ObjectId>(cellBase_ + head % capacity_));
    tx.write(headSlot_, head + 1);
    return v;
  }

  Word size(TxContext& tx) const {
    return tx.read(tailSlot_) - tx.read(headSlot_);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  TmRuntime* tm_;
  ObjectId headSlot_;
  ObjectId tailSlot_;
  ObjectId cellBase_;
  std::size_t capacity_;
};

/// Fixed-capacity open-addressing hash map (word keys ≠ 0).
///
/// Layout: `capacity` key slots + `capacity` value slots.  Linear probing;
/// erasure uses tombstones (key = kTombstone) that insert may recycle.
class TxMap {
 public:
  static constexpr Word kEmpty = 0;
  /// Historical choice from when VersionedWriteTm packed values into 32
  /// bits; kept (any nonzero reserved word works — every TM now stores
  /// full 64-bit values) so existing serialized fixtures keep their
  /// meaning.
  static constexpr Word kTombstone = 0xffffffffULL;

  TxMap(TmRuntime& tm, SlotAllocator& slots, std::size_t capacity)
      : tm_(&tm),
        keyBase_(slots.take(capacity)),
        valBase_(slots.take(capacity)),
        capacity_(capacity) {}

  /// Inserts or updates; false iff the table is full.
  bool put(TxContext& tx, Word key, Word value) const {
    JUNGLE_CHECK(key != kEmpty && key != kTombstone);
    std::optional<std::size_t> firstFree;
    for (std::size_t probe = 0; probe < capacity_; ++probe) {
      const std::size_t i = indexOf(key, probe);
      const Word k = tx.read(static_cast<ObjectId>(keyBase_ + i));
      if (k == key) {
        tx.write(static_cast<ObjectId>(valBase_ + i), value);
        return true;
      }
      if (k == kTombstone && !firstFree.has_value()) {
        firstFree = i;
        continue;  // key may still appear later in the chain
      }
      if (k == kEmpty) {
        const std::size_t at = firstFree.value_or(i);
        tx.write(static_cast<ObjectId>(keyBase_ + at), key);
        tx.write(static_cast<ObjectId>(valBase_ + at), value);
        return true;
      }
    }
    if (firstFree.has_value()) {
      tx.write(static_cast<ObjectId>(keyBase_ + *firstFree), key);
      tx.write(static_cast<ObjectId>(valBase_ + *firstFree), value);
      return true;
    }
    return false;
  }

  std::optional<Word> get(TxContext& tx, Word key) const {
    JUNGLE_CHECK(key != kEmpty && key != kTombstone);
    for (std::size_t probe = 0; probe < capacity_; ++probe) {
      const std::size_t i = indexOf(key, probe);
      const Word k = tx.read(static_cast<ObjectId>(keyBase_ + i));
      if (k == key) return tx.read(static_cast<ObjectId>(valBase_ + i));
      if (k == kEmpty) return std::nullopt;
    }
    return std::nullopt;
  }

  bool erase(TxContext& tx, Word key) const {
    JUNGLE_CHECK(key != kEmpty && key != kTombstone);
    for (std::size_t probe = 0; probe < capacity_; ++probe) {
      const std::size_t i = indexOf(key, probe);
      const Word k = tx.read(static_cast<ObjectId>(keyBase_ + i));
      if (k == key) {
        tx.write(static_cast<ObjectId>(keyBase_ + i), kTombstone);
        return true;
      }
      if (k == kEmpty) return false;
    }
    return false;
  }

  bool contains(TxContext& tx, Word key) const {
    return get(tx, key).has_value();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t indexOf(Word key, std::size_t probe) const {
    // Fibonacci hashing then linear probing.
    const Word h = key * 0x9e3779b97f4a7c15ULL;
    return (static_cast<std::size_t>(h >> 32) + probe) % capacity_;
  }

  TmRuntime* tm_;
  ObjectId keyBase_;
  ObjectId valBase_;
  std::size_t capacity_;
};

/// Transactional sorted singly-linked list (set semantics) — the classic
/// STM microbenchmark shape: traversals build long read sets, so abort
/// rates grow with list length and write share (measured by
/// bench_structures).
///
/// Layout: head slot (node index + 1, 0 = null), allocation cursor, and a
/// fixed pool of nodes, each a (key, next) slot pair.  Unlinked nodes are
/// not recycled (a bump allocator keeps the transactional logic simple and
/// allocation O(1)); capacity bounds the total number of inserts.
class TxSortedList {
 public:
  TxSortedList(TmRuntime& tm, SlotAllocator& slots, std::size_t capacity)
      : tm_(&tm),
        headSlot_(slots.take(1)),
        cursorSlot_(slots.take(1)),
        nodeBase_(slots.take(2 * capacity)),
        capacity_(capacity) {}

  /// Inserts `key` keeping the list sorted; false if present or pool full.
  bool insert(TxContext& tx, Word key) const {
    auto [prev, cur] = locate(tx, key);
    if (cur != 0 && keyOf(tx, cur) == key) return false;
    const Word cursor = tx.read(cursorSlot_);
    if (cursor >= capacity_) return false;  // pool exhausted
    tx.write(cursorSlot_, cursor + 1);
    const Word node = cursor + 1;  // 1-based node handle
    tx.write(keySlot(node), key);
    tx.write(nextSlot(node), cur);
    if (prev == 0) {
      tx.write(headSlot_, node);
    } else {
      tx.write(nextSlot(prev), node);
    }
    return true;
  }

  /// Removes `key`; false if absent.
  bool erase(TxContext& tx, Word key) const {
    auto [prev, cur] = locate(tx, key);
    if (cur == 0 || keyOf(tx, cur) != key) return false;
    const Word next = tx.read(nextSlot(cur));
    if (prev == 0) {
      tx.write(headSlot_, next);
    } else {
      tx.write(nextSlot(prev), next);
    }
    return true;
  }

  bool contains(TxContext& tx, Word key) const {
    auto [prev, cur] = locate(tx, key);
    (void)prev;
    return cur != 0 && keyOf(tx, cur) == key;
  }

  /// In-order key traversal (the long-read-set operation).
  std::vector<Word> keys(TxContext& tx) const {
    std::vector<Word> out;
    for (Word cur = tx.read(headSlot_); cur != 0;
         cur = tx.read(nextSlot(cur))) {
      out.push_back(keyOf(tx, cur));
    }
    return out;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  ObjectId keySlot(Word node) const {
    JUNGLE_DCHECK(node >= 1 && node <= capacity_);
    return static_cast<ObjectId>(nodeBase_ + 2 * (node - 1));
  }
  ObjectId nextSlot(Word node) const {
    JUNGLE_DCHECK(node >= 1 && node <= capacity_);
    return static_cast<ObjectId>(nodeBase_ + 2 * (node - 1) + 1);
  }
  Word keyOf(TxContext& tx, Word node) const {
    return tx.read(keySlot(node));
  }

  /// Returns (predecessor, first node with key ≥ `key`), 0 = null.
  std::pair<Word, Word> locate(TxContext& tx, Word key) const {
    Word prev = 0;
    Word cur = tx.read(headSlot_);
    while (cur != 0 && keyOf(tx, cur) < key) {
      prev = cur;
      cur = tx.read(nextSlot(cur));
    }
    return {prev, cur};
  }

  TmRuntime* tm_;
  ObjectId headSlot_;
  ObjectId cursorSlot_;
  ObjectId nodeBase_;
  std::size_t capacity_;
};

/// Fixed-capacity set: a TxMap with unit values.
class TxSet {
 public:
  TxSet(TmRuntime& tm, SlotAllocator& slots, std::size_t capacity)
      : map_(tm, slots, capacity) {}

  bool insert(TxContext& tx, Word key) const {
    if (map_.contains(tx, key)) return false;
    JUNGLE_CHECK_MSG(map_.put(tx, key, 1), "TxSet full");
    return true;
  }
  bool erase(TxContext& tx, Word key) const { return map_.erase(tx, key); }
  bool contains(TxContext& tx, Word key) const {
    return map_.contains(tx, key);
  }

 private:
  TxMap map_;
};

}  // namespace jungle
