// Typed convenience layer over TmRuntime: TxVar<T> named variables and the
// privatization idiom from the paper's introduction ("a programmer may wish
// to make shared data local to a thread, operate non-transactionally upon
// it for a while, and make it shared again").
//
// A VarSpace hands out TxVar<T> slots backed by runtime variables.  T must
// be trivially convertible to/from Word (64-bit).  Privatization is
// expressed with an ownership variable per region: a transaction flips the
// owner, after which the owning thread may use plain (non-transactional)
// accesses on the region's variables — exactly the mixed workload whose
// correctness parametrized opacity governs.
#pragma once

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "tm/runtime.hpp"

namespace jungle {

template <class T>
Word toWord(T value) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word));
  Word w = 0;
  std::memcpy(&w, &value, sizeof(T));
  return w;
}

template <class T>
T fromWord(Word w) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word));
  T value{};
  std::memcpy(&value, &w, sizeof(T));
  return value;
}

/// A typed handle to one TM variable.
template <class T>
class TxVar {
 public:
  TxVar() = default;
  TxVar(TmRuntime* tm, ObjectId slot) : tm_(tm), slot_(slot) {}

  ObjectId slot() const { return slot_; }

  /// Transactional access, inside a TmRuntime::transaction body.
  T get(TxContext& tx) const { return fromWord<T>(tx.read(slot_)); }
  void set(TxContext& tx, T value) const { tx.write(slot_, toWord(value)); }

  /// Non-transactional (plain) access; subject to the TM's guarantee and
  /// the platform memory model — the whole point of parametrized opacity.
  T load(ProcessId p) const { return fromWord<T>(tm_->ntRead(p, slot_)); }
  void store(ProcessId p, T value) const {
    tm_->ntWrite(p, slot_, toWord(value));
  }

 private:
  TmRuntime* tm_ = nullptr;
  ObjectId slot_ = kNoObject;
};

/// Allocates named typed variables out of a runtime's variable space.
class VarSpace {
 public:
  VarSpace(TmRuntime& tm, std::size_t numVars) : tm_(&tm), capacity_(numVars) {}

  template <class T>
  TxVar<T> alloc(std::string name = {}) {
    JUNGLE_CHECK_MSG(next_ < capacity_, "variable space exhausted");
    names_.push_back(std::move(name));
    return TxVar<T>(tm_, static_cast<ObjectId>(next_++));
  }

  const std::string& nameOf(ObjectId slot) const { return names_.at(slot); }
  std::size_t used() const { return next_; }

 private:
  TmRuntime* tm_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<std::string> names_;
};

/// A privatizable region: a set of variable slots plus an owner word.
/// Owner 0 = shared (all access transactional); owner p+1 = private to
/// process p (plain access allowed for p).
class PrivatizableRegion {
 public:
  PrivatizableRegion(TmRuntime& tm, ObjectId ownerSlot,
                     std::vector<ObjectId> slots)
      : tm_(&tm), ownerSlot_(ownerSlot), slots_(std::move(slots)) {}

  static constexpr Word kShared = 0;

  /// Transactionally claims the region for `p`.  Returns false if another
  /// process already owns it.  After success, `p` may use plain accesses.
  bool privatize(ProcessId p) {
    bool won = false;
    tm_->transaction(p, [&](TxContext& tx) {
      const Word owner = tx.read(ownerSlot_);
      won = owner == kShared;
      if (won) tx.write(ownerSlot_, static_cast<Word>(p) + 1);
    });
    return won;
  }

  /// Transactionally publishes the region back to shared state.
  void publish(ProcessId p) {
    tm_->transaction(p, [&](TxContext& tx) {
      JUNGLE_CHECK_MSG(tx.read(ownerSlot_) == static_cast<Word>(p) + 1,
                       "publish by a non-owner");
      tx.write(ownerSlot_, kShared);
    });
  }

  bool ownedBy(ProcessId p) const {
    return tm_->ntRead(p, ownerSlot_) == static_cast<Word>(p) + 1;
  }

  /// Plain accesses; caller must own the region.
  Word read(ProcessId p, std::size_t idx) const {
    JUNGLE_DCHECK(ownedBy(p));
    return tm_->ntRead(p, slots_.at(idx));
  }
  void write(ProcessId p, std::size_t idx, Word v) {
    JUNGLE_DCHECK(ownedBy(p));
    tm_->ntWrite(p, slots_.at(idx), v);
  }

  /// Transactional access while shared.
  Word txRead(TxContext& tx, std::size_t idx) const {
    return tx.read(slots_.at(idx));
  }
  void txWrite(TxContext& tx, std::size_t idx, Word v) {
    tx.write(slots_.at(idx), v);
  }

  std::size_t size() const { return slots_.size(); }

 private:
  TmRuntime* tm_;
  ObjectId ownerSlot_;
  std::vector<ObjectId> slots_;
};

}  // namespace jungle
