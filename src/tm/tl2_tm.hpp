// TL2-style versioned-clock STM core [Dice, Shalev, Shavit, DISC'06 — the
// paper's reference [7] for opacity-satisfying TMs], plus the plain-access
// baseline Tl2Tm.
//
// Layout: values at [0, n), one versioned lock record per variable at
// [n, 2n) (encoding version << 1 | locked), global version clock at 2n.
//
// Transactions are opaque: reads validate against the start-time clock
// sample and abort on inconsistency; commits lock the write set in
// ascending variable order (deadlock-free), bump the clock, validate the
// read set, write back, and release with the new version.
//
// Tl2Tm leaves non-transactional accesses as bare load/store — the classic
// *weak atomicity* design.  It intentionally does NOT guarantee
// parametrized opacity for mixed histories; the theorem tests exhibit
// violations, which is the paper's motivation for instrumented designs.
#pragma once

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "history/op_instance.hpp"
#include "tm/global_lock_tm.hpp"  // VarMap

namespace jungle {

template <class Mem>
class VersionedClockTmBase {
 public:
  static std::size_t memoryWords(std::size_t numVars) {
    return 2 * numVars + 1;
  }

  VersionedClockTmBase(Mem& mem, std::size_t numVars)
      : mem_(mem), numVars_(numVars), clockAddr_(2 * numVars) {
    JUNGLE_CHECK(mem.size() >= memoryWords(numVars));
  }

  struct Thread {
    ProcessId pid = 0;
    Word rv = 0;  // start-time clock sample
    VarMap readset;   // obj -> record version observed
    VarMap writeset;  // obj -> new value
    bool inTx = false;
    std::uint64_t aborts = 0;
  };

  Thread makeThread(ProcessId pid) const {
    Thread t;
    t.pid = pid;
    return t;
  }

  void txStart(Thread& t) {
    JUNGLE_CHECK(!t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kStart, kNoObject, {});
    t.rv = mem_.load(t.pid, clockAddr_);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kStart, kNoObject, {});
    t.inTx = true;
  }

  /// nullopt ⇒ the transaction aborted (the read responds as the abort).
  std::optional<Word> txRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    if (const Word* w = t.writeset.find(x)) {
      mem_.markPoint(t.pid, op);
      mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(*w));
      return *w;
    }
    const Word r1 = mem_.load(t.pid, recordAddr(x));
    const Word v = mem_.load(t.pid, x);
    const Word r2 = mem_.load(t.pid, recordAddr(x));
    if ((r1 & 1) != 0 || r1 != r2 || (r1 >> 1) > t.rv) {
      abortInsideOp(t, op);
      return std::nullopt;
    }
    t.readset.put(x, r1);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  void txWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    t.writeset.put(x, v);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

  bool txCommit(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommit, kNoObject, {});
    if (t.writeset.empty()) {
      // Read-only fast path: reads were validated as they happened.
      mem_.markPoint(t.pid, op);
      mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
      finish(t);
      return true;
    }

    // Lock the write set in ascending variable order.
    std::vector<std::pair<ObjectId, Word>> locked;  // obj -> pre-lock record
    std::vector<ObjectId> order;
    for (const auto& [x, v] : t.writeset) order.push_back(x);
    std::sort(order.begin(), order.end());
    for (ObjectId x : order) {
      const Word r = mem_.load(t.pid, recordAddr(x));
      if ((r & 1) != 0 || (r >> 1) > t.rv ||
          !mem_.cas(t.pid, recordAddr(x), r, r | 1)) {
        releaseLocks(t, locked);
        abortInsideOp(t, op);
        return false;
      }
      locked.emplace_back(x, r);
    }

    // Bump the global clock.
    Word wv;
    for (;;) {
      const Word c = mem_.load(t.pid, clockAddr_);
      if (mem_.cas(t.pid, clockAddr_, c, c + 1)) {
        wv = c + 1;
        break;
      }
    }

    // Validate the read set (skippable when nothing moved since rv).
    // Variables we hold write locks on were validated at lock time.
    if (t.rv + 1 != wv) {
      for (const auto& [x, seen] : t.readset) {
        if (t.writeset.find(x) != nullptr) continue;
        const Word r = mem_.load(t.pid, recordAddr(x));
        if ((r & 1) != 0 || (r >> 1) > t.rv) {
          releaseLocks(t, locked);
          abortInsideOp(t, op);
          return false;
        }
      }
    }

    // Write back and release with the new version.
    for (const auto& [x, v] : t.writeset) {
      mem_.store(t.pid, x, v);
    }
    mem_.markPoint(t.pid, op);
    for (ObjectId x : order) {
      mem_.store(t.pid, recordAddr(x), wv << 1);
    }
    mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    finish(t);
    return true;
  }

  void txAbort(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kAbort, kNoObject, {});
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    finish(t);
  }

  std::uint64_t abortCount(const Thread& t) const { return t.aborts; }

 protected:
  Addr recordAddr(ObjectId x) const { return numVars_ + x; }

  void releaseLocks(Thread& t,
                    const std::vector<std::pair<ObjectId, Word>>& locked) {
    for (const auto& [x, r] : locked) {
      mem_.store(t.pid, recordAddr(x), r);
    }
  }

  /// Ends the currently open operation as the transaction's abort: the
  /// operation's response carries OpType::kAbort, so extracted histories
  /// show a well-formed aborted transaction.
  void abortInsideOp(Thread& t, OpId op) {
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    ++t.aborts;
    finish(t);
  }

  void finish(Thread& t) {
    t.readset.clear();
    t.writeset.clear();
    t.inTx = false;
  }

  Mem& mem_;
  std::size_t numVars_;
  Addr clockAddr_;
};

/// The weak-atomicity baseline: opaque transactions, bare non-transactional
/// accesses.
template <class Mem>
class Tl2Tm : public VersionedClockTmBase<Mem> {
  using Base = VersionedClockTmBase<Mem>;

 public:
  static constexpr bool kInstrumentsNtReads = false;
  static constexpr bool kInstrumentsNtWrites = false;
  static constexpr const char* kName = "tl2-weak";

  using Base::Base;
  using typename Base::Thread;

  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op = this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    const Word v = this->mem_.load(t.pid, x);
    this->mem_.markPoint(t.pid, op);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  /// Bare store: does NOT touch the record — concurrent transactions can
  /// miss it entirely.  This is the unsafety the paper's instrumented
  /// designs exist to fix.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op =
        this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    this->mem_.store(t.pid, x, v);
    this->mem_.markPoint(t.pid, op);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }
};

}  // namespace jungle
