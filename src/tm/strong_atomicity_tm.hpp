// Strong-atomicity TM in the style of Shpeisman et al. [27] as sketched in
// §6.1: per-variable transactional records with a locking discipline that
// non-transactional operations also follow.
//
//   * A record is a versioned lock (version << 1 | locked).  "Exclusive"
//     and "exclusive anonymous" of [27] both map to the locked state — held
//     by a committing transaction or by an instrumented plain write; the
//     unlocked state is "shared".
//   * Instrumented nt read: seqlock protocol — record, value, record again;
//     retry while locked or changed.  (This is the cost §6.1 describes: "a
//     non-transactional read needs to check whether the variable is being
//     written concurrently by a transaction.")
//   * Instrumented nt write: acquire the record (exclusive anonymous), bump
//     the global clock, store, release with the new version — so concurrent
//     transactions detect the interference and abort.
//
// Guarantee: opacity parametrized by **sequential consistency** (strong
// atomicity in the Larus–Rajwar sense).  The point of §6.1 — reproduced by
// bench_instrumentation — is that this design pays on *every* plain access,
// while a TM targeting a weaker model (VersionedWriteTm) does not.
#pragma once

#include "tm/tl2_tm.hpp"

namespace jungle {

template <class Mem>
class StrongAtomicityTm : public VersionedClockTmBase<Mem> {
  using Base = VersionedClockTmBase<Mem>;

 public:
  static constexpr bool kInstrumentsNtReads = true;
  static constexpr bool kInstrumentsNtWrites = true;
  static constexpr const char* kName = "strong-atomicity";

  using Base::Base;
  using typename Base::Thread;

  /// Instrumented read: seqlock validation against the record.
  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op =
        this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    Backoff backoff;
    Word v;
    for (;;) {
      const Word r1 = this->mem_.load(t.pid, this->recordAddr(x));
      if ((r1 & 1) != 0) {
        backoff.pause();
        continue;
      }
      v = this->mem_.load(t.pid, x);
      const Word r2 = this->mem_.load(t.pid, this->recordAddr(x));
      if (r1 == r2) break;
      backoff.pause();
    }
    this->mem_.markPoint(t.pid, op);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  /// Instrumented write: take the record exclusively ("exclusive
  /// anonymous"), publish with a fresh version so transactions notice.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op =
        this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    Backoff backoff;
    for (;;) {
      const Word r = this->mem_.load(t.pid, this->recordAddr(x));
      if ((r & 1) == 0 &&
          this->mem_.cas(t.pid, this->recordAddr(x), r, r | 1)) {
        break;
      }
      backoff.pause();
    }
    Word wv;
    for (;;) {
      const Word c = this->mem_.load(t.pid, this->clockAddr_);
      if (this->mem_.cas(t.pid, this->clockAddr_, c, c + 1)) {
        wv = c + 1;
        break;
      }
    }
    this->mem_.store(t.pid, x, v);
    this->mem_.markPoint(t.pid, op);
    this->mem_.store(t.pid, this->recordAddr(x), wv << 1);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }
};

}  // namespace jungle
