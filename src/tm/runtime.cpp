#include "tm/runtime.hpp"

#include <optional>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/mvcc_store.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/tl2_tm.hpp"
#include "tm/versioned_write_tm.hpp"
#include "tm/write_as_tx_tm.hpp"

namespace jungle {

const char* tmKindName(TmKind kind) {
  switch (kind) {
    case TmKind::kGlobalLock:
      return "global-lock";
    case TmKind::kWriteAsTx:
      return "write-as-tx";
    case TmKind::kVersionedWrite:
      return "versioned-write";
    case TmKind::kStrongAtomicity:
      return "strong-atomicity";
    case TmKind::kTl2Weak:
      return "tl2-weak";
    case TmKind::kSnapshotIsolation:
      return "si-mvcc";
    case TmKind::kSiSsn:
      return "si-ssn";
  }
  return "?";
}

std::vector<TmKind> allTmKinds() {
  std::vector<TmKind> kinds = {
      TmKind::kGlobalLock,       TmKind::kWriteAsTx,
      TmKind::kVersionedWrite,   TmKind::kStrongAtomicity,
      TmKind::kTl2Weak,          TmKind::kSnapshotIsolation,
      TmKind::kSiSsn};
  JUNGLE_CHECK(kinds.size() == kTmKindCount);
  return kinds;
}

namespace {

/// Thrown when the TM aborted the transaction mid-body (retry), or the user
/// requested an abort (no retry).
struct AbortSignal {
  bool userRequested = false;
};

template <template <class> class TmT, class Mem>
class RuntimeAdapter final : public TmRuntime {
  using Tm = TmT<Mem>;
  using Thread = typename Tm::Thread;

 public:
  RuntimeAdapter(TmKind kind, Mem& mem, std::size_t numVars,
                 std::size_t maxProcs)
      : kind_(kind), tm_(mem, numVars) {
    threads_.reserve(maxProcs);
    for (std::size_t p = 0; p < maxProcs; ++p) {
      threads_.push_back(tm_.makeThread(static_cast<ProcessId>(p)));
    }
  }

  const char* name() const override { return Tm::kName; }
  TmKind kind() const override { return kind_; }
  bool instrumentsNtReads() const override {
    return Tm::kInstrumentsNtReads;
  }
  bool instrumentsNtWrites() const override {
    return Tm::kInstrumentsNtWrites;
  }

  bool transaction(ProcessId p,
                   const std::function<void(TxContext&)>& body) override {
    Thread& t = thread(p);
    Backoff backoff;
    for (;;) {
      tm_.txStart(t);
      Ctx ctx(*this, t);
      try {
        body(ctx);
      } catch (const AbortSignal& sig) {
        if (sig.userRequested) return false;
        aborts_.fetch_add(1, std::memory_order_relaxed);
        backoff.pause();
        continue;  // conflict: retry
      }
      if (tm_.txCommit(t)) return true;
      aborts_.fetch_add(1, std::memory_order_relaxed);
      backoff.pause();
    }
  }

  Word ntRead(ProcessId p, ObjectId x) override {
    return tm_.ntRead(thread(p), x);
  }

  void ntWrite(ProcessId p, ObjectId x, Word v) override {
    tm_.ntWrite(thread(p), x, v);
  }

  std::uint64_t abortCount() const override {
    return aborts_.load(std::memory_order_relaxed);
  }

  std::vector<Counter> telemetry() const override {
    // TMs exposing per-thread counters (the MVCC family) provide a static
    // telemetry(Thread); everyone else reports nothing.
    if constexpr (requires(const Thread& t) { Tm::telemetry(t); }) {
      std::vector<Counter> total;
      for (const Thread& t : threads_) {
        const auto counters = Tm::telemetry(t);
        if (total.empty()) {
          for (const auto& [name, value] : counters) {
            total.push_back({name, value});
          }
        } else {
          JUNGLE_CHECK(counters.size() == total.size());
          for (std::size_t i = 0; i < counters.size(); ++i) {
            total[i].value += counters[i].second;
          }
        }
      }
      return total;
    } else {
      return {};
    }
  }

 private:
  class Ctx final : public TxContext {
   public:
    Ctx(RuntimeAdapter& rt, Thread& t) : rt_(rt), t_(t) {}

    Word read(ObjectId x) override {
      // TL2-family reads signal aborts by returning nullopt; global-lock
      // reads return plainly.  Normalize at compile time.
      if constexpr (std::is_same_v<decltype(rt_.tm_.txRead(t_, x)),
                                   std::optional<Word>>) {
        std::optional<Word> v = rt_.tm_.txRead(t_, x);
        if (!v.has_value()) throw AbortSignal{false};
        return *v;
      } else {
        return rt_.tm_.txRead(t_, x);
      }
    }

    void write(ObjectId x, Word v) override { rt_.tm_.txWrite(t_, x, v); }

    [[noreturn]] void abort() override {
      rt_.tm_.txAbort(t_);
      throw AbortSignal{true};
    }

   private:
    RuntimeAdapter& rt_;
    Thread& t_;
  };

  Thread& thread(ProcessId p) {
    JUNGLE_CHECK(p < threads_.size());
    return threads_[p];
  }

  TmKind kind_;
  Tm tm_;
  std::vector<Thread> threads_;
  std::atomic<std::uint64_t> aborts_{0};
};

template <class Mem>
std::unique_ptr<TmRuntime> makeRuntime(TmKind kind, Mem& mem,
                                       std::size_t numVars,
                                       std::size_t maxProcs) {
  switch (kind) {
    case TmKind::kGlobalLock:
      return std::make_unique<RuntimeAdapter<GlobalLockTm, Mem>>(
          kind, mem, numVars, maxProcs);
    case TmKind::kWriteAsTx:
      return std::make_unique<RuntimeAdapter<WriteAsTxTm, Mem>>(
          kind, mem, numVars, maxProcs);
    case TmKind::kVersionedWrite:
      return std::make_unique<RuntimeAdapter<VersionedWriteTm, Mem>>(
          kind, mem, numVars, maxProcs);
    case TmKind::kStrongAtomicity:
      return std::make_unique<RuntimeAdapter<StrongAtomicityTm, Mem>>(
          kind, mem, numVars, maxProcs);
    case TmKind::kTl2Weak:
      return std::make_unique<RuntimeAdapter<Tl2Tm, Mem>>(kind, mem, numVars,
                                                          maxProcs);
    case TmKind::kSnapshotIsolation:
      return std::make_unique<RuntimeAdapter<SiTm, Mem>>(kind, mem, numVars,
                                                         maxProcs);
    case TmKind::kSiSsn:
      return std::make_unique<RuntimeAdapter<SiSsnTm, Mem>>(kind, mem,
                                                            numVars, maxProcs);
  }
  JUNGLE_CHECK_MSG(false, "unknown TM kind");
  return nullptr;
}

}  // namespace

std::size_t runtimeMemoryWords(TmKind kind, std::size_t numVars) {
  switch (kind) {
    case TmKind::kGlobalLock:
    case TmKind::kWriteAsTx:
      return GlobalLockTm<NativeMemory>::memoryWords(numVars);
    case TmKind::kVersionedWrite:
      return VersionedWriteTm<NativeMemory>::memoryWords(numVars);
    case TmKind::kStrongAtomicity:
    case TmKind::kTl2Weak:
      return VersionedClockTmBase<NativeMemory>::memoryWords(numVars);
    case TmKind::kSnapshotIsolation:
      return SiTm<NativeMemory>::memoryWords(numVars);
    case TmKind::kSiSsn:
      return SiSsnTm<NativeMemory>::memoryWords(numVars);
  }
  JUNGLE_CHECK_MSG(false, "unknown TM kind");
  return 0;
}

std::unique_ptr<TmRuntime> makeNativeRuntime(TmKind kind, NativeMemory& mem,
                                             std::size_t numVars,
                                             std::size_t maxProcs) {
  return makeRuntime(kind, mem, numVars, maxProcs);
}

std::unique_ptr<TmRuntime> makeRecordingRuntime(TmKind kind,
                                                RecordingMemory& mem,
                                                std::size_t numVars,
                                                std::size_t maxProcs) {
  return makeRuntime(kind, mem, numVars, maxProcs);
}

std::unique_ptr<TmRuntime> makeScheduledRuntime(TmKind kind,
                                                ScheduledMemory& mem,
                                                std::size_t numVars,
                                                std::size_t maxProcs) {
  return makeRuntime(kind, mem, numVars, maxProcs);
}

}  // namespace jungle
