// Theorem 5's construction: **constant-time** instrumentation of
// non-transactional writes, **no** instrumentation of non-transactional
// reads, global-lock transactions with CAS write-back.  Guarantees opacity
// parametrized by any memory model outside M_rr ∪ M_wr — e.g. Alpha — and,
// with dependence-aware fencing for data-dependent reads, RMO/Java-class
// models (§5.2).
//
// The paper packs ⟨value, pid, version⟩ into one wide store, which caps
// values at the leftover bits.  This implementation widens the construction
// to a *two-word* scheme so values keep the full 64 bits: each variable x
// owns a value word (address x) and a tag word (address numVars + x), and a
// non-transactional write stores a fresh tag ⟨pid, version⟩ first, then the
// value.  The tag plays exactly the role the version field played in the
// packed word: every non-transactional write makes the tag word hold a
// value the memory has never held, so a transaction's commit-time tag-CAS
// can never be fooled by an A-B-A pattern of racy writes — a CAS beaten by
// a fresh tag is exactly "the write landed after the transaction", which
// the proof places after T in the witness history.
//
// Commit writes back per variable as: CAS the tag (expected = the tag
// captured at first access) and, only if that succeeds, CAS the value
// (expected = the captured value).  Either CAS losing means a racy
// non-transactional write intervened and the transaction's write is
// dropped; the witness serializes the racy writer after T (tag-CAS lost:
// the writer's tag landed after capture) or before T with an equal value
// (value-CAS "succeeding" against a racing writer's identical value is
// indistinguishable from T overwriting it — T read that very value, so
// ordering the writer before T is consistent).
//
// Capture order is value THEN tag, and the non-transactional writer's
// store order is tag THEN value — both mandatory.  Reversing the capture
// (tag first) admits a lost-write violation: a writer's ⟨tag, value⟩ pair
// can land between the two capture loads, leaving T holding the OLD tag
// with the NEW value; T's commit tag-CAS then fails (the writer must
// serialize after T) even though T read the writer's value (the writer
// must serialize before T) — a contradiction no witness can satisfy.
// With value-first capture every interleaving of the two stores and two
// loads yields a consistent witness (the conformance suite and the
// schedule explorer check this exhaustively on small programs).
#pragma once

#include "tm/global_lock_tm.hpp"

namespace jungle {

/// Tag word codec for VersionedWriteTm: ⟨pid:16 | version:48⟩, with the
/// per-process version pre-incremented before every tagged store so a
/// written tag is never 0 (0 = "never non-transactionally written", the
/// initial tag word).
struct WriteTag {
  static constexpr unsigned kPidBits = 16;
  static constexpr unsigned kVersionBits = 48;

  static Word pack(ProcessId pid, std::uint64_t version) {
    return (static_cast<Word>(pid & 0xffff) << kVersionBits) |
           (version & ((Word{1} << kVersionBits) - 1));
  }
  static ProcessId pid(Word tag) {
    return static_cast<ProcessId>(tag >> kVersionBits);
  }
  static std::uint64_t version(Word tag) {
    return tag & ((Word{1} << kVersionBits) - 1);
  }
};

template <class Mem>
class VersionedWriteTm {
 public:
  static constexpr bool kInstrumentsNtReads = false;
  static constexpr bool kInstrumentsNtWrites = true;
  static constexpr const char* kName = "versioned-write";

  /// Per variable: a value word and a tag word; plus the global lock.
  static std::size_t memoryWords(std::size_t numVars) {
    return 2 * numVars + 1;
  }

  VersionedWriteTm(Mem& mem, std::size_t numVars)
      : mem_(mem), numVars_(numVars), lockAddr_(2 * numVars) {
    JUNGLE_CHECK(mem.size() >= memoryWords(numVars));
  }

  struct Thread {
    ProcessId pid = 0;
    VarMap readset;  // original values (first-access capture)
    VarMap tagset;   // original tags (same capture)
    VarMap writeset;  // new values
    std::uint64_t version = 0;  // per-process, thread-local: no memory cost
    bool inTx = false;
    /// Identifier of this thread's previous operation (for marking
    /// data-dependent reads); meaningful under recording policies.
    OpId lastOp = kNoOp;
  };

  Thread makeThread(ProcessId pid) const {
    Thread t;
    t.pid = pid;
    return t;
  }

  void txStart(Thread& t) {
    JUNGLE_CHECK(!t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kStart, kNoObject, {});
    Backoff backoff;
    for (;;) {
      const Word lg = mem_.load(t.pid, lockAddr_);
      if (lg == 0 && mem_.cas(t.pid, lockAddr_, 0, t.pid + 1)) break;
      backoff.pause();
    }
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kStart, kNoObject, {});
    t.inTx = true;
  }

  Word txRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    mem_.markPoint(t.pid, op);
    const Word v = readThroughSets(t, x);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  void txWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    mem_.markPoint(t.pid, op);
    if (t.readset.find(x) == nullptr) capture(t, x);
    t.writeset.put(x, v);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

  bool txCommit(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommit, kNoObject, {});
    for (const auto& [x, vNew] : t.writeset) {
      const Word* origVal = t.readset.find(x);
      const Word* origTag = t.tagset.find(x);
      JUNGLE_CHECK(origVal != nullptr && origTag != nullptr);
      ++t.version;
      // Both CAS outcomes are ignored by design: a lost tag-CAS means a
      // racy writer's tag landed after capture (the writer serializes
      // after T, T's write is dropped); a lost value-CAS means the
      // writer's value already landed (same placement); a value-CAS that
      // "wins" against a racing writer's equal value orders that writer
      // before T, which is consistent because T read exactly that value.
      if (mem_.cas(t.pid, tagAddr(x), *origTag,
                   WriteTag::pack(t.pid, t.version))) {
        mem_.cas(t.pid, x, *origVal, vNew);
      }
    }
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, 0);
    mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    finish(t);
    return true;
  }

  void txAbort(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kAbort, kNoObject, {});
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, 0);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    finish(t);
  }

  /// Uninstrumented read: one load of the value word (the tag word is
  /// never touched on the read path).
  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    const Word v = mem_.load(t.pid, x);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    t.lastOp = op;
    return v;
  }

  /// A plain read that the program declares *data-dependent* on this
  /// thread's previous operation (pointer-chasing and the like).  Still a
  /// single load — which is exactly why it is UNSAFE under M^d_rr models
  /// (RMO, Java): the dependence forbids the reordering Theorem 5's proof
  /// needs.  The conformance tests exhibit the failure; ntReadVolatile is
  /// the §5.2 fix.  The previous operation must be a command operation of
  /// this thread (recording policies enforce dependence well-formedness
  /// downstream).
  Word ntReadDependent(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    JUNGLE_CHECK_MSG(t.lastOp != kNoOp,
                     "dependent read needs a preceding operation");
    const Command announce = cmdDdRead(0, {t.lastOp});
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, announce);
    const Word v = mem_.load(t.pid, x);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdDdRead(v, {t.lastOp}));
    t.lastOp = op;
    return v;
  }

  /// §5.2's adaptation for M^d_rr models (RMO, Java): data-dependent plain
  /// reads must not reorder, so they get "volatile" treatment — the
  /// footnote's "a volatile access may be considered as a single operation
  /// transaction".  One lock acquire + load + release; use only for the
  /// rare dependence-carrying reads, plain ntRead everywhere else.
  /// `dependentOnPrevious` records the dependence in the trace so the
  /// checkers apply the M^d_rr ordering to it.
  Word ntReadVolatile(Thread& t, ObjectId x,
                      bool dependentOnPrevious = false) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    std::vector<OpId> deps;
    if (dependentOnPrevious) {
      JUNGLE_CHECK_MSG(t.lastOp != kNoOp,
                       "dependent read needs a preceding operation");
      deps.push_back(t.lastOp);
    }
    const Command announce =
        deps.empty() ? cmdRead(0) : cmdDdRead(0, deps);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, announce);
    Backoff backoff;
    for (;;) {
      const Word lg = mem_.load(t.pid, lockAddr_);
      if (lg == 0 && mem_.cas(t.pid, lockAddr_, 0, t.pid + 1)) break;
      backoff.pause();
    }
    const Word v = mem_.load(t.pid, x);
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, 0);
    mem_.endOp(t.pid, op, OpType::kCommand, x,
               deps.empty() ? cmdRead(v) : cmdDdRead(v, deps));
    t.lastOp = op;
    return v;
  }

  /// Constant-time instrumented write: two stores (fresh tag, then the
  /// full 64-bit value); the version increment is thread-local.  Tag
  /// before value is mandatory — see the file comment.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    ++t.version;
    mem_.store(t.pid, tagAddr(x), WriteTag::pack(t.pid, t.version));
    mem_.store(t.pid, x, v);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
    t.lastOp = op;
  }

 private:
  Addr tagAddr(ObjectId x) const { return numVars_ + x; }

  /// First-access capture: value word, THEN tag word (the order the
  /// write-back CASes depend on; see the file comment).
  void capture(Thread& t, ObjectId x) {
    const Word v = mem_.load(t.pid, x);
    const Word tag = mem_.load(t.pid, tagAddr(x));
    t.readset.put(x, v);
    t.tagset.put(x, tag);
  }

  Word readThroughSets(Thread& t, ObjectId x) {
    if (const Word* w = t.writeset.find(x)) return *w;
    if (const Word* r = t.readset.find(x)) return *r;
    capture(t, x);
    return *t.readset.find(x);
  }

  void finish(Thread& t) {
    t.readset.clear();
    t.tagset.clear();
    t.writeset.clear();
    t.inTx = false;
  }

  Mem& mem_;
  std::size_t numVars_;
  Addr lockAddr_;
};

}  // namespace jungle
