// Theorem 5's construction: **constant-time** instrumentation of
// non-transactional writes (a single wide store of ⟨value, pid, per-process
// version⟩), **no** instrumentation of non-transactional reads, global-lock
// transactions with CAS write-back.  Guarantees opacity parametrized by any
// memory model outside M_rr ∪ M_wr — e.g. Alpha — and, with dependence-
// aware fencing for data-dependent reads, RMO/Java-class models (§5.2).
//
// Why the version tag: it makes every non-transactional write produce a
// word the memory has never held, so a transaction's commit-time CAS can
// never be fooled by an A-B-A pattern of racy writes — a CAS beaten by a
// tagged write is exactly "the write landed after the transaction", which
// the proof places after T in the witness history.
//
// Packing (64-bit word): [ value:32 | pid:8 | version:24 ].  Values are
// truncated to 32 bits at the API boundary (checked).
#pragma once

#include "tm/global_lock_tm.hpp"

namespace jungle {

struct PackedVar {
  static constexpr unsigned kValueBits = 32;
  static constexpr unsigned kPidBits = 8;
  static constexpr unsigned kVersionBits = 24;
  static constexpr Word kMaxValue = (Word{1} << kValueBits) - 1;

  static Word pack(Word value, ProcessId pid, std::uint32_t version) {
    JUNGLE_DCHECK(value <= kMaxValue);
    return (value << (kPidBits + kVersionBits)) |
           (static_cast<Word>(pid & 0xff) << kVersionBits) |
           (version & ((1u << kVersionBits) - 1));
  }
  static Word value(Word packed) {
    return packed >> (kPidBits + kVersionBits);
  }
};

template <class Mem>
class VersionedWriteTm {
 public:
  static constexpr bool kInstrumentsNtReads = false;
  static constexpr bool kInstrumentsNtWrites = true;
  static constexpr const char* kName = "versioned-write";

  static std::size_t memoryWords(std::size_t numVars) { return numVars + 1; }

  VersionedWriteTm(Mem& mem, std::size_t numVars)
      : mem_(mem), numVars_(numVars), lockAddr_(numVars) {
    JUNGLE_CHECK(mem.size() >= memoryWords(numVars));
  }

  struct Thread {
    ProcessId pid = 0;
    VarMap readset;   // original *packed* words
    VarMap writeset;  // new values (unpacked)
    std::uint32_t version = 0;  // per-process, thread-local: no memory cost
    bool inTx = false;
    /// Identifier of this thread's previous operation (for marking
    /// data-dependent reads); meaningful under recording policies.
    OpId lastOp = kNoOp;
  };

  Thread makeThread(ProcessId pid) const {
    Thread t;
    t.pid = pid;
    return t;
  }

  void txStart(Thread& t) {
    JUNGLE_CHECK(!t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kStart, kNoObject, {});
    Backoff backoff;
    for (;;) {
      const Word lg = mem_.load(t.pid, lockAddr_);
      if (lg == 0 && mem_.cas(t.pid, lockAddr_, 0, t.pid + 1)) break;
      backoff.pause();
    }
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kStart, kNoObject, {});
    t.inTx = true;
  }

  Word txRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    mem_.markPoint(t.pid, op);
    const Word v = readThroughSets(t, x);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  void txWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(t.inTx && x < numVars_ && v <= PackedVar::kMaxValue);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    mem_.markPoint(t.pid, op);
    if (t.readset.find(x) == nullptr) {
      t.readset.put(x, mem_.load(t.pid, x));  // packed original
    }
    t.writeset.put(x, v);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

  bool txCommit(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommit, kNoObject, {});
    for (const auto& [x, vNew] : t.writeset) {
      const Word* packedOld = t.readset.find(x);
      JUNGLE_CHECK(packedOld != nullptr);
      ++t.version;
      mem_.cas(t.pid, x, *packedOld,
               PackedVar::pack(vNew, t.pid, t.version));
    }
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, 0);
    mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    finish(t);
    return true;
  }

  void txAbort(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kAbort, kNoObject, {});
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, 0);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    finish(t);
  }

  /// Uninstrumented read: one load (unpacking is local computation).
  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    const Word v = PackedVar::value(mem_.load(t.pid, x));
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    t.lastOp = op;
    return v;
  }

  /// A plain read that the program declares *data-dependent* on this
  /// thread's previous operation (pointer-chasing and the like).  Still a
  /// single load — which is exactly why it is UNSAFE under M^d_rr models
  /// (RMO, Java): the dependence forbids the reordering Theorem 5's proof
  /// needs.  The conformance tests exhibit the failure; ntReadVolatile is
  /// the §5.2 fix.  The previous operation must be a command operation of
  /// this thread (recording policies enforce dependence well-formedness
  /// downstream).
  Word ntReadDependent(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    JUNGLE_CHECK_MSG(t.lastOp != kNoOp,
                     "dependent read needs a preceding operation");
    const Command announce = cmdDdRead(0, {t.lastOp});
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, announce);
    const Word v = PackedVar::value(mem_.load(t.pid, x));
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdDdRead(v, {t.lastOp}));
    t.lastOp = op;
    return v;
  }

  /// §5.2's adaptation for M^d_rr models (RMO, Java): data-dependent plain
  /// reads must not reorder, so they get "volatile" treatment — the
  /// footnote's "a volatile access may be considered as a single operation
  /// transaction".  One lock acquire + load + release; use only for the
  /// rare dependence-carrying reads, plain ntRead everywhere else.
  /// `dependentOnPrevious` records the dependence in the trace so the
  /// checkers apply the M^d_rr ordering to it.
  Word ntReadVolatile(Thread& t, ObjectId x,
                      bool dependentOnPrevious = false) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    std::vector<OpId> deps;
    if (dependentOnPrevious) {
      JUNGLE_CHECK_MSG(t.lastOp != kNoOp,
                       "dependent read needs a preceding operation");
      deps.push_back(t.lastOp);
    }
    const Command announce =
        deps.empty() ? cmdRead(0) : cmdDdRead(0, deps);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, announce);
    Backoff backoff;
    for (;;) {
      const Word lg = mem_.load(t.pid, lockAddr_);
      if (lg == 0 && mem_.cas(t.pid, lockAddr_, 0, t.pid + 1)) break;
      backoff.pause();
    }
    const Word v = PackedVar::value(mem_.load(t.pid, x));
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, 0);
    mem_.endOp(t.pid, op, OpType::kCommand, x,
               deps.empty() ? cmdRead(v) : cmdDdRead(v, deps));
    t.lastOp = op;
    return v;
  }

  /// Constant-time instrumented write: exactly one store; the version
  /// increment is thread-local.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < numVars_ && v <= PackedVar::kMaxValue);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    ++t.version;
    mem_.store(t.pid, x, PackedVar::pack(v, t.pid, t.version));
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
    t.lastOp = op;
  }

 private:
  Word readThroughSets(Thread& t, ObjectId x) {
    if (const Word* w = t.writeset.find(x)) return *w;
    if (const Word* r = t.readset.find(x)) return PackedVar::value(*r);
    const Word packed = mem_.load(t.pid, x);
    t.readset.put(x, packed);
    return PackedVar::value(packed);
  }

  void finish(Thread& t) {
    t.readset.clear();
    t.writeset.clear();
    t.inTx = false;
  }

  Mem& mem_;
  std::size_t numVars_;
  Addr lockAddr_;
};

}  // namespace jungle
