// Multi-version TM core: a version-chain arena plus two backends —
// snapshot isolation (SiTm) and SI + SSN certification (SiSsnTm).
//
// Unlike the single-version TMs (one value word per variable), every
// variable here owns a bounded ring of K versions.  Transactions read a
// begin-timestamp snapshot: the newest version no younger than the clock
// value sampled at start.  Writers buffer privately and certify at commit
// under a global commit latch:
//
//   * SiTm     — first-committer-wins: abort iff a variable in the write
//                set was committed past the snapshot.  Guarantees snapshot
//                isolation (lost update excluded, write skew admitted).
//   * SiSsnTm  — SI plus SSN exclusion-window certification [Wang et al.,
//                "The Serial Safety Net"]: per-version pstamp/sstamp
//                watermarks, abort iff eta(T) <= pi(T).  Excludes write
//                skew; the commit order extends a serializable order.
//
// Layout (memoryWords = 4n + 2 + n*K*S words):
//   [0, n)        per-variable record: (newest committed ts << 1) | locked
//   [n, 2n)       per-variable head counter: total versions ever appended
//   2n            global version clock
//   2n + 1        global commit latch (0 free, pid+1 held)
//   [2n+2, 4n+2)  per-variable stamps of the implicit initial version
//                 (ts 0, value 0): pstamp, then sstamp (SSN only)
//   4n+2 ...      n * K version slots of S words: ts, value[, pstamp,
//                 sstamp].  A stored sstamp of 0 encodes "infinity".
//
// Readers never block: a seqlock on the record validates each chain scan
// (writers lock the record before touching slots).  A snapshot older than
// every surviving version in the ring aborts conservatively ("snapshot too
// old"), as does an SSN commit whose read version was evicted by ring
// wrap-around.  Non-transactional operations are instrumented: a read
// returns the newest committed version; a write appends a version under
// the latch (a singleton committed transaction).
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "history/op_instance.hpp"
#include "tm/global_lock_tm.hpp"  // VarMap

namespace jungle {

template <class Mem, std::size_t SlotWords>
class MvccTmBase {
 public:
  /// Ring capacity per variable.  Eight absorbs the write bursts the
  /// stress workloads generate; older snapshots abort conservatively.
  static constexpr std::size_t kVersionsPerVar = 8;

  /// Hard ceiling on the version clock.  Two encodings in this layout
  /// steal high bits from a timestamp: the per-variable record packs
  /// (ts << 1) | locked, and a stored sstamp of 0 means infinity — so a
  /// clock anywhere near 2^63 would silently alias locked records, and a
  /// wrapped clock of 0 would turn every new version's sstamp into
  /// "never overwritten".  2^62 commits cannot be counted to in a process
  /// lifetime; reaching the ceiling therefore means corruption (or a
  /// future clock-warp feature forgetting this invariant), and the
  /// nextCommitStamp guard convicts it at the stamping site instead of
  /// letting stale snapshots read wrapped versions.
  static constexpr Word kClockCeiling = Word{1} << 62;

  static std::size_t memoryWords(std::size_t numVars) {
    return 4 * numVars + 2 + numVars * kVersionsPerVar * SlotWords;
  }

  MvccTmBase(Mem& mem, std::size_t numVars)
      : mem_(mem),
        numVars_(numVars),
        clockAddr_(2 * numVars),
        latchAddr_(2 * numVars + 1) {
    JUNGLE_CHECK(mem.size() >= memoryWords(numVars));
  }

  struct Thread {
    ProcessId pid = 0;
    Word rv = 0;      // start-time clock sample (snapshot timestamp)
    VarMap readset;   // obj -> ts of the snapshot version read
    VarMap writeset;  // obj -> buffered new value
    bool inTx = false;
    std::uint64_t aborts = 0;
    // Telemetry (surfaced through TmRuntime::telemetry()).
    std::uint64_t fcwAborts = 0;     // first-committer-wins certification
    std::uint64_t tooOldAborts = 0;  // snapshot older than the ring
    std::uint64_t ssnAborts = 0;     // SSN exclusion window or eviction
    std::uint64_t chainReads = 0;    // completed chain lookups
    std::uint64_t chainSteps = 0;    // slots inspected across lookups
  };

  Thread makeThread(ProcessId pid) const {
    Thread t;
    t.pid = pid;
    return t;
  }

  void txStart(Thread& t) {
    JUNGLE_CHECK(!t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kStart, kNoObject, {});
    t.rv = mem_.load(t.pid, clockAddr_);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kStart, kNoObject, {});
    t.inTx = true;
  }

  /// nullopt => the transaction aborted (snapshot too old, or persistent
  /// seqlock interference); the read responds as the abort.
  std::optional<Word> txRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    if (const Word* w = t.writeset.find(x)) {
      mem_.markPoint(t.pid, op);
      mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(*w));
      return *w;
    }
    const auto r = snapshotRead(t, x, t.rv);
    if (!r.has_value()) {
      ++t.tooOldAborts;
      abortInsideOp(t, op);
      return std::nullopt;
    }
    if (t.readset.find(x) == nullptr) t.readset.put(x, r->second);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(r->first));
    return r->first;
  }

  void txWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    t.writeset.put(x, v);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

  void txAbort(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kAbort, kNoObject, {});
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    finish(t);
  }

  std::uint64_t abortCount(const Thread& t) const { return t.aborts; }

  /// Per-thread counters, summed by the runtime adapter.  The order and
  /// names are identical for both backends so bench rows line up.
  static std::vector<std::pair<const char*, std::uint64_t>> telemetry(
      const Thread& t) {
    return {{"fcw_aborts", t.fcwAborts},
            {"too_old_aborts", t.tooOldAborts},
            {"ssn_aborts", t.ssnAborts},
            {"chain_reads", t.chainReads},
            {"chain_steps", t.chainSteps}};
  }

  /// Instrumented non-transactional read: the newest committed version
  /// (a snapshot at "now").  Retries seqlock interference forever — a
  /// non-transactional operation cannot abort.
  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    Backoff backoff;
    std::optional<std::pair<Word, Word>> r;
    while (!(r = snapshotRead(t, x, ~Word{0})).has_value()) {
      backoff.pause();
    }
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(r->first));
    return r->first;
  }

 protected:
  static constexpr std::size_t kK = kVersionsPerVar;
  // Slot field offsets.
  static constexpr std::size_t kTs = 0;
  static constexpr std::size_t kValue = 1;
  static constexpr std::size_t kPstamp = 2;  // SSN backends only
  static constexpr std::size_t kSstamp = 3;  // SSN backends only
  /// Seqlock attempts before a conservative abort in transactions.
  static constexpr int kReadAttempts = 64;

  Addr recordAddr(ObjectId x) const { return x; }
  Addr headAddr(ObjectId x) const { return numVars_ + x; }
  Addr initStampAddr(ObjectId x, std::size_t field) const {
    JUNGLE_DCHECK(field == kPstamp || field == kSstamp);
    return 2 * numVars_ + 2 + 2 * x + (field - kPstamp);
  }
  Addr slotAddr(ObjectId x, std::size_t slot, std::size_t field) const {
    JUNGLE_DCHECK(slot < kK && field < SlotWords);
    return 4 * numVars_ + 2 + (x * kK + slot) * SlotWords + field;
  }

  /// Finds the newest version of x with ts <= rv and returns (value, ts);
  /// the implicit initial version is (0, 0).  nullopt when the snapshot
  /// predates every surviving version (ring wrapped past rv) or when
  /// kReadAttempts seqlock validations failed in a row.
  std::optional<std::pair<Word, Word>> snapshotRead(Thread& t, ObjectId x,
                                                    Word rv) {
    Backoff backoff;
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      const Word r1 = mem_.load(t.pid, recordAddr(x));
      if ((r1 & 1) != 0) {  // a commit is installing; wait it out
        backoff.pause();
        continue;
      }
      const Word h = mem_.load(t.pid, headAddr(x));
      ++t.chainReads;
      const Word newest = r1 >> 1;
      Word value = 0;
      Word ts = 0;
      bool found = false;
      bool tooOld = false;
      if (newest <= rv) {
        ts = newest;
        if (newest == 0) {
          found = true;  // implicit initial version
        } else {
          const std::size_t slot = static_cast<std::size_t>((h - 1) % kK);
          ++t.chainSteps;
          if (mem_.load(t.pid, slotAddr(x, slot, kTs)) == newest) {
            value = mem_.load(t.pid, slotAddr(x, slot, kValue));
            found = true;
          }
          // ts mismatch: torn by a concurrent commit; the record check
          // below fails and we retry.
        }
      } else {
        const std::size_t depth =
            static_cast<std::size_t>(std::min<Word>(h, kK));
        for (std::size_t i = 0; i < depth; ++i) {
          const std::size_t slot = static_cast<std::size_t>((h - 1 - i) % kK);
          ++t.chainSteps;
          const Word sts = mem_.load(t.pid, slotAddr(x, slot, kTs));
          if (sts <= rv) {
            value = mem_.load(t.pid, slotAddr(x, slot, kValue));
            ts = sts;
            found = true;
            break;
          }
        }
        if (!found) {
          if (h < kK) {
            found = true;  // ring never wrapped: initial version reachable
          } else {
            tooOld = true;
          }
        }
      }
      if (mem_.load(t.pid, recordAddr(x)) != r1) continue;  // torn scan
      if (tooOld) return std::nullopt;
      JUNGLE_CHECK(found);
      return std::make_pair(value, ts);
    }
    return std::nullopt;  // persistent interference: conservative abort
  }

  void acquireLatch(Thread& t) {
    Backoff backoff;
    while (!mem_.cas(t.pid, latchAddr_, 0,
                     static_cast<Word>(t.pid) + 1)) {
      backoff.pause();
    }
  }

  void releaseLatch(Thread& t) { mem_.store(t.pid, latchAddr_, 0); }

  /// Write-set variables in ascending order (deterministic install order).
  std::vector<ObjectId> writeOrder(const Thread& t) const {
    std::vector<ObjectId> order;
    for (const auto& [x, v] : t.writeset) order.push_back(x);
    std::sort(order.begin(), order.end());
    return order;
  }

  /// First-committer-wins certification (latch held): a write-set variable
  /// committed past the snapshot loses.  Returns false on conflict.
  bool certifyFirstCommitterWins(Thread& t) {
    for (const auto& [x, v] : t.writeset) {
      if ((mem_.load(t.pid, recordAddr(x)) >> 1) > t.rv) return false;
    }
    return true;
  }

  /// Appends one version per write-set variable with commit stamp wv and
  /// publishes the records (latch held).  The commit's logical point is
  /// marked after the slots are written, before the records flip — the
  /// same discipline as the TL2 write-back.
  void installVersions(Thread& t, OpId op, Word wv,
                       const std::vector<ObjectId>& order) {
    for (ObjectId x : order) {
      const Word r = mem_.load(t.pid, recordAddr(x));
      mem_.store(t.pid, recordAddr(x), r | 1);  // readers now retry
    }
    for (const auto& [x, v] : t.writeset) {
      const Word h = mem_.load(t.pid, headAddr(x));
      const std::size_t slot = static_cast<std::size_t>(h % kK);
      mem_.store(t.pid, slotAddr(x, slot, kTs), wv);
      mem_.store(t.pid, slotAddr(x, slot, kValue), v);
      if constexpr (SlotWords > kPstamp) {
        mem_.store(t.pid, slotAddr(x, slot, kPstamp), wv);
        mem_.store(t.pid, slotAddr(x, slot, kSstamp), 0);  // infinity
      }
      mem_.store(t.pid, headAddr(x), h + 1);
    }
    mem_.markPoint(t.pid, op);
    for (ObjectId x : order) {
      mem_.store(t.pid, recordAddr(x), wv << 1);
    }
  }

  /// Ends the open operation as the transaction's abort (response carries
  /// OpType::kAbort, so extracted histories stay well formed).
  void abortInsideOp(Thread& t, OpId op) {
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    ++t.aborts;
    finish(t);
  }

  void finish(Thread& t) {
    t.readset.clear();
    t.writeset.clear();
    t.inTx = false;
  }

  /// The next commit stamp, guarded against wraparound (kClockCeiling);
  /// every path that advances the clock (tx commit and instrumented
  /// write, in both backends) must mint its stamp here.
  Word nextCommitStamp(Thread& t) {
    const Word wv = mem_.load(t.pid, clockAddr_) + 1;
    JUNGLE_CHECK(wv < kClockCeiling && wv != 0);
    return wv;
  }

  Mem& mem_;
  std::size_t numVars_;
  Addr clockAddr_;
  Addr latchAddr_;
};

/// Snapshot isolation: begin-timestamp snapshot reads, first-committer-wins
/// write certification.  Admits write skew (the separating litmus in the
/// condition-matrix tests); excludes lost update.
template <class Mem>
class SiTm : public MvccTmBase<Mem, 2> {
  using Base = MvccTmBase<Mem, 2>;

 public:
  static constexpr bool kInstrumentsNtReads = true;
  static constexpr bool kInstrumentsNtWrites = true;
  static constexpr const char* kName = "si-mvcc";

  using Base::Base;
  using typename Base::Thread;

  bool txCommit(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = this->mem_.beginOp(t.pid, OpType::kCommit, kNoObject, {});
    if (t.writeset.empty()) {
      // Read-only: the snapshot was consistent by construction.
      this->mem_.markPoint(t.pid, op);
      this->mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
      this->finish(t);
      return true;
    }
    this->acquireLatch(t);
    if (!this->certifyFirstCommitterWins(t)) {
      this->releaseLatch(t);
      ++t.fcwAborts;
      this->abortInsideOp(t, op);
      return false;
    }
    const Word wv = this->nextCommitStamp(t);
    this->installVersions(t, op, wv, this->writeOrder(t));
    // The clock is published only after the install: a transaction whose
    // snapshot rv >= wv must find every wv version in place, or its reads
    // could race the install and still pass first-committer-wins.
    this->mem_.store(t.pid, this->clockAddr_, wv);
    this->releaseLatch(t);
    this->mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    this->finish(t);
    return true;
  }

  /// Instrumented write: a singleton committed transaction — append a
  /// version under the latch.  Always succeeds (no reads to certify).
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op = this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    this->acquireLatch(t);
    const Word wv = this->nextCommitStamp(t);
    const Word r = this->mem_.load(t.pid, this->recordAddr(x));
    this->mem_.store(t.pid, this->recordAddr(x), r | 1);
    const Word h = this->mem_.load(t.pid, this->headAddr(x));
    const std::size_t slot = static_cast<std::size_t>(h % Base::kK);
    this->mem_.store(t.pid, this->slotAddr(x, slot, Base::kTs), wv);
    this->mem_.store(t.pid, this->slotAddr(x, slot, Base::kValue), v);
    this->mem_.store(t.pid, this->headAddr(x), h + 1);
    this->mem_.markPoint(t.pid, op);
    this->mem_.store(t.pid, this->recordAddr(x), wv << 1);
    this->mem_.store(t.pid, this->clockAddr_, wv);  // publish after install
    this->releaseLatch(t);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }
};

/// SI plus the Serial Safety Net: per-version pstamp (high watermark of
/// committed readers) and sstamp (low watermark of the overwrite) track the
/// exclusion window
///
///   pi(T)  = max(rv, ts of versions read, pstamp of versions overwritten)
///   eta(T) = min(c(T), sstamp of versions read)
///
/// and T aborts iff eta(T) <= pi(T).  On top of first-committer-wins this
/// closes the write-skew window: the second skewed committer observes the
/// first one's sstamp and aborts.  A read version evicted by ring
/// wrap-around before commit aborts conservatively.
///
/// Two strengthenings beyond textbook SSN, both required because the claim
/// here is STRICT serializability, not just serializability:
///
///   * pi includes rv — the transaction's real-time floor.  Everything
///     committed before T began has commit stamp <= rv, so a transaction
///     forced below that floor (eta <= rv, from reading a version whose
///     overwriter had to serialize early) cannot be placed after its
///     real-time predecessors and must abort.
///   * Read-only transactions and non-transactional reads participate:
///     they certify their window under the commit latch and raise the
///     pstamp of every version they read to the commit-time clock.
///     Skipping them admits the read-only real-time anomaly: p commits a
///     write (say x2 := 2 at ts 1), then a later read-only transaction on
///     the SAME process reads x1 = 0; a concurrent writer still on an
///     older snapshot (rv 0) reads x2 = 0 and commits x1 := 9, and the
///     serialization needs writer < (x2 := 2) < read-only < writer — a
///     cycle only the reader's pstamp can expose (regression:
///     SsnReadOnlyRealTime tests; found by fuzz --tm si-ssn).
template <class Mem>
class SiSsnTm : public MvccTmBase<Mem, 4> {
  using Base = MvccTmBase<Mem, 4>;

 public:
  static constexpr bool kInstrumentsNtReads = true;
  static constexpr bool kInstrumentsNtWrites = true;
  static constexpr const char* kName = "si-ssn";

  using Base::Base;
  using typename Base::Thread;

  bool txCommit(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = this->mem_.beginOp(t.pid, OpType::kCommit, kNoObject, {});
    if (t.writeset.empty()) return commitReadOnly(t, op);
    this->acquireLatch(t);
    if (!this->certifyFirstCommitterWins(t)) {
      this->releaseLatch(t);
      ++t.fcwAborts;
      this->abortInsideOp(t, op);
      return false;
    }
    const Word wv = this->nextCommitStamp(t);

    // Exclusion-window computation (latch held, stamps are stable).  rv
    // floors pi: real-time predecessors committed at stamps <= rv.
    Word pi = t.rv;
    Word eta = wv;
    bool evicted = false;
    std::vector<std::pair<ObjectId, Word>> readStamps;   // pstamp addrs
    std::vector<Addr> overwrittenSstamps;
    for (const auto& [x, ts] : t.readset) {
      pi = std::max(pi, ts);
      const auto sAddr = versionFieldAddr(t, x, ts, Base::kSstamp);
      if (!sAddr.has_value()) {
        evicted = true;
        break;
      }
      const Word s = this->mem_.load(t.pid, *sAddr);
      if (s != 0) eta = std::min(eta, s);  // 0 encodes infinity
      readStamps.emplace_back(x, ts);
    }
    if (!evicted) {
      for (const auto& [x, v] : t.writeset) {
        const Word old = this->mem_.load(t.pid, this->recordAddr(x)) >> 1;
        const auto pAddr = versionFieldAddr(t, x, old, Base::kPstamp);
        const auto sAddr = versionFieldAddr(t, x, old, Base::kSstamp);
        if (!pAddr.has_value() || !sAddr.has_value()) {
          evicted = true;
          break;
        }
        pi = std::max(pi, this->mem_.load(t.pid, *pAddr));
        overwrittenSstamps.push_back(*sAddr);
      }
    }
    if (evicted || eta <= pi) {
      this->releaseLatch(t);
      ++t.ssnAborts;
      this->abortInsideOp(t, op);
      return false;
    }

    // Commit: propagate the watermarks, then install.  Every stamp
    // stored below mirrors the nextCommitStamp ceiling guard: a sealed
    // sstamp must stay a real stamp (nonzero — 0 would flip it back to
    // "never overwritten" — and below kClockCeiling), and an advanced
    // pstamp must stay below the ceiling; a violation at the stamping
    // site means clock corruption, convicted here rather than surfacing
    // as a wrong SSN verdict arbitrarily later.
    for (Addr sAddr : overwrittenSstamps) {
      const Word s = this->mem_.load(t.pid, sAddr);
      const Word ns = (s == 0) ? eta : std::min(s, eta);
      JUNGLE_CHECK(ns != 0 && ns < Base::kClockCeiling);
      this->mem_.store(t.pid, sAddr, ns);
    }
    for (const auto& [x, ts] : readStamps) {
      // Our own install may evict the version; its pstamp is then moot.
      const auto pAddr = versionFieldAddr(t, x, ts, Base::kPstamp);
      if (!pAddr.has_value()) continue;
      const Word p = this->mem_.load(t.pid, *pAddr);
      const Word np = std::max(p, wv);
      JUNGLE_CHECK(np < Base::kClockCeiling);
      this->mem_.store(t.pid, *pAddr, np);
    }
    this->installVersions(t, op, wv, this->writeOrder(t));
    // Publish the clock only after the install (see SiTm::txCommit).
    this->mem_.store(t.pid, this->clockAddr_, wv);
    this->releaseLatch(t);
    this->mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    this->finish(t);
    return true;
  }

  /// Instrumented write: a singleton committed writer.  pi = pstamp of the
  /// overwritten version < wv and eta = wv, so it always certifies; it
  /// still seals the overwritten version's sstamp so committed readers of
  /// that version serialize before it.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op = this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    this->acquireLatch(t);
    const Word wv = this->nextCommitStamp(t);
    const Word old = this->mem_.load(t.pid, this->recordAddr(x)) >> 1;
    if (const auto sAddr = versionFieldAddr(t, x, old, Base::kSstamp)) {
      const Word s = this->mem_.load(t.pid, *sAddr);
      const Word ns = (s == 0) ? wv : std::min(s, wv);
      // Seal guard (see txCommit): 0 would re-encode infinity, and a
      // stamp at the ceiling means the clock wrapped or was corrupted.
      JUNGLE_CHECK(ns != 0 && ns < Base::kClockCeiling);
      this->mem_.store(t.pid, *sAddr, ns);
    }
    const Word r = this->mem_.load(t.pid, this->recordAddr(x));
    this->mem_.store(t.pid, this->recordAddr(x), r | 1);
    const Word h = this->mem_.load(t.pid, this->headAddr(x));
    const std::size_t slot = static_cast<std::size_t>(h % Base::kK);
    this->mem_.store(t.pid, this->slotAddr(x, slot, Base::kTs), wv);
    this->mem_.store(t.pid, this->slotAddr(x, slot, Base::kValue), v);
    this->mem_.store(t.pid, this->slotAddr(x, slot, Base::kPstamp), wv);
    this->mem_.store(t.pid, this->slotAddr(x, slot, Base::kSstamp), 0);
    this->mem_.store(t.pid, this->headAddr(x), h + 1);
    this->mem_.markPoint(t.pid, op);
    this->mem_.store(t.pid, this->recordAddr(x), wv << 1);
    this->mem_.store(t.pid, this->clockAddr_, wv);  // publish after install
    this->releaseLatch(t);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

 private:
  /// Read-only commit: no versions to install, but the transaction still
  /// certifies and stamps (see the class comment).  Abort iff some version
  /// read was overwritten with sstamp <= rv — the reader would have to
  /// serialize below its own real-time floor — or was evicted by ring
  /// wrap-around (conservative, as in the writer path).
  bool commitReadOnly(Thread& t, OpId op) {
    this->acquireLatch(t);
    const Word cv = this->mem_.load(t.pid, this->clockAddr_);
    Word eta = ~Word{0};
    bool evicted = false;
    for (const auto& [x, ts] : t.readset) {
      const auto sAddr = versionFieldAddr(t, x, ts, Base::kSstamp);
      if (!sAddr.has_value()) {
        evicted = true;
        break;
      }
      const Word s = this->mem_.load(t.pid, *sAddr);
      if (s != 0) eta = std::min(eta, s);  // 0 encodes infinity
    }
    if (evicted || eta <= t.rv) {
      this->releaseLatch(t);
      ++t.ssnAborts;
      this->abortInsideOp(t, op);
      return false;
    }
    // Committed readers serialize no later than the commit-time clock;
    // raising the pstamps makes a later stale overwriter's pi see them.
    for (const auto& [x, ts] : t.readset) {
      const auto pAddr = versionFieldAddr(t, x, ts, Base::kPstamp);
      if (!pAddr.has_value()) continue;
      const Word p = this->mem_.load(t.pid, *pAddr);
      const Word np = std::max(p, cv);
      // Advance guard (see txCommit); np may legitimately be 0 here —
      // the clock has not ticked yet and no reader stamped the version.
      JUNGLE_CHECK(np < Base::kClockCeiling);
      this->mem_.store(t.pid, *pAddr, np);
    }
    this->mem_.markPoint(t.pid, op);
    this->releaseLatch(t);
    this->mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    this->finish(t);
    return true;
  }

 public:
  /// Instrumented read: a singleton committed read-only transaction, so it
  /// participates like one — under the latch it reads the newest version
  /// and raises that version's pstamp to the clock.  The newest version is
  /// never overwritten while the latch is held, so its sstamp is infinity
  /// and the exclusion window cannot close: an nt read still cannot abort.
  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op = this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    this->acquireLatch(t);
    const Word cv = this->mem_.load(t.pid, this->clockAddr_);
    const auto r = this->snapshotRead(t, x, ~Word{0});
    JUNGLE_CHECK(r.has_value());  // latch held: no writer interference
    if (const auto pAddr = versionFieldAddr(t, x, r->second, Base::kPstamp)) {
      const Word p = this->mem_.load(t.pid, *pAddr);
      const Word np = std::max(p, cv);
      // Advance guard (see txCommit); 0 is legal before the first tick.
      JUNGLE_CHECK(np < Base::kClockCeiling);
      this->mem_.store(t.pid, *pAddr, np);
    }
    this->mem_.markPoint(t.pid, op);
    this->releaseLatch(t);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(r->first));
    return r->first;
  }

 private:
  /// Address of `field` for version ts of x, or nullopt when the ring
  /// evicted it.  The implicit initial version's stamps live in the
  /// dedicated per-variable words.  Latch must be held.
  std::optional<Addr> versionFieldAddr(Thread& t, ObjectId x, Word ts,
                                       std::size_t field) {
    if (ts == 0) return this->initStampAddr(x, field);
    const Word h = this->mem_.load(t.pid, this->headAddr(x));
    const std::size_t depth =
        static_cast<std::size_t>(std::min<Word>(h, Base::kK));
    for (std::size_t i = 0; i < depth; ++i) {
      const std::size_t slot = static_cast<std::size_t>((h - 1 - i) % Base::kK);
      if (this->mem_.load(t.pid, this->slotAddr(x, slot, Base::kTs)) == ts) {
        return this->slotAddr(x, slot, field);
      }
    }
    return std::nullopt;
  }
};

}  // namespace jungle
