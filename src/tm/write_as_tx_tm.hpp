// Theorem 4's construction: uninstrumented non-transactional *reads*, and
// every non-transactional *write* executed as a transaction in itself —
// acquire the global lock, store, release.  Guarantees opacity parametrized
// by any memory model outside M_rr.
//
// The paper's own caveat applies and is measured by bench_instrumentation:
// the write instrumentation is not constant-time — lock acquisition may
// take arbitrarily long under contention ((⟨load g, 0⟩)* ∈ I_N(wr)).
#pragma once

#include "tm/global_lock_tm.hpp"

namespace jungle {

template <class Mem>
class WriteAsTxTm : public GlobalLockTm<Mem> {
  using Base = GlobalLockTm<Mem>;

 public:
  static constexpr bool kInstrumentsNtReads = false;
  static constexpr bool kInstrumentsNtWrites = true;
  static constexpr const char* kName = "write-as-tx";

  using Base::Base;
  using typename Base::Thread;

  /// Instrumented write: a one-operation transaction.  The logical point is
  /// the store, which happens while the lock is held.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < this->numVars_);
    const OpId op =
        this->mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    Backoff backoff;
    for (;;) {
      const Word lg = this->mem_.load(t.pid, this->lockAddr_);
      if (lg == Base::kFree &&
          this->mem_.cas(t.pid, this->lockAddr_, Base::kFree,
                         this->ownerWord(t))) {
        break;
      }
      backoff.pause();
    }
    this->mem_.store(t.pid, x, v);
    this->mem_.markPoint(t.pid, op);
    this->mem_.store(t.pid, this->lockAddr_, Base::kFree);
    this->mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }
};

}  // namespace jungle
