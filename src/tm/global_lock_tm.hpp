// The paper's global-lock TM (Figure 6), verbatim up to two documented
// repairs, as a template over the memory policy.
//
//   * Lock acquisition: the printed pseudocode CASes from a stale `lg`,
//     which would let a process steal a held lock; we implement the clearly
//     intended acquire loop (CAS the lock from free to own id).
//   * Read-after-write: the printed read handler consults only the read
//     set, so a transaction reading a variable it has written would get the
//     pre-transaction value; we consult the write set first.  The
//     instruction traces are unchanged (the write set is thread-local).
//
// Non-transactional operations are **uninstrumented**: a read is a single
// load, a write a single store (§4's definition).  Per Theorem 3, this TM
// guarantees opacity parametrized by any memory model outside
// M_rr ∪ M_rw ∪ M_wr ∪ M_ww; per Theorem 7 it guarantees SGLA for *every*
// memory model.
//
// Logical points (used by the Theorem 3/7 proofs and emitted as trace
// markers under a recording policy): start at its successful CAS,
// commit/abort at the lock-releasing store, non-transactional reads/writes
// at their load/store, transactional reads/writes at their invocation.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "history/op_instance.hpp"

namespace jungle {

/// Ordered (object, word) pairs for read/write sets.  Most transactions
/// touch a handful of variables, so lookups scan a flat vector; past a
/// small threshold (long traversals, e.g. list walks) a lazily built hash
/// index keeps lookups O(1) — without it, an n-read transaction costs
/// O(n²).  Iteration order stays insertion order (commit write-back relies
/// on it being deterministic).
class VarMap {
 public:
  Word* find(ObjectId x) {
    if (!index_.empty()) {
      auto it = index_.find(x);
      return it == index_.end() ? nullptr : &entries_[it->second].second;
    }
    for (auto& [obj, v] : entries_) {
      if (obj == x) return &v;
    }
    return nullptr;
  }
  const Word* find(ObjectId x) const {
    return const_cast<VarMap*>(this)->find(x);
  }
  void put(ObjectId x, Word v) {
    if (Word* p = find(x)) {
      *p = v;
      return;
    }
    entries_.emplace_back(x, v);
    if (!index_.empty()) {
      index_.emplace(x, entries_.size() - 1);
    } else if (entries_.size() > kIndexThreshold) {
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        index_.emplace(entries_[i].first, i);
      }
    }
  }
  void clear() {
    entries_.clear();
    index_.clear();
  }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  static constexpr std::size_t kIndexThreshold = 16;

  std::vector<std::pair<ObjectId, Word>> entries_;
  std::unordered_map<ObjectId, std::size_t> index_;
};

template <class Mem>
class GlobalLockTm {
 public:
  static constexpr bool kInstrumentsNtReads = false;
  static constexpr bool kInstrumentsNtWrites = false;
  static constexpr const char* kName = "global-lock";

  /// The TM occupies [0, numVars) for variables and numVars for the lock g.
  static std::size_t memoryWords(std::size_t numVars) { return numVars + 1; }

  GlobalLockTm(Mem& mem, std::size_t numVars)
      : mem_(mem), numVars_(numVars), lockAddr_(numVars) {
    JUNGLE_CHECK(mem.size() >= memoryWords(numVars));
  }

  struct Thread {
    ProcessId pid = 0;
    VarMap readset;
    VarMap writeset;
    bool inTx = false;
  };

  Thread makeThread(ProcessId pid) const {
    Thread t;
    t.pid = pid;
    return t;
  }

  void txStart(Thread& t) {
    JUNGLE_CHECK(!t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kStart, kNoObject, {});
    Backoff backoff;
    for (;;) {
      const Word lg = mem_.load(t.pid, lockAddr_);
      if (lg == kFree && mem_.cas(t.pid, lockAddr_, kFree, ownerWord(t))) {
        break;
      }
      backoff.pause();
    }
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kStart, kNoObject, {});
    t.inTx = true;
  }

  Word txRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    mem_.markPoint(t.pid, op);
    const Word v = readThroughSets(t, x);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  void txWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    mem_.markPoint(t.pid, op);
    // Figure 6: "issue a transactional read of x" so the commit-time CAS
    // has an expected value.
    if (t.readset.find(x) == nullptr) {
      t.readset.put(x, mem_.load(t.pid, x));
    }
    t.writeset.put(x, v);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

  /// Figure 6's commit: CAS every written variable from its read value to
  /// its written value, then release the lock.  Always commits (the global
  /// lock serializes transactions).  A CAS beaten by a racy uninstrumented
  /// write is equivalent to the write landing right after the transaction.
  bool txCommit(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommit, kNoObject, {});
    for (const auto& [x, vNew] : t.writeset) {
      const Word* vOld = t.readset.find(x);
      JUNGLE_CHECK(vOld != nullptr);
      mem_.cas(t.pid, x, *vOld, vNew);
    }
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, kFree);
    mem_.endOp(t.pid, op, OpType::kCommit, kNoObject, {});
    finish(t);
    return true;
  }

  void txAbort(Thread& t) {
    JUNGLE_CHECK(t.inTx);
    const OpId op = mem_.beginOp(t.pid, OpType::kAbort, kNoObject, {});
    mem_.markPoint(t.pid, op);
    mem_.store(t.pid, lockAddr_, kFree);
    mem_.endOp(t.pid, op, OpType::kAbort, kNoObject, {});
    finish(t);
  }

  /// Uninstrumented: IN(rd, x) = { ⟨load a_x⟩ }.
  Word ntRead(Thread& t, ObjectId x) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdRead(0));
    const Word v = mem_.load(t.pid, x);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdRead(v));
    return v;
  }

  /// Uninstrumented: IN(wr, x, v) = { ⟨store a_x, v⟩ }.
  void ntWrite(Thread& t, ObjectId x, Word v) {
    JUNGLE_CHECK(!t.inTx && x < numVars_);
    const OpId op = mem_.beginOp(t.pid, OpType::kCommand, x, cmdWrite(v));
    mem_.store(t.pid, x, v);
    mem_.markPoint(t.pid, op);
    mem_.endOp(t.pid, op, OpType::kCommand, x, cmdWrite(v));
  }

 protected:
  static constexpr Word kFree = 0;

  Word ownerWord(const Thread& t) const {
    return static_cast<Word>(t.pid) + 1;  // 0 means free
  }

  Word readThroughSets(Thread& t, ObjectId x) {
    if (const Word* w = t.writeset.find(x)) return *w;  // documented repair
    if (const Word* r = t.readset.find(x)) return *r;
    const Word v = mem_.load(t.pid, x);
    t.readset.put(x, v);
    return v;
  }

  void finish(Thread& t) {
    t.readset.clear();
    t.writeset.clear();
    t.inTx = false;
  }

  Mem& mem_;
  std::size_t numVars_;
  Addr lockAddr_;
};

/// Theorem 7's object is the same algorithm under a weaker claim: SGLA for
/// every memory model.  The alias documents intent at use sites.
template <class Mem>
using SglaTm = GlobalLockTm<Mem>;

}  // namespace jungle
