// Type-erased TM runtime: a uniform retry-on-abort API over every TM
// implementation in the library, instantiable on the native (benchmark) or
// recording (conformance) memory policy.
//
// Usage:
//   NativeMemory mem(runtimeMemoryWords(TmKind::kVersionedWrite, 1024));
//   auto tm = makeNativeRuntime(TmKind::kVersionedWrite, mem, 1024, 8);
//   tm->transaction(pid, [&](TxContext& tx) {
//     Word v = tx.read(0);
//     tx.write(1, v + 1);
//   });
//   Word w = tm->ntRead(pid, 1);
//
// Each ProcessId must be driven by at most one OS thread at a time.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/memory_policy.hpp"
#include "sim/schedule.hpp"

namespace jungle {

enum class TmKind {
  kGlobalLock,          // Figure 6 / Theorem 3 (and Theorem 7's SGLA object)
  kWriteAsTx,           // Theorem 4
  kVersionedWrite,      // Theorem 5
  kStrongAtomicity,     // §6.1 (Shpeisman-style), SC-parametrized
  kTl2Weak,             // opacity-only baseline, weak atomicity
  kSnapshotIsolation,   // MVCC, snapshot isolation (first-committer-wins)
  kSiSsn,               // MVCC, SI + SSN certification (strict-ser)
};

/// Number of TmKind enumerators.  Every `switch (TmKind)` site is written
/// without a default and the tm target compiles with -Werror=switch-enum,
/// so adding a kind breaks the build at each site instead of silently
/// falling through; this count backs the static_asserts on the tables
/// (allTmKinds, tmClaims, …) the warning cannot see.
inline constexpr std::size_t kTmKindCount = 7;

const char* tmKindName(TmKind kind);
std::vector<TmKind> allTmKinds();

/// Handle passed to transaction bodies.
class TxContext {
 public:
  virtual ~TxContext() = default;
  virtual Word read(ObjectId x) = 0;
  virtual void write(ObjectId x, Word v) = 0;
  /// Explicitly aborts the transaction; the body is NOT retried.
  [[noreturn]] virtual void abort() = 0;
};

class TmRuntime {
 public:
  virtual ~TmRuntime() = default;

  virtual const char* name() const = 0;
  virtual TmKind kind() const = 0;
  virtual bool instrumentsNtReads() const = 0;
  virtual bool instrumentsNtWrites() const = 0;

  /// Runs `body` transactionally; re-executes it until a commit succeeds.
  /// Returns false iff the body called TxContext::abort().
  virtual bool transaction(ProcessId p,
                           const std::function<void(TxContext&)>& body) = 0;

  virtual Word ntRead(ProcessId p, ObjectId x) = 0;
  virtual void ntWrite(ProcessId p, ObjectId x, Word v) = 0;

  /// Conflict-aborts observed so far (explicit aborts not counted).
  virtual std::uint64_t abortCount() const = 0;

  /// Implementation-specific counters (certification aborts, version-chain
  /// scan depth, …), summed across threads.  Empty for TMs with none.
  struct Counter {
    const char* name;
    std::uint64_t value;
  };
  virtual std::vector<Counter> telemetry() const { return {}; }
};

/// Memory footprint (in words) a TM kind needs for `numVars` variables.
std::size_t runtimeMemoryWords(TmKind kind, std::size_t numVars);

std::unique_ptr<TmRuntime> makeNativeRuntime(TmKind kind, NativeMemory& mem,
                                             std::size_t numVars,
                                             std::size_t maxProcs);

std::unique_ptr<TmRuntime> makeRecordingRuntime(TmKind kind,
                                                RecordingMemory& mem,
                                                std::size_t numVars,
                                                std::size_t maxProcs);

/// Runtime over the gate-scheduled memory, for the schedule explorer.
std::unique_ptr<TmRuntime> makeScheduledRuntime(TmKind kind,
                                                ScheduledMemory& mem,
                                                std::size_t numVars,
                                                std::size_t maxProcs);

}  // namespace jungle
