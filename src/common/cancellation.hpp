// Cooperative cancellation and wall-clock deadlines for the parallel
// decision-engine search.
//
// A StopFlag is shared by every worker of one portfolio search: the first
// worker to find a witness (or to observe an expired deadline / exhausted
// budget) raises it, and the others unwind at their next check.  Raising
// the flag is a release store and checking it a relaxed load — workers only
// need to *eventually* observe it; the search result itself is published
// under a mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace jungle {

class StopFlag {
 public:
  void requestStop() { stopped_.store(true, std::memory_order_release); }
  bool stopRequested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stopped_{false};
};

/// A wall-clock deadline (steady clock, so immune to time-of-day jumps).
/// Default-constructed deadlines never expire.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after(std::chrono::milliseconds d) {
    Deadline dl;
    dl.enabled_ = true;
    dl.at_ = std::chrono::steady_clock::now() + d;
    return dl;
  }

  bool enabled() const { return enabled_; }

  bool expired() const {
    return enabled_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace jungle
