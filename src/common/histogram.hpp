// Fixed-bucket log2 latency histogram: 64 buckets, bucket b counting
// samples v with bit_width(v) == b (bucket 0 holds v == 0), so the range
// [1, 2^63) is covered with one increment per record and no allocation.
// Percentile queries interpolate linearly inside the winning bucket's
// [2^(b-1), 2^b) span — a bounded-relative-error estimate that is plenty
// for p50/p95/p99 reporting (values are microseconds in the serve bench).
// Single-writer; merge() folds per-client histograms into a report.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace jungle {

class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) {
    // bit_width is 64 for v >= 2^63; clamp those into the top bucket.
    const std::size_t b = std::bit_width(v);
    ++buckets_[b < kBuckets ? b : kBuckets - 1];
    ++count_;
  }

  void merge(const Log2Histogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }

  /// Smallest value estimate at or above fraction `p` (0 < p <= 1) of the
  /// recorded samples; 0 when empty.  Rank walk over the buckets, linear
  /// interpolation within the winning bucket's value span.
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    // Rank of the target sample, 1-based, at least 1.
    auto rank = static_cast<std::uint64_t>(p * static_cast<double>(count_));
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (seen + buckets_[b] < rank) {
        seen += buckets_[b];
        continue;
      }
      if (b == 0) return 0;
      const std::uint64_t lo = std::uint64_t{1} << (b - 1);
      const std::uint64_t span = lo;  // bucket covers [lo, 2*lo)
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets_[b]);
      return lo + static_cast<std::uint64_t>(within *
                                             static_cast<double>(span - 1));
    }
    return std::uint64_t{1} << (kBuckets - 1);
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

}  // namespace jungle
