// Zipfian key sampler (YCSB-style; Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases").
//
// Draws ranks in [0, n) with P(k) proportional to 1/(k+1)^theta.  Rank 0 is
// the hottest key; consecutive ranks map to consecutive key ids, so callers
// that stripe keys across shards (key mod shards) automatically spread the
// hot set over all shards.  theta = 0 degenerates to the uniform
// distribution and skips the zeta precomputation entirely; theta in
// [0.9, 0.99] is the classic "contended" YCSB range.
//
// Construction is O(n) (one zeta sum); next() is O(1) and touches only
// immutable state, so one sampler instance may be shared by any number of
// threads, each with its own Rng.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace jungle {

class Zipfian {
 public:
  Zipfian() : Zipfian(1, 0.0) {}

  Zipfian(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    JUNGLE_CHECK(n >= 1);
    // theta == 1 makes the eta denominator vanish; the YCSB formulation is
    // only defined below it.  n == 1 always yields rank 0 — treat it as
    // uniform so the zeta terms never divide by zero.
    JUNGLE_CHECK(theta >= 0.0 && theta < 1.0);
    if (theta_ == 0.0 || n_ == 1) {
      theta_ = 0.0;
      return;
    }
    zetan_ = zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta(2, theta_) / zetan_);
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Next rank in [0, n).  Deterministic given the Rng stream.
  std::uint64_t next(Rng& rng) const {
    if (theta_ == 0.0) return rng.below(n_);
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto k = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace jungle
