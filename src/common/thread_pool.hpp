// A small fixed-size worker pool (decision-engine portfolio search,
// explorer frontier, sharded monitor).
//
// Deliberately minimal: FIFO task queue, blocking submit-side wait().  The
// engine submits one task per top-level branch of the serialization-order
// enumeration; tasks are claimed in submission order, which keeps the
// parallel search's branch-visit order a prefix-parallel version of the
// sequential one.  The sharded monitor submits one drain task per shard
// per collector round and uses wait() as the round barrier (tasks may
// themselves run engine checks that spin up their own pools; pools do not
// nest work-stealing, so that is just independent threads).  Tasks must
// not throw.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace jungle {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers) {
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every task submitted so far has finished executing.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void workerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown with a drained queue
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace jungle
