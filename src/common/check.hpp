// Lightweight invariant checking.
//
// JUNGLE_CHECK is always on (used to guard API misuse and internal
// invariants in the formal-framework code, where silent corruption would
// invalidate theorem tests).  JUNGLE_DCHECK compiles out in release builds
// and guards hot paths in the TM runtimes.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace jungle::detail {

[[noreturn]] inline void checkFailed(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "jungle: check failed: %s at %s:%d%s%s\n", cond, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace jungle::detail

#define JUNGLE_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) ::jungle::detail::checkFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define JUNGLE_CHECK_MSG(cond, msg)                                      \
  do {                                                                   \
    if (!(cond))                                                         \
      ::jungle::detail::checkFailed(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

#ifdef NDEBUG
#define JUNGLE_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define JUNGLE_DCHECK(cond) JUNGLE_CHECK(cond)
#endif
