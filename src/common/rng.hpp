// Deterministic pseudo-random number generation for workload generators,
// stress tests, and schedulers.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64: fast,
// high-quality, and reproducible across platforms — important because the
// theorem-conformance stress tests log seeds so failures replay exactly.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace jungle {

/// splitmix64 step; used for seeding and as a standalone cheap generator.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is fine here: bias is
    // negligible for the small bounds used by workloads and schedulers.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// True with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace jungle
