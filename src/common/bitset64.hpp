// Small fixed-capacity bitset over uint64_t words.
//
// The opacity checkers memoize search configurations keyed by the set of
// already-scheduled units; histories in the decision procedures are small
// (tens of units), so a couple of words suffice and the key hashes in a few
// cycles.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace jungle {

template <std::size_t Words>
class BitsetN {
 public:
  static constexpr std::size_t kCapacity = Words * 64;

  constexpr BitsetN() = default;

  constexpr void set(std::size_t i) {
    JUNGLE_DCHECK(i < kCapacity);
    w_[i >> 6] |= (1ULL << (i & 63));
  }

  constexpr void reset(std::size_t i) {
    JUNGLE_DCHECK(i < kCapacity);
    w_[i >> 6] &= ~(1ULL << (i & 63));
  }

  constexpr bool test(std::size_t i) const {
    JUNGLE_DCHECK(i < kCapacity);
    return (w_[i >> 6] >> (i & 63)) & 1ULL;
  }

  constexpr std::size_t count() const {
    std::size_t n = 0;
    for (auto w : w_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  constexpr bool none() const {
    for (auto w : w_)
      if (w) return false;
    return true;
  }

  /// True if every bit set in `other` is also set in *this.
  constexpr bool contains(const BitsetN& other) const {
    for (std::size_t i = 0; i < Words; ++i)
      if ((other.w_[i] & ~w_[i]) != 0) return false;
    return true;
  }

  constexpr bool intersects(const BitsetN& other) const {
    for (std::size_t i = 0; i < Words; ++i)
      if ((other.w_[i] & w_[i]) != 0) return true;
    return false;
  }

  friend constexpr bool operator==(const BitsetN&, const BitsetN&) = default;

  constexpr std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (auto w : w_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  constexpr std::uint64_t word(std::size_t i) const { return w_[i]; }

 private:
  std::array<std::uint64_t, Words> w_{};
};

/// Default unit-set size for checker configurations: 128 units is far above
/// anything the exponential search could complete on anyway.
using UnitSet = BitsetN<2>;

}  // namespace jungle
