// Hash combinators used by the checkers' memo tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace jungle {

/// boost::hash_combine-style mixing with a 64-bit golden-ratio constant.
inline void hashCombine(std::uint64_t& seed, std::uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

template <class... Ts>
std::uint64_t hashAll(const Ts&... vals) {
  std::uint64_t seed = 0x2545f4914f6cdd1dULL;
  (hashCombine(seed, std::hash<Ts>{}(vals)), ...);
  return seed;
}

}  // namespace jungle
