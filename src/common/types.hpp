// Fundamental value types shared across the jungle-tm library.
//
// The paper ("Transactions in the Jungle", Guerraoui et al., SPAA 2010)
// models a shared-memory system of processes issuing commands on shared
// objects; at the implementation level, operations compile down to
// load/store/cas instructions on memory addresses.  These aliases pin the
// vocabulary used by every layer of the library.
#pragma once

#include <cstdint>
#include <limits>

namespace jungle {

/// Machine word: the unit of value stored in a shared variable and moved by
/// a single load/store/cas instruction.
using Word = std::uint64_t;

/// Identifier of a process (thread) p in the set P.
using ProcessId = std::uint32_t;

/// Identifier of a shared object x in Obj.
using ObjectId = std::uint32_t;

/// Unique identifier k of an operation instance within a history.
using OpId = std::uint64_t;

/// Memory address at the instruction level (index into simulated memory).
using Addr = std::uint64_t;

/// Sentinel for "no operation".
inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Sentinel for "no object".
inline constexpr ObjectId kNoObject = std::numeric_limits<ObjectId>::max();

/// Sentinel for "no address".
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

}  // namespace jungle
