// Low-level synchronization helpers for the native TM runtimes and the
// benchmark harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace jungle {

/// Destination-size cache line; used to pad hot shared atomics so unrelated
/// variables never share a line (false sharing ruins per-op cost
/// measurements the benchmarks rely on).
inline constexpr std::size_t kCacheLine = 64;

/// Exponential backoff for CAS retry loops (per CP.free guidance: bounded
/// spinning, then yield to the scheduler — essential on the single-core CI
/// machine where pure spinning would livelock against the lock holder).
class Backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      for (std::uint32_t i = 0; i < (1u << spins_); ++i) cpuRelax();
      ++spins_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 6;

  static void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::uint32_t spins_ = 0;
};

/// Cache-line padded atomic word.
struct alignas(kCacheLine) PaddedAtomicWord {
  std::atomic<std::uint64_t> value{0};
};

/// Simple sense-reversing barrier for benchmark thread fleets.  std::barrier
/// exists but its completion-function machinery is overhead we do not want
/// inside timed regions.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

  void arriveAndWait() {
    const bool mySense = !sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(mySense, std::memory_order_release);
    } else {
      Backoff backoff;
      while (sense_.load(std::memory_order_acquire) != mySense) {
        backoff.pause();
      }
    }
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace jungle
