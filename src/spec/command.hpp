// Commands on shared objects (the set C of the paper, §2).
//
// A command carries its arguments and return values; e.g. a register read
// that returned 3 is the command (rd, 3).  Beyond plain reads/writes we
// support the paper's dependence-annotated commands (§3.1, "Capturing
// dependence of operations": cdrd/ddrd/cdwr/ddwr carry the identifiers of
// the operations they are control-/data-dependent on), the Junk-SC `havoc`
// command produced by the τ transformation (§3.2), and richer object
// commands (counter, FIFO queue) exercising the claim that the framework is
// implementation-agnostic and supports objects with semantics richer than
// read-write variables (§1, transactional boosting remark).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace jungle {

enum class CmdKind : std::uint8_t {
  kRead,     // (rd, v): register read returning v
  kWrite,    // (wr, v): register write of v
  kCdRead,   // control-dependent read
  kDdRead,   // data-dependent read
  kCdWrite,  // control-dependent write
  kDdWrite,  // data-dependent write
  kHavoc,    // τ-inserted havoc (out-of-thin-air window, Junk-SC)
  kCtrInc,   // counter += v
  kCtrRead,  // counter read returning v
  kEnqueue,  // FIFO enqueue of v
  kDequeue,  // FIFO dequeue returning v (kQueueEmpty if queue was empty)
};

/// Return value of a dequeue on an empty queue.
inline constexpr Word kQueueEmpty = ~0ULL;

struct Command {
  CmdKind kind = CmdKind::kRead;
  Word value = 0;
  /// Identifiers of the operations this command depends on (cd/dd only).
  std::vector<OpId> deps;

  /// Commands that observe object state (have a constrained return value).
  bool observes() const {
    switch (kind) {
      case CmdKind::kRead:
      case CmdKind::kCdRead:
      case CmdKind::kDdRead:
      case CmdKind::kCtrRead:
      case CmdKind::kDequeue:
        return true;
      default:
        return false;
    }
  }

  /// Commands that mutate object state.
  bool mutates() const {
    switch (kind) {
      case CmdKind::kWrite:
      case CmdKind::kCdWrite:
      case CmdKind::kDdWrite:
      case CmdKind::kHavoc:
      case CmdKind::kCtrInc:
      case CmdKind::kEnqueue:
      case CmdKind::kDequeue:
        return true;
      default:
        return false;
    }
  }

  /// "Read operation" in the paper's general sense (simple or dependent).
  bool isReadLike() const {
    return kind == CmdKind::kRead || kind == CmdKind::kCdRead ||
           kind == CmdKind::kDdRead || kind == CmdKind::kCtrRead;
  }

  /// "Write operation" in the paper's general sense (simple or dependent).
  bool isWriteLike() const {
    return kind == CmdKind::kWrite || kind == CmdKind::kCdWrite ||
           kind == CmdKind::kDdWrite || kind == CmdKind::kCtrInc ||
           kind == CmdKind::kEnqueue;
  }

  bool isControlDependent() const {
    return kind == CmdKind::kCdRead || kind == CmdKind::kCdWrite;
  }

  bool isDataDependent() const {
    return kind == CmdKind::kDdRead || kind == CmdKind::kDdWrite;
  }

  bool dependsOn(OpId k) const {
    for (OpId d : deps)
      if (d == k) return true;
    return false;
  }

  friend bool operator==(const Command& a, const Command& b) {
    return a.kind == b.kind && a.value == b.value && a.deps == b.deps;
  }

  std::string toString() const;
};

/// Convenience factories.
inline Command cmdRead(Word v) { return {CmdKind::kRead, v, {}}; }
inline Command cmdWrite(Word v) { return {CmdKind::kWrite, v, {}}; }
inline Command cmdHavoc() { return {CmdKind::kHavoc, 0, {}}; }
inline Command cmdCdRead(Word v, std::vector<OpId> deps) {
  return {CmdKind::kCdRead, v, std::move(deps)};
}
inline Command cmdDdRead(Word v, std::vector<OpId> deps) {
  return {CmdKind::kDdRead, v, std::move(deps)};
}
inline Command cmdCdWrite(Word v, std::vector<OpId> deps) {
  return {CmdKind::kCdWrite, v, std::move(deps)};
}
inline Command cmdDdWrite(Word v, std::vector<OpId> deps) {
  return {CmdKind::kDdWrite, v, std::move(deps)};
}
inline Command cmdCtrInc(Word v) { return {CmdKind::kCtrInc, v, {}}; }
inline Command cmdCtrRead(Word v) { return {CmdKind::kCtrRead, v, {}}; }
inline Command cmdEnqueue(Word v) { return {CmdKind::kEnqueue, v, {}}; }
inline Command cmdDequeue(Word v) { return {CmdKind::kDequeue, v, {}}; }

const char* cmdKindName(CmdKind kind);

}  // namespace jungle
