// Shared counter specification: increments commute, reads return the sum of
// all preceding increments plus the initial value.  Used to exercise the
// framework on objects richer than registers (transactional boosting-style
// semantics, §1).
#pragma once

#include "spec/sequential_spec.hpp"

namespace jungle {

class CounterSpec final : public SequentialSpec {
 public:
  explicit CounterSpec(Word initialValue = 0) : initial_(initialValue) {}

  std::unique_ptr<SpecState> initial() const override;
  const char* name() const override { return "counter"; }

 private:
  Word initial_;
};

class CounterState final : public SpecState {
 public:
  explicit CounterState(Word value) : value_(value) {}

  bool apply(const Command& c) override {
    switch (c.kind) {
      case CmdKind::kCtrInc:
        value_ += c.value;
        return true;
      case CmdKind::kCtrRead:
        return c.value == value_;
      case CmdKind::kHavoc:
        return true;  // counters ignore havoc: increments stay well-defined
      default:
        return false;
    }
  }

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<CounterState>(value_);
  }

  std::uint64_t digest() const override {
    return value_ * 0xd1342543de82ef95ULL + 0x63;
  }

 private:
  Word value_;
};

inline std::unique_ptr<SpecState> CounterSpec::initial() const {
  return std::make_unique<CounterState>(initial_);
}

}  // namespace jungle
