// Mapping from object identifiers to their sequential specifications.
//
// Most histories use registers throughout; SpecMap defaults every object to
// a shared RegisterSpec(0) and lets tests override individual objects with
// richer semantics.
#pragma once

#include <memory>
#include <unordered_map>

#include "spec/register_spec.hpp"

namespace jungle {

class SpecMap {
 public:
  SpecMap() : defaultSpec_(std::make_shared<RegisterSpec>(0)) {}

  explicit SpecMap(std::shared_ptr<const SequentialSpec> defaultSpec)
      : defaultSpec_(std::move(defaultSpec)) {}

  void assign(ObjectId obj, std::shared_ptr<const SequentialSpec> spec) {
    overrides_[obj] = std::move(spec);
  }

  const SequentialSpec& specFor(ObjectId obj) const {
    auto it = overrides_.find(obj);
    return it != overrides_.end() ? *it->second : *defaultSpec_;
  }

 private:
  std::shared_ptr<const SequentialSpec> defaultSpec_;
  std::unordered_map<ObjectId, std::shared_ptr<const SequentialSpec>>
      overrides_;
};

}  // namespace jungle
