// Sequential specifications [[x]] of shared objects (§2, "Object
// semantics").
//
// [[x]] ⊆ C* is the set of command sequences a single process could
// generate on x.  We represent a specification by an initial state plus a
// transition predicate: a sequence is in [[x]] iff every command is
// applicable in the state reached by its predecessors.  All specs here are
// prefix-closed, which the legality machinery relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "spec/command.hpp"

namespace jungle {

/// Mutable state of one object while replaying a command sequence.
class SpecState {
 public:
  virtual ~SpecState() = default;

  /// Applies `c`; returns false iff `c` is not legal in the current state
  /// (in which case the state is unspecified and must be discarded).
  virtual bool apply(const Command& c) = 0;

  virtual std::unique_ptr<SpecState> clone() const = 0;

  /// Cheap structural digest for checker memo keys.  Two states with equal
  /// digests are treated as interchangeable by the search caches; a
  /// collision can only cause extra work, never wrong answers, because the
  /// caches store failure sets keyed by (scheduled-units, digest).
  virtual std::uint64_t digest() const = 0;
};

/// Immutable description of an object's sequential semantics.
class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;
  virtual std::unique_ptr<SpecState> initial() const = 0;
  virtual const char* name() const = 0;
};

/// True iff `cmds` ∈ [[spec]] (replays from the initial state).
bool isLegalSequence(const SequentialSpec& spec,
                     std::span<const Command> cmds);

}  // namespace jungle
