// Read/write register specification — the paper's running object: a read
// returns the value of the latest preceding write, or the initial value if
// none precedes (§2).  Dependence-annotated reads/writes behave like their
// plain counterparts at the object level; the annotations only matter to
// memory models.  A `havoc` poisons the register: until the next write,
// reads may return any value (Junk-SC, §3.2).
#pragma once

#include "spec/sequential_spec.hpp"

namespace jungle {

class RegisterSpec final : public SequentialSpec {
 public:
  explicit RegisterSpec(Word initialValue = 0) : initial_(initialValue) {}

  std::unique_ptr<SpecState> initial() const override;
  const char* name() const override { return "register"; }

  Word initialValue() const { return initial_; }

 private:
  Word initial_;
};

class RegisterState final : public SpecState {
 public:
  explicit RegisterState(Word value) : value_(value) {}

  bool apply(const Command& c) override {
    switch (c.kind) {
      case CmdKind::kRead:
      case CmdKind::kCdRead:
      case CmdKind::kDdRead:
        return havocked_ || c.value == value_;
      case CmdKind::kWrite:
      case CmdKind::kCdWrite:
      case CmdKind::kDdWrite:
        value_ = c.value;
        havocked_ = false;
        return true;
      case CmdKind::kHavoc:
        havocked_ = true;
        return true;
      default:
        return false;  // counter/queue commands are illegal on a register
    }
  }

  std::unique_ptr<SpecState> clone() const override {
    auto s = std::make_unique<RegisterState>(value_);
    s->havocked_ = havocked_;
    return s;
  }

  std::uint64_t digest() const override {
    return value_ * 0x9e3779b97f4a7c15ULL + (havocked_ ? 0x5851f42d4c957f2dULL : 0);
  }

  Word value() const { return value_; }
  bool havocked() const { return havocked_; }

 private:
  Word value_;
  bool havocked_ = false;
};

inline std::unique_ptr<SpecState> RegisterSpec::initial() const {
  return std::make_unique<RegisterState>(initial_);
}

}  // namespace jungle
