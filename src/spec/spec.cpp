#include "spec/sequential_spec.hpp"

#include <string>

#include "spec/command.hpp"

namespace jungle {

const char* cmdKindName(CmdKind kind) {
  switch (kind) {
    case CmdKind::kRead:
      return "rd";
    case CmdKind::kWrite:
      return "wr";
    case CmdKind::kCdRead:
      return "cdrd";
    case CmdKind::kDdRead:
      return "ddrd";
    case CmdKind::kCdWrite:
      return "cdwr";
    case CmdKind::kDdWrite:
      return "ddwr";
    case CmdKind::kHavoc:
      return "havoc";
    case CmdKind::kCtrInc:
      return "ctr-inc";
    case CmdKind::kCtrRead:
      return "ctr-rd";
    case CmdKind::kEnqueue:
      return "enq";
    case CmdKind::kDequeue:
      return "deq";
  }
  return "?";
}

std::string Command::toString() const {
  std::string s = "(";
  s += cmdKindName(kind);
  s += ", ";
  s += (kind == CmdKind::kDequeue && value == kQueueEmpty)
           ? "empty"
           : std::to_string(value);
  if (!deps.empty()) {
    s += ", {";
    for (std::size_t i = 0; i < deps.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(deps[i]);
    }
    s += "}";
  }
  s += ")";
  return s;
}

bool isLegalSequence(const SequentialSpec& spec,
                     std::span<const Command> cmds) {
  auto state = spec.initial();
  for (const Command& c : cmds) {
    if (!state->apply(c)) return false;
  }
  return true;
}

}  // namespace jungle
