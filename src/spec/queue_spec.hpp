// Bounded-history FIFO queue specification: dequeue returns the oldest
// not-yet-dequeued enqueued value, or kQueueEmpty when the queue is empty.
#pragma once

#include <deque>

#include "spec/sequential_spec.hpp"

namespace jungle {

class QueueSpec final : public SequentialSpec {
 public:
  std::unique_ptr<SpecState> initial() const override;
  const char* name() const override { return "fifo-queue"; }
};

class QueueState final : public SpecState {
 public:
  bool apply(const Command& c) override {
    switch (c.kind) {
      case CmdKind::kEnqueue:
        items_.push_back(c.value);
        return true;
      case CmdKind::kDequeue:
        if (items_.empty()) return c.value == kQueueEmpty;
        if (c.value != items_.front()) return false;
        items_.pop_front();
        return true;
      default:
        return false;
    }
  }

  std::unique_ptr<SpecState> clone() const override {
    auto s = std::make_unique<QueueState>();
    s->items_ = items_;
    return s;
  }

  std::uint64_t digest() const override {
    std::uint64_t h = 0x8f14e45fceea167aULL;
    for (Word w : items_) h = h * 0x100000001b3ULL + w + 1;
    return h;
  }

 private:
  std::deque<Word> items_;
};

inline std::unique_ptr<SpecState> QueueSpec::initial() const {
  return std::make_unique<QueueState>();
}

}  // namespace jungle
