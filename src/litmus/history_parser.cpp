#include "litmus/history_parser.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

namespace jungle::litmus {

namespace {

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  void skipSpace() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  bool done() {
    skipSpace();
    return pos >= s.size();
  }
  bool literal(std::string_view lit) {
    skipSpace();
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }
  std::optional<std::uint64_t> number() {
    skipSpace();
    std::uint64_t v = 0;
    const auto* first = s.data() + pos;
    const auto* last = s.data() + s.size();
    auto [p, ec] = std::from_chars(first, last, v);
    if (ec != std::errc{} || p == first) return std::nullopt;
    pos += static_cast<std::size_t>(p - first);
    return v;
  }
  std::string word() {
    skipSpace();
    std::size_t start = pos;
    while (pos < s.size() && std::isalpha(static_cast<unsigned char>(s[pos])))
      ++pos;
    return std::string(s.substr(start, pos - start));
  }
};

std::optional<ObjectId> parseVar(Cursor& c) {
  c.skipSpace();
  if (c.pos >= c.s.size()) return std::nullopt;
  const char letter = c.s[c.pos];
  ObjectId base;
  switch (letter) {
    case 'x':
      base = 0;
      break;
    case 'y':
      base = 1;
      break;
    case 'z':
      base = 2;
      break;
    default:
      return std::nullopt;
  }
  ++c.pos;
  // 'x' may carry an explicit object number ("x7" = object 7).
  if (c.pos < c.s.size() && std::isdigit(static_cast<unsigned char>(c.s[c.pos]))) {
    if (letter != 'x') return std::nullopt;
    auto n = c.number();
    if (!n.has_value()) return std::nullopt;
    return static_cast<ObjectId>(*n);
  }
  return base;
}

std::optional<std::vector<OpId>> parseDeps(Cursor& c) {
  if (!c.literal("deps")) return std::nullopt;
  if (!c.literal("=")) return std::nullopt;
  std::vector<OpId> deps;
  for (;;) {
    auto n = c.number();
    if (!n.has_value()) return std::nullopt;
    deps.push_back(*n);
    if (!c.literal(",")) break;
  }
  return deps;
}

}  // namespace

ParseResult parseHistory(const std::string& text) {
  HistoryBuilder builder;
  std::istringstream in(text);
  std::string rawLine;
  std::size_t lineNo = 0;

  auto fail = [&](const std::string& msg) {
    ParseResult r;
    r.error = "line " + std::to_string(lineNo) + ": " + msg;
    return r;
  };

  while (std::getline(in, rawLine)) {
    ++lineNo;
    if (auto hash = rawLine.find('#'); hash != std::string::npos) {
      rawLine.resize(hash);
    }
    Cursor c{rawLine};
    if (c.done()) continue;

    if (!c.literal("p")) return fail("expected 'p<N>:'");
    auto pid = c.number();
    if (!pid.has_value()) return fail("bad process id");
    if (!c.literal(":")) return fail("expected ':' after process id");

    const std::string op = c.word();
    OpId id = 0;
    ObjectId obj = kNoObject;
    std::optional<Command> cmd;
    bool special = false;
    OpType type = OpType::kCommand;

    if (op == "start" || op == "commit" || op == "abort") {
      special = true;
      type = op == "start" ? OpType::kStart
             : op == "commit" ? OpType::kCommit
                              : OpType::kAbort;
    } else {
      auto var = parseVar(c);
      if (!var.has_value()) return fail("bad variable after '" + op + "'");
      obj = *var;
      if (op == "deq" && c.literal("empty")) {
        cmd = cmdDequeue(kQueueEmpty);
      } else {
        auto val = c.number();
        if (!val.has_value()) return fail("missing value");
        if (op == "rd") {
          cmd = cmdRead(*val);
        } else if (op == "wr") {
          cmd = cmdWrite(*val);
        } else if (op == "inc") {
          cmd = cmdCtrInc(*val);
        } else if (op == "ctrrd") {
          cmd = cmdCtrRead(*val);
        } else if (op == "enq") {
          cmd = cmdEnqueue(*val);
        } else if (op == "deq") {
          cmd = cmdDequeue(*val);
        } else if (op == "cdrd" || op == "ddrd" || op == "cdwr" ||
                   op == "ddwr") {
          auto deps = parseDeps(c);
          if (!deps.has_value()) return fail("missing deps=... for " + op);
          if (op == "cdrd") cmd = cmdCdRead(*val, *deps);
          if (op == "ddrd") cmd = cmdDdRead(*val, *deps);
          if (op == "cdwr") cmd = cmdCdWrite(*val, *deps);
          if (op == "ddwr") cmd = cmdDdWrite(*val, *deps);
        } else {
          return fail("unknown operation '" + op + "'");
        }
      }
    }

    if (c.literal("@")) {
      auto n = c.number();
      if (!n.has_value()) return fail("bad '@id'");
      id = *n;
    }
    if (!c.done()) return fail("trailing input");

    const auto p = static_cast<ProcessId>(*pid);
    if (special) {
      switch (type) {
        case OpType::kStart:
          builder.start(p, id);
          break;
        case OpType::kCommit:
          builder.commit(p, id);
          break;
        case OpType::kAbort:
          builder.abort(p, id);
          break;
        default:
          break;
      }
    } else {
      builder.cmd(p, obj, std::move(*cmd), id);
    }
  }

  ParseResult r;
  r.history = builder.build();
  return r;
}

std::string formatHistory(const History& h) { return printHistory(h); }

std::string printHistory(const History& h) {
  std::string out;
  for (const OpInstance& inst : h) {
    out += "p" + std::to_string(inst.pid) + ": ";
    if (!inst.isCommand()) {
      out += opTypeName(inst.type);
    } else {
      const char* mnemonic = nullptr;
      switch (inst.cmd.kind) {
        case CmdKind::kRead:
          mnemonic = "rd";
          break;
        case CmdKind::kWrite:
          mnemonic = "wr";
          break;
        case CmdKind::kCdRead:
          mnemonic = "cdrd";
          break;
        case CmdKind::kDdRead:
          mnemonic = "ddrd";
          break;
        case CmdKind::kCdWrite:
          mnemonic = "cdwr";
          break;
        case CmdKind::kDdWrite:
          mnemonic = "ddwr";
          break;
        case CmdKind::kCtrInc:
          mnemonic = "inc";
          break;
        case CmdKind::kCtrRead:
          mnemonic = "ctrrd";
          break;
        case CmdKind::kEnqueue:
          mnemonic = "enq";
          break;
        case CmdKind::kDequeue:
          mnemonic = "deq";
          break;
        case CmdKind::kHavoc:
          mnemonic = "havoc";  // not parseable; diagnostic output only
          break;
      }
      out += mnemonic;
      out += " x" + std::to_string(inst.obj);
      if (inst.cmd.kind == CmdKind::kDequeue &&
          inst.cmd.value == kQueueEmpty) {
        out += " empty";
      } else if (inst.cmd.kind != CmdKind::kHavoc) {
        out += " " + std::to_string(inst.cmd.value);
      }
      if (!inst.cmd.deps.empty()) {
        out += " deps=";
        for (std::size_t i = 0; i < inst.cmd.deps.size(); ++i) {
          if (i) out += ",";
          out += std::to_string(inst.cmd.deps[i]);
        }
      }
    }
    out += " @" + std::to_string(inst.id) + "\n";
  }
  return out;
}

}  // namespace jungle::litmus
