// The paper's litmus examples (Figures 1–3) plus classic hardware litmus
// shapes, as parameterized history builders.  Each builder takes the values
// the observing reads returned and produces the corresponding history; the
// checkers then decide whether that outcome is allowed under a model.
//
// Conventions: objects x, y, z are ids 0, 1, 2; all variables start at 0;
// identifiers follow the paper's figures where the paper fixes them.
#pragma once

#include "history/history.hpp"

namespace jungle::litmus {

inline constexpr ObjectId kX = 0;
inline constexpr ObjectId kY = 1;
inline constexpr ObjectId kZ = 2;

/// Figure 1: p0 runs atomic { x := 1; y := 1 }, p1 reads r1 := x, r2 := y
/// non-transactionally, concurrently with the transaction.
History fig1History(Word r1, Word r2);

/// Figure 2(a): p0 runs atomic { x := 1; x := 2 } then atomic { y := 2 };
/// p1 runs atomic { a := x; b := y; z := a − b }, concurrent with both.
/// `p1Commits` switches p1's transaction between commit and abort — opacity
/// constrains aborted transactions equally.
History fig2aHistory(Word a, Word b, bool p1Commits = true);

/// Figure 2(b): purely non-transactional message passing — p0: x := 1;
/// y := 1.  p1: r1 := y; r2 := x.
History fig2bHistory(Word r1, Word r2);

/// Figure 2(c): p1 non-transactionally runs z := x (read x = a, write z = a)
/// concurrently with p0's atomic { x := 1; x := 2 }; afterwards p0 runs
/// atomic { r1 := z; r2 := z }.
History fig2cHistory(Word a, Word r1, Word r2);

/// Figure 3(a): the paper's worked example, exactly as printed.
/// p1: (wr x 1) then transaction {start, wr y 1, commit} (ids 1, 2, 4, 5);
/// p2: (rd y 1) id 3, (rd x v) id 6; p3: empty transaction {7, 8} then
/// (rd x v') id 9.
History fig3History(Word v, Word vprime);

/// Store buffering: p0: x := 1; r1 := y.  p1: y := 1; r2 := x.
/// (r1, r2) = (0, 0) distinguishes TSO from SC.
History storeBufferHistory(Word r1, Word r2);

/// Independent reads of independent writes: p0: x := 1.  p1: y := 1.
/// p2: a := x; b := y.  p3: c := y; d := x.
History iriwHistory(Word a, Word b, Word c, Word d);

/// Dependent-read message passing: p0: x := 1; y := 1.  p1: r1 := y;
/// r2 := x where the second read is *data-dependent* on the first.
/// Distinguishes RMO (ordered) from Alpha (may reorder).
History dependentReadHistory(Word r1, Word r2);

}  // namespace jungle::litmus
