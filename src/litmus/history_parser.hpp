// Textual history format and parser — the checkers as a standalone tool.
//
// Grammar (one operation instance per line; '#' starts a comment):
//
//   line    := 'p' NUM ':' op ['@' NUM]          (optional explicit id)
//   op      := 'start' | 'commit' | 'abort'
//            | 'rd'   var NUM | 'wr'   var NUM
//            | 'cdrd' var NUM deps | 'ddrd' var NUM deps
//            | 'cdwr' var NUM deps | 'ddwr' var NUM deps
//            | 'inc'  var NUM | 'ctrrd' var NUM
//            | 'enq'  var NUM | 'deq'  var (NUM | 'empty')
//   deps    := 'deps' '=' NUM (',' NUM)*
//   var     := 'x' | 'y' | 'z' (objects 0, 1, 2) | 'x' NUM (object NUM)
//
// Example (the paper's Figure 3(a)):
//
//   p1: wr x 1        @1
//   p1: start         @2
//   p2: rd y 1        @3
//   p1: wr y 1        @4
//   p1: commit        @5
//   p2: rd x 1        @6
//   p3: start         @7
//   p3: commit        @8
//   p3: rd x 1        @9
#pragma once

#include <optional>
#include <string>

#include "history/history.hpp"

namespace jungle::litmus {

struct ParseResult {
  std::optional<History> history;
  std::string error;  // non-empty iff !history

  explicit operator bool() const { return history.has_value(); }
};

ParseResult parseHistory(const std::string& text);

/// Renders a history in the grammar above, one instance per line with its
/// explicit '@id'.  printHistory is the exact inverse of parseHistory for
/// every parseable history: parseHistory(printHistory(h)) == h (the fuzz
/// shrinker relies on this to emit .hist repros; property-tested over the
/// whole corpus and over generated histories in test_parser_roundtrip).
/// Histories containing τ-inserted havoc commands render but do not
/// re-parse — havoc is diagnostic output only.
std::string printHistory(const History& h);

/// Legacy name for printHistory.
std::string formatHistory(const History& h);

}  // namespace jungle::litmus
