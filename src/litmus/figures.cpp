#include "litmus/figures.hpp"

namespace jungle::litmus {

History fig1History(Word r1, Word r2) {
  // The reads run concurrently with the transaction: interleave them
  // between the transaction's operations so no real-time edge forms.
  HistoryBuilder b;
  b.start(0);
  b.write(0, kX, 1);
  b.read(1, kX, r1);  // non-transactional, concurrent
  b.write(0, kY, 1);
  b.read(1, kY, r2);
  b.commit(0);
  return b.build();
}

History fig2aHistory(Word a, Word b, bool p1Commits) {
  HistoryBuilder h;
  h.start(0);       // atomic { x := 1; x := 2 }
  h.start(1);       // p1's transaction overlaps both of p0's
  h.write(0, kX, 1);
  h.write(0, kX, 2);
  h.read(1, kX, a);
  h.commit(0);
  h.start(0);       // atomic { y := 2 }
  h.write(0, kY, 2);
  h.read(1, kY, b);
  h.commit(0);
  h.write(1, kZ, a - b);
  if (p1Commits) {
    h.commit(1);
  } else {
    h.abort(1);
  }
  return h.build();
}

History fig2bHistory(Word r1, Word r2) {
  HistoryBuilder b;
  b.write(0, kX, 1);
  b.read(1, kY, r1);
  b.write(0, kY, 1);
  b.read(1, kX, r2);
  return b.build();
}

History fig2cHistory(Word a, Word r1, Word r2) {
  HistoryBuilder b;
  b.start(0);
  b.write(0, kX, 1);
  b.read(1, kX, a);   // z := x, concurrent with the transaction
  b.write(1, kZ, a);
  b.write(0, kX, 2);
  b.commit(0);
  b.start(0);         // atomic { r1 := z; r2 := z }
  b.read(0, kZ, r1);
  b.read(0, kZ, r2);
  b.commit(0);
  return b.build();
}

History fig3History(Word v, Word vprime) {
  HistoryBuilder b;
  b.write(1, kX, 1, /*id=*/1);
  b.start(1, /*id=*/2);
  b.read(2, kY, 1, /*id=*/3);
  b.write(1, kY, 1, /*id=*/4);
  b.commit(1, /*id=*/5);
  b.read(2, kX, v, /*id=*/6);
  b.start(3, /*id=*/7);
  b.commit(3, /*id=*/8);
  b.read(3, kX, vprime, /*id=*/9);
  return b.build();
}

History storeBufferHistory(Word r1, Word r2) {
  HistoryBuilder b;
  b.write(0, kX, 1);
  b.write(1, kY, 1);
  b.read(0, kY, r1);
  b.read(1, kX, r2);
  return b.build();
}

History iriwHistory(Word a, Word b, Word c, Word d) {
  HistoryBuilder h;
  h.write(0, kX, 1);
  h.write(1, kY, 1);
  h.read(2, kX, a);
  h.read(2, kY, b);
  h.read(3, kY, c);
  h.read(3, kX, d);
  return h.build();
}

History dependentReadHistory(Word r1, Word r2) {
  // The writer chains x := 1 → (rd x) → data-dependent y := 1 so that the
  // writes stay ordered under both RMO and Alpha; the reader's second read
  // is data-dependent on the first, which only RMO keeps ordered.
  HistoryBuilder b;
  b.write(0, kX, 1, /*id=*/1);
  b.read(0, kX, 1, /*id=*/2);
  b.cmd(0, kY, cmdDdWrite(1, {2}), /*id=*/3);
  b.read(1, kY, r1, /*id=*/4);
  b.cmd(1, kX, cmdDdRead(r2, {4}), /*id=*/5);
  return b.build();
}

}  // namespace jungle::litmus
