#include "sim/instruction.hpp"

#include <unordered_map>

#include "common/check.hpp"

namespace jungle {

const char* insnKindName(InsnKind k) {
  switch (k) {
    case InsnKind::kLoad:
      return "load";
    case InsnKind::kStore:
      return "store";
    case InsnKind::kCas:
      return "cas";
    case InsnKind::kInvoke:
      return "invoke";
    case InsnKind::kRespond:
      return "respond";
    case InsnKind::kPoint:
      return "point";
  }
  return "?";
}

std::string Insn::toString() const {
  std::string s;
  switch (kind) {
    case InsnKind::kLoad:
      s = "<load a" + std::to_string(addr) + ", " + std::to_string(value) +
          ">";
      break;
    case InsnKind::kStore:
      s = "<store a" + std::to_string(addr) + ", " + std::to_string(value) +
          ">";
      break;
    case InsnKind::kCas:
      s = "<cas a" + std::to_string(addr) + ", " + std::to_string(expected) +
          ", " + std::to_string(value) + (casOk ? ">" : "> (failed)");
      break;
    case InsnKind::kPoint:
      s = "(point)";
      break;
    case InsnKind::kInvoke:
    case InsnKind::kRespond:
      s = kind == InsnKind::kInvoke ? "(>, " : "(<, ";
      if (opType == OpType::kCommand) {
        s += cmd.toString() + " on x" + std::to_string(obj);
      } else {
        s += opTypeName(opType);
      }
      s += ")";
      break;
  }
  s += " p" + std::to_string(pid) + " op" + std::to_string(opId);
  return s;
}

Trace Trace::projectProcess(ProcessId p) const {
  Trace out;
  for (const Insn& i : insns) {
    if (i.pid == p) out.insns.push_back(i);
  }
  return out;
}

std::string Trace::toString() const {
  std::string s;
  for (const Insn& i : insns) {
    s += i.toString();
    s += "\n";
  }
  return s;
}

TraceBuilder& TraceBuilder::invoke(ProcessId p, OpId op, OpType t,
                                   ObjectId obj, Command cmd) {
  Insn i;
  i.kind = InsnKind::kInvoke;
  i.pid = p;
  i.opId = op;
  i.opType = t;
  i.obj = obj;
  i.cmd = std::move(cmd);
  trace_.insns.push_back(std::move(i));
  return *this;
}

TraceBuilder& TraceBuilder::respond(ProcessId p, OpId op, OpType t,
                                    ObjectId obj, Command cmd) {
  Insn i;
  i.kind = InsnKind::kRespond;
  i.pid = p;
  i.opId = op;
  i.opType = t;
  i.obj = obj;
  i.cmd = std::move(cmd);
  trace_.insns.push_back(std::move(i));
  return *this;
}

TraceBuilder& TraceBuilder::load(ProcessId p, OpId op, Addr a, Word v) {
  Insn i;
  i.kind = InsnKind::kLoad;
  i.pid = p;
  i.opId = op;
  i.addr = a;
  i.value = v;
  trace_.insns.push_back(i);
  return *this;
}

TraceBuilder& TraceBuilder::store(ProcessId p, OpId op, Addr a, Word v) {
  Insn i;
  i.kind = InsnKind::kStore;
  i.pid = p;
  i.opId = op;
  i.addr = a;
  i.value = v;
  trace_.insns.push_back(i);
  return *this;
}

TraceBuilder& TraceBuilder::cas(ProcessId p, OpId op, Addr a, Word expect,
                                Word desired, bool ok) {
  Insn i;
  i.kind = InsnKind::kCas;
  i.pid = p;
  i.opId = op;
  i.addr = a;
  i.expected = expect;
  i.value = desired;
  i.casOk = ok;
  trace_.insns.push_back(i);
  return *this;
}

TraceBuilder& TraceBuilder::point(ProcessId p, OpId op) {
  Insn i;
  i.kind = InsnKind::kPoint;
  i.pid = p;
  i.opId = op;
  trace_.insns.push_back(i);
  return *this;
}

TraceBuilder& TraceBuilder::ntRead(ProcessId p, OpId op, ObjectId x, Addr a,
                                   Word v) {
  invoke(p, op, OpType::kCommand, x, cmdRead(v));
  load(p, op, a, v);
  respond(p, op, OpType::kCommand, x, cmdRead(v));
  return *this;
}

TraceBuilder& TraceBuilder::ntWrite(ProcessId p, OpId op, ObjectId x, Addr a,
                                    Word v) {
  invoke(p, op, OpType::kCommand, x, cmdWrite(v));
  store(p, op, a, v);
  respond(p, op, OpType::kCommand, x, cmdWrite(v));
  return *this;
}

bool traceWellFormed(const Trace& r, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  // Per-process: invoke(op) … instructions of op … respond(op), repeated;
  // a trailing incomplete operation trace is permitted.
  std::unordered_map<ProcessId, OpId> openOp;
  std::unordered_map<ProcessId, bool> hasOpen;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const Insn& in = r[i];
    const bool open = hasOpen[in.pid];
    switch (in.kind) {
      case InsnKind::kInvoke:
        if (open) return fail("invoke while an operation is open");
        openOp[in.pid] = in.opId;
        hasOpen[in.pid] = true;
        break;
      case InsnKind::kRespond:
        if (!open || openOp[in.pid] != in.opId)
          return fail("respond without a matching invoke");
        hasOpen[in.pid] = false;
        break;
      case InsnKind::kPoint:
        // Logical-point metadata, not a machine instruction: on weak
        // hardware a buffered write's point (its drain) can land after the
        // operation's response, so points are unconstrained here.
        break;
      default:
        if (!open || openOp[in.pid] != in.opId)
          return fail("memory instruction outside an operation trace");
        break;
    }
  }
  return true;
}

bool traceMachineConsistent(const Trace& r, std::string* why) {
  auto fail = [&](std::size_t i, const std::string& msg) {
    if (why) *why = "instruction " + std::to_string(i) + ": " + msg;
    return false;
  };
  std::unordered_map<Addr, Word> mem;  // zero-initialized
  for (std::size_t i = 0; i < r.size(); ++i) {
    const Insn& in = r[i];
    if (!in.isMemory()) continue;
    Word& cell = mem[in.addr];
    switch (in.kind) {
      case InsnKind::kLoad:
        if (cell != in.value) return fail(i, "load returned a stale value");
        break;
      case InsnKind::kStore:
        cell = in.value;
        break;
      case InsnKind::kCas:
        if ((cell == in.expected) != in.casOk)
          return fail(i, "cas outcome inconsistent with memory");
        if (in.casOk) cell = in.value;
        break;
      default:
        break;
    }
  }
  return true;
}

}  // namespace jungle
