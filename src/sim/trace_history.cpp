#include "sim/trace_history.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace jungle {

std::vector<TraceOp> traceOperations(const Trace& r) {
  std::string why;
  JUNGLE_CHECK_MSG(traceWellFormed(r, &why), "ill-formed trace");
  std::vector<TraceOp> ops;
  std::unordered_map<OpId, std::size_t> index;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const Insn& in = r[i];
    switch (in.kind) {
      case InsnKind::kInvoke: {
        TraceOp op;
        op.pid = in.pid;
        op.id = in.opId;
        op.type = in.opType;
        op.obj = in.obj;
        op.cmd = in.cmd;
        op.invokeIdx = i;
        index[in.opId] = ops.size();
        ops.push_back(std::move(op));
        break;
      }
      case InsnKind::kRespond: {
        TraceOp& op = ops[index.at(in.opId)];
        op.respondIdx = i;
        // Responses carry the operation's outcome: final return values, and
        // possibly a changed type (a transactional read that fails
        // validation responds as the transaction's abort).
        op.cmd = in.cmd;
        op.obj = in.obj;
        op.type = in.opType;
        break;
      }
      case InsnKind::kPoint: {
        ops[index.at(in.opId)].pointIdx = i;
        break;
      }
      default:
        break;
    }
  }
  return ops;
}

namespace {

History historyFromOpOrder(const std::vector<TraceOp>& ops,
                           const std::vector<std::size_t>& order) {
  std::vector<OpInstance> insts;
  insts.reserve(order.size());
  for (std::size_t idx : order) {
    const TraceOp& op = ops[idx];
    OpInstance inst;
    inst.type = op.type;
    inst.obj = op.obj;
    inst.cmd = op.cmd;
    inst.pid = op.pid;
    inst.id = op.id;
    insts.push_back(std::move(inst));
  }
  return History(std::move(insts));
}

}  // namespace

EnumerationResult forEachCorrespondingHistory(
    const Trace& r, const std::function<bool(const History&)>& fn,
    std::uint64_t maxHistories) {
  const std::vector<TraceOp> ops = traceOperations(r);
  const std::size_t n = ops.size();

  // Interval order: k must precede j iff k's response precedes j's
  // invocation.  (An incomplete operation extends to the end of the trace
  // and therefore never forces an order onto later operations.)
  std::vector<std::vector<bool>> before(n, std::vector<bool>(n, false));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b && ops[a].respondIdx.has_value() &&
          *ops[a].respondIdx < ops[b].invokeIdx) {
        before[a][b] = true;
      }
    }
  }

  EnumerationResult result;
  std::uint64_t visited = 0;
  std::vector<std::size_t> order;
  std::vector<bool> used(n, false);

  std::function<bool()> rec = [&]() -> bool {
    if (order.size() == n) {
      if (visited++ >= maxHistories) {
        result.cappedOut = true;
        return true;  // stop enumerating (result.satisfied stays false)
      }
      return fn(historyFromOpOrder(ops, order));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool ready = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (!used[j] && j != i && before[j][i]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      used[i] = true;
      order.push_back(i);
      const bool done = rec();
      order.pop_back();
      used[i] = false;
      if (done) return true;
    }
    return false;
  };

  const bool stopped = rec();
  result.satisfied = stopped && !result.cappedOut;
  return result;
}

History canonicalHistory(const Trace& r) {
  std::vector<TraceOp> ops = traceOperations(r);
  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto pointOf = [&](const TraceOp& op) -> std::size_t {
    if (op.pointIdx.has_value()) return *op.pointIdx;
    if (op.respondIdx.has_value()) return *op.respondIdx;
    return op.invokeIdx;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pointOf(ops[a]) < pointOf(ops[b]);
                   });
  return historyFromOpOrder(ops, order);
}

EnumerationResult traceEnsuresParametrizedOpacity(
    const Trace& r, const MemoryModel& m, const SpecMap& specs,
    std::uint64_t maxHistories, const SearchLimits& limits) {
  bool sawInconclusive = false;
  EnumerationResult e = forEachCorrespondingHistory(
      r,
      [&](const History& h) {
        const CheckResult c = checkParametrizedOpacity(h, m, specs, limits);
        sawInconclusive |= c.inconclusive;
        return c.satisfied;
      },
      maxHistories);
  e.checkerInconclusive = sawInconclusive;
  return e;
}

}  // namespace jungle
