// A TSO store-buffer *memory policy*: the live TM implementations running
// on simulated weak hardware (§4's remark that "the underlying hardware may
// execute a relaxed memory model", and the paper's note that a programmer
// may want opacity(SC) on RMO hardware).
//
// Semantics (SPARC-TSO / x86-like):
//   * store:  enqueued in the issuing thread's FIFO buffer;
//   * load:   satisfied from the own buffer (newest entry for the address)
//             or from memory — other threads' buffered stores are
//             invisible;
//   * cas:    a locked instruction — drains the own buffer, then operates
//             on memory;
//   * drains: happen pseudo-randomly (seeded) on every access, plus
//             optionally at endOp ("drainOnRespond": a full fence before an
//             operation responds).
//
// The key experimental subtlety this policy exposes: with buffering, a
// plain write's *logical point* is its drain, not its store.  The policy
// therefore emits the operation's kPoint marker when its last store drains
// (overriding the TM's own markPoint for buffered-store ops), so canonical
// histories stay faithful.  With drainOnRespond=false, an operation's
// point can land after its respond — outside the §4 interval — modeling
// precisely the gap between the API-level and hardware-level views; the
// tests show conformance surviving it for the global-lock family (locked
// instructions order everything that matters) while the interval-based
// enumeration would be unsound.
#pragma once

#include <deque>
#include <mutex>
#include <unordered_set>

#include "common/rng.hpp"
#include "sim/instruction.hpp"

namespace jungle {

class TsoBufferedMemory {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Probability (percent) of draining one buffered store at each access.
    unsigned drainChancePct = 40;
    /// Drain the issuing thread's buffer before every respond marker
    /// (i.e. fence at the end of each operation).
    bool drainOnRespond = false;
    std::size_t maxThreads = 8;
  };

  TsoBufferedMemory(std::size_t words, Options opts)
      : mem_(words, 0), opts_(opts), rng_(opts.seed),
        buffers_(opts.maxThreads), open_(opts.maxThreads, kNoOp) {}

  std::size_t size() const { return mem_.size(); }

  Word load(ProcessId p, Addr a) {
    std::lock_guard<std::mutex> g(mu_);
    maybeDrain();
    Word v;
    if (const BufferedStore* f = forwarded(p, a)) {
      v = f->value;
    } else {
      v = mem_.at(a);
    }
    record(InsnKind::kLoad, p, a, v, 0, false);
    return v;
  }

  void store(ProcessId p, Addr a, Word v) {
    std::lock_guard<std::mutex> g(mu_);
    maybeDrain();
    buffers_.at(p).push_back({a, v, open_.at(p)});
    record(InsnKind::kStore, p, a, v, 0, false);
  }

  bool cas(ProcessId p, Addr a, Word expect, Word desired) {
    std::lock_guard<std::mutex> g(mu_);
    drainThread(p);  // locked instruction: flush own buffer first
    const bool ok = mem_.at(a) == expect;
    if (ok) mem_.at(a) = desired;
    Insn i;
    i.kind = InsnKind::kCas;
    i.pid = p;
    i.opId = open_.at(p);
    i.addr = a;
    i.expected = expect;
    i.value = desired;
    i.casOk = ok;
    trace_.insns.push_back(i);
    maybeDrain();
    return ok;
  }

  /// Explicit full fence (drains the calling thread's buffer).
  void fence(ProcessId p) {
    std::lock_guard<std::mutex> g(mu_);
    drainThread(p);
  }

  OpId beginOp(ProcessId p, OpType t, ObjectId obj, const Command& cmd) {
    std::lock_guard<std::mutex> g(mu_);
    const OpId id = nextOp_++;
    open_.at(p) = id;
    Insn i;
    i.kind = InsnKind::kInvoke;
    i.pid = p;
    i.opId = id;
    i.opType = t;
    i.obj = obj;
    i.cmd = cmd;
    trace_.insns.push_back(std::move(i));
    return id;
  }

  void endOp(ProcessId p, OpId id, OpType t, ObjectId obj,
             const Command& cmd) {
    std::lock_guard<std::mutex> g(mu_);
    if (opts_.drainOnRespond) drainThread(p);
    Insn i;
    i.kind = InsnKind::kRespond;
    i.pid = p;
    i.opId = id;
    i.opType = t;
    i.obj = obj;
    i.cmd = cmd;
    trace_.insns.push_back(std::move(i));
    open_.at(p) = kNoOp;
  }

  void markPoint(ProcessId p, OpId id) {
    std::lock_guard<std::mutex> g(mu_);
    // If the operation still has buffered stores, its effect is not yet
    // visible: defer the point to the drain of its last buffered store.
    for (const BufferedStore& s : buffers_.at(p)) {
      if (s.op == id) return;  // deferred; emitted by drain below
    }
    // A drain may already have emitted this operation's point (its store
    // left the buffer between the store and this call): don't emit again —
    // visibility order, not API order, defines the point.
    if (pointed_.count(id) == 0) emitPoint(p, id);
  }

  /// Drains everything (end of a run, before extracting the trace).
  void drainAll() {
    std::lock_guard<std::mutex> g(mu_);
    for (std::size_t p = 0; p < buffers_.size(); ++p) {
      drainThread(static_cast<ProcessId>(p));
    }
  }

  Trace trace() const {
    std::lock_guard<std::mutex> g(mu_);
    return trace_;
  }

 private:
  struct BufferedStore {
    Addr addr;
    Word value;
    OpId op;
  };

  const BufferedStore* forwarded(ProcessId p, Addr a) const {
    const auto& buf = buffers_.at(p);
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->addr == a) return &*it;
    }
    return nullptr;
  }

  void drainOne(ProcessId p) {
    auto& buf = buffers_.at(p);
    if (buf.empty()) return;
    const BufferedStore s = buf.front();
    buf.pop_front();
    mem_.at(s.addr) = s.value;
    // Last buffered store of its operation reaching memory = the
    // operation's deferred logical point.
    bool more = false;
    for (const BufferedStore& rest : buf) {
      if (rest.op == s.op) more = true;
    }
    if (!more) emitPoint(p, s.op);
  }

  void drainThread(ProcessId p) {
    while (!buffers_.at(p).empty()) drainOne(p);
  }

  void maybeDrain() {
    for (std::size_t p = 0; p < buffers_.size(); ++p) {
      while (!buffers_[p].empty() &&
             rng_.chance(opts_.drainChancePct, 100)) {
        drainOne(static_cast<ProcessId>(p));
      }
    }
  }

  void emitPoint(ProcessId p, OpId id) {
    pointed_.insert(id);
    Insn i;
    i.kind = InsnKind::kPoint;
    i.pid = p;
    i.opId = id;
    trace_.insns.push_back(i);
  }

  void record(InsnKind kind, ProcessId p, Addr a, Word v, Word expect,
              bool ok) {
    Insn i;
    i.kind = kind;
    i.pid = p;
    i.opId = open_.at(p);
    i.addr = a;
    i.value = v;
    i.expected = expect;
    i.casOk = ok;
    trace_.insns.push_back(i);
  }

  mutable std::mutex mu_;
  std::vector<Word> mem_;
  Options opts_;
  Rng rng_;
  std::vector<std::deque<BufferedStore>> buffers_;
  std::vector<OpId> open_;
  std::unordered_set<OpId> pointed_;
  Trace trace_;
  OpId nextOp_ = 1;
};

}  // namespace jungle
