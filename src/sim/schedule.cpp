#include "sim/schedule.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace jungle {

StepGate::StepGate(std::size_t numThreads)
    : state_(numThreads, ThreadState::kRunning) {}

void StepGate::workerEnter(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  JUNGLE_CHECK(p < state_.size());
  if (abandoned_) return;
  state_[p] = ThreadState::kParked;
  cv_.notify_all();
  cv_.wait(lock, [&] {
    return abandoned_ || state_[p] == ThreadState::kGranted;
  });
}

void StepGate::workerExit(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (abandoned_) return;
  state_[p] = ThreadState::kRunning;
  cv_.notify_all();
}

void StepGate::workerDone(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  state_[p] = ThreadState::kDone;
  cv_.notify_all();
}

std::vector<ProcessId> StepGate::awaitQuiescence() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (ThreadState s : state_) {
      if (s == ThreadState::kRunning || s == ThreadState::kGranted) {
        return false;
      }
    }
    return true;
  });
  std::vector<ProcessId> runnable;
  for (std::size_t p = 0; p < state_.size(); ++p) {
    if (state_[p] == ThreadState::kParked) {
      runnable.push_back(static_cast<ProcessId>(p));
    }
  }
  return runnable;
}

void StepGate::grant(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  JUNGLE_CHECK(state_[p] == ThreadState::kParked);
  state_[p] = ThreadState::kGranted;
  cv_.notify_all();
}

void StepGate::abandon() {
  std::unique_lock<std::mutex> lock(mu_);
  abandoned_ = true;
  for (auto& s : state_) {
    if (s == ThreadState::kParked || s == ThreadState::kGranted) {
      s = ThreadState::kRunning;
    }
  }
  cv_.notify_all();
}

bool StepGate::allDone() const {
  std::unique_lock<std::mutex> lock(mu_);
  return std::all_of(state_.begin(), state_.end(),
                     [](ThreadState s) { return s == ThreadState::kDone; });
}

namespace {

/// One decision the controller made during a run.
struct Decision {
  std::vector<ProcessId> runnable;  // sorted
  std::size_t chosen = 0;           // index into runnable
};

/// Executes the program once.  At step i the controller follows
/// `prefix[i]` when available, otherwise calls `pick(runnable)`.
/// Appends every decision to `decisions`.
RunOutcome runOnce(
    std::size_t numThreads, std::size_t words, const Program& program,
    const std::vector<ProcessId>& prefix,
    const std::function<std::size_t(const std::vector<ProcessId>&)>& pick,
    std::size_t maxSteps, std::vector<Decision>* decisions) {
  StepGate gate(numThreads);
  ScheduledMemory mem(words, gate);
  std::vector<ThreadScript> scripts = program(mem);
  JUNGLE_CHECK(scripts.size() == numThreads);

  std::vector<std::thread> threads;
  threads.reserve(numThreads);
  for (std::size_t p = 0; p < numThreads; ++p) {
    threads.emplace_back([&gate, p, script = std::move(scripts[p])] {
      script();
      gate.workerDone(static_cast<ProcessId>(p));
    });
  }

  RunOutcome out;
  std::size_t step = 0;
  for (;;) {
    std::vector<ProcessId> runnable = gate.awaitQuiescence();
    if (runnable.empty()) {
      out.completed = gate.allDone();
      break;
    }
    if (step >= maxSteps) {
      out.completed = false;
      gate.abandon();
      break;
    }
    std::size_t idx;
    if (step < prefix.size()) {
      auto it = std::find(runnable.begin(), runnable.end(), prefix[step]);
      JUNGLE_CHECK_MSG(it != runnable.end(),
                       "schedule replay diverged — program is not "
                       "deterministic under the forced schedule");
      idx = static_cast<std::size_t>(it - runnable.begin());
    } else {
      idx = pick(runnable);
      JUNGLE_CHECK(idx < runnable.size());
    }
    if (decisions != nullptr) {
      decisions->push_back({runnable, idx});
    }
    out.schedule.push_back(runnable[idx]);
    gate.grant(runnable[idx]);
    ++step;
  }
  for (auto& t : threads) t.join();
  out.trace = mem.trace();
  return out;
}

}  // namespace

ExploreStats exploreExhaustive(
    std::size_t numThreads, std::size_t words, const Program& program,
    const std::function<bool(const RunOutcome&)>& verify,
    const ExploreOptions& opts) {
  ExploreStats stats;
  std::vector<ProcessId> prefix;
  auto firstChoice = [](const std::vector<ProcessId>&) -> std::size_t {
    return 0;
  };

  for (;;) {
    std::vector<Decision> decisions;
    RunOutcome out = runOnce(numThreads, words, program, prefix, firstChoice,
                             opts.maxSteps, &decisions);
    ++stats.runs;
    if (out.completed) {
      ++stats.completedRuns;
      if (!verify(out)) ++stats.failures;
    } else {
      ++stats.cutRuns;
    }
    if (stats.runs >= opts.maxRuns) break;

    // Backtrack: deepest decision with an untried alternative.
    std::size_t depth = decisions.size();
    while (depth > 0) {
      const Decision& d = decisions[depth - 1];
      if (d.chosen + 1 < d.runnable.size()) break;
      --depth;
    }
    if (depth == 0) break;  // space exhausted
    prefix.clear();
    for (std::size_t i = 0; i + 1 < depth; ++i) {
      prefix.push_back(decisions[i].runnable[decisions[i].chosen]);
    }
    const Decision& d = decisions[depth - 1];
    prefix.push_back(d.runnable[d.chosen + 1]);
  }
  return stats;
}

ExploreStats exploreRandom(
    std::size_t numThreads, std::size_t words, const Program& program,
    const std::function<bool(const RunOutcome&)>& verify,
    const ExploreOptions& opts) {
  ExploreStats stats;
  Rng rng(opts.seed);
  for (std::size_t i = 0; i < opts.samples; ++i) {
    auto pick = [&](const std::vector<ProcessId>& runnable) -> std::size_t {
      return static_cast<std::size_t>(rng.below(runnable.size()));
    };
    RunOutcome out =
        runOnce(numThreads, words, program, {}, pick, opts.maxSteps, nullptr);
    ++stats.runs;
    if (out.completed) {
      ++stats.completedRuns;
      if (!verify(out)) ++stats.failures;
    } else {
      ++stats.cutRuns;
    }
  }
  return stats;
}

}  // namespace jungle
