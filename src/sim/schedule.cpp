#include "sim/schedule.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace jungle {

StepGate::StepGate(std::size_t numThreads)
    : state_(numThreads, ThreadState::kRunning) {}

void StepGate::workerEnter(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  JUNGLE_CHECK(p < state_.size());
  if (abandoned_) return;
  state_[p] = ThreadState::kParked;
  cv_.notify_all();
  cv_.wait(lock, [&] {
    return abandoned_ || state_[p] == ThreadState::kGranted;
  });
}

void StepGate::workerExit(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (abandoned_) return;
  state_[p] = ThreadState::kRunning;
  cv_.notify_all();
}

void StepGate::workerDone(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  state_[p] = ThreadState::kDone;
  cv_.notify_all();
}

std::vector<ProcessId> StepGate::awaitQuiescence() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (ThreadState s : state_) {
      if (s == ThreadState::kRunning || s == ThreadState::kGranted) {
        return false;
      }
    }
    return true;
  });
  std::vector<ProcessId> runnable;
  for (std::size_t p = 0; p < state_.size(); ++p) {
    if (state_[p] == ThreadState::kParked) {
      runnable.push_back(static_cast<ProcessId>(p));
    }
  }
  return runnable;
}

void StepGate::grant(ProcessId p) {
  std::unique_lock<std::mutex> lock(mu_);
  JUNGLE_CHECK(state_[p] == ThreadState::kParked);
  state_[p] = ThreadState::kGranted;
  cv_.notify_all();
}

void StepGate::abandon() {
  std::unique_lock<std::mutex> lock(mu_);
  abandoned_ = true;
  for (auto& s : state_) {
    if (s == ThreadState::kParked || s == ThreadState::kGranted) {
      s = ThreadState::kRunning;
    }
  }
  cv_.notify_all();
}

bool StepGate::allDone() const {
  std::unique_lock<std::mutex> lock(mu_);
  return std::all_of(state_.begin(), state_.end(),
                     [](ThreadState s) { return s == ThreadState::kDone; });
}

}  // namespace jungle
