#include "sim/exploration.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/cancellation.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/dependence.hpp"

namespace jungle {

const char* exploreStrategyName(ExploreStrategyKind k) {
  switch (k) {
    case ExploreStrategyKind::kExhaustiveDfs: return "dfs";
    case ExploreStrategyKind::kSleepSetDpor: return "dpor";
    case ExploreStrategyKind::kRandomSampling: return "sample";
  }
  return "?";
}

std::optional<ExploreStrategyKind> parseExploreStrategy(std::string_view s) {
  if (s == "dfs" || s == "exhaustive") {
    return ExploreStrategyKind::kExhaustiveDfs;
  }
  if (s == "dpor" || s == "sleep-set-dpor") {
    return ExploreStrategyKind::kSleepSetDpor;
  }
  if (s == "sample" || s == "sampling" || s == "random") {
    return ExploreStrategyKind::kRandomSampling;
  }
  return std::nullopt;
}

std::string ExplorationStats::summary() const {
  std::ostringstream os;
  os << "runs " << runs << " (completed " << completedRuns << ", cut "
     << cutRuns << ") | failures " << failures << " | distinct histories "
     << distinctHistories << " | dedup hits " << dedupHits
     << " | sleep-set pruned " << sleepSetPruned << " | races reversed "
     << racesReversed << " | donations " << frontierDonations << " | wall "
     << wallSeconds << "s";
  if (deadlineExpired) os << " | deadline expired";
  if (runBudgetExhausted) os << " | run budget exhausted";
  return os.str();
}

namespace {

constexpr std::uint64_t kPathSeed = 0x6a756e676c65ULL;  // "jungle"

std::uint64_t extendPath(std::uint64_t base, ProcessId p) {
  std::uint64_t h = base;
  hashCombine(h, static_cast<std::uint64_t>(p) + 1);
  return h;
}

/// Executes the program once under the gate.  At step i the controller
/// asks `pick`; returning numThreads (an invalid pid) abandons the run
/// without counting it as cut.  `onInsn` sees every recorded instruction,
/// in order, before the next scheduling decision.
RunOutcome runScheduled(
    std::size_t numThreads, std::size_t words, const Program& program,
    std::size_t maxSteps,
    const std::function<ProcessId(std::size_t step,
                                  const std::vector<ProcessId>&)>& pick,
    bool* pruned = nullptr,
    const std::function<void(const Insn&)>& onInsn = {}) {
  StepGate gate(numThreads);
  ScheduledMemory mem(words, gate);
  std::vector<ThreadScript> scripts = program(mem);
  JUNGLE_CHECK(scripts.size() == numThreads);

  std::vector<std::thread> threads;
  threads.reserve(numThreads);
  for (std::size_t p = 0; p < numThreads; ++p) {
    threads.emplace_back([&gate, p, script = std::move(scripts[p])] {
      script();
      gate.workerDone(static_cast<ProcessId>(p));
    });
  }

  RunOutcome out;
  std::size_t fed = 0;
  auto drainInsns = [&] {
    const std::size_t n = mem.insnCount();
    for (; fed < n; ++fed) {
      if (onInsn) onInsn(mem.insnAt(fed));
    }
  };

  std::size_t step = 0;
  for (;;) {
    std::vector<ProcessId> runnable = gate.awaitQuiescence();
    drainInsns();
    if (runnable.empty()) {
      out.completed = gate.allDone();
      break;
    }
    if (step >= maxSteps) {
      out.completed = false;
      gate.abandon();
      break;
    }
    const ProcessId choice = pick(step, runnable);
    if (choice >= numThreads) {
      out.completed = false;
      if (pruned != nullptr) *pruned = true;
      gate.abandon();
      break;
    }
    out.schedule.push_back(choice);
    gate.grant(choice);
    ++step;
  }
  for (auto& t : threads) t.join();
  if (out.completed) out.trace = mem.trace();
  return out;
}

// ---------------------------------------------------------------------------
// Unified DFS / sleep-set-DPOR engine
// ---------------------------------------------------------------------------

struct SleepEntry {
  ProcessId pid;
  TurnInfo turn;  // the turn this thread executes from the sleeping state
};

struct Node {
  std::vector<ProcessId> enabled;  // sorted runnable set at this point
  std::size_t chosenIdx = 0;       // index into enabled
  TurnInfo turn;                   // turn the chosen thread executed
  std::uint64_t pathBase = 0;      // choice-path hash up to (excl.) here
  std::vector<ProcessId> backtrack;  // candidates worth exploring
  std::vector<ProcessId> done;       // explored locally or delegated
  std::vector<SleepEntry> sleep;     // inherited + finished siblings
};

struct TaskSeed {
  std::vector<ProcessId> prefix;      // frozen choices, never backtracked
  std::vector<SleepEntry> sleepSeed;  // donor node's sleep at the boundary
};

/// Everything the tasks of one exploration share.
struct Shared {
  std::size_t numThreads = 0;
  std::size_t words = 0;
  const Program* program = nullptr;
  const RunVerifier* verify = nullptr;
  ExploreOptions opts;
  bool dpor = false;

  Deadline deadline;
  StopFlag stop;
  std::atomic<std::size_t> budgetUsed{0};
  std::atomic<bool> budgetExhausted{false};
  std::atomic<std::size_t> activeTasks{0};
  ThreadPool* pool = nullptr;  // null ⇒ serial

  std::mutex mu;  // guards everything below
  std::unordered_map<std::uint64_t, bool> seen;  // history key → verdict
  std::unordered_set<std::uint64_t> claimed;     // parallel DPOR paths
  std::size_t runs = 0, completedRuns = 0, cutRuns = 0, failures = 0,
              sleepSetPruned = 0, racesReversed = 0, dedupHits = 0,
              frontierDonations = 0;
  bool deadlineHit = false;

  bool parallel() const { return pool != nullptr; }
  bool useClaims() const { return parallel() && dpor; }

  bool claimRun() {
    for (;;) {
      std::size_t u = budgetUsed.load(std::memory_order_relaxed);
      if (u >= opts.maxRuns) {
        budgetExhausted.store(true, std::memory_order_relaxed);
        stop.requestStop();
        return false;
      }
      if (budgetUsed.compare_exchange_weak(u, u + 1,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// True when the path is fresh (or claims are off).  A claimed path is
  /// being explored by another task and must be skipped.
  bool claimPath(std::uint64_t pathHash) {
    if (!useClaims()) return true;
    std::lock_guard<std::mutex> g(mu);
    return claimed.insert(pathHash).second;
  }

  bool shouldStop() {
    if (stop.stopRequested()) return true;
    if (deadline.expired()) {
      {
        std::lock_guard<std::mutex> g(mu);
        deadlineHit = true;
      }
      stop.requestStop();
      return true;
    }
    return false;
  }

  /// Accounts one executed (non-pruned) run: dedup, verify, counters.
  void accountRun(const RunOutcome& out) {
    if (!out.completed) {
      std::lock_guard<std::mutex> g(mu);
      ++runs;
      ++cutRuns;
      return;
    }
    const RunAbstraction abs = abstractRun(out.trace);
    bool verdictKnown = false;
    bool verdict = true;
    {
      std::lock_guard<std::mutex> g(mu);
      ++runs;
      ++completedRuns;
      auto it = seen.find(abs.key);
      if (it != seen.end() && opts.dedupHistories) {
        ++dedupHits;
        verdictKnown = true;
        verdict = it->second;
      }
    }
    // The verifier runs outside the lock; two workers may race to verify
    // the same fresh key, which is benign (equal keys ⇒ equal verdicts).
    if (!verdictKnown) verdict = (*verify)(out);
    std::lock_guard<std::mutex> g(mu);
    seen.emplace(abs.key, verdict);
    if (!verdict) ++failures;
  }

  void spawn(TaskSeed seed);  // defined after Engine

  ExplorationStats finalStats() const {
    ExplorationStats st;
    st.runs = runs;
    st.completedRuns = completedRuns;
    st.cutRuns = cutRuns;
    st.failures = failures;
    st.sleepSetPruned = sleepSetPruned;
    st.racesReversed = racesReversed;
    st.dedupHits = dedupHits;
    st.distinctHistories = seen.size();
    st.frontierDonations = frontierDonations;
    st.deadlineExpired = deadlineHit;
    st.runBudgetExhausted = budgetExhausted.load();
    st.historyKeys.reserve(seen.size());
    for (const auto& [k, v] : seen) st.historyKeys.push_back(k);
    std::sort(st.historyKeys.begin(), st.historyKeys.end());
    return st;
  }
};

bool sleeping(const std::vector<SleepEntry>& sleep, ProcessId p) {
  return std::any_of(sleep.begin(), sleep.end(),
                     [p](const SleepEntry& e) { return e.pid == p; });
}

bool contains(const std::vector<ProcessId>& v, ProcessId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

/// One task's depth-first exploration behind a frozen schedule prefix.
class Engine {
 public:
  Engine(Shared& sh, TaskSeed seed)
      : sh_(sh), frozen_(std::move(seed.prefix)),
        sleepSeed_(std::move(seed.sleepSeed)) {}

  void run() {
    for (;;) {
      if (sh_.shouldStop() || !sh_.claimRun()) return;
      bool pruned = false;
      scanner_.emplace(sh_.numThreads);
      const RunOutcome out = executeOneRun(&pruned);
      lastRunLen_ = out.schedule.size();
      if (pruned) {
        std::lock_guard<std::mutex> g(sh_.mu);
        ++sh_.sleepSetPruned;
      } else {
        sh_.accountRun(out);
      }
      if (sh_.dpor) detectRaces();
      maybeDonate();
      if (!backtrackToNext()) return;
    }
  }

 private:
  static ProcessId chosenOf(const Node& n) { return n.enabled[n.chosenIdx]; }

  /// Sleep set for a node freshly entered at `depth`: the parent's sleep
  /// filtered by independence with the turn the parent just executed
  /// (deterministic replay ⇒ a sleeping thread re-executes the turn it
  /// executed when its subtree was explored).  At a donated task's
  /// boundary the donor's snapshot stands in for the parent's sleep.
  std::vector<SleepEntry> childSleep(std::size_t depth) const {
    if (!sh_.dpor || depth < frozen_.size()) return {};
    if (depth == 0) return sleepSeed_;
    const std::vector<SleepEntry>& parentSleep =
        depth == frozen_.size() ? sleepSeed_ : stack_[depth - 1].sleep;
    const TurnInfo& parentTurn = stack_[depth - 1].turn;
    std::vector<SleepEntry> out;
    for (const SleepEntry& e : parentSleep) {
      if (!turnsDependent(e.turn, parentTurn)) out.push_back(e);
    }
    return out;
  }

  RunOutcome executeOneRun(bool* pruned) {
    auto onInsn = [this](const Insn& insn) { scanner_->feed(insn); };
    auto pick = [this](std::size_t step,
                       const std::vector<ProcessId>& runnable) -> ProcessId {
      // Attach the turn the previous grant executed (quiescence has
      // already drained its trailing markers into the scanner).
      if (step > 0) attachTurn(step - 1);
      if (step < stack_.size()) {  // replay
        Node& n = stack_[step];
        JUNGLE_CHECK_MSG(n.enabled == runnable,
                         "schedule replay diverged — program is not "
                         "deterministic under the forced schedule");
        return chosenOf(n);
      }
      Node n;
      n.enabled = runnable;
      n.pathBase = step == 0 ? kPathSeed
                             : extendPath(stack_[step - 1].pathBase,
                                          chosenOf(stack_[step - 1]));
      if (step < frozen_.size()) {
        // First traversal of the task's frozen prefix: materialize the
        // node but follow the dictated choice (claimed by our spawner).
        const auto it =
            std::find(runnable.begin(), runnable.end(), frozen_[step]);
        JUNGLE_CHECK_MSG(it != runnable.end(),
                         "frozen prefix replay diverged");
        n.chosenIdx = static_cast<std::size_t>(it - runnable.begin());
        n.backtrack = {frozen_[step]};
        stack_.push_back(std::move(n));
        return frozen_[step];
      }
      // Free phase: pick the node's first explorable branch.
      n.sleep = childSleep(step);
      std::size_t idx = n.enabled.size();
      for (std::size_t i = 0; i < n.enabled.size(); ++i) {
        if (sleeping(n.sleep, n.enabled[i])) continue;
        if (!sh_.claimPath(extendPath(n.pathBase, n.enabled[i]))) continue;
        idx = i;
        break;
      }
      if (idx == n.enabled.size()) {
        // Every enabled thread sleeps (or its path is claimed by another
        // worker): this state is covered; abandon the execution.  The
        // node is not pushed — the parent's branch is a dead end.
        return static_cast<ProcessId>(sh_.numThreads);
      }
      n.chosenIdx = idx;
      n.backtrack = sh_.dpor ? std::vector<ProcessId>{n.enabled[idx]}
                             : n.enabled;
      stack_.push_back(std::move(n));
      return chosenOf(stack_.back());
    };
    RunOutcome out = runScheduled(sh_.numThreads, sh_.words, *sh_.program,
                                  sh_.opts.maxSteps, pick, pruned, onInsn);
    // The final quiescence drained the last step's trailing markers, so
    // every granted step now has its turn.
    if (!out.schedule.empty()) attachTurn(out.schedule.size() - 1);
    return out;
  }

  void attachTurn(std::size_t step) {
    JUNGLE_CHECK(step < stack_.size());
    const auto& turns = scanner_->turns();
    JUNGLE_CHECK_MSG(step < turns.size(),
                     "granted step executed no memory instruction");
    stack_[step].turn = turns[step];
  }

  // --- dynamic partial-order reduction -----------------------------------

  /// Scans this run's turn sequence for reversible races and plants
  /// backtrack points (or, for races into the frozen prefix, spawns
  /// tasks).  Vector-clock formulation: for each step i and each other
  /// thread q, take q's last dependent step j before i; the race is
  /// reversible iff j does not happen-before i once the direct j→i edge
  /// is removed.
  void detectRaces() {
    const std::size_t m = lastRunLen_;
    if (m < 2) return;
    const std::size_t T = sh_.numThreads;
    std::vector<std::vector<std::size_t>> clock(
        m, std::vector<std::size_t>(T, 0));
    std::vector<std::size_t> idxInThread(m, 0);
    std::vector<std::size_t> count(T, 0);
    std::vector<long> lastOfThread(T, -1);

    for (std::size_t i = 0; i < m; ++i) {
      const ProcessId ti = stack_[i].turn.pid;
      std::vector<std::size_t>& ci = clock[i];
      if (lastOfThread[ti] >= 0) {
        ci = clock[static_cast<std::size_t>(lastOfThread[ti])];
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (stack_[j].turn.pid == ti) continue;
        if (!turnsDependent(stack_[j].turn, stack_[i].turn)) continue;
        for (std::size_t t = 0; t < T; ++t) {
          ci[t] = std::max(ci[t], clock[j][t]);
        }
      }
      idxInThread[i] = ++count[ti];
      ci[ti] = idxInThread[i];

      std::vector<bool> seenThread(T, false);
      for (std::size_t jj = i; jj-- > 0;) {
        const ProcessId tj = stack_[jj].turn.pid;
        if (tj == ti || seenThread[tj]) continue;
        if (!turnsDependent(stack_[jj].turn, stack_[i].turn)) continue;
        // q's LAST dependent step: any earlier dependent step of q reaches
        // i through this one, so only this pair can be a reversible race.
        seenThread[tj] = true;
        if (orderedWithout(jj, i, clock, idxInThread, lastOfThread, ti)) {
          continue;  // ordered through intermediates: not reversible
        }
        planBacktrack(jj, i, clock, idxInThread);
      }
      lastOfThread[ti] = static_cast<long>(i);
    }
  }

  /// Does j happen-before i once the direct dependence edge j→i is
  /// dropped?  Recomputes i's clock from its other predecessors.
  bool orderedWithout(std::size_t j, std::size_t i,
                      const std::vector<std::vector<std::size_t>>& clock,
                      const std::vector<std::size_t>& idxInThread,
                      const std::vector<long>& lastOfThread,
                      ProcessId ti) const {
    const ProcessId tj = stack_[j].turn.pid;
    std::vector<std::size_t> c(sh_.numThreads, 0);
    if (lastOfThread[ti] >= 0) {
      c = clock[static_cast<std::size_t>(lastOfThread[ti])];
    }
    for (std::size_t k = 0; k < i; ++k) {
      if (k == j || stack_[k].turn.pid == ti) continue;
      if (!turnsDependent(stack_[k].turn, stack_[i].turn)) continue;
      for (std::size_t t = 0; t < sh_.numThreads; ++t) {
        c[t] = std::max(c[t], clock[k][t]);
      }
    }
    return c[tj] >= idxInThread[j];
  }

  /// Race (j, i): plants a reversal at node j, source-set style (Abdulla
  /// et al.).  Let v' be the steps of (j, i) that do NOT happen-after j,
  /// followed by i itself.  The threads that can run first in v' from
  /// node j — the initials, whose first v' event has no happens-before
  /// predecessor inside v' — are exactly the first moves of schedules
  /// realising the reversal.  If one of them is already in the node's
  /// backtrack set the reversal is provided for; otherwise plant one.
  /// (Classic "add proc(i)" planting is unsound under sleep sets: the
  /// planted thread can be sleeping-covered while the class reachable
  /// only through another initial is lost.)
  void planBacktrack(std::size_t j, std::size_t i,
                     const std::vector<std::vector<std::size_t>>& clock,
                     const std::vector<std::size_t>& idxInThread) {
    const ProcessId tj = stack_[j].turn.pid;
    std::vector<std::size_t> seg;  // v' = notdep(j) slice of (j, i), then i
    for (std::size_t k = j + 1; k < i; ++k) {
      if (clock[k][tj] >= idxInThread[j]) continue;  // happens-after j
      seg.push_back(k);
    }
    seg.push_back(i);

    std::vector<ProcessId> initials;
    for (std::size_t p = 0; p < seg.size(); ++p) {
      const std::size_t f = seg[p];
      const ProcessId q = stack_[f].turn.pid;
      if (contains(initials, q)) continue;
      bool first = true;  // is f its thread's first event in v'?
      bool initial = true;
      for (std::size_t r = 0; r < p; ++r) {
        const std::size_t y = seg[r];
        if (stack_[y].turn.pid == q) {
          first = false;
          break;
        }
        if (clock[f][stack_[y].turn.pid] >= idxInThread[y]) {
          initial = false;  // y happens-before f
          break;
        }
      }
      if (first && initial) initials.push_back(q);
    }
    // The first v' event is vacuously an initial, so the set is non-empty.
    JUNGLE_CHECK(!initials.empty());

    Node& n = stack_[j];
    const ProcessId ti = stack_[i].turn.pid;
    const ProcessId pick =
        contains(initials, ti) ? ti : initials.front();
    if (j < frozen_.size()) {
      // Race into the frozen prefix: this task may not backtrack there.
      // The frozen choice being an initial means the donor's tree covers
      // the reversal; otherwise hand it to a fresh task.
      if (contains(initials, frozen_[j])) return;
      if (!sh_.claimPath(extendPath(n.pathBase, pick))) return;
      TaskSeed seed;
      seed.prefix.assign(frozen_.begin(),
                         frozen_.begin() + static_cast<long>(j));
      seed.prefix.push_back(pick);
      {
        std::lock_guard<std::mutex> g(sh_.mu);
        ++sh_.racesReversed;
      }
      sh_.spawn(std::move(seed));
      return;
    }
    for (ProcessId c : initials) {
      if (contains(n.backtrack, c)) return;  // reversal provided for
    }
    n.backtrack.push_back(pick);
    std::lock_guard<std::mutex> g(sh_.mu);
    ++sh_.racesReversed;
  }

  // --- parallel frontier -------------------------------------------------

  /// Donates pending backtrack candidates (shallowest first) while the
  /// pool looks underfed.
  void maybeDonate() {
    if (!sh_.parallel()) return;
    for (std::size_t d = frozen_.size(); d < stack_.size(); ++d) {
      if (sh_.activeTasks.load(std::memory_order_relaxed) >=
          2 * sh_.pool->size()) {
        return;
      }
      Node& n = stack_[d];
      for (ProcessId c : n.backtrack) {
        if (c == chosenOf(n) || contains(n.done, c) ||
            sleeping(n.sleep, c)) {
          continue;
        }
        if (!sh_.claimPath(extendPath(n.pathBase, c))) {
          n.done.push_back(c);
          continue;
        }
        n.done.push_back(c);  // delegated
        TaskSeed seed;
        seed.prefix.reserve(d + 1);
        for (std::size_t k = 0; k < d; ++k) {
          seed.prefix.push_back(chosenOf(stack_[k]));
        }
        seed.prefix.push_back(c);
        seed.sleepSeed = n.sleep;
        {
          std::lock_guard<std::mutex> g(sh_.mu);
          ++sh_.frontierDonations;
        }
        sh_.spawn(std::move(seed));
        break;  // at most one donation per node per round
      }
    }
  }

  // --- backtracking ------------------------------------------------------

  /// Retires the deepest finished branch and switches the stack to the
  /// next unexplored candidate.  Returns false when the task is done.
  bool backtrackToNext() {
    while (stack_.size() > frozen_.size()) {
      Node& n = stack_.back();
      const ProcessId finished = chosenOf(n);
      if (!contains(n.done, finished)) n.done.push_back(finished);
      if (sh_.dpor && !sleeping(n.sleep, finished)) {
        // Its subtree is fully explored (or delegated): siblings may now
        // skip it.
        n.sleep.push_back({finished, n.turn});
      }
      std::size_t next = n.enabled.size();
      for (std::size_t i = 0; i < n.enabled.size(); ++i) {
        const ProcessId c = n.enabled[i];
        if (!contains(n.backtrack, c) || contains(n.done, c) ||
            sleeping(n.sleep, c)) {
          continue;
        }
        if (!sh_.claimPath(extendPath(n.pathBase, c))) {
          n.done.push_back(c);
          continue;
        }
        next = i;
        break;
      }
      if (next < n.enabled.size()) {
        n.chosenIdx = next;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  Shared& sh_;
  std::vector<ProcessId> frozen_;
  std::vector<SleepEntry> sleepSeed_;
  std::vector<Node> stack_;
  std::optional<TurnScanner> scanner_;
  std::size_t lastRunLen_ = 0;
};

void Shared::spawn(TaskSeed seed) {
  activeTasks.fetch_add(1, std::memory_order_relaxed);
  pool->submit([this, seed = std::move(seed)]() mutable {
    Engine engine(*this, std::move(seed));
    engine.run();
    activeTasks.fetch_sub(1, std::memory_order_relaxed);
  });
}

ExplorationStats exploreTree(std::size_t numThreads, std::size_t words,
                             const Program& program,
                             const ExploreOptions& opts,
                             const RunVerifier& verify, bool dpor) {
  const auto t0 = std::chrono::steady_clock::now();
  Shared sh;
  sh.numThreads = numThreads;
  sh.words = words;
  sh.program = &program;
  sh.verify = &verify;
  sh.opts = opts;
  sh.dpor = dpor;
  if (opts.timeout.count() > 0) sh.deadline = Deadline::after(opts.timeout);

  if (opts.threads > 1) {
    ThreadPool pool(opts.threads);
    sh.pool = &pool;
    sh.spawn(TaskSeed{});
    pool.wait();
    sh.pool = nullptr;
  } else {
    Engine engine(sh, TaskSeed{});
    engine.run();
  }

  ExplorationStats st = sh.finalStats();
  st.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return st;
}

// ---------------------------------------------------------------------------
// Random sampling
// ---------------------------------------------------------------------------

ExplorationStats exploreSampling(std::size_t numThreads, std::size_t words,
                                 const Program& program,
                                 const ExploreOptions& opts,
                                 const RunVerifier& verify) {
  const auto t0 = std::chrono::steady_clock::now();
  Shared sh;
  sh.numThreads = numThreads;
  sh.words = words;
  sh.program = &program;
  sh.verify = &verify;
  sh.opts = opts;
  if (opts.timeout.count() > 0) sh.deadline = Deadline::after(opts.timeout);

  auto sampleOne = [&sh, numThreads, words, &program](std::size_t i) {
    if (sh.shouldStop()) return;
    // Per-sample generator: the schedule set is a pure function of
    // (seed, i), independent of how samples land on workers.
    Rng rng(hashAll(sh.opts.seed, static_cast<std::uint64_t>(i)));
    auto pick = [&rng](std::size_t,
                       const std::vector<ProcessId>& runnable) -> ProcessId {
      return runnable[rng.below(runnable.size())];
    };
    const RunOutcome out = runScheduled(numThreads, words, program,
                                        sh.opts.maxSteps, pick);
    sh.accountRun(out);
  };

  if (opts.threads > 1) {
    ThreadPool pool(opts.threads);
    for (std::size_t i = 0; i < opts.samples; ++i) {
      pool.submit([&sampleOne, i] { sampleOne(i); });
    }
    pool.wait();
  } else {
    for (std::size_t i = 0; i < opts.samples; ++i) sampleOne(i);
  }

  ExplorationStats st = sh.finalStats();
  st.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return st;
}

// ---------------------------------------------------------------------------
// Strategy objects
// ---------------------------------------------------------------------------

class DfsStrategy final : public ExplorationStrategy {
 public:
  ExploreStrategyKind kind() const override {
    return ExploreStrategyKind::kExhaustiveDfs;
  }
  const char* name() const override { return "dfs"; }
  ExplorationStats explore(std::size_t numThreads, std::size_t words,
                           const Program& program, const ExploreOptions& opts,
                           const RunVerifier& verify) const override {
    return exploreTree(numThreads, words, program, opts, verify,
                       /*dpor=*/false);
  }
};

class DporStrategy final : public ExplorationStrategy {
 public:
  ExploreStrategyKind kind() const override {
    return ExploreStrategyKind::kSleepSetDpor;
  }
  const char* name() const override { return "dpor"; }
  ExplorationStats explore(std::size_t numThreads, std::size_t words,
                           const Program& program, const ExploreOptions& opts,
                           const RunVerifier& verify) const override {
    return exploreTree(numThreads, words, program, opts, verify,
                       /*dpor=*/true);
  }
};

class SamplingStrategy final : public ExplorationStrategy {
 public:
  ExploreStrategyKind kind() const override {
    return ExploreStrategyKind::kRandomSampling;
  }
  const char* name() const override { return "sample"; }
  ExplorationStats explore(std::size_t numThreads, std::size_t words,
                           const Program& program, const ExploreOptions& opts,
                           const RunVerifier& verify) const override {
    return exploreSampling(numThreads, words, program, opts, verify);
  }
};

}  // namespace

const ExplorationStrategy& explorationStrategy(ExploreStrategyKind k) {
  static const DfsStrategy dfs;
  static const DporStrategy dpor;
  static const SamplingStrategy sampling;
  switch (k) {
    case ExploreStrategyKind::kSleepSetDpor: return dpor;
    case ExploreStrategyKind::kRandomSampling: return sampling;
    case ExploreStrategyKind::kExhaustiveDfs: break;
  }
  return dfs;
}

ExplorationStats exploreSchedules(std::size_t numThreads, std::size_t words,
                                  const Program& program,
                                  const ExploreOptions& opts,
                                  const RunVerifier& verify) {
  return explorationStrategy(opts.strategy)
      .explore(numThreads, words, program, opts, verify);
}

ExploreStats exploreExhaustive(std::size_t numThreads, std::size_t words,
                               const Program& program,
                               const RunVerifier& verify,
                               const ExploreOptions& opts) {
  ExploreOptions o = opts;
  o.strategy = ExploreStrategyKind::kExhaustiveDfs;
  o.threads = 1;
  return exploreSchedules(numThreads, words, program, o, verify);
}

ExploreStats exploreRandom(std::size_t numThreads, std::size_t words,
                           const Program& program, const RunVerifier& verify,
                           const ExploreOptions& opts) {
  ExploreOptions o = opts;
  o.strategy = ExploreStrategyKind::kRandomSampling;
  o.threads = 1;
  return exploreSchedules(numThreads, words, program, o, verify);
}

}  // namespace jungle
