// Turn-level dependence and run abstraction for partial-order reduction.
//
// A *turn* is one granted scheduler step: exactly one memory instruction
// (load/store/cas) plus the marker trail (invoke/respond/point) the granted
// thread emits before parking again — markers are not scheduling points, so
// they ride the turn of the access that preceded them.  Markers emitted
// before the first grant (every thread's startup prologue) form the
// pre-block; their mutual order is schedule-independent noise and carries
// no verdict-relevant information (see below).
//
// Two turns of different threads are *dependent* when swapping adjacent
// occurrences could change anything the conformance checkers compute from
// the trace:
//
//   * both access the same address and at least one can update it (stores
//     always; cas conservatively even when it fails, since its outcome
//     still reads the cell), or
//   * both carry markers of *transactional* operations.  The checkers'
//     real-time order ≺h relates transactional operations across processes
//     (HistoryAnalysis::realTimePrecedes clause 1), so swapping such turns
//     can change the interval order between transactions even when the
//     accesses themselves commute.
//
// Cross-process order of non-transactional operations is never
// verdict-relevant: ≺h clause 2 and the memory models' required view pairs
// are same-process-only, and value effects are covered by the address
// clause.  That observation also powers the *run abstraction*: a completed
// run is summarized by (a) its canonical corresponding history normalized
// modulo those verdict-irrelevant commutations and (b) the cross-process
// interval pairs between transactional operations.  Runs with equal
// abstractions have equal ∃-corresponding-history verdicts (for any model
// and spec), so the abstraction's hash is a sound dedup key and the sound
// comparison key for the DFS-vs-DPOR equivalence tests.
#pragma once

#include <cstdint>
#include <vector>

#include "history/history.hpp"
#include "sim/instruction.hpp"

namespace jungle {

/// One scheduler turn: the memory instruction it executed plus whether its
/// marker trail touched a transactional operation.
struct TurnInfo {
  ProcessId pid = 0;
  InsnKind kind = InsnKind::kLoad;
  Addr addr = kNoAddr;
  /// The trail (or, for the access itself, the enclosing operation) belongs
  /// to a transaction: start/commit/abort markers, or any marker emitted
  /// between a start and its matching commit/abort.
  bool txMarker = false;
};

/// True when adjacent occurrences of `a` then `b` (different turns of one
/// trace) may not be swapped without changing some checker verdict.
bool turnsDependent(const TurnInfo& a, const TurnInfo& b);

/// Incremental turn extraction.  Feed the trace's instructions in order
/// (across multiple calls); turns() grows by one per memory instruction,
/// and the latest turn's txMarker keeps updating as its trail arrives.
/// Only feed instructions recorded while the gate was enforcing turns —
/// the racy tail a cut run records after StepGate::abandon() must not be
/// fed.
class TurnScanner {
 public:
  explicit TurnScanner(std::size_t numThreads)
      : inTx_(numThreads, false) {}

  void feed(const Insn& insn);

  const std::vector<TurnInfo>& turns() const { return turns_; }

 private:
  std::vector<TurnInfo> turns_;
  std::vector<bool> inTx_;  // per pid: between start and commit/abort
};

/// The verdict-relevant summary of a completed run (see file comment).
struct RunAbstraction {
  /// Canonical corresponding history in commutation normal form: operation
  /// order is canonical (logical points), then greedily normalized by
  /// swapping adjacent cross-process pairs with at most one transactional
  /// member; identifiers are renumbered by first appearance.
  History normalized;
  /// Renumbered-id pairs (x, y) of transactional operations on different
  /// processes with respond(x) before invoke(y) in the trace.
  std::vector<std::pair<OpId, OpId>> txIntervalPairs;
  /// Hash of both components (common/hash.hpp); the dedup key.
  std::uint64_t key = 0;
};

/// Computes the abstraction of a completed, well-formed run trace.
RunAbstraction abstractRun(const Trace& r);

}  // namespace jungle
