// Instructions and traces (§4).
//
// A TM implementation compiles operations into sequences of load/store/cas
// instructions bracketed by invocation (▷, "invoke") and response (◁,
// "respond") markers.  A trace is the interleaved sequence of instruction
// instances the machine executed; histories correspond to traces by picking
// a logical point for each operation between its invocation and response.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "history/op_instance.hpp"

namespace jungle {

enum class InsnKind : std::uint8_t {
  kLoad,     // ⟨load a, v⟩ — returned v
  kStore,    // ⟨store a, v⟩
  kCas,      // ⟨cas a, v, v'⟩ — expected v, desired v'
  kInvoke,   // (▷, o)
  kRespond,  // (◁, o)
  kPoint,    // logical-point marker: where the operation "takes effect"
             // (emitted by recording policies; not a machine instruction)
};

const char* insnKindName(InsnKind k);

struct Insn {
  InsnKind kind = InsnKind::kLoad;
  ProcessId pid = 0;
  /// Identifier of the operation this instruction belongs to.
  OpId opId = 0;

  // --- load/store/cas fields ---
  Addr addr = kNoAddr;
  Word value = 0;     // load result / store value / cas desired value
  Word expected = 0;  // cas expected value
  bool casOk = false;  // cas outcome

  // --- invoke/respond fields: the operation (Ô) being delimited ---
  OpType opType = OpType::kCommand;
  ObjectId obj = kNoObject;
  Command cmd;

  bool isMemory() const {
    return kind == InsnKind::kLoad || kind == InsnKind::kStore ||
           kind == InsnKind::kCas;
  }
  bool isUpdate() const {  // the paper's "update instruction"
    return kind == InsnKind::kStore || (kind == InsnKind::kCas && casOk);
  }

  std::string toString() const;
};

/// A trace: sequence of instruction instances in machine execution order.
struct Trace {
  std::vector<Insn> insns;

  std::size_t size() const { return insns.size(); }
  const Insn& operator[](std::size_t i) const { return insns[i]; }

  /// r|p — the instructions issued by process p, in order.
  Trace projectProcess(ProcessId p) const;

  std::string toString() const;
};

/// Fluent construction of handcrafted traces (the Figure 5 constructions).
/// Operation identifiers are explicit: the theorem traces reference them.
class TraceBuilder {
 public:
  TraceBuilder& invoke(ProcessId p, OpId op, OpType t,
                       ObjectId obj = kNoObject, Command cmd = {});
  TraceBuilder& respond(ProcessId p, OpId op, OpType t,
                        ObjectId obj = kNoObject, Command cmd = {});
  TraceBuilder& load(ProcessId p, OpId op, Addr a, Word v);
  TraceBuilder& store(ProcessId p, OpId op, Addr a, Word v);
  TraceBuilder& cas(ProcessId p, OpId op, Addr a, Word expect, Word desired,
                    bool ok = true);
  TraceBuilder& point(ProcessId p, OpId op);

  /// invoke + respond around a command-operation's instruction sequence is
  /// common enough to warrant shorthands used by the theorem constructions.
  TraceBuilder& ntRead(ProcessId p, OpId op, ObjectId x, Addr a, Word v);
  TraceBuilder& ntWrite(ProcessId p, OpId op, ObjectId x, Addr a, Word v);

  Trace build() const { return trace_; }

 private:
  Trace trace_;
};

/// Structural well-formedness (§4): for every process, r|p is a sequence of
/// complete operation traces, possibly ending with one incomplete trace,
/// and every instruction between an invoke and its respond carries the same
/// operation identifier.
bool traceWellFormed(const Trace& r, std::string* why = nullptr);

/// Machine consistency: replaying the trace against a flat word memory
/// (zero-initialized), every load returns the current value, every cas
/// outcome matches its expected/current comparison.  Handcrafted theorem
/// traces are validated with this before any conclusions are drawn.
bool traceMachineConsistent(const Trace& r, std::string* why = nullptr);

}  // namespace jungle
