// Store-buffer hardware simulator (TSO/PSO).
//
// The paper notes (§4) that the underlying hardware may itself execute a
// relaxed memory model.  This simulator makes that concrete: each simulated
// processor owns a FIFO store buffer (TSO) or one FIFO per address (PSO);
// loads satisfy from the own buffer first (forwarding); buffered stores
// drain to shared memory at nondeterministic points.  Enumerating drain and
// execution schedules over small litmus programs yields exactly the outcome
// sets the logical TSO/PSO models admit — the demonstration tests tie the
// two formalizations together.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace jungle::sb {

enum class BufferKind { kTso, kPso };

/// One statement of a litmus thread program.
struct Stmt {
  enum Kind { kLoad, kStore, kFence } kind = kLoad;
  Addr addr = 0;
  Word value = 0;   // store value
  int reg = -1;     // load destination register (index into thread regs)
};

inline Stmt stLoad(Addr a, int reg) { return {Stmt::kLoad, a, 0, reg}; }
inline Stmt stStore(Addr a, Word v) { return {Stmt::kStore, a, v, -1}; }
inline Stmt stFence() { return {Stmt::kFence, 0, 0, -1}; }

using ThreadProgram = std::vector<Stmt>;

/// Final register values of every thread, flattened thread-major.
using Outcome = std::vector<Word>;

/// Exhaustively enumerates all interleavings of statement execution and
/// buffer drains for the given programs and returns the set of reachable
/// outcomes.  Memory is zero-initialized; programs must be small (the state
/// space is explored by DFS without reduction).
std::set<Outcome> enumerateOutcomes(const std::vector<ThreadProgram>& progs,
                                    BufferKind kind,
                                    std::size_t memoryWords = 8,
                                    std::size_t regsPerThread = 4);

}  // namespace jungle::sb
