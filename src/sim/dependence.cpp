#include "sim/dependence.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "sim/trace_history.hpp"

namespace jungle {

bool turnsDependent(const TurnInfo& a, const TurnInfo& b) {
  if (a.pid == b.pid) return true;
  if (a.txMarker && b.txMarker) return true;
  if (a.addr == b.addr &&
      !(a.kind == InsnKind::kLoad && b.kind == InsnKind::kLoad)) {
    return true;
  }
  return false;
}

void TurnScanner::feed(const Insn& insn) {
  if (insn.isMemory()) {
    TurnInfo t;
    t.pid = insn.pid;
    t.kind = insn.kind;
    t.addr = insn.addr;
    turns_.push_back(t);
    return;
  }
  JUNGLE_CHECK(insn.pid < inTx_.size());
  bool tx = false;
  switch (insn.kind) {
    case InsnKind::kInvoke:
      if (insn.opType == OpType::kStart) {
        inTx_[insn.pid] = true;
        tx = true;
      } else {
        tx = inTx_[insn.pid];
      }
      break;
    case InsnKind::kRespond:
      if (insn.opType == OpType::kCommit || insn.opType == OpType::kAbort) {
        tx = true;
        inTx_[insn.pid] = false;
      } else if (insn.opType == OpType::kStart) {
        tx = true;
      } else {
        tx = inTx_[insn.pid];
      }
      break;
    case InsnKind::kPoint:
      tx = inTx_[insn.pid];
      break;
    default:
      break;
  }
  // Pre-block markers (before the first grant) are dropped: every thread's
  // startup prologue precedes every turn, so its flags constrain nothing a
  // reordering of turns could change.
  if (tx && !turns_.empty()) turns_.back().txMarker = true;
}

namespace {

/// Transactionality per entry of an operation sequence (the per-process
/// structure is intrinsic: permuting ops across processes cannot change
/// it).  start/commit/abort count as transactional themselves.
template <class Seq, class PidOf, class TypeOf>
std::vector<bool> transactionalFlags(const Seq& seq, PidOf pidOf,
                                     TypeOf typeOf) {
  std::vector<bool> tx(seq.size(), false);
  std::unordered_map<ProcessId, bool> open;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    bool& inTx = open[pidOf(seq[i])];
    const OpType t = typeOf(seq[i]);
    if (t == OpType::kStart) {
      inTx = true;
      tx[i] = true;
    } else if (t == OpType::kCommit || t == OpType::kAbort) {
      tx[i] = true;
      inTx = false;
    } else {
      tx[i] = inTx;
    }
  }
  return tx;
}

std::uint64_t hashOp(const OpInstance& op, OpId newId) {
  std::uint64_t h =
      hashAll(static_cast<std::uint64_t>(op.type),
              static_cast<std::uint64_t>(op.obj),
              static_cast<std::uint64_t>(op.pid),
              static_cast<std::uint64_t>(newId));
  if (op.isCommand()) {
    hashCombine(h, hashAll(static_cast<std::uint64_t>(op.cmd.kind),
                           static_cast<std::uint64_t>(op.cmd.value),
                           op.cmd.deps.size()));
  }
  return h;
}

}  // namespace

RunAbstraction abstractRun(const Trace& r) {
  RunAbstraction out;

  // --- commutation normal form of the canonical history ---
  const History canon = canonicalHistory(r);
  std::vector<OpInstance> ops(canon.ops().begin(), canon.ops().end());
  const std::vector<bool> tx = transactionalFlags(
      ops, [](const OpInstance& o) { return o.pid; },
      [](const OpInstance& o) { return o.type; });

  // Per-process index: the tiebreak key, stable under any commutation.
  std::vector<std::size_t> ppi(ops.size(), 0);
  {
    std::unordered_map<ProcessId, std::size_t> count;
    for (std::size_t i = 0; i < ops.size(); ++i) ppi[i] = count[ops[i].pid]++;
  }

  // History-level dependence: same process, or both transactional (≺h
  // clause 1 relates transactions across processes; everything else is
  // verdict-irrelevant cross-process order — see the header comment).
  auto ordered = [&](std::size_t a, std::size_t b) {
    return ops[a].pid == ops[b].pid || (tx[a] && tx[b]);
  };

  // Least linear extension of the induced partial order under (pid, ppi):
  // the unique normal form of the commutation class.
  const std::size_t n = ops.size();
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> emitted(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (emitted[i]) continue;
      bool ready = true;
      for (std::size_t j = 0; j < i && ready; ++j) {
        if (!emitted[j] && ordered(j, i)) ready = false;
      }
      if (!ready) continue;
      if (best == n || ops[i].pid < ops[best].pid ||
          (ops[i].pid == ops[best].pid && ppi[i] < ppi[best])) {
        best = i;
      }
    }
    JUNGLE_CHECK(best < n);
    emitted[best] = true;
    order.push_back(best);
  }

  // Renumber identifiers by first appearance in the normal form (raw OpIds
  // are assigned in beginOp execution order and thus schedule-dependent).
  std::unordered_map<OpId, OpId> renumber;
  std::vector<OpInstance> normal;
  normal.reserve(n);
  for (std::size_t i : order) {
    OpInstance op = ops[i];
    const OpId newId = static_cast<OpId>(renumber.size() + 1);
    renumber.emplace(op.id, newId);
    op.id = newId;
    normal.push_back(std::move(op));
  }
  for (OpInstance& op : normal) {
    for (OpId& dep : op.cmd.deps) {
      auto it = renumber.find(dep);
      dep = it == renumber.end() ? 0 : it->second;
    }
  }

  // --- cross-process interval pairs between transactional operations ---
  const std::vector<TraceOp> traceOps = traceOperations(r);
  const std::vector<bool> traceTx = transactionalFlags(
      traceOps, [](const TraceOp& o) { return o.pid; },
      [](const TraceOp& o) { return o.type; });
  for (std::size_t i = 0; i < traceOps.size(); ++i) {
    if (!traceTx[i] || !traceOps[i].respondIdx.has_value()) continue;
    for (std::size_t j = 0; j < traceOps.size(); ++j) {
      if (!traceTx[j] || traceOps[j].pid == traceOps[i].pid) continue;
      if (*traceOps[i].respondIdx < traceOps[j].invokeIdx) {
        auto a = renumber.find(traceOps[i].id);
        auto b = renumber.find(traceOps[j].id);
        out.txIntervalPairs.emplace_back(
            a == renumber.end() ? 0 : a->second,
            b == renumber.end() ? 0 : b->second);
      }
    }
  }
  std::sort(out.txIntervalPairs.begin(), out.txIntervalPairs.end());

  // --- key ---
  std::uint64_t h = hashAll(normal.size(), out.txIntervalPairs.size());
  for (const OpInstance& op : normal) {
    hashCombine(h, hashOp(op, op.id));
    for (OpId dep : op.cmd.deps) hashCombine(h, dep);
  }
  for (const auto& [a, b] : out.txIntervalPairs) {
    hashCombine(h, hashAll(static_cast<std::uint64_t>(a),
                           static_cast<std::uint64_t>(b)));
  }
  out.normalized = History(std::move(normal));
  out.key = h;
  return out;
}

}  // namespace jungle
