// Pluggable schedule-exploration strategies over the StepGate scheduler.
//
// Three strategies drive a Program (sim/schedule.hpp) through
// interleavings and hand every completed run to a caller-supplied
// verifier:
//
//   * kExhaustiveDfs  — every schedule up to the step/run caps, via
//                       depth-first backtracking over scheduler choices.
//   * kSleepSetDpor   — dynamic partial-order reduction: records each
//                       run's turn-level dependence (sim/dependence.hpp),
//                       adds backtrack points only where reversible races
//                       occur, and carries Godefroid-style sleep sets so
//                       an interleaving class is explored once.  Sound for
//                       the checkers because the dependence relation
//                       covers both data conflicts and transactional
//                       interval order.
//   * kRandomSampling — opts.samples independent random schedules; sample
//                       i is driven by Rng(hashAll(seed, i)), so the set
//                       of schedules is invariant under opts.threads.
//
// DFS and DPOR accept opts.threads > 1: a parallel frontier distributes
// independent backtrack points across a common/thread_pool.hpp pool.
// Each task owns a frozen schedule prefix it never backtracks into;
// pending backtrack candidates are donated to idle workers, and DPOR
// races that point into a task's frozen prefix spawn fresh tasks instead
// of backtracking.  A global path-claim registry keeps two workers from
// exploring the same schedule prefix.  With threads > 1 the verifier is
// called concurrently and must be thread-safe.
//
// Completed runs are abstracted (dependence.hpp) into a canonical history
// key; with opts.dedupHistories the verifier is skipped for keys already
// seen and the cached verdict is reused.  Every exploration returns
// ExplorationStats telemetry.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/schedule.hpp"

namespace jungle {

enum class ExploreStrategyKind : std::uint8_t {
  kExhaustiveDfs,
  kSleepSetDpor,
  kRandomSampling,
};

const char* exploreStrategyName(ExploreStrategyKind k);
/// Parses "dfs", "dpor", or "sample" (also "sampling"/"random").
std::optional<ExploreStrategyKind> parseExploreStrategy(std::string_view s);

struct ExploreOptions {
  /// Hard cap on instructions per run (spin loops!).
  std::size_t maxSteps = 400;
  /// DFS/DPOR: cap on schedules executed (the shared run budget).
  std::size_t maxRuns = 2000;
  /// Sampling mode: number of random schedules.
  std::size_t samples = 64;
  std::uint64_t seed = 1;
  ExploreStrategyKind strategy = ExploreStrategyKind::kExhaustiveDfs;
  /// Worker threads; > 1 enables the parallel frontier (DFS/DPOR) or
  /// parallel sampling.  The verifier must then be thread-safe.
  unsigned threads = 1;
  /// Wall-clock budget; zero means none.
  std::chrono::milliseconds timeout{0};
  /// Skip the verifier for runs whose canonical-history key was already
  /// seen, reusing the cached verdict.  Off by default: callers that
  /// count verifier invocations (or record schedules) see every run.
  bool dedupHistories = false;
};

struct ExplorationStats {
  /// Schedules executed to completion or to the step bound.
  std::size_t runs = 0;
  std::size_t completedRuns = 0;
  std::size_t cutRuns = 0;  // hit maxSteps; never verified
  /// Completed runs whose verdict was "violation" (verifier returned
  /// false), including verdicts replayed from the dedup cache.
  std::size_t failures = 0;
  /// DPOR: executions abandoned because every enabled thread was in the
  /// sleep set (or, in parallel mode, every candidate path was already
  /// claimed by another worker).
  std::size_t sleepSetPruned = 0;
  /// DPOR: backtrack points added (or spawned) by reversible-race
  /// detection.
  std::size_t racesReversed = 0;
  /// Verifier invocations avoided via the canonical-history cache.
  std::size_t dedupHits = 0;
  /// Distinct canonical-history keys among completed runs.
  std::size_t distinctHistories = 0;
  /// Parallel frontier: backtrack candidates handed to idle workers.
  std::size_t frontierDonations = 0;
  bool deadlineExpired = false;
  bool runBudgetExhausted = false;
  double wallSeconds = 0.0;
  /// Sorted distinct canonical-history keys of completed runs — the
  /// comparison artifact for strategy-equivalence checks.
  std::vector<std::uint64_t> historyKeys;

  std::string summary() const;
};

/// Legacy name used by pre-strategy call sites.
using ExploreStats = ExplorationStats;

/// Returns true when the run conforms; false counts as a failure.
using RunVerifier = std::function<bool(const RunOutcome&)>;

class ExplorationStrategy {
 public:
  virtual ~ExplorationStrategy() = default;
  virtual ExploreStrategyKind kind() const = 0;
  virtual const char* name() const = 0;
  virtual ExplorationStats explore(std::size_t numThreads, std::size_t words,
                                   const Program& program,
                                   const ExploreOptions& opts,
                                   const RunVerifier& verify) const = 0;
};

/// The process-wide strategy singleton for `k`.
const ExplorationStrategy& explorationStrategy(ExploreStrategyKind k);

/// Dispatches to explorationStrategy(opts.strategy).
ExplorationStats exploreSchedules(std::size_t numThreads, std::size_t words,
                                  const Program& program,
                                  const ExploreOptions& opts,
                                  const RunVerifier& verify);

/// Bound (program, shape) facade for repeated exploration under varying
/// options — the form the CLI, fuzzer, and benchmarks drive.
class ScheduleExplorer {
 public:
  ScheduleExplorer(std::size_t numThreads, std::size_t words,
                   Program program)
      : numThreads_(numThreads), words_(words),
        program_(std::move(program)) {}

  std::size_t numThreads() const { return numThreads_; }
  std::size_t words() const { return words_; }

  ExplorationStats explore(const ExploreOptions& opts,
                           const RunVerifier& verify) const {
    return exploreSchedules(numThreads_, words_, program_, opts, verify);
  }

 private:
  std::size_t numThreads_;
  std::size_t words_;
  Program program_;
};

/// Legacy wrappers: force the strategy, keep the historical signature.
ExploreStats exploreExhaustive(std::size_t numThreads, std::size_t words,
                               const Program& program,
                               const RunVerifier& verify,
                               const ExploreOptions& opts = {});
ExploreStats exploreRandom(std::size_t numThreads, std::size_t words,
                           const Program& program, const RunVerifier& verify,
                           const ExploreOptions& opts = {});

}  // namespace jungle
