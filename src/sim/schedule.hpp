// Turn-based scheduling primitives for systematic concurrency testing.
//
// The paper's companions [9, 10] model-check TM algorithms; this module
// supplies the machinery that brings a bounded form of that to the live
// implementations.  A ScheduledMemory wraps RecordingMemory and blocks
// every thread before each instruction until the controller grants it a
// step; the exploration strategies in sim/exploration.hpp drive a
// multi-threaded program through chosen interleavings and hand each run's
// recorded trace to a caller-supplied verifier.
//
// Programs must be deterministic given the schedule (the TM templates are).
// Lock-acquire spin loops make some schedules unbounded; runs exceeding the
// step bound are cut and reported separately, never counted as passes.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/memory_policy.hpp"

namespace jungle {

/// Turn-based gate: worker threads call enter(p)/exit(p) around every
/// instruction; the controller grants one step at a time and observes
/// quiescence (all live threads parked at the gate or finished).
class StepGate {
 public:
  explicit StepGate(std::size_t numThreads);

  // Worker side.
  void workerEnter(ProcessId p);  // blocks until granted; then run the insn
  void workerExit(ProcessId p);   // reports instruction completion
  void workerDone(ProcessId p);   // thread finished its script

  // Controller side.
  /// Waits until every live thread is parked or done; returns the parked
  /// (runnable) thread ids.
  std::vector<ProcessId> awaitQuiescence();
  /// Lets thread p execute exactly one instruction (must be parked).
  void grant(ProcessId p);
  /// Unblocks every parked thread unconditionally (teardown after a cut
  /// run); the gate stops enforcing turns.
  void abandon();

  bool allDone() const;

 private:
  enum class ThreadState { kRunning, kParked, kGranted, kDone };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ThreadState> state_;
  bool abandoned_ = false;
};

/// Memory policy: RecordingMemory plus gate turns around every instruction.
class ScheduledMemory {
 public:
  ScheduledMemory(std::size_t words, StepGate& gate)
      : inner_(words), gate_(&gate) {}

  std::size_t size() const { return inner_.size(); }

  Word load(ProcessId p, Addr a) {
    gate_->workerEnter(p);
    const Word v = inner_.load(p, a);
    gate_->workerExit(p);
    return v;
  }
  void store(ProcessId p, Addr a, Word v) {
    gate_->workerEnter(p);
    inner_.store(p, a, v);
    gate_->workerExit(p);
  }
  bool cas(ProcessId p, Addr a, Word expect, Word desired) {
    gate_->workerEnter(p);
    const bool ok = inner_.cas(p, a, expect, desired);
    gate_->workerExit(p);
    return ok;
  }

  // Markers are metadata, not scheduling points.
  OpId beginOp(ProcessId p, OpType t, ObjectId obj, const Command& cmd) {
    return inner_.beginOp(p, t, obj, cmd);
  }
  void endOp(ProcessId p, OpId id, OpType t, ObjectId obj,
             const Command& cmd) {
    inner_.endOp(p, id, t, obj, cmd);
  }
  void markPoint(ProcessId p, OpId id) { inner_.markPoint(p, id); }

  Trace trace() const { return inner_.trace(); }

  // Incremental access for the exploration strategies (see
  // RecordingMemory::insnCount/insnAt).
  std::size_t insnCount() const { return inner_.insnCount(); }
  Insn insnAt(std::size_t i) const { return inner_.insnAt(i); }

 private:
  RecordingMemory inner_;
  StepGate* gate_;
};

/// One exploration run's outcome.
struct RunOutcome {
  Trace trace;
  bool completed = false;  // false ⇒ the step bound cut the run
  std::vector<ProcessId> schedule;
};

/// A program: given the scheduled memory, returns per-thread scripts.
/// Each script runs on its own OS thread under the gate.
using ThreadScript = std::function<void()>;
using Program =
    std::function<std::vector<ThreadScript>(ScheduledMemory& mem)>;

}  // namespace jungle
