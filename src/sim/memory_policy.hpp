// Memory policies: the machines the TM algorithm templates run on.
//
// A policy supplies the three hardware primitives of §4 — load, store, cas
// — plus operation-delimiter hooks.  Two policies are provided:
//
//   * NativeMemory    — std::atomic words, markers compiled out.  Used by
//                       benchmarks and examples at full speed.
//   * RecordingMemory — a mutex-serialized machine that logs every
//                       instruction into a Trace (§4), including invoke/
//                       respond markers and the operation's logical point.
//                       Used by the conformance tests, which extract
//                       corresponding histories and run the checkers.
//
// §4's simplifying assumption holds for both: the machine itself is
// linearizable (every instruction completes when issued); the *programmer-
// level* memory model is what the checkers parameterize over.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "sim/instruction.hpp"

namespace jungle {

class NativeMemory {
 public:
  explicit NativeMemory(std::size_t words)
      : cells_(std::make_unique<std::atomic<Word>[]>(words)), size_(words) {
    for (std::size_t i = 0; i < words; ++i)
      cells_[i].store(0, std::memory_order_relaxed);
  }

  std::size_t size() const { return size_; }

  Word load(ProcessId, Addr a) {
    JUNGLE_DCHECK(a < size_);
    return cells_[a].load(std::memory_order_seq_cst);
  }

  void store(ProcessId, Addr a, Word v) {
    JUNGLE_DCHECK(a < size_);
    cells_[a].store(v, std::memory_order_seq_cst);
  }

  bool cas(ProcessId, Addr a, Word expect, Word desired) {
    JUNGLE_DCHECK(a < size_);
    return cells_[a].compare_exchange_strong(expect, desired,
                                             std::memory_order_seq_cst);
  }

  // Marker hooks: no-ops, inlined away.
  OpId beginOp(ProcessId, OpType, ObjectId, const Command&) { return 0; }
  void endOp(ProcessId, OpId, OpType, ObjectId, const Command&) {}
  void markPoint(ProcessId, OpId) {}

 private:
  std::unique_ptr<std::atomic<Word>[]> cells_;
  std::size_t size_;
};

class RecordingMemory {
 public:
  explicit RecordingMemory(std::size_t words) : mem_(words, 0) {}

  std::size_t size() const { return mem_.size(); }

  Word load(ProcessId p, Addr a) {
    std::lock_guard<std::mutex> g(mu_);
    JUNGLE_CHECK(a < mem_.size());
    const Word v = mem_[a];
    Insn i;
    i.kind = InsnKind::kLoad;
    i.pid = p;
    i.opId = currentOp(p);
    i.addr = a;
    i.value = v;
    trace_.insns.push_back(i);
    return v;
  }

  void store(ProcessId p, Addr a, Word v) {
    std::lock_guard<std::mutex> g(mu_);
    JUNGLE_CHECK(a < mem_.size());
    mem_[a] = v;
    Insn i;
    i.kind = InsnKind::kStore;
    i.pid = p;
    i.opId = currentOp(p);
    i.addr = a;
    i.value = v;
    trace_.insns.push_back(i);
  }

  bool cas(ProcessId p, Addr a, Word expect, Word desired) {
    std::lock_guard<std::mutex> g(mu_);
    JUNGLE_CHECK(a < mem_.size());
    const bool ok = mem_[a] == expect;
    if (ok) mem_[a] = desired;
    Insn i;
    i.kind = InsnKind::kCas;
    i.pid = p;
    i.opId = currentOp(p);
    i.addr = a;
    i.expected = expect;
    i.value = desired;
    i.casOk = ok;
    trace_.insns.push_back(i);
    return ok;
  }

  OpId beginOp(ProcessId p, OpType t, ObjectId obj, const Command& cmd) {
    std::lock_guard<std::mutex> g(mu_);
    const OpId id = nextOp_++;
    setCurrentOp(p, id);
    Insn i;
    i.kind = InsnKind::kInvoke;
    i.pid = p;
    i.opId = id;
    i.opType = t;
    i.obj = obj;
    i.cmd = cmd;
    trace_.insns.push_back(std::move(i));
    return id;
  }

  void endOp(ProcessId p, OpId id, OpType t, ObjectId obj,
             const Command& cmd) {
    std::lock_guard<std::mutex> g(mu_);
    Insn i;
    i.kind = InsnKind::kRespond;
    i.pid = p;
    i.opId = id;
    i.opType = t;
    i.obj = obj;
    i.cmd = cmd;
    trace_.insns.push_back(std::move(i));
    clearCurrentOp(p);
  }

  void markPoint(ProcessId p, OpId id) {
    std::lock_guard<std::mutex> g(mu_);
    Insn i;
    i.kind = InsnKind::kPoint;
    i.pid = p;
    i.opId = id;
    trace_.insns.push_back(i);
  }

  Trace trace() const {
    std::lock_guard<std::mutex> g(mu_);
    return trace_;
  }

  // Incremental trace access: the schedule explorer consumes instructions
  // as they are recorded (one locked copy per instruction) instead of
  // snapshotting the whole trace at every scheduling point.
  std::size_t insnCount() const {
    std::lock_guard<std::mutex> g(mu_);
    return trace_.insns.size();
  }
  Insn insnAt(std::size_t i) const {
    std::lock_guard<std::mutex> g(mu_);
    JUNGLE_CHECK(i < trace_.insns.size());
    return trace_.insns[i];
  }

 private:
  OpId currentOp(ProcessId p) const {
    for (const auto& [pid, op] : open_) {
      if (pid == p) {
        JUNGLE_CHECK_MSG(op != kNoOp,
                         "memory instruction outside an operation");
        return op;
      }
    }
    JUNGLE_CHECK_MSG(false, "memory instruction outside an operation");
    return 0;
  }

  void setCurrentOp(ProcessId p, OpId id) {
    for (auto& [pid, op] : open_) {
      if (pid == p) {
        JUNGLE_CHECK_MSG(op == kNoOp, "nested operations on one process");
        op = id;
        return;
      }
    }
    open_.emplace_back(p, id);
  }

  void clearCurrentOp(ProcessId p) {
    for (auto& [pid, op] : open_)
      if (pid == p) op = kNoOp;
  }

  mutable std::mutex mu_;
  std::vector<Word> mem_;
  Trace trace_;
  std::vector<std::pair<ProcessId, OpId>> open_;
  OpId nextOp_ = 1;
};

}  // namespace jungle
