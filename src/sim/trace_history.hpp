// Trace → history correspondence (§4, Figure 4).
//
// A history corresponds to a trace when each operation is assigned a
// logical point between its invocation and response instruction; the
// induced operation order is a linear extension of the trace's interval
// order (k before j whenever k's response precedes j's invocation).
#pragma once

#include <functional>
#include <optional>

#include "history/history.hpp"
#include "memmodel/memory_model.hpp"
#include "opacity/popacity.hpp"
#include "sim/instruction.hpp"

namespace jungle {

/// One operation of a trace, with its instruction span.
struct TraceOp {
  ProcessId pid = 0;
  OpId id = 0;
  OpType type = OpType::kCommand;
  ObjectId obj = kNoObject;
  Command cmd;
  std::size_t invokeIdx = 0;
  /// Index of the respond instruction; nullopt for an incomplete operation.
  std::optional<std::size_t> respondIdx;
  /// Index of the logical-point marker, when the implementation emitted
  /// one (recording policies do; handcrafted traces usually do not).
  std::optional<std::size_t> pointIdx;
};

/// Extracts the operations of a well-formed trace, in invocation order.
/// The operation's command is taken from the respond marker (which carries
/// return values); for incomplete operations, from the invoke marker.
std::vector<TraceOp> traceOperations(const Trace& r);

/// Enumerates histories corresponding to `r` (all linear extensions of the
/// interval order) until `fn` returns true or `maxHistories` have been
/// visited.  Returns {fn-succeeded, cap-was-hit}.
struct EnumerationResult {
  bool satisfied = false;
  bool cappedOut = false;
  /// Some per-history check stopped on a resource limit (expansion budget
  /// or deadline); a negative verdict is then inconclusive even if the
  /// enumeration itself ran to completion.
  bool checkerInconclusive = false;
};
EnumerationResult forEachCorrespondingHistory(
    const Trace& r, const std::function<bool(const History&)>& fn,
    std::uint64_t maxHistories = 2'000'000);

/// The canonical corresponding history: operations ordered by their
/// logical-point markers when present, otherwise by their response (or, if
/// incomplete, invocation) instruction.  This mirrors the proofs of
/// Theorems 3–5, which fix logical points per operation kind.
History canonicalHistory(const Trace& r);

/// ∃ corresponding history ensuring opacity parametrized by `m`?  This is
/// the per-trace obligation of "I guarantees opacity parametrized by M".
/// `limits` is forwarded to every per-history check; resource stops are
/// reported through EnumerationResult::checkerInconclusive.
EnumerationResult traceEnsuresParametrizedOpacity(
    const Trace& r, const MemoryModel& m, const SpecMap& specs,
    std::uint64_t maxHistories = 2'000'000, const SearchLimits& limits = {});

}  // namespace jungle
