#include "sim/store_buffer.hpp"

#include <map>

#include "common/check.hpp"

namespace jungle::sb {

namespace {

struct BufferedStore {
  Addr addr;
  Word value;
};

struct MachineState {
  std::vector<Word> mem;
  std::vector<std::size_t> pc;                      // per thread
  std::vector<std::deque<BufferedStore>> buffers;   // per thread
  std::vector<std::vector<Word>> regs;              // per thread

  bool operator<(const MachineState& o) const {
    if (mem != o.mem) return mem < o.mem;
    if (pc != o.pc) return pc < o.pc;
    if (regs != o.regs) return regs < o.regs;
    auto key = [](const std::deque<BufferedStore>& d) {
      std::vector<std::pair<Addr, Word>> v;
      for (const auto& s : d) v.emplace_back(s.addr, s.value);
      return v;
    };
    for (std::size_t t = 0; t < buffers.size(); ++t) {
      auto a = key(buffers[t]);
      auto b = key(o.buffers[t]);
      if (a != b) return a < b;
    }
    return false;
  }
};

class Explorer {
 public:
  Explorer(const std::vector<ThreadProgram>& progs, BufferKind kind,
           std::size_t memoryWords, std::size_t regsPerThread)
      : progs_(progs), kind_(kind) {
    init_.mem.assign(memoryWords, 0);
    init_.pc.assign(progs.size(), 0);
    init_.buffers.assign(progs.size(), {});
    init_.regs.assign(progs.size(), std::vector<Word>(regsPerThread, 0));
  }

  std::set<Outcome> run() {
    dfs(init_);
    return outcomes_;
  }

 private:
  /// Forwarding lookup: newest buffered store to `a` by thread t, if any.
  static const BufferedStore* forwarded(
      const std::deque<BufferedStore>& buf, Addr a) {
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->addr == a) return &*it;
    }
    return nullptr;
  }

  /// Drainable store indices: TSO drains strictly in FIFO order (only the
  /// head); PSO may drain the oldest store of *any* address, so per-address
  /// order is kept but cross-address order is not.
  std::vector<std::size_t> drainable(
      const std::deque<BufferedStore>& buf) const {
    std::vector<std::size_t> out;
    if (buf.empty()) return out;
    if (kind_ == BufferKind::kTso) {
      out.push_back(0);
      return out;
    }
    std::set<Addr> seen;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (seen.insert(buf[i].addr).second) out.push_back(i);
    }
    return out;
  }

  void dfs(const MachineState& s) {
    if (!visited_.insert(s).second) return;

    bool anyStep = false;
    for (std::size_t t = 0; t < progs_.size(); ++t) {
      // Drain steps.
      for (std::size_t idx : drainable(s.buffers[t])) {
        MachineState n = s;
        const BufferedStore st = n.buffers[t][idx];
        n.buffers[t].erase(n.buffers[t].begin() +
                           static_cast<std::ptrdiff_t>(idx));
        JUNGLE_CHECK(st.addr < n.mem.size());
        n.mem[st.addr] = st.value;
        anyStep = true;
        dfs(n);
      }
      // Instruction steps.
      if (s.pc[t] >= progs_[t].size()) continue;
      const Stmt& stmt = progs_[t][s.pc[t]];
      switch (stmt.kind) {
        case Stmt::kLoad: {
          MachineState n = s;
          const BufferedStore* f = forwarded(n.buffers[t], stmt.addr);
          JUNGLE_CHECK(stmt.addr < n.mem.size());
          const Word v = f ? f->value : n.mem[stmt.addr];
          JUNGLE_CHECK(stmt.reg >= 0 &&
                       static_cast<std::size_t>(stmt.reg) <
                           n.regs[t].size());
          n.regs[t][static_cast<std::size_t>(stmt.reg)] = v;
          ++n.pc[t];
          anyStep = true;
          dfs(n);
          break;
        }
        case Stmt::kStore: {
          MachineState n = s;
          n.buffers[t].push_back({stmt.addr, stmt.value});
          ++n.pc[t];
          anyStep = true;
          dfs(n);
          break;
        }
        case Stmt::kFence: {
          if (!s.buffers[t].empty()) break;  // fence waits for drain
          MachineState n = s;
          ++n.pc[t];
          anyStep = true;
          dfs(n);
          break;
        }
      }
    }

    if (!anyStep) {
      // Terminal state (all pcs done, buffers empty — a blocked fence with
      // a non-empty buffer always has a drain step available).
      Outcome out;
      for (const auto& r : s.regs) out.insert(out.end(), r.begin(), r.end());
      outcomes_.insert(std::move(out));
    }
  }

  const std::vector<ThreadProgram>& progs_;
  BufferKind kind_;
  MachineState init_;
  std::set<MachineState> visited_;
  std::set<Outcome> outcomes_;
};

}  // namespace

std::set<Outcome> enumerateOutcomes(const std::vector<ThreadProgram>& progs,
                                    BufferKind kind, std::size_t memoryWords,
                                    std::size_t regsPerThread) {
  Explorer e(progs, kind, memoryWords, regsPerThread);
  return e.run();
}

}  // namespace jungle::sb
