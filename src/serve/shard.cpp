#include "serve/shard.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace jungle::serve {

Shard::Shard(const ShardOptions& opts, std::vector<ClientLane*> lanes)
    : opts_(opts),
      index_(opts.index),
      numShards_(opts.numShards),
      numKeys_(opts.numKeys),
      executors_(opts.executors == 0 ? 1 : opts.executors),
      localVars_((opts.numKeys + opts.numShards - 1) / opts.numShards),
      mem_(runtimeMemoryWords(opts.kind, localVars_)),
      lanes_(std::move(lanes)),
      popped_(lanes_.size(), 0),
      batch_(opts.epochBatchLimit),
      results_(opts.epochBatchLimit),
      laneCounters_(executors_) {
  JUNGLE_CHECK(numShards_ >= 1 && index_ < numShards_);
  JUNGLE_CHECK(numKeys_ >= numShards_);
  JUNGLE_CHECK(opts_.epochBatchLimit >= 1);
  JUNGLE_CHECK(!lanes_.empty());
  segs_.reserve(lanes_.size());
  inner_ = makeNativeRuntime(opts_.kind, mem_, localVars_, executors_);
  if (opts_.dutyPermille > 0) {
    monitor::MonitorOptions mo;
    mo.capture.ringCapacity = opts_.monitorRingCapacity;
    mo.capture.injectBug = opts_.injectBug;
    mo.shards = opts_.checkerShards;
    mo.collectorThreads = opts_.collectorThreads;
    mo.certifier = opts_.monitorCertifier;
    mo.snapshotDir = opts_.snapshotDir;
    mo.pollInterval = opts_.monitorPoll;
    mon_ = std::make_unique<monitor::TmMonitor>(*inner_, executors_, mo);
    stats_.sampled = true;
  }
}

void Shard::drainerLoop() {
  Backoff idle;
  std::uint32_t idleRounds = 0;
  for (;;) {
    const bool stopping = stop_.load(std::memory_order_acquire);
    // Epoch boundary: the shard is quiescent here, so this is where 2PC
    // slices are prepared and decided (coordinator.hpp).  Returns with no
    // slice left undecided.
    serviceCoordinator();
    std::size_t limit = opts_.epochBatchLimit;
    if (nextEpochMonitored()) {
      limit = std::min(limit, std::max<std::size_t>(
                                  opts_.monitoredEpochCommands, 1));
    }
    const std::size_t n = drainBatch(limit);
    if (n == 0) {
      if (stopping && allQueuesEmpty() && coordinatorDrained()) break;
      if (++idleRounds > 64) {
        std::this_thread::sleep_for(opts_.idlePoll);
      } else {
        idle.pause();
      }
      continue;
    }
    idleRounds = 0;
    idle.reset();
    runEpoch(n);
  }
  releaseExecutors();
}

bool Shard::nextEpochMonitored() const {
  const unsigned duty = opts_.dutyPermille;
  if (!mon_ || duty == 0) return false;
  if (duty >= 1000) return true;
  if (monitoredLive_) return windowLeft_ > 0;
  return attachDue(stats_.monitoredCommands, cmdsSeen_, duty);
}

std::size_t Shard::drainBatch(std::size_t limit) {
  segs_.clear();
  std::size_t filled = 0;
  const std::size_t clients = lanes_.size();
  // Rotate the starting client each epoch so a saturated client cannot
  // permanently crowd the tail clients out of the batch.
  const std::size_t start = static_cast<std::size_t>(stats_.epochs % clients);
  for (std::size_t k = 0; k < clients && filled < limit; ++k) {
    const std::size_t c = (start + k) % clients;
    const std::size_t got =
        lanes_[c]->cmd.tryPopBatch(batch_.data() + filled, limit - filled);
    if (got == 0) continue;
    segs_.push_back(Segment{c, filled, got, popped_[c]});
    popped_[c] += got;
    filled += got;
  }
  return filled;
}

bool Shard::allQueuesEmpty() const {
  for (const ClientLane* lane : lanes_) {
    if (!lane->cmd.empty()) return false;
  }
  return true;
}

void Shard::runEpoch(std::size_t n) {
  ++stats_.epochs;
  // Whole-window attach, command-budget detach: run windowEpochs epochs
  // monitored, then stay detached until the monitored share of executed
  // commands decays back to the duty target (attachDue).  The one-epoch
  // detached gap between windows is deliberate — it forces a resync per
  // window even at duty >= the achievable share.
  const bool monitored = nextEpochMonitored();
  if (monitored) {
    if (monitoredLive_) {
      if (windowLeft_ > 0) --windowLeft_;
    } else {
      windowLeft_ = opts_.windowEpochs == 0 ? 0 : opts_.windowEpochs - 1;
      resync();
    }
    ++stats_.monitoredEpochs;
    stats_.monitoredCommands += n;
  }
  monitoredLive_ = monitored;
  cmdsSeen_ += n;
  TmRuntime& rt = monitored ? mon_->runtime() : *inner_;

  if (executors_ == 1) {
    executeRange(rt, 0, 0, n);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++epochGen_;
      remaining_ = executors_ - 1;
      epochSize_ = n;
      epochRt_ = &rt;
    }
    work_.notify_all();
    executeRange(rt, 0, 0, n / executors_);
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [this] { return remaining_ == 0; });
  }
  pushResponses(n);
}

void Shard::executorLoop(std::size_t lane) {
  JUNGLE_CHECK(lane >= 1 && lane < executors_);
  std::uint64_t seen = 0;
  for (;;) {
    std::size_t n = 0;
    TmRuntime* rt = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_.wait(lk, [&] { return executorsReleased_ || epochGen_ != seen; });
      if (executorsReleased_ && epochGen_ == seen) return;
      seen = epochGen_;
      n = epochSize_;
      rt = epochRt_;
    }
    executeRange(*rt, lane, lane * n / executors_, (lane + 1) * n / executors_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) done_.notify_one();
    }
  }
}

void Shard::executeRange(TmRuntime& rt, std::size_t lane, std::size_t lo,
                         std::size_t hi) {
  LaneCounters& lc = laneCounters_[lane];
  const auto pid = static_cast<ProcessId>(lane);
  for (std::size_t i = lo; i < hi; ++i) {
    results_[i] = executeOne(rt, pid, batch_[i], lc);
  }
}

Word Shard::runBody(TxContext& tx, const Command& c) const {
  switch (c.kind) {
    case CmdKind::kGet:
      return tx.read(static_cast<ObjectId>(localVar(c.keys[0])));
    case CmdKind::kPut:
      tx.write(static_cast<ObjectId>(localVar(c.keys[0])), c.vals[0]);
      return c.vals[0];
    case CmdKind::kRmw: {
      const auto x = static_cast<ObjectId>(localVar(c.keys[0]));
      const Word v = tx.read(x);
      tx.write(x, v + c.vals[0]);
      return v;
    }
    case CmdKind::kTxn:
    case CmdKind::kTxnX: {
      // kTxnX reaches a shard lane only when every key is local (the
      // service demotes it to kTxn at submit); same body either way.
      Word sum = 0;
      for (std::size_t i = 0; i < c.nKeys; ++i) {
        const auto x = static_cast<ObjectId>(localVar(c.keys[i]));
        const Word v = tx.read(x);
        tx.write(x, v + c.vals[i]);
        sum += v;
      }
      return sum;
    }
  }
  return 0;  // unreachable; switch is exhaustive (-Werror=switch)
}

CommandResult Shard::executeOne(TmRuntime& rt, ProcessId pid, const Command& c,
                                LaneCounters& lc) {
  CommandResult r;
  Backoff backoff;
  for (int attempt = 0;; ++attempt) {
    int bodyRuns = 0;
    Word value = 0;
    const bool committed = rt.transaction(pid, [&](TxContext& tx) {
      // Bounded retry-on-abort: the runtime retries conflict aborts
      // internally without limit; cap the body invocations per service
      // attempt so a contention storm degrades to kFailed instead of
      // stalling the epoch.
      if (++bodyRuns > opts_.maxTxAttempts) tx.abort();
      value = runBody(tx, c);
    });
    if (committed) {
      r.value = value;
      r.status = CmdStatus::kOk;
      return r;
    }
    if (attempt + 1 >= opts_.maxCommandRetries) {
      r.status = CmdStatus::kFailed;
      return r;
    }
    ++lc.serviceRetries;
    backoff.pause();
  }
}

void Shard::resync() {
  // The shard is quiesced at an epoch boundary, so the inner runtime's
  // committed state is stable; read it bare, then replay it into the
  // monitored stream as chunked blind-write transactions.  Blind writes
  // only: a monitored *read* here would show the checker a value it never
  // saw written and convict a correct TM.
  resyncVals_.resize(localVars_);
  for (std::size_t v = 0; v < localVars_; ++v) {
    resyncVals_[v] = inner_->ntRead(0, static_cast<ObjectId>(v));
  }
  TmRuntime& rt = mon_->runtime();
  const std::size_t chunk = opts_.resyncChunk == 0 ? 32 : opts_.resyncChunk;
  for (std::size_t base = 0; base < localVars_; base += chunk) {
    const std::size_t end =
        base + chunk < localVars_ ? base + chunk : localVars_;
    const bool committed = rt.transaction(0, [&](TxContext& tx) {
      for (std::size_t v = base; v < end; ++v) {
        tx.write(static_cast<ObjectId>(v), resyncVals_[v]);
      }
    });
    JUNGLE_CHECK(committed);
    ++stats_.resyncTxs;
  }
}

bool Shard::boundaryMonitored() const {
  // Mid-window, boundary 2PC work must be recorded or a later monitored
  // read of a slice's key would be unexplainable to the checker.  Between
  // windows it must NOT be recorded — the detached-state drift is exactly
  // what the next attach's blind-write resync re-establishes.
  return mon_ != nullptr && monitoredLive_ && nextEpochMonitored();
}

TmRuntime& Shard::boundaryRuntime() {
  return boundaryMonitored() ? mon_->runtime() : *inner_;
}

bool Shard::coordinatorDrained() const {
  const XChannel* ch = opts_.coordChannel;
  return ch == nullptr || (ch->closed.load(std::memory_order_acquire) &&
                           ch->toShard.empty());
}

void Shard::serviceCoordinator() {
  XChannel* ch = opts_.coordChannel;
  if (ch == nullptr) return;
  Backoff wait;
  std::uint32_t idleRounds = 0;
  for (;;) {
    XMsg m;
    bool got = false;
    while (ch->toShard.tryPop(m)) {
      got = true;
      switch (m.kind) {
        case XMsg::Kind::kPrepare:
          handlePrepare(m);
          break;
        case XMsg::Kind::kDecide:
          handleDecide(m);
          break;
        case XMsg::Kind::kVote:
        case XMsg::Kind::kDone:
          JUNGLE_CHECK(false);  // coordinator-bound kinds
      }
    }
    // Decided-at-epoch-boundary alignment: while any slice is undecided
    // this shard runs no epochs (its reservations must not be touched),
    // but it keeps voting on new prepares — so a blocked shard never
    // delays another transaction's votes, and no decision ever waits on
    // a decision (deadlock-free; see coordinator.hpp).
    if (prepared_.empty()) return;
    if (got) {
      wait.reset();
      idleRounds = 0;
      continue;
    }
    if (++idleRounds > 64) {
      std::this_thread::sleep_for(opts_.idlePoll);
    } else {
      wait.pause();
    }
  }
}

void Shard::handlePrepare(const XMsg& m) {
  ++stats_.xPrepares;
  XMsg vote;
  vote.kind = XMsg::Kind::kVote;
  vote.txn = m.txn;
  // Certification against the reservations held by undecided slices; a
  // conflict votes NO immediately (never waits), keeping commit
  // progressive: an isolated kTxnX cannot be refused.
  bool conflict = false;
  for (std::size_t i = 0; i < m.nKeys && !conflict; ++i) {
    const std::size_t var = localVar(m.keys[i]);
    for (const PreparedSlice& s : prepared_) {
      for (std::size_t j = 0; j < s.nKeys; ++j) {
        if (s.vars[j] == var) {
          conflict = true;
          break;
        }
      }
      if (conflict) break;
    }
  }
  PreparedSlice s;
  s.txn = m.txn;
  Word sum = 0;
  bool ok = false;
  if (!conflict) {
    // Deferred update: a read-only committed TM transaction computes the
    // slice; writes stay buffered in the slice until the commit decision.
    // Duplicate keys keep kTxn's sequential semantics — a later read of a
    // key this command already updated sees the buffered value.
    TmRuntime& rt = boundaryRuntime();
    int bodyRuns = 0;
    ok = rt.transaction(0, [&](TxContext& tx) {
      if (++bodyRuns > opts_.maxTxAttempts) tx.abort();
      s.nKeys = 0;
      sum = 0;
      for (std::size_t i = 0; i < m.nKeys; ++i) {
        const std::size_t var = localVar(m.keys[i]);
        std::size_t j = 0;
        while (j < s.nKeys && s.vars[j] != var) ++j;
        Word v;
        if (j < s.nKeys) {
          v = s.newVals[j];
        } else {
          v = tx.read(static_cast<ObjectId>(var));
          s.vars[j] = var;
          s.oldVals[j] = v;
          ++s.nKeys;
        }
        sum += v;
        s.newVals[j] = v + m.deltas[i];
      }
    });
  }
  if (ok) {
    prepared_.push_back(s);
    vote.flag = true;
    vote.sum = sum;
  } else {
    ++stats_.xVoteNo;
    vote.flag = false;
  }
  JUNGLE_CHECK(opts_.coordChannel->toCoord.tryPush(vote));
}

void Shard::handleDecide(const XMsg& m) {
  std::size_t idx = 0;
  while (idx < prepared_.size() && prepared_[idx].txn != m.txn) ++idx;
  JUNGLE_CHECK(idx < prepared_.size());
  const PreparedSlice s = prepared_[idx];
  prepared_.erase(prepared_.begin() + idx);
  if (m.flag) {
    // Commit: apply the buffer as one blind-write transaction.  Blind
    // writes at a quiescent boundary cannot conflict, and the same rules
    // that keep the attach resync sound apply here — the checker sees
    // writes of values it will later see read, never the reverse.
    TmRuntime& rt = boundaryRuntime();
    const bool committed = rt.transaction(0, [&](TxContext& tx) {
      for (std::size_t j = 0; j < s.nKeys; ++j) {
        tx.write(static_cast<ObjectId>(s.vars[j]), s.newVals[j]);
      }
    });
    JUNGLE_CHECK(committed);
    ++stats_.xCommits;
    if (opts_.injectXShardBug && !xBugFired_ && boundaryMonitored()) {
      // Planted cross-shard atomicity defect: the transaction commits on
      // the other participants but this shard silently drops its slice —
      // reverted beneath the capture layer, so the sampled stream claims
      // the write happened while the real state disagrees.  A later
      // monitored access of these keys convicts (stale read under tl2,
      // snapshot/first-committer violation under si-mvcc).
      for (std::size_t j = 0; j < s.nKeys; ++j) {
        inner_->ntWrite(0, static_cast<ObjectId>(s.vars[j]), s.oldVals[j]);
      }
      xBugFired_ = true;
      ++stats_.xBugDrops;
    }
  } else {
    // Abort: the buffer is simply discarded — deferred update wrote
    // nothing, so there is nothing to undo anywhere.
    ++stats_.xAborts;
  }
  XMsg done;
  done.kind = XMsg::Kind::kDone;
  done.txn = m.txn;
  JUNGLE_CHECK(opts_.coordChannel->toCoord.tryPush(done));
}

void Shard::pushResponses(std::size_t n) {
  std::size_t covered = 0;
  for (const Segment& seg : segs_) {
    for (std::size_t j = 0; j < seg.count; ++j) {
      const std::size_t i = seg.first + j;
      CommandResult r = results_[i];
      r.seq = seg.seqBase + j;
      r.tag = batch_[i].tag;
      // Never full: the client's credit scheme caps outstanding commands
      // per lane at the ring capacity.
      JUNGLE_CHECK(lanes_[seg.client]->resp.tryPush(r));
      const Command& c = batch_[i];
      ++stats_.commands;
      switch (c.kind) {
        case CmdKind::kGet:
          ++stats_.gets;
          break;
        case CmdKind::kPut:
          ++stats_.puts;
          break;
        case CmdKind::kRmw:
          ++stats_.rmws;
          break;
        case CmdKind::kTxn:
        case CmdKind::kTxnX:
          ++stats_.txns;
          break;
      }
      if (r.status == CmdStatus::kOk) {
        ++stats_.committed;
      } else {
        ++stats_.failed;
      }
    }
    covered += seg.count;
  }
  JUNGLE_CHECK(covered == n);
}

void Shard::releaseExecutors() {
  std::lock_guard<std::mutex> lk(mu_);
  executorsReleased_ = true;
  work_.notify_all();
}

void Shard::finalize() {
  for (const LaneCounters& lc : laneCounters_) {
    stats_.serviceRetries += lc.serviceRetries;
  }
  stats_.tmAborts = inner_->abortCount();
  if (mon_) {
    mon_->stop();
    stats_.monitor = mon_->stats();
    stats_.violations = mon_->violations().size();
  }
}

const std::vector<monitor::MonitorViolation>& Shard::violations() const {
  return mon_ ? mon_->violations() : noViolations_;
}

Word Shard::value(ObjectId key) const {
  return inner_->ntRead(0, static_cast<ObjectId>(localVar(key)));
}

}  // namespace jungle::serve
