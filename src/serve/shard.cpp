#include "serve/shard.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace jungle::serve {

Shard::Shard(const ShardOptions& opts, std::vector<ClientLane*> lanes)
    : opts_(opts),
      index_(opts.index),
      numShards_(opts.numShards),
      numKeys_(opts.numKeys),
      executors_(opts.executors == 0 ? 1 : opts.executors),
      localVars_((opts.numKeys + opts.numShards - 1) / opts.numShards),
      mem_(runtimeMemoryWords(opts.kind, localVars_)),
      lanes_(std::move(lanes)),
      popped_(lanes_.size(), 0),
      batch_(opts.epochBatchLimit),
      results_(opts.epochBatchLimit),
      laneCounters_(executors_) {
  JUNGLE_CHECK(numShards_ >= 1 && index_ < numShards_);
  JUNGLE_CHECK(numKeys_ >= numShards_);
  JUNGLE_CHECK(opts_.epochBatchLimit >= 1);
  JUNGLE_CHECK(!lanes_.empty());
  segs_.reserve(lanes_.size());
  inner_ = makeNativeRuntime(opts_.kind, mem_, localVars_, executors_);
  if (opts_.dutyPermille > 0) {
    monitor::MonitorOptions mo;
    mo.capture.ringCapacity = opts_.monitorRingCapacity;
    mo.capture.injectBug = opts_.injectBug;
    mo.shards = opts_.checkerShards;
    mo.collectorThreads = opts_.collectorThreads;
    mo.snapshotDir = opts_.snapshotDir;
    mo.pollInterval = opts_.monitorPoll;
    mon_ = std::make_unique<monitor::TmMonitor>(*inner_, executors_, mo);
    stats_.sampled = true;
  }
}

void Shard::drainerLoop() {
  Backoff idle;
  std::uint32_t idleRounds = 0;
  for (;;) {
    const bool stopping = stop_.load(std::memory_order_acquire);
    std::size_t limit = opts_.epochBatchLimit;
    if (nextEpochMonitored()) {
      limit = std::min(limit, std::max<std::size_t>(
                                  opts_.monitoredEpochCommands, 1));
    }
    const std::size_t n = drainBatch(limit);
    if (n == 0) {
      if (stopping && allQueuesEmpty()) break;
      if (++idleRounds > 64) {
        std::this_thread::sleep_for(opts_.idlePoll);
      } else {
        idle.pause();
      }
      continue;
    }
    idleRounds = 0;
    idle.reset();
    runEpoch(n);
  }
  releaseExecutors();
}

bool Shard::nextEpochMonitored() const {
  const unsigned duty = opts_.dutyPermille;
  if (!mon_ || duty == 0) return false;
  if (duty >= 1000) return true;
  if (monitoredLive_) return windowLeft_ > 0;
  return attachDue(stats_.monitoredCommands, cmdsSeen_, duty);
}

std::size_t Shard::drainBatch(std::size_t limit) {
  segs_.clear();
  std::size_t filled = 0;
  const std::size_t clients = lanes_.size();
  // Rotate the starting client each epoch so a saturated client cannot
  // permanently crowd the tail clients out of the batch.
  const std::size_t start = static_cast<std::size_t>(stats_.epochs % clients);
  for (std::size_t k = 0; k < clients && filled < limit; ++k) {
    const std::size_t c = (start + k) % clients;
    const std::size_t got =
        lanes_[c]->cmd.tryPopBatch(batch_.data() + filled, limit - filled);
    if (got == 0) continue;
    segs_.push_back(Segment{c, filled, got, popped_[c]});
    popped_[c] += got;
    filled += got;
  }
  return filled;
}

bool Shard::allQueuesEmpty() const {
  for (const ClientLane* lane : lanes_) {
    if (!lane->cmd.empty()) return false;
  }
  return true;
}

void Shard::runEpoch(std::size_t n) {
  ++stats_.epochs;
  // Whole-window attach, command-budget detach: run windowEpochs epochs
  // monitored, then stay detached until the monitored share of executed
  // commands decays back to the duty target (attachDue).  The one-epoch
  // detached gap between windows is deliberate — it forces a resync per
  // window even at duty >= the achievable share.
  const bool monitored = nextEpochMonitored();
  if (monitored) {
    if (monitoredLive_) {
      if (windowLeft_ > 0) --windowLeft_;
    } else {
      windowLeft_ = opts_.windowEpochs == 0 ? 0 : opts_.windowEpochs - 1;
      resync();
    }
    ++stats_.monitoredEpochs;
    stats_.monitoredCommands += n;
  }
  monitoredLive_ = monitored;
  cmdsSeen_ += n;
  TmRuntime& rt = monitored ? mon_->runtime() : *inner_;

  if (executors_ == 1) {
    executeRange(rt, 0, 0, n);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++epochGen_;
      remaining_ = executors_ - 1;
      epochSize_ = n;
      epochRt_ = &rt;
    }
    work_.notify_all();
    executeRange(rt, 0, 0, n / executors_);
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [this] { return remaining_ == 0; });
  }
  pushResponses(n);
}

void Shard::executorLoop(std::size_t lane) {
  JUNGLE_CHECK(lane >= 1 && lane < executors_);
  std::uint64_t seen = 0;
  for (;;) {
    std::size_t n = 0;
    TmRuntime* rt = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_.wait(lk, [&] { return executorsReleased_ || epochGen_ != seen; });
      if (executorsReleased_ && epochGen_ == seen) return;
      seen = epochGen_;
      n = epochSize_;
      rt = epochRt_;
    }
    executeRange(*rt, lane, lane * n / executors_, (lane + 1) * n / executors_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) done_.notify_one();
    }
  }
}

void Shard::executeRange(TmRuntime& rt, std::size_t lane, std::size_t lo,
                         std::size_t hi) {
  LaneCounters& lc = laneCounters_[lane];
  const auto pid = static_cast<ProcessId>(lane);
  for (std::size_t i = lo; i < hi; ++i) {
    results_[i] = executeOne(rt, pid, batch_[i], lc);
  }
}

Word Shard::runBody(TxContext& tx, const Command& c) const {
  switch (c.kind) {
    case CmdKind::kGet:
      return tx.read(static_cast<ObjectId>(localVar(c.keys[0])));
    case CmdKind::kPut:
      tx.write(static_cast<ObjectId>(localVar(c.keys[0])), c.vals[0]);
      return c.vals[0];
    case CmdKind::kRmw: {
      const auto x = static_cast<ObjectId>(localVar(c.keys[0]));
      const Word v = tx.read(x);
      tx.write(x, v + c.vals[0]);
      return v;
    }
    case CmdKind::kTxn: {
      Word sum = 0;
      for (std::size_t i = 0; i < c.nKeys; ++i) {
        const auto x = static_cast<ObjectId>(localVar(c.keys[i]));
        const Word v = tx.read(x);
        tx.write(x, v + c.vals[i]);
        sum += v;
      }
      return sum;
    }
  }
  return 0;  // unreachable; switch is exhaustive (-Werror=switch)
}

CommandResult Shard::executeOne(TmRuntime& rt, ProcessId pid, const Command& c,
                                LaneCounters& lc) {
  CommandResult r;
  Backoff backoff;
  for (int attempt = 0;; ++attempt) {
    int bodyRuns = 0;
    Word value = 0;
    const bool committed = rt.transaction(pid, [&](TxContext& tx) {
      // Bounded retry-on-abort: the runtime retries conflict aborts
      // internally without limit; cap the body invocations per service
      // attempt so a contention storm degrades to kFailed instead of
      // stalling the epoch.
      if (++bodyRuns > opts_.maxTxAttempts) tx.abort();
      value = runBody(tx, c);
    });
    if (committed) {
      r.value = value;
      r.status = CmdStatus::kOk;
      return r;
    }
    if (attempt + 1 >= opts_.maxCommandRetries) {
      r.status = CmdStatus::kFailed;
      return r;
    }
    ++lc.serviceRetries;
    backoff.pause();
  }
}

void Shard::resync() {
  // The shard is quiesced at an epoch boundary, so the inner runtime's
  // committed state is stable; read it bare, then replay it into the
  // monitored stream as chunked blind-write transactions.  Blind writes
  // only: a monitored *read* here would show the checker a value it never
  // saw written and convict a correct TM.
  resyncVals_.resize(localVars_);
  for (std::size_t v = 0; v < localVars_; ++v) {
    resyncVals_[v] = inner_->ntRead(0, static_cast<ObjectId>(v));
  }
  TmRuntime& rt = mon_->runtime();
  const std::size_t chunk = opts_.resyncChunk == 0 ? 32 : opts_.resyncChunk;
  for (std::size_t base = 0; base < localVars_; base += chunk) {
    const std::size_t end =
        base + chunk < localVars_ ? base + chunk : localVars_;
    const bool committed = rt.transaction(0, [&](TxContext& tx) {
      for (std::size_t v = base; v < end; ++v) {
        tx.write(static_cast<ObjectId>(v), resyncVals_[v]);
      }
    });
    JUNGLE_CHECK(committed);
    ++stats_.resyncTxs;
  }
}

void Shard::pushResponses(std::size_t n) {
  std::size_t covered = 0;
  for (const Segment& seg : segs_) {
    for (std::size_t j = 0; j < seg.count; ++j) {
      const std::size_t i = seg.first + j;
      CommandResult r = results_[i];
      r.seq = seg.seqBase + j;
      r.tag = batch_[i].tag;
      // Never full: the client's credit scheme caps outstanding commands
      // per lane at the ring capacity.
      JUNGLE_CHECK(lanes_[seg.client]->resp.tryPush(r));
      const Command& c = batch_[i];
      ++stats_.commands;
      switch (c.kind) {
        case CmdKind::kGet:
          ++stats_.gets;
          break;
        case CmdKind::kPut:
          ++stats_.puts;
          break;
        case CmdKind::kRmw:
          ++stats_.rmws;
          break;
        case CmdKind::kTxn:
          ++stats_.txns;
          break;
      }
      if (r.status == CmdStatus::kOk) {
        ++stats_.committed;
      } else {
        ++stats_.failed;
      }
    }
    covered += seg.count;
  }
  JUNGLE_CHECK(covered == n);
}

void Shard::releaseExecutors() {
  std::lock_guard<std::mutex> lk(mu_);
  executorsReleased_ = true;
  work_.notify_all();
}

void Shard::finalize() {
  for (const LaneCounters& lc : laneCounters_) {
    stats_.serviceRetries += lc.serviceRetries;
  }
  stats_.tmAborts = inner_->abortCount();
  if (mon_) {
    mon_->stop();
    stats_.monitor = mon_->stats();
    stats_.violations = mon_->violations().size();
  }
}

const std::vector<monitor::MonitorViolation>& Shard::violations() const {
  return mon_ ? mon_->violations() : noViolations_;
}

Word Shard::value(ObjectId key) const {
  return inner_->ntRead(0, static_cast<ObjectId>(localVar(key)));
}

}  // namespace jungle::serve
