// Client-facing command vocabulary of the jungle_serve KV service.
//
// A Command is a fixed-size POD so the SPSC ingestion rings move it with a
// raw copy; a CommandResult is the acknowledgment pushed back on the
// client's response ring once the command's transaction has committed (or
// conclusively failed its retry budget).  Multi-key transactions come in
// two flavors: kTxn is hash-slot-constrained to a single shard (every key
// must map to the same shard; the owning shard executes it as one local TM
// transaction), while kTxnX may span shards — the service routes it to the
// two-phase-commit coordinator (serve/coordinator.hpp), which runs a
// deferred-update 2PC over the participant shards.  A kTxnX whose keys all
// happen to share a shard is demoted to kTxn at submit and takes the fast
// local path.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace jungle::serve {

/// Maximum keys one kTxn/kTxnX command may touch (fixed so Command stays
/// POD and ring slots stay cache-friendly).
inline constexpr std::size_t kMaxTxnKeys = 4;

enum class CmdKind : std::uint8_t {
  kGet,   // value = read(keys[0])
  kPut,   // write(keys[0], vals[0]); value = vals[0]
  kRmw,   // v = read(keys[0]); write(keys[0], v + vals[0]); value = v
  kTxn,   // for i < nKeys: v_i = read(keys[i]); write(keys[i], v_i + vals[i]);
          // value = sum of the v_i (one atomic multi-key read-modify-write;
          // all keys on one shard)
  kTxnX,  // same semantics as kTxn, but the keys may span shards; executed
          // atomically across shards via the 2PC coordinator
};

/// Number of CmdKind enumerators (latency histograms and per-kind stat
/// tables are sized by this; the command tag reserves 3 bits for it).
inline constexpr std::size_t kCmdKindCount = 5;

struct Command {
  CmdKind kind = CmdKind::kGet;
  std::uint8_t nKeys = 1;
  ObjectId keys[kMaxTxnKeys] = {0, 0, 0, 0};
  Word vals[kMaxTxnKeys] = {0, 0, 0, 0};
  /// Opaque client cookie echoed verbatim in the CommandResult; the load
  /// generator packs a submit timestamp here to measure end-to-end
  /// latency without a client-side in-flight table.
  std::uint64_t tag = 0;
};

enum class CmdStatus : std::uint8_t {
  kOk,      // committed; value carries the command's result
  kFailed,  // bounded retry-on-abort budget exhausted; nothing committed
};

/// Acknowledgment.  `seq` is the command's position in its (client, lane)
/// queue — submission order per shard lane (which the shard consumes FIFO)
/// or per coordinator lane — so a client can match responses to requests
/// without carrying ids in the Command.  Coordinator acknowledgments may
/// arrive out of submission order (independent transactions decide
/// independently); `seq` is what keeps them attributable.
struct CommandResult {
  std::uint64_t seq = 0;
  Word value = 0;
  /// The command's tag, echoed verbatim.
  std::uint64_t tag = 0;
  CmdStatus status = CmdStatus::kOk;
};

inline const char* cmdKindName(CmdKind k) {
  switch (k) {
    case CmdKind::kGet:
      return "get";
    case CmdKind::kPut:
      return "put";
    case CmdKind::kRmw:
      return "rmw";
    case CmdKind::kTxn:
      return "txn";
    case CmdKind::kTxnX:
      return "txnx";
  }
  return "?";
}

}  // namespace jungle::serve
