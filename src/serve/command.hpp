// Client-facing command vocabulary of the jungle_serve KV service.
//
// A Command is a fixed-size POD so the SPSC ingestion rings move it with a
// raw copy; a CommandResult is the acknowledgment the owning shard pushes
// back on the client's response ring once the command's transaction has
// committed (or conclusively failed its retry budget).  Multi-key
// transactions are single-shard by design — like hash-slot-constrained
// multi-key operations in production sharded stores — so every key of a
// kTxn command must map to the same shard (the load generator aligns its
// draws; Client::trySubmit checks the invariant).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace jungle::serve {

/// Maximum keys one kTxn command may touch (fixed so Command stays POD and
/// ring slots stay cache-friendly).
inline constexpr std::size_t kMaxTxnKeys = 4;

enum class CmdKind : std::uint8_t {
  kGet,  // value = read(keys[0])
  kPut,  // write(keys[0], vals[0]); value = vals[0]
  kRmw,  // v = read(keys[0]); write(keys[0], v + vals[0]); value = v
  kTxn,  // for i < nKeys: v_i = read(keys[i]); write(keys[i], v_i + vals[i]);
         // value = sum of the v_i (one atomic multi-key read-modify-write)
};

struct Command {
  CmdKind kind = CmdKind::kGet;
  std::uint8_t nKeys = 1;
  ObjectId keys[kMaxTxnKeys] = {0, 0, 0, 0};
  Word vals[kMaxTxnKeys] = {0, 0, 0, 0};
  /// Opaque client cookie echoed verbatim in the CommandResult; the load
  /// generator packs a submit timestamp here to measure end-to-end
  /// latency without a client-side in-flight table.
  std::uint64_t tag = 0;
};

enum class CmdStatus : std::uint8_t {
  kOk,      // committed; value carries the command's result
  kFailed,  // bounded retry-on-abort budget exhausted; nothing committed
};

/// Acknowledgment.  `seq` is the command's position in its (client, shard)
/// queue — submission order, which the shard consumes FIFO — so a client
/// can match responses to requests without carrying ids in the Command.
struct CommandResult {
  std::uint64_t seq = 0;
  Word value = 0;
  /// The command's tag, echoed verbatim.
  std::uint64_t tag = 0;
  CmdStatus status = CmdStatus::kOk;
};

inline const char* cmdKindName(CmdKind k) {
  switch (k) {
    case CmdKind::kGet:
      return "get";
    case CmdKind::kPut:
      return "put";
    case CmdKind::kRmw:
      return "rmw";
    case CmdKind::kTxn:
      return "txn";
  }
  return "?";
}

}  // namespace jungle::serve
