// Bounded lock-free SPSC ring for service ingestion and acknowledgment,
// modeled on monitor/event_ring.hpp: power-of-two capacity, head and tail
// on their own cache lines, and each side caching the other's index so the
// hot path touches a shared line only when its cached view runs out.
//
// Unlike the event ring there is no drop path: a full command ring simply
// refuses the push and the client backs off (commands are request traffic,
// not telemetry — losing one silently would break the acknowledgment
// contract).  Capacity bounds are what make the service's credit scheme
// work: a client may have at most `capacity` commands outstanding per
// shard, so the response ring (same capacity) can never overflow and the
// shard's ack push is wait-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/check.hpp"
#include "common/sync.hpp"

namespace jungle::serve {

template <class T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(roundUpPow2(capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Producer: false when the ring is full (caller backs off and retries).
  bool tryPush(const T& v) {
    const std::uint64_t tail = tail_.value.load(std::memory_order_relaxed);
    if (capacity_ - (tail - cachedHead_) < 1) {
      cachedHead_ = head_.value.load(std::memory_order_acquire);
      if (capacity_ - (tail - cachedHead_) < 1) return false;
    }
    slots_[tail & mask_] = v;
    tail_.value.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: pops one item; false when empty.
  bool tryPop(T& out) {
    const std::uint64_t head = head_.value.load(std::memory_order_relaxed);
    if (head == cachedTail_) {
      cachedTail_ = tail_.value.load(std::memory_order_acquire);
      if (head == cachedTail_) return false;
    }
    out = slots_[head & mask_];
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: pops up to `max` items into `out`; returns the count.  One
  /// tail load covers the whole batch — the amortization the epoch drain
  /// relies on.
  std::size_t tryPopBatch(T* out, std::size_t max) {
    const std::uint64_t head = head_.value.load(std::memory_order_relaxed);
    std::uint64_t avail = cachedTail_ - head;
    if (avail == 0) {
      cachedTail_ = tail_.value.load(std::memory_order_acquire);
      avail = cachedTail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n =
        static_cast<std::size_t>(avail < max ? avail : max);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.value.store(head + n, std::memory_order_release);
    return n;
  }

  /// Fresh-read emptiness (shutdown drain check; must not trust caches).
  bool empty() const {
    return head_.value.load(std::memory_order_relaxed) ==
           tail_.value.load(std::memory_order_acquire);
  }

 private:
  static std::size_t roundUpPow2(std::size_t n) {
    JUNGLE_CHECK(n >= 2);
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;

  alignas(kCacheLine) PaddedAtomicWord head_;  // consumer-owned
  alignas(kCacheLine) PaddedAtomicWord tail_;  // producer-owned
  alignas(kCacheLine) std::uint64_t cachedHead_ = 0;  // producer-owned
  alignas(kCacheLine) std::uint64_t cachedTail_ = 0;  // consumer-owned
};

}  // namespace jungle::serve
