#include "serve/service.hpp"

#include "common/check.hpp"

namespace jungle::serve {

JungleServe::JungleServe(const ServeOptions& opts) : opts_(opts) {
  JUNGLE_CHECK(opts_.shards >= 1);
  JUNGLE_CHECK(opts_.clients >= 1);
  JUNGLE_CHECK(opts_.numKeys >= opts_.shards);
  if (opts_.executorsPerShard == 0) opts_.executorsPerShard = 1;

  // Sampling plan: concentrate the service-wide budget on the fewest
  // shards whose full duty could carry it, then duty-cycle each.  E.g.
  // permille=10 (1%) over 4 shards -> 1 sampled shard at 40 permille of
  // its epochs; permille=500 -> 2 shards at full duty.
  if (opts_.samplePermille > 0) {
    const std::uint64_t p = opts_.samplePermille;
    const std::uint64_t s = opts_.shards;
    sampledShards_ = static_cast<std::size_t>((p * s + 999) / 1000);
    if (sampledShards_ > opts_.shards) sampledShards_ = opts_.shards;
    std::uint64_t duty = p * s / sampledShards_;
    if (duty > 1000) duty = 1000;
    if (duty == 0) duty = 1;
    dutyPermille_ = static_cast<unsigned>(duty);
  }

  lanes_.resize(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    lanes_[s].reserve(opts_.clients);
    for (std::size_t c = 0; c < opts_.clients; ++c) {
      lanes_[s].push_back(std::make_unique<ClientLane>(opts_.queueCapacity));
    }
  }

  // The 2PC coordinator: one kTxnX lane per client (same credit scheme as
  // the shard lanes) plus a protocol channel per shard, created by the
  // coordinator and handed to the shards below.
  coordLanes_.reserve(opts_.clients);
  std::vector<ClientLane*> coordLanePtrs;
  coordLanePtrs.reserve(opts_.clients);
  for (std::size_t c = 0; c < opts_.clients; ++c) {
    coordLanes_.push_back(std::make_unique<ClientLane>(opts_.queueCapacity));
    coordLanePtrs.push_back(coordLanes_.back().get());
  }
  CoordinatorOptions co;
  co.shards = opts_.shards;
  co.maxInFlight = opts_.coordinatorInFlight == 0 ? 1 : opts_.coordinatorInFlight;
  co.maxCommandRetries = opts_.maxCommandRetries;
  co.idlePoll = opts_.idlePoll;
  coordinator_ = std::make_unique<Coordinator>(co, std::move(coordLanePtrs));

  shards_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    ShardOptions so;
    so.kind = opts_.kind;
    so.index = s;
    so.numShards = opts_.shards;
    so.numKeys = opts_.numKeys;
    so.executors = opts_.executorsPerShard;
    so.epochBatchLimit = opts_.epochBatchLimit;
    so.maxTxAttempts = opts_.maxTxAttempts;
    so.maxCommandRetries = opts_.maxCommandRetries;
    so.idlePoll = opts_.idlePoll;
    so.coordChannel = &coordinator_->channel(s);
    if (s < sampledShards_) {
      so.dutyPermille = dutyPermille_;
      so.windowEpochs = opts_.sampleWindowEpochs;
      so.monitoredEpochCommands = opts_.sampleEpochCommands;
      so.checkerShards = opts_.checkerShards;
      so.collectorThreads = opts_.collectorThreads;
      so.monitorCertifier = opts_.monitorCertifier;
      so.monitorRingCapacity = opts_.monitorRingCapacity;
      so.monitorPoll = opts_.monitorPoll;
      so.snapshotDir = opts_.snapshotDir;
      // The injected defects go to exactly one (sampled) shard so the
      // self-tests' conviction counts are deterministic.
      if (s == 0) {
        so.injectBug = opts_.injectBug;
        so.injectXShardBug = opts_.injectCrossShardBug;
      }
    }
    std::vector<ClientLane*> shardLanes;
    shardLanes.reserve(opts_.clients);
    for (auto& lane : lanes_[s]) shardLanes.push_back(lane.get());
    shards_.push_back(std::make_unique<Shard>(so, std::move(shardLanes)));
  }

  clients_.resize(opts_.clients);
  for (std::size_t c = 0; c < opts_.clients; ++c) {
    Client& cl = clients_[c];
    cl.serve_ = this;
    cl.lanes_.reserve(opts_.shards + 1);
    for (std::size_t s = 0; s < opts_.shards; ++s) {
      cl.lanes_.push_back(lanes_[s][c].get());
    }
    cl.lanes_.push_back(coordLanes_[c].get());  // index opts_.shards
    cl.inFlight_.assign(opts_.shards + 1, 0);
  }

  startedAt_ = std::chrono::steady_clock::now();
  pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(opts_.shards * opts_.executorsPerShard + 1));
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    Shard* shard = shards_[s].get();
    pool_->submit([shard] { shard->drainerLoop(); });
    for (std::size_t lane = 1; lane < opts_.executorsPerShard; ++lane) {
      pool_->submit([shard, lane] { shard->executorLoop(lane); });
    }
  }
  Coordinator* coord = coordinator_.get();
  pool_->submit([coord] { coord->run(); });
}

JungleServe::~JungleServe() { shutdown(); }

JungleServe::Client& JungleServe::client(std::size_t i) {
  JUNGLE_CHECK(i < clients_.size());
  return clients_[i];
}

bool JungleServe::Client::trySubmit(const Command& c) {
  JUNGLE_CHECK(c.nKeys >= 1 && c.nKeys <= kMaxTxnKeys);
  JungleServe& sv = *serve_;
  const std::size_t shard = sv.shardOf(c.keys[0]);
  bool cross = false;
  for (std::size_t i = 0; i < c.nKeys; ++i) {
    JUNGLE_CHECK(c.keys[i] < sv.opts_.numKeys);
    if (sv.shardOf(c.keys[i]) != shard) cross = true;
  }
  const Command* toPush = &c;
  Command demoted;
  std::size_t laneIdx = shard;
  if (c.kind == CmdKind::kTxnX) {
    if (cross) {
      laneIdx = sv.opts_.shards;  // the coordinator lane
    } else {
      // Every key on one shard: demote to kTxn, fast local path — no 2PC,
      // byte-identical to submitting kTxn directly.
      demoted = c;
      demoted.kind = CmdKind::kTxn;
      toPush = &demoted;
    }
  } else {
    // Only kTxnX may span shards (hash-slot constraint).
    JUNGLE_CHECK(!cross);
  }
  if (sv.stopped_.load(std::memory_order_acquire)) return false;
  ClientLane& lane = *lanes_[laneIdx];
  // Credit: responses we have not popped yet occupy response-ring slots,
  // so cap outstanding-per-lane at the ring capacity and the executor's
  // ack push can never find the ring full.
  if (inFlight_[laneIdx] >= lane.resp.capacity()) return false;
  if (!lane.cmd.tryPush(*toPush)) return false;
  ++inFlight_[laneIdx];
  ++submitted_;
  return true;
}

std::size_t JungleServe::Client::drainResponses(std::vector<CommandResult>& out) {
  std::size_t n = 0;
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    CommandResult r;
    while (lanes_[s]->resp.tryPop(r)) {
      out.push_back(r);
      JUNGLE_CHECK(inFlight_[s] > 0);
      --inFlight_[s];
      ++acked_;
      ++n;
    }
  }
  return n;
}

void JungleServe::shutdown() {
  if (finalized_) return;
  stopped_.store(true, std::memory_order_release);
  // Drain order: shards' exits are gated on the coordinator closing their
  // channels, and the coordinator finishes (and acks) every accepted
  // kTxnX before closing — so stopping everything at once is safe and no
  // accepted command is lost, even mid-2PC.
  for (auto& shard : shards_) shard->requestStop();
  coordinator_->requestStop();
  pool_->wait();
  const auto ended = std::chrono::steady_clock::now();
  for (auto& shard : shards_) shard->finalize();
  stats_.shards.clear();
  stats_.shards.reserve(shards_.size());
  for (auto& shard : shards_) stats_.shards.push_back(shard->stats());
  stats_.coordinator = coordinator_->stats();
  stats_.wallSeconds =
      std::chrono::duration<double>(ended - startedAt_).count();
  finalized_ = true;
}

const std::vector<monitor::MonitorViolation>& JungleServe::violations(
    std::size_t shard) const {
  JUNGLE_CHECK(shard < shards_.size());
  return shards_[shard]->violations();
}

std::size_t JungleServe::totalViolations() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->violations().size();
  return n;
}

Word JungleServe::finalValue(ObjectId key) const {
  JUNGLE_CHECK(finalized_);
  return shards_[shardOf(key)]->value(key);
}

}  // namespace jungle::serve
