#include "serve/service.hpp"

#include "common/check.hpp"

namespace jungle::serve {

JungleServe::JungleServe(const ServeOptions& opts) : opts_(opts) {
  JUNGLE_CHECK(opts_.shards >= 1);
  JUNGLE_CHECK(opts_.clients >= 1);
  JUNGLE_CHECK(opts_.numKeys >= opts_.shards);
  if (opts_.executorsPerShard == 0) opts_.executorsPerShard = 1;

  // Sampling plan: concentrate the service-wide budget on the fewest
  // shards whose full duty could carry it, then duty-cycle each.  E.g.
  // permille=10 (1%) over 4 shards -> 1 sampled shard at 40 permille of
  // its epochs; permille=500 -> 2 shards at full duty.
  if (opts_.samplePermille > 0) {
    const std::uint64_t p = opts_.samplePermille;
    const std::uint64_t s = opts_.shards;
    sampledShards_ = static_cast<std::size_t>((p * s + 999) / 1000);
    if (sampledShards_ > opts_.shards) sampledShards_ = opts_.shards;
    std::uint64_t duty = p * s / sampledShards_;
    if (duty > 1000) duty = 1000;
    if (duty == 0) duty = 1;
    dutyPermille_ = static_cast<unsigned>(duty);
  }

  lanes_.resize(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    lanes_[s].reserve(opts_.clients);
    for (std::size_t c = 0; c < opts_.clients; ++c) {
      lanes_[s].push_back(std::make_unique<ClientLane>(opts_.queueCapacity));
    }
  }

  shards_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    ShardOptions so;
    so.kind = opts_.kind;
    so.index = s;
    so.numShards = opts_.shards;
    so.numKeys = opts_.numKeys;
    so.executors = opts_.executorsPerShard;
    so.epochBatchLimit = opts_.epochBatchLimit;
    so.maxTxAttempts = opts_.maxTxAttempts;
    so.maxCommandRetries = opts_.maxCommandRetries;
    so.idlePoll = opts_.idlePoll;
    if (s < sampledShards_) {
      so.dutyPermille = dutyPermille_;
      so.windowEpochs = opts_.sampleWindowEpochs;
      so.monitoredEpochCommands = opts_.sampleEpochCommands;
      so.checkerShards = opts_.checkerShards;
      so.collectorThreads = opts_.collectorThreads;
      so.monitorRingCapacity = opts_.monitorRingCapacity;
      so.monitorPoll = opts_.monitorPoll;
      so.snapshotDir = opts_.snapshotDir;
      // The injected capture defect goes to exactly one monitor so the
      // self-test's conviction count is deterministic.
      if (s == 0) so.injectBug = opts_.injectBug;
    }
    std::vector<ClientLane*> shardLanes;
    shardLanes.reserve(opts_.clients);
    for (auto& lane : lanes_[s]) shardLanes.push_back(lane.get());
    shards_.push_back(std::make_unique<Shard>(so, std::move(shardLanes)));
  }

  clients_.resize(opts_.clients);
  for (std::size_t c = 0; c < opts_.clients; ++c) {
    Client& cl = clients_[c];
    cl.serve_ = this;
    cl.lanes_.reserve(opts_.shards);
    for (std::size_t s = 0; s < opts_.shards; ++s) {
      cl.lanes_.push_back(lanes_[s][c].get());
    }
    cl.inFlight_.assign(opts_.shards, 0);
  }

  startedAt_ = std::chrono::steady_clock::now();
  pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(opts_.shards * opts_.executorsPerShard));
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    Shard* shard = shards_[s].get();
    pool_->submit([shard] { shard->drainerLoop(); });
    for (std::size_t lane = 1; lane < opts_.executorsPerShard; ++lane) {
      pool_->submit([shard, lane] { shard->executorLoop(lane); });
    }
  }
}

JungleServe::~JungleServe() { shutdown(); }

JungleServe::Client& JungleServe::client(std::size_t i) {
  JUNGLE_CHECK(i < clients_.size());
  return clients_[i];
}

bool JungleServe::Client::trySubmit(const Command& c) {
  JUNGLE_CHECK(c.nKeys >= 1 && c.nKeys <= kMaxTxnKeys);
  JungleServe& sv = *serve_;
  const std::size_t shard = sv.shardOf(c.keys[0]);
  for (std::size_t i = 0; i < c.nKeys; ++i) {
    JUNGLE_CHECK(c.keys[i] < sv.opts_.numKeys);
    // Single-shard transactions only (hash-slot constraint).
    JUNGLE_CHECK(sv.shardOf(c.keys[i]) == shard);
  }
  if (sv.stopped_.load(std::memory_order_acquire)) return false;
  ClientLane& lane = *lanes_[shard];
  // Credit: responses we have not popped yet occupy response-ring slots,
  // so cap outstanding-per-lane at the ring capacity and the shard's ack
  // push can never find the ring full.
  if (inFlight_[shard] >= lane.resp.capacity()) return false;
  if (!lane.cmd.tryPush(c)) return false;
  ++inFlight_[shard];
  ++submitted_;
  return true;
}

std::size_t JungleServe::Client::drainResponses(std::vector<CommandResult>& out) {
  std::size_t n = 0;
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    CommandResult r;
    while (lanes_[s]->resp.tryPop(r)) {
      out.push_back(r);
      JUNGLE_CHECK(inFlight_[s] > 0);
      --inFlight_[s];
      ++acked_;
      ++n;
    }
  }
  return n;
}

void JungleServe::shutdown() {
  if (finalized_) return;
  stopped_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->requestStop();
  pool_->wait();
  const auto ended = std::chrono::steady_clock::now();
  for (auto& shard : shards_) shard->finalize();
  stats_.shards.clear();
  stats_.shards.reserve(shards_.size());
  for (auto& shard : shards_) stats_.shards.push_back(shard->stats());
  stats_.wallSeconds =
      std::chrono::duration<double>(ended - startedAt_).count();
  finalized_ = true;
}

const std::vector<monitor::MonitorViolation>& JungleServe::violations(
    std::size_t shard) const {
  JUNGLE_CHECK(shard < shards_.size());
  return shards_[shard]->violations();
}

std::size_t JungleServe::totalViolations() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->violations().size();
  return n;
}

Word JungleServe::finalValue(ObjectId key) const {
  JUNGLE_CHECK(finalized_);
  return shards_[shardOf(key)]->value(key);
}

}  // namespace jungle::serve
