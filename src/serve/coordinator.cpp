#include "serve/coordinator.hpp"

#include <thread>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "serve/shard.hpp"

namespace jungle::serve {

Coordinator::Coordinator(const CoordinatorOptions& opts,
                         std::vector<ClientLane*> lanes)
    : opts_(opts), lanes_(std::move(lanes)), popped_(lanes_.size(), 0) {
  JUNGLE_CHECK(opts_.shards >= 1);
  JUNGLE_CHECK(opts_.maxInFlight >= 1);
  JUNGLE_CHECK(!lanes_.empty());
  // Per transaction per shard at most one protocol message is in flight in
  // each direction (prepare is popped before the vote exists, the vote is
  // popped before the decide exists, ...), so rings sized to the in-flight
  // cap make every push below infallible; 2x is headroom, not necessity.
  channels_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    channels_.push_back(std::make_unique<XChannel>(2 * opts_.maxInFlight));
  }
  txns_.resize(opts_.maxInFlight);
  freeSlots_.reserve(opts_.maxInFlight);
  for (std::size_t i = opts_.maxInFlight; i > 0; --i) {
    freeSlots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

bool Coordinator::clientLanesEmpty() const {
  for (const ClientLane* lane : lanes_) {
    if (!lane->cmd.empty()) return false;
  }
  return true;
}

bool Coordinator::intake() {
  bool progress = false;
  while (!freeSlots_.empty()) {
    bool any = false;
    for (std::size_t c = 0; c < lanes_.size() && !freeSlots_.empty(); ++c) {
      Command cmd;
      if (!lanes_[c]->cmd.tryPop(cmd)) continue;
      any = progress = true;
      // The service demotes single-shard kTxnX to kTxn at submit; only
      // genuinely cross-shard transactions reach this lane.
      JUNGLE_CHECK(cmd.kind == CmdKind::kTxnX);
      const std::uint32_t slot = freeSlots_.back();
      freeSlots_.pop_back();
      XTxn& t = txns_[slot];
      t.live = true;
      t.client = c;
      t.seq = popped_[c]++;
      t.tag = cmd.tag;
      t.cmd = cmd;
      t.attempt = 0;
      t.nParticipants = 0;
      for (std::size_t i = 0; i < cmd.nKeys; ++i) {
        const auto s = static_cast<std::uint32_t>(cmd.keys[i] % opts_.shards);
        std::size_t j = 0;
        while (j < t.nParticipants && t.participants[j] != s) ++j;
        if (j == t.nParticipants) t.participants[t.nParticipants++] = s;
      }
      ++liveTxns_;
      sendPrepares(slot);
    }
    if (!any) break;
  }
  return progress;
}

void Coordinator::sendPrepares(std::uint32_t slot) {
  XTxn& t = txns_[slot];
  t.votesPending = t.nParticipants;
  t.donesPending = 0;
  t.anyNo = false;
  t.sum = 0;
  for (std::size_t p = 0; p < t.nParticipants; ++p) {
    t.voteYes[p] = false;
    XMsg m;
    m.kind = XMsg::Kind::kPrepare;
    m.txn = slot;
    m.nKeys = 0;
    for (std::size_t i = 0; i < t.cmd.nKeys; ++i) {
      if (t.cmd.keys[i] % opts_.shards != t.participants[p]) continue;
      m.keys[m.nKeys] = t.cmd.keys[i];
      m.deltas[m.nKeys] = t.cmd.vals[i];
      ++m.nKeys;
    }
    JUNGLE_CHECK(m.nKeys >= 1);
    JUNGLE_CHECK(channels_[t.participants[p]]->toShard.tryPush(m));
    ++stats_.prepares;
  }
}

bool Coordinator::pump() {
  bool progress = false;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    XMsg m;
    while (channels_[s]->toCoord.tryPop(m)) {
      progress = true;
      XTxn& t = txns_[m.txn];
      JUNGLE_CHECK(t.live);
      std::size_t p = 0;
      while (p < t.nParticipants && t.participants[p] != s) ++p;
      JUNGLE_CHECK(p < t.nParticipants);
      if (m.kind == XMsg::Kind::kVote) {
        JUNGLE_CHECK(t.votesPending > 0);
        --t.votesPending;
        if (m.flag) {
          t.voteYes[p] = true;
          t.sum += m.sum;
        } else {
          t.anyNo = true;
          ++stats_.voteNo;
        }
        if (t.votesPending == 0) decide(m.txn);
      } else {
        JUNGLE_CHECK(m.kind == XMsg::Kind::kDone);
        JUNGLE_CHECK(t.donesPending > 0);
        --t.donesPending;
        if (t.donesPending == 0) settle(m.txn);
      }
    }
  }
  return progress;
}

void Coordinator::decide(std::uint32_t slot) {
  XTxn& t = txns_[slot];
  const bool commit = !t.anyNo;
  // Commit goes to every participant (all voted YES); abort only to the
  // YES voters — a NO voter reserved nothing and is already out.
  for (std::size_t p = 0; p < t.nParticipants; ++p) {
    if (!t.voteYes[p]) continue;
    XMsg m;
    m.kind = XMsg::Kind::kDecide;
    m.txn = slot;
    m.flag = commit;
    JUNGLE_CHECK(channels_[t.participants[p]]->toShard.tryPush(m));
    ++t.donesPending;
  }
  if (t.donesPending == 0) settle(slot);  // every participant voted NO
}

void Coordinator::settle(std::uint32_t slot) {
  XTxn& t = txns_[slot];
  if (!t.anyNo) {
    ack(slot, CmdStatus::kOk, t.sum);
    return;
  }
  // Aborted round: bounded retry, mirroring the shards' command budget.
  // No explicit backoff — the next prepare lands at the participants'
  // *next* epoch boundaries, so a full epoch of other work spaces the
  // rounds apart naturally.
  if (t.attempt + 1 >= opts_.maxCommandRetries) {
    ack(slot, CmdStatus::kFailed, 0);
    return;
  }
  ++t.attempt;
  ++stats_.retries;
  sendPrepares(slot);
}

void Coordinator::ack(std::uint32_t slot, CmdStatus status, Word value) {
  XTxn& t = txns_[slot];
  CommandResult r;
  r.seq = t.seq;
  r.value = value;
  r.tag = t.tag;
  r.status = status;
  // Never full: the client's credit scheme caps outstanding commands per
  // coordinator lane at the ring capacity.
  JUNGLE_CHECK(lanes_[t.client]->resp.tryPush(r));
  ++stats_.txns;
  if (status == CmdStatus::kOk) {
    ++stats_.committed;
  } else {
    ++stats_.failed;
  }
  t.live = false;
  freeSlots_.push_back(slot);
  JUNGLE_CHECK(liveTxns_ > 0);
  --liveTxns_;
}

void Coordinator::run() {
  Backoff idle;
  std::uint32_t idleRounds = 0;
  for (;;) {
    bool progress = intake();
    progress = pump() || progress;
    if (!progress) {
      if (stop_.load(std::memory_order_acquire) && liveTxns_ == 0 &&
          clientLanesEmpty()) {
        break;
      }
      if (++idleRounds > 64) {
        std::this_thread::sleep_for(opts_.idlePoll);
      } else {
        idle.pause();
      }
      continue;
    }
    idleRounds = 0;
    idle.reset();
  }
  // No further message will ever be pushed: let the shards' drainers
  // retire (shard exit is gated on this close + an empty channel).
  for (auto& ch : channels_) {
    ch->closed.store(true, std::memory_order_release);
  }
}

}  // namespace jungle::serve
