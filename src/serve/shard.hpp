// One shard of the jungle_serve KV service: a slice of the keyspace, its
// own TmRuntime, and an epoch-batched execution engine.
//
// Keys are striped across shards (key mod numShards); the shard stores key
// k at local variable k / numShards of its private runtime, so consecutive
// zipfian hot keys land on distinct shards.  A drainer lane pops commands
// from every client's SPSC queue into an epoch batch, executes the batch
// (inline, or sliced across executor lanes for intra-shard contention),
// then pushes acknowledgments — FIFO per (client, shard) queue.
//
// Bounded retry-on-abort: each command's transaction body aborts itself
// once it has been invoked maxTxAttempts times (turning the runtime's
// unbounded internal retry into a bounded one), and the shard re-runs the
// whole command with backoff up to maxCommandRetries before acknowledging
// kFailed.  A kFailed command committed nothing — kTxn stays atomic.
//
// Sampled verification: a shard given a nonzero dutyPermille owns a
// TmMonitor and runs whole epochs through the monitored wrapper in
// windows, paced by a command budget (attachDue) so the monitored share
// of *commands* tracks the duty.  At every attach the drainer first emits
// the current value of every local key as blind writes through the wrapper
// (chunked transactions) — values changed while detached, and a monitored
// read of a value the checker never saw written would otherwise convict a
// correct TM.  Whole-epoch granularity keeps the sampled sub-history
// closed: within a window every access to this shard's keys is recorded,
// so a conviction is sound; violations on unsampled epochs (or shards) are
// invisible by construction — the sampling caveat DESIGN.md §11 documents.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "monitor/monitor.hpp"
#include "serve/command.hpp"
#include "serve/command_queue.hpp"
#include "serve/coordinator.hpp"
#include "serve/stats.hpp"
#include "sim/memory_policy.hpp"
#include "tm/runtime.hpp"

namespace jungle::serve {

/// The pair of SPSC rings connecting one client to one shard.  The client
/// side produces commands and consumes results; the shard side is the
/// single consumer/producer on the other ends.
struct ClientLane {
  explicit ClientLane(std::size_t capacity) : cmd(capacity), resp(capacity) {}
  SpscRing<Command> cmd;
  SpscRing<CommandResult> resp;
};

struct ShardOptions {
  TmKind kind = TmKind::kTl2Weak;
  std::size_t index = 0;
  std::size_t numShards = 1;
  std::size_t numKeys = 1024;
  std::size_t executors = 1;
  std::size_t epochBatchLimit = 1024;
  int maxTxAttempts = 8;
  int maxCommandRetries = 4;
  std::chrono::microseconds idlePoll{50};
  /// Monitored-epoch duty cycle in permille of this shard's epochs; 0
  /// disables sampling (no TmMonitor is constructed at all).
  unsigned dutyPermille = 0;
  std::size_t windowEpochs = 16;
  /// Batch-size cap for monitored epochs.  Monitored epochs run slower,
  /// so client queues back up under them and uncapped epochs balloon to
  /// epochBatchLimit — making every window windowEpochs * epochBatchLimit
  /// commands regardless of duty.  The cap bounds a window's command cost
  /// so the attachDue regulator can actually hit the duty target.
  std::size_t monitoredEpochCommands = 128;
  /// Checker shards of the attached monitor (sharded_checker.hpp).
  /// Default 1: the service already partitions the keyspace, and within
  /// one service shard at percent-level duty a single stream checker
  /// keeps up while staying complete — K > 1 re-introduces cross-shard
  /// projection (and joiner/placement volume) for ingest parallelism
  /// this sampled path does not need.
  std::size_t checkerShards = 1;
  /// Collector ingest workers of the attached monitor (tree merge when
  /// > 1; monitor.hpp).
  unsigned collectorThreads = 1;
  /// TMS2 incremental certifier of the attached monitor (monitor.hpp).
  bool monitorCertifier = true;
  std::size_t monitorRingCapacity = 1 << 15;
  /// Collector poll interval of the attached monitor.  Service epochs are
  /// batched, so conviction latency is epoch-grained anyway; a coarse poll
  /// keeps the (always-running) collector thread off the executors' cores
  /// during detached windows.  The capture rings are sized to absorb a
  /// whole monitored window between polls.
  std::chrono::microseconds monitorPoll{1000};
  std::size_t resyncChunk = 32;
  monitor::InjectedBug injectBug = monitor::InjectedBug::kNone;
  /// Plant the cross-shard atomicity defect: the first commit-decision
  /// this shard applies while boundary-monitored is silently reverted
  /// beneath the capture layer (commit on shard A, drop on shard B) so
  /// the sampled stack can prove it convicts broken 2PC.  Self-test only.
  bool injectXShardBug = false;
  std::string snapshotDir;
  /// Cross-shard 2PC channel to the coordinator; null when the service
  /// runs without one.  The drainer services it at epoch boundaries and
  /// will not exit until the coordinator closes it.
  XChannel* coordChannel = nullptr;
};

class Shard {
 public:
  /// `lanes[c]` is the lane of client c; pointers must outlive the shard.
  Shard(const ShardOptions& opts, std::vector<ClientLane*> lanes);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Lane entry points, each run on its own pool worker.  Lane 0 is the
  /// drainer (and executor of slice 0); lanes 1..executors-1 wait for
  /// epoch slices.
  void drainerLoop();
  void executorLoop(std::size_t lane);

  /// Begin graceful drain: the drainer keeps running epochs until every
  /// client queue is empty, then exits (and releases the executor lanes).
  void requestStop() { stop_.store(true, std::memory_order_release); }

  /// After the lane tasks have returned: stops the monitor (if any) and
  /// freezes stats()/violations().
  void finalize();

  const ShardServeStats& stats() const { return stats_; }
  const std::vector<monitor::MonitorViolation>& violations() const;

  /// Current committed value of `key` (which must belong to this shard).
  /// Only meaningful while the shard is quiescent (after finalize, or
  /// before the loops start).
  Word value(ObjectId key) const;

  std::size_t localVars() const { return localVars_; }
  bool sampled() const { return mon_ != nullptr; }

  /// Attach regulator: a detached shard re-attaches the monitor once the
  /// monitored share of executed commands has decayed to the duty target.
  /// Budgeting by commands (not epochs) matters because epochs are
  /// dynamically sized — monitored epochs run slower, queues back up, and
  /// an epoch-counted duty cycle would oversample by whatever factor the
  /// monitored epochs balloon.  Pure; exposed for tests.
  static bool attachDue(std::uint64_t monitoredCmds, std::uint64_t totalCmds,
                        unsigned dutyPermille) {
    return monitoredCmds * 1000 <=
           static_cast<std::uint64_t>(dutyPermille) * totalCmds;
  }

 private:
  struct Segment {
    std::size_t client;
    std::size_t first;
    std::size_t count;
    std::uint64_t seqBase;
  };

  /// Per-executor-lane counters, padded so concurrent lanes don't share a
  /// line; folded into stats_ at finalize.
  struct alignas(kCacheLine) LaneCounters {
    std::uint64_t serviceRetries = 0;
  };

  std::size_t localVar(ObjectId key) const {
    JUNGLE_DCHECK(key % numShards_ == index_ && key < numKeys_);
    return key / numShards_;
  }

  /// One participant slice of an undecided cross-shard transaction: the
  /// deferred-update buffer (writes not yet visible) plus the key
  /// reservation that holds from the YES vote to the decision.
  struct PreparedSlice {
    std::uint32_t txn = 0;   // coordinator slot id
    std::uint8_t nKeys = 0;  // distinct local vars touched
    std::size_t vars[kMaxTxnKeys] = {0, 0, 0, 0};
    Word oldVals[kMaxTxnKeys] = {0, 0, 0, 0};  // prepare-time reads
    Word newVals[kMaxTxnKeys] = {0, 0, 0, 0};  // buffered writes
  };

  std::size_t drainBatch(std::size_t limit);
  /// Epoch-boundary 2PC servicing (coordinator.hpp): drain the channel,
  /// vote on prepares, apply/release decisions; returns only when no
  /// prepared slice is left undecided (blocking further epochs while it
  /// waits — the reservation discipline that makes kTxnX serializable).
  void serviceCoordinator();
  void handlePrepare(const XMsg& m);
  void handleDecide(const XMsg& m);
  /// Boundary 2PC work must flow through the monitored wrapper exactly
  /// when an epoch would: same attach-window rules as nextEpochMonitored,
  /// so the sampled sub-history stays closed over this shard's slices.
  bool boundaryMonitored() const;
  TmRuntime& boundaryRuntime();
  /// Drainer exit gate: the coordinator has closed our channel and every
  /// message in it has been consumed (no channel counts as drained).
  bool coordinatorDrained() const;
  /// Pure read of the regulator state: would the next (nonempty) epoch run
  /// monitored?  The drainer calls this before draining to size the batch;
  /// runEpoch re-derives it and commits the state transition.
  bool nextEpochMonitored() const;
  bool allQueuesEmpty() const;
  void runEpoch(std::size_t n);
  void executeRange(TmRuntime& rt, std::size_t lane, std::size_t lo,
                    std::size_t hi);
  CommandResult executeOne(TmRuntime& rt, ProcessId pid, const Command& c,
                           LaneCounters& lc);
  Word runBody(TxContext& tx, const Command& c) const;
  void resync();
  void pushResponses(std::size_t n);
  void releaseExecutors();

  ShardOptions opts_;
  std::size_t index_;
  std::size_t numShards_;
  std::size_t numKeys_;
  std::size_t executors_;
  std::size_t localVars_;

  NativeMemory mem_;
  std::unique_ptr<TmRuntime> inner_;
  std::unique_ptr<monitor::TmMonitor> mon_;  // null unless sampled

  std::vector<ClientLane*> lanes_;
  std::vector<std::uint64_t> popped_;  // per client; drainer-owned

  std::vector<Command> batch_;
  std::vector<CommandResult> results_;
  std::vector<Segment> segs_;
  std::vector<Word> resyncVals_;
  std::vector<LaneCounters> laneCounters_;

  // Epoch hand-off to executor lanes (unused when executors == 1).
  std::mutex mu_;
  std::condition_variable work_;
  std::condition_variable done_;
  std::uint64_t epochGen_ = 0;
  std::size_t remaining_ = 0;
  std::size_t epochSize_ = 0;
  TmRuntime* epochRt_ = nullptr;
  bool executorsReleased_ = false;

  // Undecided cross-shard slices (drainer-owned; tiny — bounded by the
  // coordinator's in-flight cap, typically 0 or 1).
  std::vector<PreparedSlice> prepared_;
  bool xBugFired_ = false;

  std::atomic<bool> stop_{false};
  bool monitoredLive_ = false;
  std::uint64_t windowLeft_ = 0;  // monitored epochs left in this window
  std::uint64_t cmdsSeen_ = 0;    // commands executed (all epochs)
  ShardServeStats stats_;
  std::vector<monitor::MonitorViolation> noViolations_;
};

}  // namespace jungle::serve
