// Two-phase-commit coordinator for cross-shard transactions (kTxnX).
//
// The service routes every multi-shard kTxnX to this coordinator, which
// runs deferred-update 2PC over the participant shards:
//
//   PREPARE  The coordinator splits the command's (key, delta) list into
//            per-shard slices and pushes one XMsg::kPrepare per
//            participant onto that shard's coordinator channel.  The
//            shard services its channel at epoch boundaries — the points
//            where it is quiescent (executor lanes parked, no command
//            mid-flight) — executes the slice's reads in a local TM
//            transaction, BUFFERS the writes (deferred update: nothing
//            becomes visible), reserves the slice's keys, and votes.  A
//            shard votes NO only on real conflict (a key already reserved
//            by an undecided transaction) or an exhausted maxTxAttempts
//            budget — commit stays progressive.
//
//   DECIDE   Once every vote is in, the coordinator broadcasts
//            kDecide(commit) iff all votes were YES, else kDecide(abort)
//            to the YES voters (NO voters reserved nothing).  On commit
//            the shard applies its buffered writes as one blind-write TM
//            transaction and releases the reservation; on abort it just
//            releases.  Either way it acknowledges with kDone, and when
//            every kDone is in the coordinator acks the client: kOk with
//            the summed prepare-time reads, or — after `maxCommandRetries`
//            abort-and-retry rounds — kFailed with nothing committed
//            anywhere.  An acked kTxnX is therefore all-or-nothing across
//            shards.
//
// Between its YES vote and the decision a shard runs no epochs (it keeps
// servicing its channel, voting on further prepares), so reserved keys
// are never touched by concurrent commands: the transaction holds all its
// reservations from prepare to post-decision apply on every participant —
// two-phase locking at epoch granularity, hence serializable.  The scheme
// is deadlock-free because votes never wait on other transactions
// (conflicting prepares vote NO immediately) and the coordinator decides
// each transaction as soon as its own votes arrive; a blocked shard's
// decision therefore needs nothing further from that shard.  DESIGN.md
// §11 documents the protocol and the epoch-boundary alignment choice.
//
// Channel discipline mirrors the client lanes: per-shard SPSC ring pairs
// sized to the coordinator's in-flight cap, so every protocol push is
// infallible (checked, not handled).  Shutdown: requestStop() lets the
// coordinator finish every accepted transaction — shards stay alive until
// the coordinator closes their channels — so graceful drain loses no
// acknowledgment and leaves no prepared-undecided slice behind.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/command.hpp"
#include "serve/command_queue.hpp"
#include "serve/stats.hpp"

namespace jungle::serve {

struct ClientLane;

/// One message of the coordinator <-> shard protocol.  POD, fixed size,
/// moved by raw copy through the SPSC channel rings.
struct XMsg {
  enum class Kind : std::uint8_t {
    kPrepare,  // coordinator -> shard: read + buffer + reserve, then vote
    kVote,     // shard -> coordinator: yes + partial sum, or no
    kDecide,   // coordinator -> shard: commit (apply buffer) or abort
    kDone,     // shard -> coordinator: decision applied, reservation freed
  };
  Kind kind = Kind::kPrepare;
  /// kVote: YES; kDecide: commit.
  bool flag = false;
  std::uint8_t nKeys = 0;
  /// Coordinator transaction slot id (stable across retry rounds).
  std::uint32_t txn = 0;
  ObjectId keys[kMaxTxnKeys] = {0, 0, 0, 0};
  Word deltas[kMaxTxnKeys] = {0, 0, 0, 0};
  /// kVote(YES): sum of the slice's prepare-time reads.
  Word sum = 0;
};

/// The SPSC ring pair connecting the coordinator to one shard's drainer.
struct XChannel {
  explicit XChannel(std::size_t capacity)
      : toShard(capacity), toCoord(capacity) {}
  SpscRing<XMsg> toShard;  // producer: coordinator; consumer: drainer
  SpscRing<XMsg> toCoord;  // producer: drainer; consumer: coordinator
  /// Set (release) by the coordinator after its last push, once it will
  /// never message this shard again; the drainer may exit only when this
  /// is set and toShard is drained.
  std::atomic<bool> closed{false};
};

struct CoordinatorOptions {
  std::size_t shards = 1;
  /// Concurrent kTxnX transactions in some 2PC phase; also sizes the
  /// channel rings so protocol pushes cannot meet a full ring.
  std::size_t maxInFlight = 256;
  /// Abort-and-retry rounds before acking kFailed (same knob and
  /// semantics as the shards' command retry budget).
  int maxCommandRetries = 4;
  std::chrono::microseconds idlePoll{50};
};

class Coordinator {
 public:
  /// `lanes[c]` is client c's coordinator lane; pointers must outlive the
  /// coordinator.  Channels are created here, one per shard, and handed
  /// to the shards by the service.
  Coordinator(const CoordinatorOptions& opts, std::vector<ClientLane*> lanes);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  XChannel& channel(std::size_t shard) { return *channels_[shard]; }

  /// The coordinator loop; runs on its own pool worker until stopped and
  /// fully drained, then closes every shard channel and returns.
  void run();

  /// Begin graceful drain: finish every accepted transaction (the client
  /// lanes are drained to empty first), ack it, then exit.  Callers must
  /// have stopped submitting.
  void requestStop() { stop_.store(true, std::memory_order_release); }

  /// Valid after run() has returned.
  const CoordinatorStats& stats() const { return stats_; }

 private:
  /// One in-flight cross-shard transaction (a slot; `live` gates reuse).
  struct XTxn {
    bool live = false;
    std::size_t client = 0;
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
    Command cmd;
    int attempt = 0;
    /// Participant shards, derived from cmd's keys (deduplicated).
    std::uint32_t participants[kMaxTxnKeys];
    /// Per participant: voted YES this round (holds a reservation, so it
    /// must see the decision; NO voters are already out).
    bool voteYes[kMaxTxnKeys] = {false, false, false, false};
    std::uint8_t nParticipants = 0;
    std::uint8_t votesPending = 0;
    std::uint8_t donesPending = 0;
    bool anyNo = false;
    Word sum = 0;
  };

  bool intake();
  bool pump();
  void sendPrepares(std::uint32_t slot);
  void decide(std::uint32_t slot);
  void settle(std::uint32_t slot);
  void ack(std::uint32_t slot, CmdStatus status, Word value);
  bool clientLanesEmpty() const;

  CoordinatorOptions opts_;
  std::vector<ClientLane*> lanes_;              // per client
  std::vector<std::uint64_t> popped_;           // per client; seq numbering
  std::vector<std::unique_ptr<XChannel>> channels_;  // per shard
  std::vector<XTxn> txns_;                      // maxInFlight slots
  std::vector<std::uint32_t> freeSlots_;
  std::size_t liveTxns_ = 0;
  std::atomic<bool> stop_{false};
  CoordinatorStats stats_;
};

}  // namespace jungle::serve
