// Telemetry for the jungle_serve service: per-shard execution counters
// plus (for sampled shards) the attached monitor's own statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "monitor/monitor.hpp"

namespace jungle::serve {

struct ShardServeStats {
  // Epoch engine.
  std::uint64_t epochs = 0;
  std::uint64_t monitoredEpochs = 0;
  /// Commands executed through the monitored wrapper (the honest sampled
  /// coverage: epochs are dynamically sized, so the epoch-level duty cycle
  /// alone does not determine the command-level fraction).
  std::uint64_t monitoredCommands = 0;
  /// Blind-write resynchronization transactions emitted at monitor-window
  /// attach (see service.hpp: they re-establish every key's current value
  /// in the sampled stream so the checker never sees an unexplainable
  /// read).
  std::uint64_t resyncTxs = 0;
  // Commands, by kind and outcome.
  std::uint64_t commands = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t rmws = 0;
  std::uint64_t txns = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;  // retry budget exhausted, acked kFailed
  /// Service-level re-runs after a transaction exhausted its in-TM attempt
  /// budget (each re-run backs off before re-entering the TM).
  std::uint64_t serviceRetries = 0;
  /// Conflict aborts reported by the shard's runtime (includes the
  /// attempt-budget aborts the service itself injects).
  std::uint64_t tmAborts = 0;
  // Cross-shard (kTxnX) participation: the 2PC slices this shard served
  // at its epoch boundaries (serve/coordinator.hpp).
  std::uint64_t xPrepares = 0;  // prepare requests received
  std::uint64_t xVoteNo = 0;    // refused: key conflict or attempt budget
  std::uint64_t xCommits = 0;   // commit decisions applied
  std::uint64_t xAborts = 0;    // abort decisions released
  /// Slices silently un-applied by the planted cross-shard atomicity
  /// defect (the --inject-bug-xshard self-test; 0 in any honest run).
  std::uint64_t xBugDrops = 0;
  // Sampled verification.
  bool sampled = false;
  std::size_t violations = 0;
  /// Valid only when `sampled` (zeroed otherwise).
  monitor::MonitorStats monitor;
};

/// Telemetry of the 2PC coordinator (serve/coordinator.hpp).  A kTxnX
/// acked by the coordinator is counted here, not in any shard's command
/// counters (the shards count only the protocol slices they served).
struct CoordinatorStats {
  std::uint64_t txns = 0;  // kTxnX commands acked (committed + failed)
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;  // retry budget exhausted, acked kFailed
  /// Abort-and-retry rounds (a transaction some participant voted NO on,
  /// re-prepared from scratch).
  std::uint64_t retries = 0;
  std::uint64_t prepares = 0;  // prepare messages sent, all rounds
  std::uint64_t voteNo = 0;    // NO votes received
};

struct ServeStats {
  std::vector<ShardServeStats> shards;
  CoordinatorStats coordinator;
  double wallSeconds = 0.0;

  std::uint64_t totalCommands() const {
    std::uint64_t n = coordinator.txns;
    for (const auto& s : shards) n += s.commands;
    return n;
  }
  std::uint64_t totalCommitted() const {
    std::uint64_t n = coordinator.committed;
    for (const auto& s : shards) n += s.committed;
    return n;
  }
  std::uint64_t totalFailed() const {
    std::uint64_t n = coordinator.failed;
    for (const auto& s : shards) n += s.failed;
    return n;
  }
  std::uint64_t totalTmAborts() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.tmAborts;
    return n;
  }
  std::size_t totalViolations() const {
    std::size_t n = 0;
    for (const auto& s : shards) n += s.violations;
    return n;
  }
};

}  // namespace jungle::serve
