// Built-in load generator for jungle_serve: a YCSB-flavored open-loop
// driver with one thread per client, a shared zipfian key sampler
// (common/zipf.hpp), and a configurable get/put/rmw/txn mix.
//
// Multi-key transactions draw their first key freely and align the rest to
// the same shard's residue class (key mod shards), honoring the fast local
// path's hash-slot constraint while still following the skewed key
// popularity — except that a `crossShardPct` fraction of them is issued as
// kTxnX with the second key forced onto a different shard, exercising the
// 2PC coordinator.  Submission is credit-limited: when a lane refuses a
// command, the client drains responses and backs off (counted in
// fullRetries — the bench's queue-pressure gauge).  After the op budget or
// duration expires, each client settles: drains until acked == submitted,
// so a LoadReport always describes a fully-acknowledged run.
#pragma once

#include <array>
#include <cstdint>

#include "common/histogram.hpp"
#include "serve/service.hpp"

namespace jungle::serve {

struct LoadOptions {
  /// Zipfian skew over the key space; 0 = uniform.
  double zipfTheta = 0.0;
  /// Operation mix in percent; the remainder after gets + rmws + txns is
  /// blind puts.
  unsigned readPct = 95;
  unsigned rmwPct = 0;
  unsigned txnPct = 0;
  std::size_t txnKeys = 2;
  /// Percent of the txn mix issued as cross-shard kTxnX (keys drawn from
  /// >= 2 shards, routed through the 2PC coordinator).  0 keeps the
  /// generated command stream byte-identical to a build without the
  /// coordinator path — no extra RNG draws happen.
  unsigned crossShardPct = 0;
  /// Per-client op budget; 0 = run until `durationSeconds` elapses.
  std::uint64_t opsPerClient = 100000;
  double durationSeconds = 0.0;
  std::uint64_t seed = 1;
  /// Drain responses every this many submissions (amortizes the pops).
  std::uint64_t drainEvery = 64;
};

struct LoadReport {
  std::uint64_t submitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  /// Submissions refused by a full lane or exhausted credit.
  std::uint64_t fullRetries = 0;
  double seconds = 0.0;
  double opsPerSec = 0.0;
  /// End-to-end command latency (submit to drained ack, microseconds) per
  /// command type, indexed by CmdKind — log2 buckets merged across all
  /// clients; query p50/p95/p99 via Log2Histogram::percentile.  Latency
  /// is measured through the client's batched drain cadence
  /// (LoadOptions::drainEvery), which it deliberately includes: it is the
  /// latency an open-loop client actually observes.  Stamped on a 1-in-8
  /// command sample — a clock read rivals the per-command pipeline cost,
  /// so exhaustive stamping would depress the measured throughput.
  std::array<Log2Histogram, kCmdKindCount> latencyUs;
};

/// Drives every client of `serve` from its own thread until the budget is
/// spent, then settles all acknowledgments.  Does not shut the service
/// down — callers can run several loads back to back.
LoadReport runLoad(JungleServe& serve, const LoadOptions& opts);

}  // namespace jungle::serve
