#include "serve/load_gen.hpp"

#include <array>
#include <chrono>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/zipf.hpp"

namespace jungle::serve {
namespace {

struct ClientTally {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t fullRetries = 0;
  std::array<Log2Histogram, kCmdKindCount> latencyUs;  // indexed by CmdKind
};

class ClientDriver {
 public:
  ClientDriver(JungleServe& serve, JungleServe::Client& client,
               const LoadOptions& opts, const Zipfian& zipf,
               std::uint64_t seed)
      : serve_(serve),
        client_(client),
        opts_(opts),
        zipf_(zipf),
        rng_(seed),
        numKeys_(serve.options().numKeys),
        shards_(serve.options().shards),
        epoch_(std::chrono::steady_clock::now()) {
    resp_.reserve(256);
  }

  ClientTally run() {
    const bool timed = opts_.opsPerClient == 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts_.durationSeconds));
    for (std::uint64_t op = 0; !timed || !expired_;) {
      if (!timed && op >= opts_.opsPerClient) break;
      // Check the clock only occasionally; it is serializing.
      if (timed && (op & 1023) == 0 &&
          std::chrono::steady_clock::now() >= deadline) {
        expired_ = true;
        break;
      }
      submitWithBackoff(makeCommand());
      ++op;
      if ((op % opts_.drainEvery) == 0) drain();
    }
    settle();
    return tally_;
  }

 private:
  Command makeCommand() {
    Command c;
    const auto pick = static_cast<unsigned>(rng_.below(100));
    if (pick < opts_.readPct) {
      c.kind = CmdKind::kGet;
    } else if (pick < opts_.readPct + opts_.rmwPct) {
      c.kind = CmdKind::kRmw;
    } else if (pick < opts_.readPct + opts_.rmwPct + opts_.txnPct) {
      // Cross-shard draw only when enabled, so at crossShardPct = 0 the
      // RNG consumption — and hence the whole generated stream — is
      // byte-identical to a run without the coordinator path.
      c.kind = (opts_.crossShardPct > 0 &&
                rng_.below(100) < opts_.crossShardPct)
                   ? CmdKind::kTxnX
                   : CmdKind::kTxn;
    } else {
      c.kind = CmdKind::kPut;
    }
    // Tag: submit timestamp (us since this driver started) in the high
    // bits, command kind in the low three — echoed in the ack, so latency
    // needs no client-side in-flight table.  Stamped on a 1-in-8 sample:
    // a clock read costs ~90 ns here, comparable to the whole per-command
    // pipeline budget, so stamping every command measurably depresses the
    // throughput it is meant to characterize.  tag = 0 marks "unstamped".
    c.tag = (seq_++ & 7) == 0
                ? (nowUs() << 3) | static_cast<std::uint64_t>(c.kind)
                : 0;
    c.keys[0] = static_cast<ObjectId>(zipf_.next(rng_));
    c.vals[0] = 1 + rng_.below(64);
    if (c.kind == CmdKind::kTxn || c.kind == CmdKind::kTxnX) {
      std::size_t want = opts_.txnKeys;
      if (want < 1) want = 1;
      if (want > kMaxTxnKeys) want = kMaxTxnKeys;
      c.nKeys = static_cast<std::uint8_t>(want);
      const std::uint64_t shard = c.keys[0] % shards_;
      for (std::size_t i = 1; i < want; ++i) {
        std::uint64_t k = zipf_.next(rng_);
        if (c.kind == CmdKind::kTxn) {
          // Align each extra draw to the first key's shard (hash-slot
          // constraint) while keeping the zipfian popularity profile.
          k = k - (k % shards_) + shard;
          if (k >= numKeys_) k -= shards_;
        } else if (i == 1 && shards_ > 1) {
          // Guarantee the transaction actually spans shards: force the
          // second key off the first key's shard (later keys draw free).
          while (k % shards_ == shard) k = (k + 1) % numKeys_;
        }
        c.keys[i] = static_cast<ObjectId>(k);
        c.vals[i] = 1 + rng_.below(64);
      }
    }
    return c;
  }

  void submitWithBackoff(const Command& c) {
    Backoff backoff;
    while (!client_.trySubmit(c)) {
      ++tally_.fullRetries;
      drain();
      backoff.pause();
    }
    ++tally_.submitted;
  }

  void drain() {
    resp_.clear();
    if (client_.drainResponses(resp_) == 0) return;
    const std::uint64_t now = nowUs();
    for (const CommandResult& r : resp_) {
      if (r.status == CmdStatus::kOk) {
        ++tally_.committed;
      } else {
        ++tally_.failed;
      }
      if (r.tag == 0) continue;  // unstamped (latency sampling)
      const std::uint64_t sent = r.tag >> 3;
      tally_.latencyUs[r.tag & 7].record(now > sent ? now - sent : 0);
    }
  }

  void settle() {
    Backoff backoff;
    while (client_.acked() < client_.submitted()) {
      resp_.clear();
      const std::size_t got = client_.drainResponses(resp_);
      if (got == 0) {
        backoff.pause();
        continue;
      }
      const std::uint64_t now = nowUs();
      for (const CommandResult& r : resp_) {
        if (r.status == CmdStatus::kOk) {
          ++tally_.committed;
        } else {
          ++tally_.failed;
        }
        if (r.tag == 0) continue;  // unstamped (latency sampling)
        const std::uint64_t sent = r.tag >> 3;
        tally_.latencyUs[r.tag & 7].record(now > sent ? now - sent : 0);
      }
    }
  }

  std::uint64_t nowUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  JungleServe& serve_;
  JungleServe::Client& client_;
  const LoadOptions& opts_;
  const Zipfian& zipf_;
  Rng rng_;
  std::uint64_t numKeys_;
  std::uint64_t shards_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<CommandResult> resp_;
  std::uint64_t seq_ = 0;
  ClientTally tally_;
  bool expired_ = false;
};

}  // namespace

LoadReport runLoad(JungleServe& serve, const LoadOptions& opts) {
  JUNGLE_CHECK(opts.readPct + opts.rmwPct + opts.txnPct <= 100);
  JUNGLE_CHECK(opts.crossShardPct <= 100);
  JUNGLE_CHECK(opts.opsPerClient > 0 || opts.durationSeconds > 0.0);
  const std::size_t clients = serve.options().clients;
  const Zipfian zipf(serve.options().numKeys, opts.zipfTheta);

  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientDriver driver(serve, serve.client(c), opts, zipf,
                          opts.seed * 0x9e3779b97f4a7c15ULL + c + 1);
      tallies[c] = driver.run();
    });
  }
  for (auto& t : threads) t.join();
  const auto ended = std::chrono::steady_clock::now();

  LoadReport report;
  for (const ClientTally& t : tallies) {
    report.submitted += t.submitted;
    report.committed += t.committed;
    report.failed += t.failed;
    report.fullRetries += t.fullRetries;
    for (std::size_t k = 0; k < report.latencyUs.size(); ++k) {
      report.latencyUs[k].merge(t.latencyUs[k]);
    }
  }
  report.acked = report.committed + report.failed;
  report.seconds = std::chrono::duration<double>(ended - start).count();
  report.opsPerSec =
      report.seconds > 0.0
          ? static_cast<double>(report.acked) / report.seconds
          : 0.0;
  return report;
}

}  // namespace jungle::serve
