// JungleServe: a sharded transactional KV service over the library's TM
// runtimes — the "production-scale" composition ROADMAP.md points at.
//
// N shards stripe the keyspace (key mod shards), each with a private
// TmRuntime of the configured kind and an epoch-batched execution engine
// (shard.hpp).  Clients talk to shards through per-(client, shard) SPSC
// command/response rings with a credit scheme: a client may have at most
// ring-capacity commands outstanding per shard, which makes the shard's
// acknowledgment push wait-free and bounds memory.  All threads come from
// one common/thread_pool.hpp pool (shards * executorsPerShard workers,
// plus one for the 2PC coordinator).
//
// Cross-shard transactions: kTxnX commands whose keys span shards route to
// a per-service coordinator lane (one extra lane per client, same credit
// scheme) and run deferred-update 2PC over the participant shards
// (coordinator.hpp); a kTxnX whose keys share a shard is demoted to kTxn
// at submit and takes the fast local path.  An acked kTxnX is atomic
// across shards, and graceful drain still loses nothing.
//
// Sampled runtime verification: samplePermille of total service traffic is
// replayed through monitor/instrumented_runtime.hpp into the sharded
// stream checker.  The service concentrates the sampling budget on
// ceil(permille * shards / 1000) shards and duty-cycles whole epochs on
// each (see shard.hpp for why whole epochs + blind-write resync keep
// convictions sound).  `injectBug` arms the first sampled shard's monitor
// with a deterministic capture defect for the end-to-end self-test.
//
// Shutdown contract: stop submitting, then shutdown().  Every command
// whose trySubmit returned true is executed and acknowledged before
// shutdown() returns — graceful drain loses nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/command.hpp"
#include "serve/coordinator.hpp"
#include "serve/shard.hpp"
#include "serve/stats.hpp"

namespace jungle::serve {

struct ServeOptions {
  TmKind kind = TmKind::kTl2Weak;
  std::size_t shards = 4;
  /// Executor lanes per shard.  1 keeps each shard single-threaded (no
  /// intra-shard conflicts; the right choice on few cores); > 1 slices
  /// each epoch across lanes, exercising the TM under real contention.
  std::size_t executorsPerShard = 1;
  std::size_t clients = 2;
  std::size_t numKeys = 1 << 13;
  /// Per-(client, shard) ring capacity = per-lane credit limit.
  std::size_t queueCapacity = 1 << 12;
  std::size_t epochBatchLimit = 1024;
  int maxTxAttempts = 8;
  int maxCommandRetries = 4;
  std::chrono::microseconds idlePoll{50};
  /// Permille of total service traffic to verify (10 = 1%); 0 = off.
  unsigned samplePermille = 0;
  std::size_t sampleWindowEpochs = 16;
  /// Batch cap for monitored epochs (see shard.hpp).
  std::size_t sampleEpochCommands = 128;
  /// Checker shards per sampled monitor (see shard.hpp for why the
  /// default is the complete, serial K = 1).
  std::size_t checkerShards = 1;
  /// Collector ingest workers per sampled monitor (see shard.hpp).
  unsigned collectorThreads = 1;
  /// TMS2 incremental certifier in the sampled monitors (monitor.hpp);
  /// off = engine-only escalation baseline.
  bool monitorCertifier = true;
  std::size_t monitorRingCapacity = 1 << 15;
  /// Collector poll interval of the sampled monitors (see shard.hpp).
  std::chrono::microseconds monitorPoll{1000};
  monitor::InjectedBug injectBug = monitor::InjectedBug::kNone;
  /// Plant the cross-shard atomicity defect on the first sampled shard
  /// (shard.hpp: injectXShardBug) for the 2PC conviction self-test.
  bool injectCrossShardBug = false;
  std::string snapshotDir;
  /// Concurrent kTxnX transactions the 2PC coordinator admits
  /// (coordinator.hpp); also sizes its protocol channels.
  std::size_t coordinatorInFlight = 256;
};

class JungleServe {
 public:
  explicit JungleServe(const ServeOptions& opts);
  ~JungleServe();

  JungleServe(const JungleServe&) = delete;
  JungleServe& operator=(const JungleServe&) = delete;

  const ServeOptions& options() const { return opts_; }
  std::size_t shardOf(ObjectId key) const { return key % opts_.shards; }

  /// One client handle; each handle must be driven by one thread at a
  /// time.  Handles stay usable for drainResponses after shutdown().
  class Client {
   public:
    /// Routes by keys[0].  kTxn (and single-key kinds) must keep every
    /// key on one shard (checked); kTxnX may span shards — a multi-shard
    /// kTxnX routes to the coordinator lane, a single-shard one is
    /// demoted to kTxn and takes the fast local path.  False when the
    /// target lane is out of credit or the service is shutting down —
    /// back off and retry, or drain responses.
    bool trySubmit(const Command& c);

    /// Pops every pending acknowledgment (all shards) into `out`.
    std::size_t drainResponses(std::vector<CommandResult>& out);

    std::uint64_t submitted() const { return submitted_; }
    std::uint64_t acked() const { return acked_; }
    std::uint64_t outstanding() const { return submitted_ - acked_; }

   private:
    friend class JungleServe;
    JungleServe* serve_ = nullptr;
    /// Per shard, plus the coordinator lane at index `shards`.
    std::vector<ClientLane*> lanes_;
    std::vector<std::uint64_t> inFlight_;  // per lane; credit bookkeeping
    std::uint64_t submitted_ = 0;
    std::uint64_t acked_ = 0;
  };

  Client& client(std::size_t i);

  /// Graceful drain: every accepted command is executed and acknowledged,
  /// monitors are stopped, stats frozen.  Idempotent; also run by the
  /// destructor.  Callers must have stopped submitting first.
  void shutdown();

  /// Valid after shutdown().
  const ServeStats& stats() const { return stats_; }
  const std::vector<monitor::MonitorViolation>& violations(
      std::size_t shard) const;
  std::size_t totalViolations() const;

  /// Committed value of `key`, read from the owning shard's runtime.
  /// Only meaningful after shutdown().
  Word finalValue(ObjectId key) const;

  /// The shard a key routes to (tests poke schedule/stats directly).
  const Shard& shard(std::size_t i) const { return *shards_[i]; }

  /// Sampling plan actually in force (derived from samplePermille).
  std::size_t sampledShards() const { return sampledShards_; }
  unsigned dutyPermille() const { return dutyPermille_; }

 private:
  ServeOptions opts_;
  std::size_t sampledShards_ = 0;
  unsigned dutyPermille_ = 0;
  // lanes_[shard][client]; shards and clients hold raw pointers into this.
  std::vector<std::vector<std::unique_ptr<ClientLane>>> lanes_;
  // coordLanes_[client]: the kTxnX lane to the 2PC coordinator.
  std::vector<std::unique_ptr<ClientLane>> coordLanes_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Client> clients_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stopped_{false};
  bool finalized_ = false;
  std::chrono::steady_clock::time_point startedAt_;
  ServeStats stats_;
};

}  // namespace jungle::serve
