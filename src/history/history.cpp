#include "history/history.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace jungle {

const char* opTypeName(OpType t) {
  switch (t) {
    case OpType::kStart:
      return "start";
    case OpType::kCommit:
      return "commit";
    case OpType::kAbort:
      return "abort";
    case OpType::kCommand:
      return "command";
  }
  return "?";
}

std::string OpInstance::toString() const {
  std::string s = "((";
  if (isCommand()) {
    s += cmdKindName(cmd.kind);
    s += ", x";
    s += std::to_string(obj);
    s += ", ";
    s += (cmd.kind == CmdKind::kDequeue && cmd.value == kQueueEmpty)
             ? "empty"
             : std::to_string(cmd.value);
    if (!cmd.deps.empty()) {
      s += ", {";
      for (std::size_t i = 0; i < cmd.deps.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(cmd.deps[i]);
      }
      s += "}";
    }
  } else {
    s += opTypeName(type);
  }
  s += "), p";
  s += std::to_string(pid);
  s += ", ";
  s += std::to_string(id);
  s += ")";
  return s;
}

History::History(std::vector<OpInstance> ops) : ops_(std::move(ops)) {
  idToPos_.reserve(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    auto [it, inserted] = idToPos_.emplace(ops_[i].id, i);
    JUNGLE_CHECK_MSG(inserted, "duplicate operation identifier in history");
  }
}

std::size_t History::positionOf(OpId id) const {
  auto it = idToPos_.find(id);
  JUNGLE_CHECK_MSG(it != idToPos_.end(), "unknown operation identifier");
  return it->second;
}

History History::subsequence(const std::vector<std::size_t>& positions) const {
  std::vector<OpInstance> out;
  out.reserve(positions.size());
  for (std::size_t pos : positions) {
    JUNGLE_CHECK(pos < ops_.size());
    out.push_back(ops_[pos]);
  }
  return History(std::move(out));
}

History History::projectProcess(ProcessId p) const {
  std::vector<OpInstance> out;
  for (const auto& inst : ops_) {
    if (inst.pid == p) out.push_back(inst);
  }
  return History(std::move(out));
}

std::vector<ProcessId> History::processes() const {
  std::vector<ProcessId> out;
  std::unordered_set<ProcessId> seen;
  for (const auto& inst : ops_) {
    if (seen.insert(inst.pid).second) out.push_back(inst.pid);
  }
  return out;
}

std::vector<ObjectId> History::objects() const {
  std::vector<ObjectId> out;
  std::unordered_set<ObjectId> seen;
  for (const auto& inst : ops_) {
    if (inst.isCommand() && seen.insert(inst.obj).second)
      out.push_back(inst.obj);
  }
  return out;
}

std::string History::toString() const {
  std::string s;
  for (const auto& inst : ops_) {
    s += inst.toString();
    s += "\n";
  }
  return s;
}

HistoryBuilder& HistoryBuilder::append(OpInstance inst) {
  nextAuto_ = std::max<OpId>(nextAuto_, inst.id + 1);
  ops_.push_back(std::move(inst));
  return *this;
}

OpId HistoryBuilder::resolveId(OpId requested) {
  if (requested != 0) {
    nextAuto_ = std::max<OpId>(nextAuto_, requested + 1);
    return requested;
  }
  return nextAuto_++;
}

HistoryBuilder& HistoryBuilder::start(ProcessId p, OpId id) {
  ops_.push_back(opStart(p, resolveId(id)));
  return *this;
}

HistoryBuilder& HistoryBuilder::commit(ProcessId p, OpId id) {
  ops_.push_back(opCommit(p, resolveId(id)));
  return *this;
}

HistoryBuilder& HistoryBuilder::abort(ProcessId p, OpId id) {
  ops_.push_back(opAbort(p, resolveId(id)));
  return *this;
}

HistoryBuilder& HistoryBuilder::read(ProcessId p, ObjectId x, Word v,
                                     OpId id) {
  ops_.push_back(opRead(p, x, v, resolveId(id)));
  return *this;
}

HistoryBuilder& HistoryBuilder::write(ProcessId p, ObjectId x, Word v,
                                      OpId id) {
  ops_.push_back(opWrite(p, x, v, resolveId(id)));
  return *this;
}

HistoryBuilder& HistoryBuilder::cmd(ProcessId p, ObjectId x, Command c,
                                    OpId id) {
  ops_.push_back(opCmd(p, x, std::move(c), resolveId(id)));
  return *this;
}

History HistoryBuilder::build() {
  // Copies so the builder stays usable (tests frequently build variants).
  return History(ops_);
}

HistoryAnalysis::HistoryAnalysis(const History& h) : h_(&h) { analyze(); }

void HistoryAnalysis::analyze() {
  const History& h = *h_;
  txOf_.assign(h.size(), -1);

  // Per-process scan building transactions and flagging nesting errors.
  std::unordered_map<ProcessId, int> openTx;  // pid -> index into txns_
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    const OpInstance& inst = h[pos];
    auto it = openTx.find(inst.pid);
    const bool inside = it != openTx.end();
    switch (inst.type) {
      case OpType::kStart:
        if (inside) {
          wellFormed_ = false;
          error_ = "nested transaction: start inside a transaction (op " +
                   std::to_string(inst.id) + ")";
          return;
        }
        txns_.push_back(Transaction{inst.pid, {pos}, false, false});
        openTx[inst.pid] = static_cast<int>(txns_.size()) - 1;
        txOf_[pos] = static_cast<int>(txns_.size()) - 1;
        break;
      case OpType::kCommit:
      case OpType::kAbort:
        if (!inside) {
          wellFormed_ = false;
          error_ = "unmatched " +
                   std::string(opTypeName(inst.type)) + " (op " +
                   std::to_string(inst.id) + ")";
          return;
        }
        txns_[it->second].positions.push_back(pos);
        (inst.type == OpType::kCommit ? txns_[it->second].committed
                                      : txns_[it->second].aborted) = true;
        txOf_[pos] = it->second;
        openTx.erase(it);
        break;
      case OpType::kCommand:
        if (inside) {
          txns_[it->second].positions.push_back(pos);
          txOf_[pos] = it->second;
        }
        break;
    }
  }

  // Dependence well-formedness: every dependency of an operation must be an
  // earlier operation of the same process (§3.1).
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    const OpInstance& inst = h[pos];
    if (!inst.isCommand()) continue;
    for (OpId dep : inst.cmd.deps) {
      if (!h.hasOp(dep) || h.positionOf(dep) >= pos ||
          h[h.positionOf(dep)].pid != inst.pid) {
        wellFormed_ = false;
        error_ = "operation " + std::to_string(inst.id) +
                 " depends on op " + std::to_string(dep) +
                 " which does not precede it in the same process";
        return;
      }
    }
  }
}

std::optional<std::size_t> HistoryAnalysis::transactionOf(
    std::size_t pos) const {
  JUNGLE_CHECK(pos < txOf_.size());
  if (txOf_[pos] < 0) return std::nullopt;
  return static_cast<std::size_t>(txOf_[pos]);
}

bool HistoryAnalysis::realTimePrecedes(std::size_t i, std::size_t j) const {
  JUNGLE_CHECK(i < h_->size() && j < h_->size());
  const int ti = txOf_[i];
  const int tj = txOf_[j];
  // Clause 1: i ∈ T, j ∈ T', T completed, T's last instance precedes T''s
  // first instance.
  if (ti >= 0 && tj >= 0 && ti != tj) {
    const Transaction& a = txns_[static_cast<std::size_t>(ti)];
    const Transaction& b = txns_[static_cast<std::size_t>(tj)];
    if (a.completed() && a.lastPos() < b.firstPos()) return true;
  }
  // Clause 2: same process, program order, at least one transactional.
  if (h_->at(i).pid == h_->at(j).pid && i < j && (ti >= 0 || tj >= 0)) {
    return true;
  }
  return false;
}

std::vector<std::pair<OpId, OpId>> HistoryAnalysis::realTimePairs() const {
  // ≺h is a partial order, hence transitively closed; the two clauses of
  // realTimePrecedes are its generators (the paper's Fig. 3 lists (1, 9),
  // which only arises by transitivity through p1's transaction).
  const std::size_t n = h_->size();
  std::vector<std::vector<bool>> rel(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && realTimePrecedes(i, j)) rel[i][j] = true;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!rel[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (rel[k][j]) rel[i][j] = true;
      }
    }
  }
  std::vector<std::pair<OpId, OpId>> out;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rel[i][j]) out.emplace_back(h_->at(i).id, h_->at(j).id);
    }
  }
  return out;
}

std::size_t HistoryAnalysis::countCommitted() const {
  std::size_t n = 0;
  for (const auto& t : txns_) n += t.committed ? 1 : 0;
  return n;
}

}  // namespace jungle
