// Sequential histories, visible(), and legality (§2).
//
// These are the *reference* (oracle) implementations: direct transcriptions
// of the paper's definitions, quadratic where the definitions are.  The
// opacity checkers use a faster incremental scheme and are property-tested
// against these oracles.
#pragma once

#include <vector>

#include "history/history.hpp"
#include "spec/spec_map.hpp"

namespace jungle {

/// A history s is sequential if no transaction overlaps another transaction
/// or a non-transactional operation instance.
bool isSequential(const History& s);

/// SGLA's weaker notion (§6.2): transactions execute sequentially w.r.t.
/// each other, but non-transactional instances may interleave with them.
bool isTransactionallySequential(const History& s);

/// visible(s): longest subsequence of s without instances of non-committed
/// transactions, except a non-committed transaction followed by nothing.
History visible(const History& s);

/// s|x ∈ [[x]] for every object x.
bool isLegalHistory(const History& s, const SpecMap& specs);

/// Operation k is legal in s iff visible(prefix of s ending at k) is legal.
/// This checks that *every* operation is legal in s (condition 3 of
/// parametrized opacity).
bool everyOperationLegal(const History& s, const SpecMap& specs);

/// s respects a (partial) order given as identifier pairs: whenever
/// (i, j) is in `order` and both appear in s, i precedes j in s.
bool respectsOrder(const History& s,
                   const std::vector<std::pair<OpId, OpId>>& order);

}  // namespace jungle
