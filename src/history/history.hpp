// Histories (§2): finite sequences of operation instances with unique
// identifiers, plus the structural analysis used throughout the library —
// well-formedness, transaction extraction, the transactional/
// non-transactional distinction, and the real-time partial order ≺h.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "history/op_instance.hpp"

namespace jungle {

/// Immutable sequence of operation instances.  Use HistoryBuilder for
/// convenient construction with auto-assigned identifiers.
class History {
 public:
  History() = default;
  explicit History(std::vector<OpInstance> ops);

  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const OpInstance& at(std::size_t pos) const { return ops_[pos]; }
  const OpInstance& operator[](std::size_t pos) const { return ops_[pos]; }
  const std::vector<OpInstance>& ops() const { return ops_; }

  auto begin() const { return ops_.begin(); }
  auto end() const { return ops_.end(); }

  bool hasOp(OpId id) const { return idToPos_.contains(id); }
  /// Position of the instance with identifier `id`; CHECKs presence.
  std::size_t positionOf(OpId id) const;
  const OpInstance& op(OpId id) const { return ops_[positionOf(id)]; }

  /// New history containing only the given positions, in order.
  History subsequence(const std::vector<std::size_t>& positions) const;

  /// h|p: longest subsequence of instances issued by process p.
  History projectProcess(ProcessId p) const;

  /// All distinct process ids, in order of first appearance.
  std::vector<ProcessId> processes() const;

  /// All distinct object ids appearing in commands.
  std::vector<ObjectId> objects() const;

  std::string toString() const;

  friend bool operator==(const History& a, const History& b) {
    return a.ops_ == b.ops_;
  }

 private:
  std::vector<OpInstance> ops_;
  std::unordered_map<OpId, std::size_t> idToPos_;
};

/// Fluent construction; identifiers auto-assigned from 1 unless given.
class HistoryBuilder {
 public:
  HistoryBuilder& append(OpInstance inst);
  HistoryBuilder& start(ProcessId p, OpId id = 0);
  HistoryBuilder& commit(ProcessId p, OpId id = 0);
  HistoryBuilder& abort(ProcessId p, OpId id = 0);
  HistoryBuilder& read(ProcessId p, ObjectId x, Word v, OpId id = 0);
  HistoryBuilder& write(ProcessId p, ObjectId x, Word v, OpId id = 0);
  HistoryBuilder& cmd(ProcessId p, ObjectId x, Command c, OpId id = 0);

  /// Builds a history from the instances appended so far.  Non-destructive:
  /// the builder can keep extending and build again.
  History build();

 private:
  OpId resolveId(OpId requested);

  std::vector<OpInstance> ops_;
  OpId nextAuto_ = 1;
};

/// A transaction of a process (§2): a maximal start-delimited subsequence.
struct Transaction {
  ProcessId pid = 0;
  /// Positions of the transaction's instances in the history, ascending.
  std::vector<std::size_t> positions;
  bool committed = false;
  bool aborted = false;

  bool completed() const { return committed || aborted; }
  std::size_t firstPos() const { return positions.front(); }
  std::size_t lastPos() const { return positions.back(); }
};

/// Index of transactional structure and the real-time order over a history.
/// Construction never fails; query wellFormed() before trusting the rest.
class HistoryAnalysis {
 public:
  explicit HistoryAnalysis(const History& h);

  const History& history() const { return *h_; }

  bool wellFormed() const { return wellFormed_; }
  const std::string& wellFormednessError() const { return error_; }

  const std::vector<Transaction>& transactions() const { return txns_; }

  /// Index into transactions() for the instance at `pos`, or nullopt if the
  /// instance is non-transactional.
  std::optional<std::size_t> transactionOf(std::size_t pos) const;

  bool isTransactional(std::size_t pos) const {
    return txOf_[pos] >= 0;
  }

  /// i ≺h j on positions (§2): (1) whole-transaction real-time precedence,
  /// or (2) same-process program order with at least one transactional op.
  bool realTimePrecedes(std::size_t i, std::size_t j) const;

  /// All ≺h pairs as (identifier, identifier); mirrors the paper's examples.
  std::vector<std::pair<OpId, OpId>> realTimePairs() const;

  std::size_t countCommitted() const;

 private:
  void analyze();

  const History* h_;
  bool wellFormed_ = true;
  std::string error_;
  std::vector<Transaction> txns_;
  std::vector<int> txOf_;  // per position; -1 = non-transactional
};

}  // namespace jungle
