#include "history/sequential.hpp"

#include <unordered_map>

#include "common/check.hpp"

namespace jungle {

bool isSequential(const History& s) {
  HistoryAnalysis a(s);
  if (!a.wellFormed()) return false;
  for (const Transaction& t : a.transactions()) {
    // Contiguity: the transaction's instances occupy consecutive positions.
    if (t.lastPos() - t.firstPos() + 1 != t.positions.size()) return false;
  }
  return true;
}

bool isTransactionallySequential(const History& s) {
  HistoryAnalysis a(s);
  if (!a.wellFormed()) return false;
  const auto& txns = a.transactions();
  for (std::size_t ti = 0; ti < txns.size(); ++ti) {
    const Transaction& t = txns[ti];
    for (std::size_t pos = t.firstPos(); pos <= t.lastPos(); ++pos) {
      auto owner = a.transactionOf(pos);
      // Between start and last instance of T: either T's own instance or a
      // non-transactional one — never another transaction's instance.
      if (owner.has_value() && *owner != ti) return false;
    }
  }
  return true;
}

History visible(const History& s) {
  HistoryAnalysis a(s);
  std::vector<std::size_t> keep;
  for (std::size_t pos = 0; pos < s.size(); ++pos) {
    auto tx = a.transactionOf(pos);
    if (!tx.has_value()) {
      keep.push_back(pos);
      continue;
    }
    const Transaction& t = a.transactions()[*tx];
    if (t.committed) {
      keep.push_back(pos);
      continue;
    }
    // Non-committed T survives only if nothing follows its last instance.
    if (t.lastPos() == s.size() - 1) keep.push_back(pos);
  }
  return s.subsequence(keep);
}

bool isLegalHistory(const History& s, const SpecMap& specs) {
  // Replay each object's command subsequence against its spec.
  std::unordered_map<ObjectId, std::unique_ptr<SpecState>> states;
  for (const OpInstance& inst : s) {
    if (!inst.isCommand()) continue;
    auto it = states.find(inst.obj);
    if (it == states.end()) {
      it = states.emplace(inst.obj, specs.specFor(inst.obj).initial()).first;
    }
    if (!it->second->apply(inst.cmd)) return false;
  }
  return true;
}

bool everyOperationLegal(const History& s, const SpecMap& specs) {
  // Direct transcription of the definition: for each prefix ending at k,
  // visible(prefix) must be legal.  O(n^2 · cost(legal)); oracle use only.
  std::vector<std::size_t> prefixPositions;
  for (std::size_t k = 0; k < s.size(); ++k) {
    prefixPositions.push_back(k);
    History prefix = s.subsequence(prefixPositions);
    if (!isLegalHistory(visible(prefix), specs)) return false;
  }
  return true;
}

bool respectsOrder(const History& s,
                   const std::vector<std::pair<OpId, OpId>>& order) {
  for (const auto& [i, j] : order) {
    if (!s.hasOp(i) || !s.hasOp(j)) continue;
    if (s.positionOf(i) >= s.positionOf(j)) return false;
  }
  return true;
}

}  // namespace jungle
