// Operation instances (§2).
//
// An operation instance (o, p, k) is an operation o ∈ Ô = O ∪ {start,
// commit, abort} issued by process p with unique identifier k.  Operations
// in O are command-object pairs; the special operations delimit
// transactions and carry no command.
#pragma once

#include <string>

#include "common/types.hpp"
#include "spec/command.hpp"

namespace jungle {

enum class OpType : std::uint8_t { kStart, kCommit, kAbort, kCommand };

const char* opTypeName(OpType t);

struct OpInstance {
  OpType type = OpType::kCommand;
  /// Object the command acts on; kNoObject for start/commit/abort.
  ObjectId obj = kNoObject;
  /// The command; meaningful only when type == kCommand.
  Command cmd;
  ProcessId pid = 0;
  OpId id = 0;

  bool isCommand() const { return type == OpType::kCommand; }
  bool isStart() const { return type == OpType::kStart; }
  bool isCommit() const { return type == OpType::kCommit; }
  bool isAbort() const { return type == OpType::kAbort; }

  /// Paper notation, e.g. "((wr, x, 1), p0, 1)" or "((start), p1, 2)".
  std::string toString() const;

  friend bool operator==(const OpInstance& a, const OpInstance& b) {
    return a.type == b.type && a.obj == b.obj && a.pid == b.pid &&
           a.id == b.id && (!a.isCommand() || a.cmd == b.cmd);
  }
};

/// Factories mirroring the paper's notation.
inline OpInstance opStart(ProcessId p, OpId k) {
  return {OpType::kStart, kNoObject, {}, p, k};
}
inline OpInstance opCommit(ProcessId p, OpId k) {
  return {OpType::kCommit, kNoObject, {}, p, k};
}
inline OpInstance opAbort(ProcessId p, OpId k) {
  return {OpType::kAbort, kNoObject, {}, p, k};
}
inline OpInstance opCmd(ProcessId p, ObjectId x, Command c, OpId k) {
  return {OpType::kCommand, x, std::move(c), p, k};
}
inline OpInstance opRead(ProcessId p, ObjectId x, Word v, OpId k) {
  return opCmd(p, x, cmdRead(v), k);
}
inline OpInstance opWrite(ProcessId p, ObjectId x, Word v, OpId k) {
  return opCmd(p, x, cmdWrite(v), k);
}

}  // namespace jungle
