#include "theorems/explorer_workloads.hpp"

#include <memory>

#include "common/rng.hpp"
#include "memmodel/models.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/versioned_write_tm.hpp"
#include "tm/write_as_tx_tm.hpp"

namespace jungle::theorems {

namespace {

/// The Figure-1 program: one transaction writing x and y; one thread
/// reading both with plain loads.
template <template <class> class TmT>
Program figure1Program() {
  return [](ScheduledMemory& mem) {
    auto tm = std::make_shared<TmT<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      (void)tm->ntRead(t, 0);
      (void)tm->ntRead(t, 1);
    });
    return scripts;
  };
}

/// Theorem-1-case-2 shape: the transaction reads x then writes y while an
/// interferer writes x and reads y non-transactionally.
Program caseTwoProgram() {
  return [](ScheduledMemory& mem) {
    auto tm = std::make_shared<GlobalLockTm<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      (void)tm->txRead(t, 0);
      tm->txWrite(t, 1, 5);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      tm->ntWrite(t, 0, 7);
      (void)tm->ntRead(t, 1);
    });
    return scripts;
  };
}

}  // namespace

std::vector<ExplorerWorkload> figure5Workloads() {
  std::vector<ExplorerWorkload> ws;
  ws.push_back({"fig1-global-lock", 2, 16, figure1Program<GlobalLockTm>(),
                &idealizedModel(), /*spinFree=*/true});
  ws.push_back({"fig1-write-as-tx", 2, 16, figure1Program<WriteAsTxTm>(),
                &alphaModel(), /*spinFree=*/true});
  ws.push_back({"fig1-versioned-write", 2, 16,
                figure1Program<VersionedWriteTm>(), &alphaModel(),
                /*spinFree=*/true});
  // Strong atomicity instruments the plain reads as mini-transactions
  // that retry on conflict, so schedules can spin past any step bound.
  ws.push_back({"fig1-strong-atomicity", 2, 16,
                figure1Program<StrongAtomicityTm>(), &scModel(),
                /*spinFree=*/false});
  ws.push_back({"case2-global-lock", 2, 16, caseTwoProgram(),
                &idealizedModel(), /*spinFree=*/true});
  return ws;
}

ExplorerWorkload referenceReductionWorkload() {
  constexpr std::size_t kOpsPerThread = 8;
  Program program = [](ScheduledMemory& mem) {
    std::vector<ThreadScript> scripts;
    for (std::size_t p = 0; p < 2; ++p) {
      scripts.push_back([&mem, p] {
        const auto pid = static_cast<ProcessId>(p);
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
          if (i % 4 == 3) {
            // Shared variable: thread 0 publishes, thread 1 observes —
            // the only cross-thread dependence in the program.
            if (p == 0) {
              const Word v = static_cast<Word>(i);
              const OpId op = mem.beginOp(pid, OpType::kCommand, 0,
                                          cmdWrite(v));
              mem.store(pid, 0, v);
              mem.endOp(pid, op, OpType::kCommand, 0, cmdWrite(v));
            } else {
              const OpId op = mem.beginOp(pid, OpType::kCommand, 0,
                                          cmdRead(0));
              const Word v = mem.load(pid, 0);
              mem.endOp(pid, op, OpType::kCommand, 0, cmdRead(v));
            }
          } else {
            const auto obj = static_cast<ObjectId>(1 + p);
            const Word v = static_cast<Word>(10 * (p + 1) + i);
            const OpId op =
                mem.beginOp(pid, OpType::kCommand, obj, cmdWrite(v));
            mem.store(pid, static_cast<Addr>(obj), v);
            mem.endOp(pid, op, OpType::kCommand, obj, cmdWrite(v));
          }
        }
      });
    }
    return scripts;
  };
  return {"reference-reduction", 2, 4, std::move(program), nullptr,
          /*spinFree=*/true};
}

ExplorerWorkload generatedWorkload(std::uint64_t seed) {
  // Pre-draw every thread's plan so the program is a pure function of the
  // schedule.  Every operation performs exactly one memory access (starts
  // and commits touch a per-thread scratch word), so no marker lands in
  // the racy pre-block after a thread's first grant and runs are
  // loop-free.
  struct PlannedOp {
    enum Kind { kNtWrite, kNtRead, kTxStart, kTxWrite, kTxRead, kTxCommit };
    Kind kind;
    ObjectId obj = 0;
    Word val = 0;
  };
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  const std::size_t numThreads = 2 + rng.below(2);
  const std::size_t numVars = 1 + rng.below(2);

  std::vector<std::vector<PlannedOp>> plans(numThreads);
  for (std::size_t p = 0; p < numThreads; ++p) {
    const std::size_t actions = 2 + rng.below(2);
    for (std::size_t a = 0; a < actions; ++a) {
      const auto obj = static_cast<ObjectId>(rng.below(numVars));
      const Word val = static_cast<Word>(1 + rng.below(9));
      // The first action is always a plain access, guaranteeing the
      // thread's first operation carries a memory instruction.
      if (a > 0 && rng.chance(40, 100)) {
        plans[p].push_back({PlannedOp::kTxStart});
        const std::size_t len = 1 + rng.below(2);
        for (std::size_t i = 0; i < len; ++i) {
          const auto tobj = static_cast<ObjectId>(rng.below(numVars));
          const Word tval = static_cast<Word>(1 + rng.below(9));
          plans[p].push_back(rng.chance(50, 100)
                                 ? PlannedOp{PlannedOp::kTxWrite, tobj, tval}
                                 : PlannedOp{PlannedOp::kTxRead, tobj, 0});
        }
        plans[p].push_back({PlannedOp::kTxCommit});
      } else {
        plans[p].push_back(rng.chance(50, 100)
                               ? PlannedOp{PlannedOp::kNtWrite, obj, val}
                               : PlannedOp{PlannedOp::kNtRead, obj, 0});
      }
    }
  }

  const std::size_t words = numVars + numThreads;  // vars, then scratch
  Program program = [plans, numVars](ScheduledMemory& mem) {
    std::vector<ThreadScript> scripts;
    for (std::size_t p = 0; p < plans.size(); ++p) {
      scripts.push_back([&mem, plan = plans[p], numVars, p] {
        const auto pid = static_cast<ProcessId>(p);
        const auto scratch = static_cast<Addr>(numVars + p);
        for (const PlannedOp& op : plan) {
          switch (op.kind) {
            case PlannedOp::kTxStart: {
              const OpId id =
                  mem.beginOp(pid, OpType::kStart, kNoObject, {});
              (void)mem.load(pid, scratch);
              mem.markPoint(pid, id);
              mem.endOp(pid, id, OpType::kStart, kNoObject, {});
              break;
            }
            case PlannedOp::kTxCommit: {
              const OpId id =
                  mem.beginOp(pid, OpType::kCommit, kNoObject, {});
              mem.store(pid, scratch, 0);
              mem.markPoint(pid, id);
              mem.endOp(pid, id, OpType::kCommit, kNoObject, {});
              break;
            }
            case PlannedOp::kNtWrite:
            case PlannedOp::kTxWrite: {
              const Command c = cmdWrite(op.val);
              const OpId id = mem.beginOp(pid, OpType::kCommand, op.obj, c);
              mem.store(pid, static_cast<Addr>(op.obj), op.val);
              mem.markPoint(pid, id);
              mem.endOp(pid, id, OpType::kCommand, op.obj, c);
              break;
            }
            case PlannedOp::kNtRead:
            case PlannedOp::kTxRead: {
              const OpId id =
                  mem.beginOp(pid, OpType::kCommand, op.obj, cmdRead(0));
              const Word v = mem.load(pid, static_cast<Addr>(op.obj));
              mem.markPoint(pid, id);
              mem.endOp(pid, id, OpType::kCommand, op.obj, cmdRead(v));
              break;
            }
          }
        }
      });
    }
    return scripts;
  };
  return {"gen-" + std::to_string(seed), numThreads, words,
          std::move(program), nullptr, /*spinFree=*/true};
}

Program stressProgram(TmKind kind, const StressOptions& opts) {
  return [kind, opts](ScheduledMemory& mem) {
    std::shared_ptr<TmRuntime> tm =
        makeScheduledRuntime(kind, mem, opts.numVars, opts.numProcs);
    std::vector<ThreadScript> scripts;
    for (std::size_t p = 0; p < opts.numProcs; ++p) {
      // Mirrors runStressWorkload's worker exactly (same per-pid seeds),
      // so a fuzz seed reproduces the same logical workload whether it is
      // replayed on the recording or the scheduled memory.
      scripts.push_back([tm, opts, pid = static_cast<ProcessId>(p)] {
        Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + pid + 1);
        for (std::size_t a = 0; a < opts.actionsPerProc; ++a) {
          const bool tx = rng.chance(opts.pctTx, 100);
          if (tx) {
            const std::size_t len = 1 + rng.below(opts.txLen);
            struct Access {
              bool write;
              ObjectId obj;
              Word val;
            };
            std::vector<Access> accesses;
            for (std::size_t i = 0; i < len; ++i) {
              accesses.push_back(
                  {rng.chance(opts.pctWrite, 100),
                   static_cast<ObjectId>(rng.below(opts.numVars)),
                   static_cast<Word>(1 + rng.below(9))});
            }
            tm->transaction(pid, [&](TxContext& ctx) {
              for (const Access& acc : accesses) {
                if (acc.write) {
                  ctx.write(acc.obj, acc.val);
                } else {
                  (void)ctx.read(acc.obj);
                }
              }
            });
          } else {
            const ObjectId obj =
                static_cast<ObjectId>(rng.below(opts.numVars));
            if (rng.chance(opts.pctWrite, 100)) {
              tm->ntWrite(pid, obj, static_cast<Word>(1 + rng.below(9)));
            } else {
              (void)tm->ntRead(pid, obj);
            }
          }
        }
      });
    }
    return scripts;
  };
}

std::size_t stressWords(TmKind kind, const StressOptions& opts) {
  return runtimeMemoryWords(kind, opts.numVars);
}

}  // namespace jungle::theorems
