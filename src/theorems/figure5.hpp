// Executable versions of the paper's proof constructions (Figure 5).
//
// Each function builds the adversarial instruction trace from the proof of
// Lemma 1 / Theorem 1 (cases 1–4) / Theorem 2, machine-consistent by
// construction (validated in tests with traceMachineConsistent).  The
// theorem tests then verify the paper's claims mechanically:
//
//   * "bad" traces — producible by an uninstrumented TM lacking the
//     required instruction — admit NO corresponding parametrized-opaque
//     history for any model in the theorem's class;
//   * "good" counterpart traces — with the update/CAS the theorems demand,
//     or checked against models outside the class — DO admit one.
//
// Conventions: variable x is object 0 at address 0, y object 1 address 1;
// the global lock g lives at address 7; process ids and operation ids are
// chosen to match the figures where the paper fixes them.
#pragma once

#include "sim/instruction.hpp"

namespace jungle::theorems {

inline constexpr ObjectId kX = 0;
inline constexpr ObjectId kY = 1;
inline constexpr Addr kAx = 0;
inline constexpr Addr kAy = 1;
inline constexpr Addr kG = 7;  // global lock

/// Figure 5(a): committed transaction writes (wr, x, v) but executes NO
/// update instruction to a_x; a later uninstrumented read loads 0.
Trace lemma1BadTrace(Word v = 1);

/// Counterpart: the commit stores v to a_x; the read loads v.
Trace lemma1GoodTrace(Word v = 1);

/// Figure 5(b), Theorem 1 case 1 (M ∈ M^i_rr): p2's two independent reads
/// land between the transaction's updates of a_x and a_y.
Trace thm1Case1Trace(Word v1 = 1, Word v2 = 1);

/// Figure 5(c), Theorem 1 case 2 (M ∈ M_wr): p2's write of x then read of
/// y land between the transaction's read of x and its update of a_y.
Trace thm1Case2Trace(Word v2 = 7, Word v3 = 5);

/// Figure 5(d), Theorem 1 case 3 (M ∈ M^i_rw): p2 reads x between the
/// updates, then writes y twice (value, then 0) restoring it before the
/// transaction's CAS of a_y; afterwards an empty transaction and two reads
/// pin the final values.
Trace thm1Case3Trace(Word v1 = 3, Word v2 = 4, Word v4 = 9);

/// Dependence-annotated variant of case 3: p2's writes of y are
/// data-dependent on its read of x, extending the impossibility to
/// M^d_rw models (RMO, Alpha).
Trace thm1Case3DependentTrace(Word v1 = 3, Word v2 = 4, Word v4 = 9);

/// Theorem 1 case 4 (M ∈ M_ww): as case 3, but the transaction reads
/// x and y before writing them, and p2's first operation is a write of x.
Trace thm1Case4Trace(Word v3 = 3, Word v4 = 4, Word v5 = 5, Word v6 = 9);

/// Figure 5(e), Theorem 2: the transaction reads and writes x, writing
/// back with a plain STORE; p2's racy write of x is silently lost, and no
/// memory model can explain the outcome.
Trace thm2StoreBasedTrace(Word vPrime = 2, Word v1 = 5);

/// Counterpart: the write-back is a CAS, which fails against the racy
/// write — equivalent to the transaction's write being overwritten, which
/// is explainable.
Trace thm2CasBasedTrace(Word vPrime = 2, Word v1 = 5);

}  // namespace jungle::theorems
