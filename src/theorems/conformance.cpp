#include "theorems/conformance.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace jungle::theorems {

SearchLimits conformanceSearchLimits() {
  SearchLimits limits;
  limits.maxExpansions = 0;  // bounded by wall clock, not node counts
  limits.timeout = std::chrono::milliseconds(10'000);
  return limits;
}

ConformanceResult checkTracePopacity(const Trace& r, const MemoryModel& m,
                                     const SpecMap& specs,
                                     const SearchLimits& limits) {
  ConformanceResult res;
  res.canonical = canonicalHistory(r);
  const CheckResult canonical =
      checkParametrizedOpacity(res.canonical, m, specs, limits);
  if (canonical.satisfied) {
    res.ok = true;
    res.viaCanonical = true;
    return res;
  }
  EnumerationResult e =
      traceEnsuresParametrizedOpacity(r, m, specs, 2'000'000, limits);
  res.ok = e.satisfied;
  res.inconclusive = !e.satisfied && (e.cappedOut || e.checkerInconclusive ||
                                      canonical.inconclusive);
  return res;
}

ConformanceResult checkTraceSgla(const Trace& r, const MemoryModel& m,
                                 const SpecMap& specs,
                                 const SglaOptions& opts) {
  ConformanceResult res;
  res.canonical = canonicalHistory(r);
  const CheckResult canonical = checkSgla(res.canonical, m, specs, opts);
  if (canonical.satisfied) {
    res.ok = true;
    res.viaCanonical = true;
    return res;
  }
  bool sawInconclusive = canonical.inconclusive;
  EnumerationResult e = forEachCorrespondingHistory(r, [&](const History& h) {
    const CheckResult c = checkSgla(h, m, specs, opts);
    sawInconclusive |= c.inconclusive;
    return c.satisfied;
  });
  res.ok = e.satisfied;
  res.inconclusive = !e.satisfied && (e.cappedOut || sawInconclusive);
  return res;
}

ConformanceResult checkTraceCondition(const Trace& r, ConditionKind condition,
                                      const MemoryModel& m,
                                      const SpecMap& specs,
                                      const SearchLimits& limits) {
  if (condition == ConditionKind::kParametrizedOpacity) {
    // Keep the specialized enumeration path (pruned by the model).
    return checkTracePopacity(r, m, specs, limits);
  }
  ConformanceResult res;
  res.canonical = canonicalHistory(r);
  const CheckResult canonical =
      checkCondition(condition, res.canonical, m, specs, limits);
  if (canonical.satisfied) {
    res.ok = true;
    res.viaCanonical = true;
    return res;
  }
  bool sawInconclusive = canonical.inconclusive;
  EnumerationResult e = forEachCorrespondingHistory(r, [&](const History& h) {
    const CheckResult c = checkCondition(condition, h, m, specs, limits);
    sawInconclusive |= c.inconclusive;
    return c.satisfied;
  });
  res.ok = e.satisfied;
  res.inconclusive = !e.satisfied && (e.cappedOut || sawInconclusive);
  return res;
}

Trace runStressWorkload(TmRuntime& tm, RecordingMemory& mem,
                        const StressOptions& opts) {
  const Zipfian varDraw(opts.numVars, opts.zipfTheta);
  auto worker = [&](ProcessId pid) {
    Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + pid + 1);
    for (std::size_t a = 0; a < opts.actionsPerProc; ++a) {
      const bool tx = rng.chance(opts.pctTx, 100);
      if (tx) {
        const std::size_t len = 1 + rng.below(opts.txLen);
        // Pre-draw the access pattern so retries replay the same body.
        struct Access {
          bool write;
          ObjectId obj;
          Word val;
        };
        std::vector<Access> accesses;
        for (std::size_t i = 0; i < len; ++i) {
          accesses.push_back({rng.chance(opts.pctWrite, 100),
                              static_cast<ObjectId>(varDraw.next(rng)),
                              1 + rng.below(9)});
        }
        tm.transaction(pid, [&](TxContext& ctx) {
          for (const Access& acc : accesses) {
            if (acc.write) {
              ctx.write(acc.obj, acc.val);
            } else {
              (void)ctx.read(acc.obj);
            }
          }
        });
      } else {
        const ObjectId obj = static_cast<ObjectId>(varDraw.next(rng));
        if (rng.chance(opts.pctWrite, 100)) {
          tm.ntWrite(pid, obj, 1 + rng.below(9));
        } else {
          (void)tm.ntRead(pid, obj);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(opts.numProcs);
  for (std::size_t p = 0; p < opts.numProcs; ++p) {
    threads.emplace_back(worker, static_cast<ProcessId>(p));
  }
  for (auto& t : threads) t.join();
  return mem.trace();
}

ModelCheckReport modelCheckProgram(std::size_t numThreads, std::size_t words,
                                   const Program& program,
                                   const MemoryModel& model,
                                   const SpecMap& specs,
                                   const ExploreOptions& opts,
                                   std::size_t maxViolationSamples,
                                   ConditionKind condition) {
  ModelCheckReport report;
  std::mutex mu;  // the explorer may call the verifier concurrently
  report.stats = exploreSchedules(
      numThreads, words, program, opts, [&](const RunOutcome& out) {
        const ConformanceResult res =
            checkTraceCondition(out.trace, condition, model, specs);
        if (res.ok) return true;
        std::lock_guard<std::mutex> g(mu);
        if (res.inconclusive) {
          // Budget-capped negative: don't claim a violation.
          ++report.inconclusiveRuns;
          return true;
        }
        if (report.violations.size() < maxViolationSamples) {
          report.violations.emplace_back(out.schedule, res.canonical);
          if (std::getenv("JUNGLE_DUMP_TRACE") != nullptr) {
            std::fprintf(stderr, "=== violating trace ===\n%s=== end trace ===\n",
                         out.trace.toString().c_str());
          }
        }
        return false;
      });
  return report;
}

}  // namespace jungle::theorems
