// Litmus and stress workloads for the schedule-exploration strategies.
//
// Three families:
//
//   * figure5Workloads() — small fixed programs in the shape of the
//     paper's Figure 1/5 interference patterns, each paired with the
//     memory model its TM is proven (or observed) to pass.  These are the
//     strategy-equivalence litmus set: DFS and DPOR must agree on the
//     verdict, and — for the spin-free ones — on the exact set of
//     distinct canonical histories.
//
//   * generatedWorkload(seed) — deterministic raw-marker programs (no TM
//     algorithm, direct begin/point/end instrumentation) with a random
//     mix of transactional blocks and non-transactional accesses.  Every
//     operation contains exactly one memory access, so every marker rides
//     a scheduler turn and runs are loop-free: the run abstraction is a
//     pure function of the interleaving, which makes these the workhorse
//     of the DFS-vs-DPOR differential oracle.
//
//   * stressProgram(kind, opts) — the conformance stress workload of
//     theorems/conformance.hpp re-targeted at the scheduled memory, so
//     the fuzzer can drive real TM runtimes through explored or sampled
//     schedules.  TM spin loops mean runs may be cut by the step bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memmodel/memory_model.hpp"
#include "sim/exploration.hpp"
#include "theorems/conformance.hpp"
#include "tm/runtime.hpp"

namespace jungle::theorems {

struct ExplorerWorkload {
  std::string name;
  std::size_t numThreads = 0;
  std::size_t words = 0;
  Program program;
  /// Model under which every completed schedule must pass.
  const MemoryModel* passingModel = nullptr;
  /// No unbounded retry loops: every schedule completes within a modest
  /// step bound, so exact history-set equivalence across strategies is
  /// well-defined.
  bool spinFree = false;
};

/// The Figure-1/5-shaped litmus set over the live TM implementations.
std::vector<ExplorerWorkload> figure5Workloads();

/// Two threads, eight single-store operations each, mostly on private
/// variables with a shared variable every fourth operation.  DFS explores
/// C(16,8) = 12870 schedules; the dependence relation collapses most of
/// them, making this the reference program for the reduction-factor
/// acceptance check.
ExplorerWorkload referenceReductionWorkload();

/// Deterministic raw-marker program derived from `seed` (2–3 threads,
/// small variable pool, mixed transactional/non-transactional ops).
ExplorerWorkload generatedWorkload(std::uint64_t seed);

/// The runStressWorkload body as a schedulable Program over TM `kind`.
Program stressProgram(TmKind kind, const StressOptions& opts);
/// Memory words stressProgram(kind, opts) needs.
std::size_t stressWords(TmKind kind, const StressOptions& opts);

}  // namespace jungle::theorems
