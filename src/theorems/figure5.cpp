#include "theorems/figure5.hpp"

namespace jungle::theorems {

namespace {
constexpr ProcessId kP1 = 1;
constexpr ProcessId kP2 = 2;
}  // namespace

Trace lemma1BadTrace(Word v) {
  TraceBuilder b;
  // T = start; (wr, x, v); commit — no update instruction to a_x at all.
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdWrite(v));
  b.respond(kP1, 2, OpType::kCommand, kX, cmdWrite(v));
  b.invoke(kP1, 3, OpType::kCommit);
  b.store(kP1, 3, kG, 0);
  b.respond(kP1, 3, OpType::kCommit);
  // Uninstrumented read after the commit's response: loads the initial 0.
  b.ntRead(kP1, 4, kX, kAx, 0);
  return b.build();
}

Trace lemma1GoodTrace(Word v) {
  TraceBuilder b;
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdWrite(v));
  b.respond(kP1, 2, OpType::kCommand, kX, cmdWrite(v));
  b.invoke(kP1, 3, OpType::kCommit);
  b.store(kP1, 3, kAx, v);  // the update Lemma 1 requires
  b.store(kP1, 3, kG, 0);
  b.respond(kP1, 3, OpType::kCommit);
  b.ntRead(kP1, 4, kX, kAx, v);
  return b.build();
}

Trace thm1Case1Trace(Word v1, Word v2) {
  TraceBuilder b;
  // T of p1 writes x := v1 and y := v2; updates happen inside the commit.
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdWrite(v1));
  b.respond(kP1, 2, OpType::kCommand, kX, cmdWrite(v1));
  b.invoke(kP1, 3, OpType::kCommand, kY, cmdWrite(v2));
  b.respond(kP1, 3, OpType::kCommand, kY, cmdWrite(v2));
  b.invoke(kP1, 4, OpType::kCommit);
  b.cas(kP1, 4, kAx, 0, v1, true);  // ⟨update a_x, v1⟩
  // p2's uninstrumented reads slip between the two updates.
  b.ntRead(kP2, 5, kX, kAx, v1);  // sees the new x…
  b.ntRead(kP2, 6, kY, kAy, 0);   // …but the old y
  b.cas(kP1, 4, kAy, 0, v2, true);  // ⟨update a_y, v2⟩
  b.store(kP1, 4, kG, 0);
  b.respond(kP1, 4, OpType::kCommit);
  return b.build();
}

Trace thm1Case2Trace(Word v2, Word v3) {
  TraceBuilder b;
  // T of p1: (rd, x, 0); (wr, y, v2).  v3 ≠ 0 (the transaction's read).
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.load(kP1, 2, kAx, 0);
  b.respond(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.invoke(kP1, 3, OpType::kCommand, kY, cmdWrite(v2));
  b.respond(kP1, 3, OpType::kCommand, kY, cmdWrite(v2));
  b.invoke(kP1, 4, OpType::kCommit);
  // p2's uninstrumented write-then-read land just before the update of a_y.
  b.ntWrite(kP2, 5, kX, kAx, v3);
  b.ntRead(kP2, 6, kY, kAy, 0);
  b.cas(kP1, 4, kAy, 0, v2, true);
  b.store(kP1, 4, kG, 0);
  b.respond(kP1, 4, OpType::kCommit);
  return b.build();
}

namespace {

Trace case3Common(Word v1, Word v2, Word v4, bool dependentWrites) {
  TraceBuilder b;
  // T of p1 writes x := v1, y := v2.
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdWrite(v1));
  b.respond(kP1, 2, OpType::kCommand, kX, cmdWrite(v1));
  b.invoke(kP1, 3, OpType::kCommand, kY, cmdWrite(v2));
  b.respond(kP1, 3, OpType::kCommand, kY, cmdWrite(v2));
  b.invoke(kP1, 4, OpType::kCommit);
  b.cas(kP1, 4, kAx, 0, v1, true);
  // p2: read x (sees v1), write y := v4, write y := 0 — restoring y so the
  // transaction's CAS of a_y still succeeds.
  b.ntRead(kP2, 5, kX, kAx, v1);
  const Command w1 =
      dependentWrites ? cmdDdWrite(v4, {5}) : cmdWrite(v4);
  const Command w2 = dependentWrites ? cmdDdWrite(0, {5}) : cmdWrite(0);
  b.invoke(kP2, 6, OpType::kCommand, kY, w1);
  b.store(kP2, 6, kAy, v4);
  b.respond(kP2, 6, OpType::kCommand, kY, w1);
  b.invoke(kP2, 7, OpType::kCommand, kY, w2);
  b.store(kP2, 7, kAy, 0);
  b.respond(kP2, 7, OpType::kCommand, kY, w2);
  b.cas(kP1, 4, kAy, 0, v2, true);  // y was restored: the CAS succeeds
  b.store(kP1, 4, kG, 0);
  b.respond(kP1, 4, OpType::kCommit);
  // p2: empty transaction T' (pins real-time order), then the final reads.
  b.invoke(kP2, 8, OpType::kStart);
  b.cas(kP2, 8, kG, 0, kP2, true);
  b.respond(kP2, 8, OpType::kStart);
  b.invoke(kP2, 9, OpType::kCommit);
  b.store(kP2, 9, kG, 0);
  b.respond(kP2, 9, OpType::kCommit);
  b.ntRead(kP2, 10, kX, kAx, v1);
  b.ntRead(kP2, 11, kY, kAy, v2);
  return b.build();
}

}  // namespace

Trace thm1Case3Trace(Word v1, Word v2, Word v4) {
  return case3Common(v1, v2, v4, /*dependentWrites=*/false);
}

Trace thm1Case3DependentTrace(Word v1, Word v2, Word v4) {
  return case3Common(v1, v2, v4, /*dependentWrites=*/true);
}

Trace thm1Case4Trace(Word v3, Word v4, Word v5, Word v6) {
  TraceBuilder b;
  // T of p1: rd x 0; rd y 0; wr x v3; wr y v4.
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.load(kP1, 2, kAx, 0);
  b.respond(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.invoke(kP1, 3, OpType::kCommand, kY, cmdRead(0));
  b.load(kP1, 3, kAy, 0);
  b.respond(kP1, 3, OpType::kCommand, kY, cmdRead(0));
  b.invoke(kP1, 4, OpType::kCommand, kX, cmdWrite(v3));
  b.respond(kP1, 4, OpType::kCommand, kX, cmdWrite(v3));
  b.invoke(kP1, 5, OpType::kCommand, kY, cmdWrite(v4));
  b.respond(kP1, 5, OpType::kCommand, kY, cmdWrite(v4));
  b.invoke(kP1, 6, OpType::kCommit);
  b.cas(kP1, 6, kAx, 0, v3, true);
  // p2's three uninstrumented stores before the update of a_y: x := v5,
  // y := v6, y := 0 (restored).
  b.ntWrite(kP2, 7, kX, kAx, v5);
  b.ntWrite(kP2, 8, kY, kAy, v6);
  b.ntWrite(kP2, 9, kY, kAy, 0);
  b.cas(kP1, 6, kAy, 0, v4, true);
  b.store(kP1, 6, kG, 0);
  b.respond(kP1, 6, OpType::kCommit);
  // Empty transaction of p2, then the pinned final reads: x = v5 (p2's
  // store overwrote the transaction's CAS), y = v4.
  b.invoke(kP2, 10, OpType::kStart);
  b.cas(kP2, 10, kG, 0, kP2, true);
  b.respond(kP2, 10, OpType::kStart);
  b.invoke(kP2, 11, OpType::kCommit);
  b.store(kP2, 11, kG, 0);
  b.respond(kP2, 11, OpType::kCommit);
  b.ntRead(kP2, 12, kX, kAx, v5);
  b.ntRead(kP2, 13, kY, kAy, v4);
  return b.build();
}

Trace thm2StoreBasedTrace(Word vPrime, Word v1) {
  TraceBuilder b;
  // T of p1: rd x 0; wr x v'.  Write-back is a plain store.
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.load(kP1, 2, kAx, 0);
  b.respond(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.invoke(kP1, 3, OpType::kCommand, kX, cmdWrite(vPrime));
  b.respond(kP1, 3, OpType::kCommand, kX, cmdWrite(vPrime));
  b.invoke(kP1, 4, OpType::kCommit);
  // p2's racy write lands just before the store-back and is silently lost.
  b.ntWrite(kP2, 5, kX, kAx, v1);
  b.store(kP1, 4, kAx, vPrime);
  b.ntRead(kP2, 6, kX, kAx, vPrime);
  b.store(kP1, 4, kG, 0);
  b.respond(kP1, 4, OpType::kCommit);
  // Empty transaction of p2 pins the final read after T.
  b.invoke(kP2, 7, OpType::kStart);
  b.cas(kP2, 7, kG, 0, kP2, true);
  b.respond(kP2, 7, OpType::kStart);
  b.invoke(kP2, 8, OpType::kCommit);
  b.store(kP2, 8, kG, 0);
  b.respond(kP2, 8, OpType::kCommit);
  b.ntRead(kP2, 9, kX, kAx, vPrime);
  return b.build();
}

Trace thm2CasBasedTrace(Word vPrime, Word v1) {
  TraceBuilder b;
  b.invoke(kP1, 1, OpType::kStart);
  b.cas(kP1, 1, kG, 0, kP1, true);
  b.respond(kP1, 1, OpType::kStart);
  b.invoke(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.load(kP1, 2, kAx, 0);
  b.respond(kP1, 2, OpType::kCommand, kX, cmdRead(0));
  b.invoke(kP1, 3, OpType::kCommand, kX, cmdWrite(vPrime));
  b.respond(kP1, 3, OpType::kCommand, kX, cmdWrite(vPrime));
  b.invoke(kP1, 4, OpType::kCommit);
  b.ntWrite(kP2, 5, kX, kAx, v1);
  // The CAS expected 0 but finds v1: it fails — equivalent to the
  // transaction's write being immediately overwritten by p2's write.
  b.cas(kP1, 4, kAx, 0, vPrime, false);
  b.ntRead(kP2, 6, kX, kAx, v1);
  b.store(kP1, 4, kG, 0);
  b.respond(kP1, 4, OpType::kCommit);
  b.invoke(kP2, 7, OpType::kStart);
  b.cas(kP2, 7, kG, 0, kP2, true);
  b.respond(kP2, 7, OpType::kStart);
  b.invoke(kP2, 8, OpType::kCommit);
  b.store(kP2, 8, kG, 0);
  b.respond(kP2, 8, OpType::kCommit);
  b.ntRead(kP2, 9, kX, kAx, v1);
  return b.build();
}

}  // namespace jungle::theorems
