// Conformance checking of live TM implementations (Theorems 3, 4, 5, 7).
//
// A TM implementation I guarantees opacity parametrized by M iff every
// trace in L(I) has SOME corresponding history ensuring parametrized
// opacity (§4).  We sample L(I) two ways — scripted workloads covering the
// interesting interleavings, and randomized concurrent stress — record the
// traces on RecordingMemory, and check:
//
//   1. the canonical corresponding history (logical-point extraction, the
//      proofs' construction) first, and
//   2. on failure, fall back to enumerating corresponding histories.
#pragma once

#include "memmodel/memory_model.hpp"
#include "opacity/sgla.hpp"
#include "sim/exploration.hpp"
#include "sim/trace_history.hpp"
#include "tm/runtime.hpp"

namespace jungle::theorems {

struct ConformanceResult {
  bool ok = false;
  /// The canonical (logical-point) history sufficed.
  bool viaCanonical = false;
  /// A negative verdict without an exhaustive search: the enumeration hit
  /// its history cap, or some per-history check stopped on its budget or
  /// wall-clock deadline.
  bool inconclusive = false;
  /// The canonical history, for diagnostics.
  History canonical;
};

/// Per-history search limits conformance checking uses by default: no
/// expansion cap (node counts are machine-independent but meaningless to a
/// caller waiting on a verdict) and a wall-clock deadline instead.
SearchLimits conformanceSearchLimits();

/// ∃ corresponding history of `r` ensuring opacity parametrized by `m`.
ConformanceResult checkTracePopacity(
    const Trace& r, const MemoryModel& m, const SpecMap& specs,
    const SearchLimits& limits = conformanceSearchLimits());

/// ∃ corresponding history of `r` ensuring SGLA parametrized by `m`.
/// The default options carry conformanceSearchLimits().
ConformanceResult checkTraceSgla(
    const Trace& r, const MemoryModel& m, const SpecMap& specs,
    const SglaOptions& opts = {true, conformanceSearchLimits()});

/// ∃ corresponding history of `r` ensuring `condition` — the dispatching
/// generalization behind the per-kind conformance legs: the single-version
/// TMs claim parametrized opacity, the MVCC family snapshot isolation
/// (si-mvcc) or strict serializability (si-ssn).  `m` is consulted only
/// for ConditionKind::kParametrizedOpacity.
ConformanceResult checkTraceCondition(
    const Trace& r, ConditionKind condition, const MemoryModel& m,
    const SpecMap& specs,
    const SearchLimits& limits = conformanceSearchLimits());

/// Randomized concurrent workload on a recording runtime.
struct StressOptions {
  std::size_t numProcs = 3;
  std::size_t numVars = 3;
  /// Top-level actions per process; a transactional action contains up to
  /// `txLen` reads/writes.
  std::size_t actionsPerProc = 4;
  std::size_t txLen = 3;
  /// Percent of top-level actions that are transactions.
  unsigned pctTx = 50;
  /// Percent of accesses that are writes.
  unsigned pctWrite = 50;
  /// Zipfian skew of the variable draws (common/zipf.hpp); 0 = uniform.
  double zipfTheta = 0.0;
  std::uint64_t seed = 1;
};

/// Runs the workload with one OS thread per process and returns the
/// recorded trace.
Trace runStressWorkload(TmRuntime& tm, RecordingMemory& mem,
                        const StressOptions& opts);

/// Schedule exploration with a parametrized-opacity verifier: every
/// completed run's trace is checked against opacity(model).
struct ModelCheckReport {
  ExplorationStats stats;
  /// Runs whose negative verdict was inconclusive (search budget); they
  /// are NOT counted as failures.
  std::size_t inconclusiveRuns = 0;
  /// Up to `maxViolationSamples` violating (schedule, canonical history)
  /// pairs, for diagnostics.
  std::vector<std::pair<std::vector<ProcessId>, History>> violations;
};

/// Explores `program` under `opts.strategy` and checks each completed
/// run.  The verifier is thread-safe: opts.threads > 1 is allowed.
/// `condition` selects the per-run verifier (checkTraceCondition).
ModelCheckReport modelCheckProgram(
    std::size_t numThreads, std::size_t words, const Program& program,
    const MemoryModel& model, const SpecMap& specs, const ExploreOptions& opts,
    std::size_t maxViolationSamples = 2,
    ConditionKind condition = ConditionKind::kParametrizedOpacity);

}  // namespace jungle::theorems
