#!/usr/bin/env bash
# Regenerates every experiment of EXPERIMENTS.md: full test suite, all
# benchmark binaries, and the table-producing examples.  Outputs land in
# the given directory (default: ./results).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${1:-$ROOT/results}"
mkdir -p "$OUT"

echo "== configure & build =="
cmake -B "$BUILD" -S "$ROOT" -G Ninja
cmake --build "$BUILD"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee "$OUT/test_output.txt"

echo "== benches =="
: > "$OUT/bench_output.txt"
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  echo "=== $(basename "$b") ===" | tee -a "$OUT/bench_output.txt"
  if [ "$(basename "$b")" = "bench_checker" ]; then
    # Machine-readable scaling data (incl. the portfolio thread sweep) for
    # EXPERIMENTS.md E4; the console copy still lands in bench_output.txt.
    "$b" --benchmark_out="$OUT/BENCH_checker.json" \
         --benchmark_out_format=json 2>&1 | tee -a "$OUT/bench_output.txt"
  elif [ "$(basename "$b")" = "bench_tm_throughput" ]; then
    # Monitored-vs-bare throughput (the TxMon/Tx pairs) with per-thread
    # min/max ops/s and the ring_drop_pct honesty counter — the runtime
    # monitor's overhead experiment.
    "$b" --benchmark_out="$OUT/BENCH_monitor.json" \
         --benchmark_out_format=json 2>&1 | tee -a "$OUT/bench_output.txt"
    # The certifier-off baseline (EXPERIMENTS.md §5b) is NOT a separate
    # run: the TxMonTms family pins the certifier on/off in the benchmark
    # name, so the cert_off slice of the run above IS the baseline —
    # extracted here so the before/after pair always comes from one run
    # on one host.
    python3 - "$OUT/BENCH_monitor.json" "$OUT/BENCH_monitor_pre.json" <<'EOF'
import json, sys
src, dst = sys.argv[1], sys.argv[2]
with open(src) as f:
    data = json.load(f)
data["benchmarks"] = [b for b in data.get("benchmarks", [])
                      if "/cert_off" in b.get("name", "")]
with open(dst, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
EOF
    # The multi-version slice (Tx/TxMon/TxMonShard rows for si-mvcc and
    # si-ssn) re-run into its own file: these rows carry the version-chain
    # (chain_reads/chain_steps/chain_len_avg) and certification-abort
    # (fcw_aborts/ssn_aborts/too_old_aborts) telemetry counters.
    "$b" --benchmark_filter='/si-(mvcc|ssn)/' \
         --benchmark_out="$OUT/BENCH_mvcc.json" \
         --benchmark_out_format=json 2>&1 | tee -a "$OUT/bench_output.txt"
    # The footprint-placement slice (TxMonPlace mod-vs-fc rows) re-run as
    # medians over 5 interleaved repetitions: single-run throughput on a
    # noisy host can't resolve the placement win (the K=1 control pair
    # spans ~1.4x with identical work), the medians can.  EXPERIMENTS.md
    # §5c quotes this file.
    "$b" --benchmark_filter='TxMonPlace/' \
         --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
         --benchmark_enable_random_interleaving=true \
         --benchmark_out="$OUT/BENCH_monitor_place.json" \
         --benchmark_out_format=json 2>&1 | tee -a "$OUT/bench_output.txt"
  elif [ "$(basename "$b")" = "bench_serve" ]; then
    # EXPERIMENTS.md §5e: aggregate service throughput and the cost of
    # sampled verification.  Medians over 5 repetitions; the p=10 vs p=0
    # pair at shards=4 is the "1% sampling costs < 10%" acceptance row.
    # The unfiltered run also emits the ServeTxnX/<tm>/shards=4/x=X rows
    # (cross-shard 2PC latency tax at x = 0/5/20% of total traffic).
    "$b" --benchmark_out="$OUT/BENCH_serve.json" \
         --benchmark_out_format=json --benchmark_repetitions=5 \
         --benchmark_enable_random_interleaving=true \
         2>&1 | tee -a "$OUT/bench_output.txt"
  elif [ "$(basename "$b")" = "bench_explorer" ]; then
    # Strategy trajectory: schedules explored + wall time for DFS vs DPOR
    # vs frontier-parallel DPOR (the Reference*/Frontier* rows).  Note the
    # frontier only pays off with >= 2 hardware threads; on a single-core
    # runner the parallel rows record the task-distribution overhead.
    "$b" --benchmark_out="$OUT/BENCH_explorer.json" \
         --benchmark_out_format=json 2>&1 | tee -a "$OUT/bench_output.txt"
  else
    "$b" 2>&1 | tee -a "$OUT/bench_output.txt"
  fi
done

echo "== figure tables =="
"$BUILD/examples/litmus_explorer" | tee "$OUT/litmus_tables.txt"
"$BUILD/examples/theorem_tour" | tee "$OUT/theorem_tour.txt"
"$BUILD/examples/weak_vs_strong" | tee "$OUT/weak_vs_strong.txt"
"$BUILD/examples/model_check" global-lock SC | tee "$OUT/model_check_sc.txt"
"$BUILD/examples/model_check" global-lock Idealized \
  | tee "$OUT/model_check_idealized.txt"
"$BUILD/examples/model_check" global-lock Idealized --strategy dpor --stats \
  | tee "$OUT/model_check_dpor.txt"

echo "== runtime monitor =="
# Paced so the one-core runner stays drop-free (fully checked); any
# violation of a stock TM makes monitor_tm exit non-zero and fails the run.
"$BUILD/examples/monitor_tm" --tm all --threads 4 --ops 400 --pace-us 40 \
  --max-drop-pct 0 --json | tee "$OUT/monitor_tm.json"

echo "== monitor shard sweep =="
# EXPERIMENTS.md §5b/§5c: the same paced workload at K = 1, 2, 4 checker
# shards (per-shard routing/taint/escalation telemetry in each JSON), the
# tree-merge collector on top of the K=4 row (--collector-threads 4 merges
# ring groups in parallel before the root ticket-order merge), plus the
# sharded injected-bug self-test — the detector must stay live with both
# the checker and the collector split four ways.
for K in 1 2 4; do
  "$BUILD/examples/monitor_tm" --tm all --threads 4 --ops 400 --pace-us 40 \
    --max-drop-pct 0 --shards "$K" --recheck-threads 2 --json \
    | tee "$OUT/monitor_tm_shards_$K.json"
done
"$BUILD/examples/monitor_tm" --tm all --threads 4 --ops 400 --pace-us 40 \
  --max-drop-pct 0 --shards 4 --collector-threads 4 --recheck-threads 2 \
  --json | tee "$OUT/monitor_tm_treemerge.json"
"$BUILD/examples/monitor_tm" --tm global-lock --ops 2000 --shards 4 \
  --inject-bug | tee "$OUT/monitor_tm_shards_selftest.txt"
"$BUILD/examples/monitor_tm" --tm global-lock --ops 2000 --shards 4 \
  --collector-threads 4 --inject-bug \
  | tee "$OUT/monitor_tm_treemerge_selftest.txt"
# TMS2 certifier pair (EXPERIMENTS.md §5b): the same paced workload with
# the incremental certifier pinned off, for the per-kind escalation/
# certified-unit telemetry diff against monitor_tm.json (certifier on by
# default there), plus the certifier-enabled injected-bug self-test —
# the accept-only certifier must not mask the conviction.
"$BUILD/examples/monitor_tm" --tm all --threads 4 --ops 400 --pace-us 40 \
  --max-drop-pct 0 --no-certifier --json \
  | tee "$OUT/monitor_tm_nocert.json"
"$BUILD/examples/monitor_tm" --tm global-lock --ops 2000 \
  --inject-bug | tee "$OUT/monitor_tm_certifier_selftest.txt"
"$BUILD/examples/check_history" --demo --format json \
  | tee "$OUT/check_history_demo.json"

echo "== sharded KV service =="
# EXPERIMENTS.md §5e: a sampled service run per headline TM kind (JSON
# includes the monitored command share and monitor drop counters), plus
# the service-level injected-bug self-test.
for tm in tl2-weak si-mvcc; do
  "$BUILD/examples/jungle_serve" --tm "$tm" --shards 4 --clients 2 \
    --keys 8192 --ops 100000 --sample-permille 10 --seed 7 --json \
    | tee "$OUT/serve_$tm.json"
done
"$BUILD/examples/jungle_serve" --tm tl2-weak --shards 2 --clients 2 \
  --keys 1024 --ops 5000 --inject-bug --seed 7 \
  | tee "$OUT/serve_selftest.txt"
# Cross-shard 2PC: sampled, violation-free runs with 20% of the txn mix
# spanning shards, plus the cross-shard atomicity-bug self-test (the
# sampled monitor must convict a commit-on-A/drop-on-B defect).
for tm in tl2-weak si-mvcc; do
  "$BUILD/examples/jungle_serve" --tm "$tm" --shards 4 --clients 2 \
    --keys 8192 --ops 100000 --txn-pct 10 --cross-shard-pct 20 \
    --sample-permille 10 --seed 7 --json \
    | tee "$OUT/serve_xshard_$tm.json"
done
"$BUILD/examples/jungle_serve" --tm tl2-weak --shards 2 --clients 2 \
  --keys 64 --ops 30000 --inject-bug-xshard --zipf-theta 0.9 --seed 7 \
  | tee "$OUT/serve_xshard_selftest.txt"

echo "all outputs in $OUT"
