// Model checking a TM implementation, in the spirit of the paper's
// companion work on TM verification: interleave a small mixed program on a
// chosen TM, checking every completed schedule's trace against a chosen
// memory model's parametrized opacity.
//
//   build/examples/model_check [tm-name] [model-name]
//       [--strategy dfs|dpor|sample] [--threads N] [--stats]
//       [--max-runs N] [--max-steps N] [--samples N] [--timeout-ms N]
//       [--seed N] [--dedup]
//
//   --strategy S    dfs:    exhaustive depth-first enumeration (default)
//                   dpor:   sleep-set dynamic partial-order reduction —
//                           same verdict, only race reversals re-explored
//                   sample: random schedule sampling (use --samples)
//   --threads N     parallel frontier workers (default 1 = serial)
//   --stats         print the full ExplorationStats line
//   --dedup         skip the verifier on schedules whose canonical history
//                   was already checked
//
// Try:  model_check global-lock Idealized   → all schedules pass (Thm 3)
//       model_check global-lock SC          → violations found (Thm 1)
//       model_check strong-atomicity SC --strategy dpor --stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "memmodel/models.hpp"
#include "sim/exploration.hpp"
#include "theorems/conformance.hpp"
#include "theorems/explorer_workloads.hpp"
#include "tm/runtime.hpp"

namespace {

using namespace jungle;

/// Parses "--flag=value" or "--flag value" forms; returns nullptr when
/// argv[i] is not `flag`.
const char* flagValue(int argc, char** argv, int& i, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: model_check [tm-name] [model-name] "
      "[--strategy dfs|dpor|sample] [--threads N] [--stats] [--max-runs N] "
      "[--max-steps N] [--samples N] [--timeout-ms N] [--seed N] "
      "[--dedup]\n");
  return 2;
}

std::optional<TmKind> tmByName(const std::string& name) {
  for (TmKind k : allTmKinds()) {
    if (name == tmKindName(k)) return k;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tmName = "global-lock";
  std::string modelName = "Idealized";
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.maxRuns = 3000;
  bool printStats = false;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flagValue(argc, argv, i, "--strategy")) {
      const auto k = parseExploreStrategy(v);
      if (!k.has_value()) {
        std::fprintf(stderr, "unknown strategy '%s'\n", v);
        return usage();
      }
      opts.strategy = *k;
    } else if (const char* v = flagValue(argc, argv, i, "--threads")) {
      opts.threads = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--max-runs")) {
      opts.maxRuns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--max-steps")) {
      opts.maxSteps = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--samples")) {
      opts.samples = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--timeout-ms")) {
      opts.timeout = std::chrono::milliseconds(std::strtoll(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--seed")) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      printStats = true;
    } else if (std::strcmp(argv[i], "--dedup") == 0) {
      opts.dedupHistories = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return usage();
    } else if (positional == 0) {
      tmName = argv[i];
      ++positional;
    } else if (positional == 1) {
      modelName = argv[i];
      ++positional;
    } else {
      return usage();
    }
  }

  const MemoryModel* model = modelByName(modelName);
  if (model == nullptr) {
    std::fprintf(stderr, "unknown model '%s'\n", modelName.c_str());
    return 2;
  }
  const auto kind = tmByName(tmName);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown TM '%s'\n", tmName.c_str());
    return 2;
  }

  std::printf(
      "model-checking the Figure 1 program on %s against opacity(%s)\n"
      "strategy=%s threads=%u\n",
      tmName.c_str(), model->name(), exploreStrategyName(opts.strategy),
      opts.threads);

  // The Figure-1 program over the live runtime adapter.
  const Program program = [kind](ScheduledMemory& mem) {
    std::shared_ptr<TmRuntime> tm = makeScheduledRuntime(*kind, mem, 2, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      tm->transaction(0, [](TxContext& ctx) {
        ctx.write(0, 1);
        ctx.write(1, 1);
      });
    });
    scripts.push_back([tm] {
      (void)tm->ntRead(1, 0);
      (void)tm->ntRead(1, 1);
    });
    return scripts;
  };
  const std::size_t words = runtimeMemoryWords(*kind, 2);

  SpecMap specs;
  const theorems::ModelCheckReport report =
      theorems::modelCheckProgram(2, words, program, *model, specs, opts);

  for (const auto& [schedule, canonical] : report.violations) {
    std::printf("\nviolating schedule (thread ids per step): ");
    for (ProcessId p : schedule) std::printf("%u", p);
    std::printf("\ncanonical corresponding history:\n%s",
                canonical.toString().c_str());
  }

  std::printf("\nschedules explored: %zu (completed %zu, cut %zu)\n",
              report.stats.runs, report.stats.completedRuns,
              report.stats.cutRuns);
  std::printf("violations: %zu\n", report.stats.failures);
  if (report.inconclusiveRuns > 0) {
    std::printf("inconclusive runs (excluded): %zu\n",
                report.inconclusiveRuns);
  }
  if (printStats) {
    std::printf("stats: %s\n", report.stats.summary().c_str());
  }
  if (report.stats.failures > 0) {
    std::printf("NOT opaque under this model — exactly what the "
                "impossibility theorems predict for this pairing.\n");
  } else if (report.stats.deadlineExpired ||
             report.stats.runBudgetExhausted) {
    std::printf("NO violation among the schedules explored — but the "
                "exploration stopped on its %s, so this is not an "
                "exhaustiveness claim.\n",
                report.stats.deadlineExpired ? "deadline" : "run budget");
  } else if (opts.strategy == ExploreStrategyKind::kRandomSampling) {
    std::printf("NO violation among the sampled schedules (sampling is "
                "never an exhaustiveness claim).\n");
  } else {
    std::printf("VERIFIED for this program up to the bounds.\n");
  }
  return 0;
}
