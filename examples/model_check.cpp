// Model checking a TM implementation, in the spirit of the paper's
// companion work on TM verification: exhaustively interleave a small mixed
// program on a chosen TM, checking every completed schedule's trace against
// a chosen memory model's parametrized opacity.
//
//   build/examples/model_check [tm-name] [model-name]
//
// Try:  model_check global-lock Idealized   → all schedules pass (Thm 3)
//       model_check global-lock SC          → violations found (Thm 1)
//       model_check strong-atomicity SC     → all schedules pass (§6.1)
#include <cstdio>
#include <memory>
#include <string>

#include "memmodel/models.hpp"
#include "sim/schedule.hpp"
#include "theorems/conformance.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/tl2_tm.hpp"
#include "tm/versioned_write_tm.hpp"
#include "tm/write_as_tx_tm.hpp"

namespace {

using namespace jungle;

// The Figure-1 program: one transaction writing x and y; one thread
// reading both with plain loads.
template <template <class> class TmT>
Program figure1Program() {
  return [](ScheduledMemory& mem) {
    auto tm = std::make_shared<TmT<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      (void)tm->ntRead(t, 0);
      (void)tm->ntRead(t, 1);
    });
    return scripts;
  };
}

Program programFor(const std::string& tmName) {
  if (tmName == "global-lock") return figure1Program<GlobalLockTm>();
  if (tmName == "write-as-tx") return figure1Program<WriteAsTxTm>();
  if (tmName == "versioned-write") return figure1Program<VersionedWriteTm>();
  if (tmName == "strong-atomicity")
    return figure1Program<StrongAtomicityTm>();
  if (tmName == "tl2-weak") return figure1Program<Tl2Tm>();
  std::fprintf(stderr, "unknown TM '%s', using global-lock\n",
               tmName.c_str());
  return figure1Program<GlobalLockTm>();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string tmName = argc > 1 ? argv[1] : "global-lock";
  const std::string modelName = argc > 2 ? argv[2] : "Idealized";
  const MemoryModel* model = modelByName(modelName);
  if (model == nullptr) {
    std::fprintf(stderr, "unknown model '%s'\n", modelName.c_str());
    return 2;
  }

  std::printf("model-checking the Figure 1 program on %s against "
              "opacity(%s)\n",
              tmName.c_str(), model->name());

  SpecMap specs;
  std::size_t shown = 0;
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.maxRuns = 3000;
  auto stats = exploreExhaustive(
      2, 16, programFor(tmName),
      [&](const RunOutcome& out) {
        auto res = theorems::checkTracePopacity(out.trace, *model, specs);
        if (!res.ok && shown < 2) {
          ++shown;
          std::printf("\nviolating schedule (thread ids per step): ");
          for (ProcessId p : out.schedule) std::printf("%u", p);
          std::printf("\ncanonical corresponding history:\n%s",
                      res.canonical.toString().c_str());
        }
        return res.ok;
      },
      opts);

  std::printf("\nschedules explored: %zu (completed %zu, cut %zu)\n",
              stats.runs, stats.completedRuns, stats.cutRuns);
  std::printf("violations: %zu\n", stats.failures);
  std::printf(stats.failures == 0
                  ? "VERIFIED for this program up to the bounds.\n"
                  : "NOT opaque under this model — exactly what the "
                    "impossibility theorems predict for this pairing.\n");
  return 0;
}
