// Litmus explorer: prints, for each of the paper's figures and each memory
// model, the set of outcomes allowed by opacity parametrized by that model.
// This is Figure 1 / Figure 2 of the paper turned into a table generator —
// the ambiguity of "strong atomicity" becomes visible as the rows change
// with the model.
//
//   build/examples/litmus_explorer
#include <cstdio>
#include <vector>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"

namespace {

using namespace jungle;

void header(const char* title, const char* outcomes) {
  std::printf("\n%s\n  outcome columns: %s\n  ", title, outcomes);
  for (const MemoryModel* m : allModels()) std::printf("%-10s", m->name());
  std::printf("\n");
}

void row(const char* label, const History& h) {
  SpecMap specs;
  std::printf("  %-14s", label);
  for (const MemoryModel* m : allModels()) {
    const bool ok = checkParametrizedOpacity(h, *m, specs).satisfied;
    std::printf("%-10s", ok ? "allowed" : "-");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("jungle-tm litmus explorer: opacity parametrized by M\n");

  header("Figure 1 — atomic { x:=1; y:=1 } vs plain r1:=x; r2:=y",
         "(r1, r2)");
  for (Word r1 : {0, 1}) {
    for (Word r2 : {0, 1}) {
      char label[32];
      std::snprintf(label, sizeof label, "(%llu, %llu)",
                    static_cast<unsigned long long>(r1),
                    static_cast<unsigned long long>(r2));
      row(label, litmus::fig1History(r1, r2));
    }
  }

  header("Figure 2(a) — z := x - y read by a transaction", "(a, b)");
  for (Word a : {0, 1, 2}) {
    for (Word b : {0, 2}) {
      char label[32];
      std::snprintf(label, sizeof label, "(%llu, %llu)",
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
      row(label, litmus::fig2aHistory(a, b));
    }
  }

  header("Figure 2(b) — plain message passing", "(r1, r2)");
  for (Word r1 : {0, 1}) {
    for (Word r2 : {0, 1}) {
      char label[32];
      std::snprintf(label, sizeof label, "(%llu, %llu)",
                    static_cast<unsigned long long>(r1),
                    static_cast<unsigned long long>(r2));
      row(label, litmus::fig2bHistory(r1, r2));
    }
  }

  header("Figure 2(c) — plain z := x vs two transactions", "(a, r1, r2)");
  const std::vector<std::tuple<Word, Word, Word>> cases{
      {0, 0, 0}, {1, 1, 1}, {2, 0, 0}, {2, 2, 2}, {2, 0, 2}};
  for (const auto& [a, r1, r2] : cases) {
    char label[32];
    std::snprintf(label, sizeof label, "(%llu,%llu,%llu)",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r1),
                  static_cast<unsigned long long>(r2));
    row(label, litmus::fig2cHistory(a, r1, r2));
  }

  header("Figure 3 — the paper's worked example", "(v, v')");
  for (Word v : {0, 1, 2}) {
    char label[32];
    std::snprintf(label, sizeof label, "(%llu, 1)",
                  static_cast<unsigned long long>(v));
    row(label, litmus::fig3History(v, 1));
  }

  header("Store buffering — plain x:=1;r1:=y || y:=1;r2:=x", "(r1, r2)");
  for (Word r1 : {0, 1}) {
    for (Word r2 : {0, 1}) {
      char label[32];
      std::snprintf(label, sizeof label, "(%llu, %llu)",
                    static_cast<unsigned long long>(r1),
                    static_cast<unsigned long long>(r2));
      row(label, litmus::storeBufferHistory(r1, r2));
    }
  }

  std::printf(
      "\nReading the tables: Figure 1's (1,0) row is the published\n"
      "disagreement — forbidden under opacity(SC) (Larus-Rajwar strong\n"
      "atomicity), allowed under opacity(RMO) (Martin et al.).\n");
  return 0;
}
