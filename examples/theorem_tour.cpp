// Theorem tour: the paper's proofs, executed.
//
// Walks every Figure 5 construction, prints the adversarial instruction
// trace, and reports — per memory model — whether ANY corresponding history
// ensures parametrized opacity.  "no" rows are the impossibility results
// (Lemma 1, Theorem 1 cases 1–4, Theorem 2); "yes" rows show the theorems'
// hypotheses are tight.
//
//   build/examples/theorem_tour [-v]   (-v prints the full traces)
#include <cstdio>
#include <cstring>
#include <vector>

#include "memmodel/models.hpp"
#include "sim/trace_history.hpp"
#include "theorems/figure5.hpp"

namespace {

using namespace jungle;
using namespace jungle::theorems;

void show(const char* title, const char* claim, const Trace& r,
          bool verbose) {
  std::printf("\n=== %s ===\n%s\n", title, claim);
  if (verbose) std::printf("%s", r.toString().c_str());
  SpecMap specs;
  std::printf("  exists parametrized-opaque corresponding history?\n");
  const std::vector<const MemoryModel*> models{
      &scModel(),    &tsoModel(),  &psoModel(),
      &rmoModel(),   &alphaModel(), &idealizedModel()};
  for (const MemoryModel* m : models) {
    auto res = traceEnsuresParametrizedOpacity(r, *m, specs);
    std::printf("    %-10s %s\n", m->name(), res.satisfied ? "yes" : "NO");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool verbose = argc > 1 && std::strcmp(argv[1], "-v") == 0;
  std::printf("jungle-tm theorem tour — the Figure 5 constructions\n");

  show("Lemma 1 (bad)",
       "A committed transaction wrote x but issued no update instruction;\n"
       "a later uninstrumented read sees 0.  No model can explain this.",
       lemma1BadTrace(), verbose);
  show("Lemma 1 (good)",
       "Same schedule, but the commit stores the value: explainable.",
       lemma1GoodTrace(), verbose);

  show("Theorem 1, case 1 (M_rr)",
       "Two plain reads slip between a transaction's two updates.\n"
       "Models that keep independent reads ordered (SC/TSO/PSO) fail;\n"
       "read-reordering models explain it.",
       thm1Case1Trace(), verbose);
  show("Theorem 1, case 2 (M_wr)",
       "A plain write-then-read pair straddles the transaction.  Only\n"
       "models ordering W->R (SC) fail; store-buffer models survive.",
       thm1Case2Trace(), verbose);
  show("Theorem 1, case 3 (M_rw, independent)",
       "A plain read between the updates, then two writes restoring y.",
       thm1Case3Trace(), verbose);
  show("Theorem 1, case 3 (M_rw, data-dependent)",
       "Same, but the writes are data-dependent on the read: now RMO and\n"
       "Alpha fail too (they are in M^d_rw).",
       thm1Case3DependentTrace(), verbose);
  show("Theorem 1, case 4 (M_ww)",
       "Three plain stores straddle the updates; W->W order (SC/TSO) is\n"
       "unsatisfiable.",
       thm1Case4Trace(), verbose);

  show("Theorem 2 (store-based write-back)",
       "The transaction writes back with a plain store, silently killing a\n"
       "racy plain write.  NO memory model explains the result: read-write\n"
       "transactions need CAS.",
       thm2StoreBasedTrace(), verbose);
  show("Theorem 2 (CAS-based write-back)",
       "With CAS the racy write defeats the write-back, which is\n"
       "equivalent to it landing after the transaction: explainable\n"
       "everywhere.",
       thm2CasBasedTrace(), verbose);

  std::printf(
      "\nPositive counterparts (Theorems 3-5, 7) are exercised as\n"
      "conformance tests over live TM implementations; see\n"
      "tests/test_tm_conformance.cpp and bench/bench_theorem_traces.cpp.\n");
  return 0;
}
