// Privatization (§1's motivating pattern): make shared data private to a
// thread, operate on it with cheap plain accesses, then publish it back.
//
// A worker privatizes a region of a shared buffer, runs a batch of plain
// updates on it (no transactional overhead per element), then publishes.
// Meanwhile other threads keep transacting on regions they own.  The final
// audit shows no update was lost — the mixed transactional/plain protocol
// is exactly what parametrized opacity makes precise.
//
//   build/examples/privatization [tm-name]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "tm/runtime.hpp"
#include "tm/txvar.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kRegions = 4;
constexpr std::size_t kRegionSize = 8;
constexpr std::size_t kThreads = 4;
constexpr std::size_t kBatches = 300;
constexpr std::size_t kPlainUpdatesPerBatch = 50;

TmKind parseKind(int argc, char** argv) {
  if (argc < 2) return TmKind::kVersionedWrite;
  const std::string name = argv[1];
  for (TmKind k : allTmKinds()) {
    if (name == tmKindName(k)) return k;
  }
  return TmKind::kVersionedWrite;
}

}  // namespace

int main(int argc, char** argv) {
  const TmKind kind = parseKind(argc, argv);
  // Layout: kRegions owner words, then kRegions * kRegionSize data words.
  const std::size_t numVars = kRegions + kRegions * kRegionSize;
  NativeMemory mem(runtimeMemoryWords(kind, numVars));
  auto tm = makeNativeRuntime(kind, mem, numVars, kThreads);

  std::vector<PrivatizableRegion> regions;
  for (std::size_t r = 0; r < kRegions; ++r) {
    std::vector<ObjectId> slots;
    for (std::size_t i = 0; i < kRegionSize; ++i) {
      slots.push_back(
          static_cast<ObjectId>(kRegions + r * kRegionSize + i));
    }
    regions.emplace_back(*tm, static_cast<ObjectId>(r), std::move(slots));
  }

  std::printf("privatization demo — TM: %s\n", tm->name());

  std::vector<std::thread> workers;
  std::vector<std::uint64_t> applied(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto pid = static_cast<ProcessId>(t);
      std::uint64_t state = 0x9e37 + t;
      for (std::size_t b = 0; b < kBatches; ++b) {
        const std::size_t r = splitmix64(state) % kRegions;
        if (!regions[r].privatize(pid)) {
          // Region busy: do a transactional increment somewhere instead.
          const std::size_t r2 = splitmix64(state) % kRegions;
          const std::size_t idx = splitmix64(state) % kRegionSize;
          tm->transaction(pid, [&](TxContext& tx) {
            // Only touch the region transactionally if it is shared.
            if (tx.read(static_cast<ObjectId>(r2)) !=
                PrivatizableRegion::kShared) {
              return;
            }
            const Word v = regions[r2].txRead(tx, idx);
            regions[r2].txWrite(tx, idx, v + 1);
          });
          continue;
        }
        // Private phase: plain accesses only — this is the fast path the
        // paper's intro motivates.
        for (std::size_t i = 0; i < kPlainUpdatesPerBatch; ++i) {
          const std::size_t idx = splitmix64(state) % kRegionSize;
          const Word v = regions[r].read(pid, idx);
          regions[r].write(pid, idx, v + 1);
          ++applied[t];
        }
        regions[r].publish(pid);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Audit: the sum of all cells equals the total increments applied
  // (plain-phase increments counted exactly; transactional fallbacks add
  // on top, so audit with a transactional sweep).
  Word total = 0;
  tm->transaction(0, [&](TxContext& tx) {
    total = 0;
    for (std::size_t r = 0; r < kRegions; ++r) {
      for (std::size_t i = 0; i < kRegionSize; ++i) {
        total += regions[r].txRead(tx, i);
      }
    }
  });
  std::uint64_t plainTotal = 0;
  for (auto a : applied) plainTotal += a;
  std::printf("cells sum to %llu; plain-phase increments %llu; "
              "transactional fallbacks account for the rest\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(plainTotal));
  const bool ok = total >= plainTotal;
  std::printf("no lost plain update: %s\n", ok ? "OK" : "VIOLATION");
  return ok ? 0 : 1;
}
