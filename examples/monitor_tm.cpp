// monitor_tm: drive a live TM under the always-on runtime monitor.
//
//   build/examples/monitor_tm [--tm NAME|all] [--threads N] [--ops N]
//                             [--vars N] [--seed N] [--tx-pct P]
//                             [--pace-us N] [--ring-capacity N]
//                             [--gc-retain N] [--shards K]
//                             [--collector-threads N]
//                             [--placement-window N]
//                             [--recheck-threads N] [--max-drop-pct P]
//                             [--no-certifier] [--certifier-depth N]
//                             [--snapshot-dir DIR] [--inject-bug] [--json]
//
// --shards K checks the stream on K per-variable-group sub-checkers plus
// a cross-shard joiner (sharded_checker.hpp; K must divide 64);
// --collector-threads N merges the rings through an N-worker two-level
// tree (monitor.hpp); --placement-window N re-clusters variables onto
// shards by observed co-access every N merged units (0 = static mod-K);
// --recheck-threads N runs each escalation's engine portfolio on N
// threads.  The TMS2 incremental certifier (tms2_certifier.hpp) is on by
// default — --no-certifier pins the engine-only escalation path (the
// differential baseline), --certifier-depth N sets its snapshot retention
// (0 = gc-retain).  --json reports per-shard telemetry (units routed,
// cross-shard joins, taint skips, escalation latency) plus the per-path
// decision split (fastPath/certified/escalated/discarded) and the
// joiner/placement counters alongside the aggregates.
//
// For each selected TM kind the tool attaches a TmMonitor (src/monitor/),
// runs a random mixed workload on the instrumented wrapper, and reports the
// monitor's verdict and telemetry: capture rate, ring drops, collector lag,
// checker window/recheck/GC counters, and any conclusive violations (each
// persisted as a shrinkable .hist repro when --snapshot-dir is given).
//
// Exit status is the contract the CI smoke job relies on:
//   * default: 0 iff no TM produced a violation and the drop percentage
//     stayed within --max-drop-pct (default 100 = unlimited);
//   * --inject-bug: the run is a self-test of the detector — a corrupted
//     transactional read is spliced into the captured stream, and the tool
//     exits 0 iff the monitor caught it.  Unless --pace-us is given
//     explicitly, the self-test paces itself to stay drop-free: under
//     saturation drops a real corruption is indistinguishable from a
//     dropped writer's value, and the monitor suppresses the verdict by
//     design (honesty over sensitivity).
//
// --pace-us inserts a per-op sleep in the workload threads; on a one-core
// CI machine this keeps the collector ahead of the producers so smoke runs
// stay drop-free (and therefore fully checked).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "monitor/monitor.hpp"
#include "sim/memory_policy.hpp"
#include "tm/runtime.hpp"

namespace {

using namespace jungle;
using namespace jungle::monitor;

struct Options {
  std::string tm = "all";
  std::size_t threads = 4;
  std::uint64_t ops = 1500;
  std::size_t vars = 12;
  std::uint64_t seed = 1;
  unsigned txPercent = 75;
  std::chrono::microseconds pace{0};
  bool paceSet = false;
  std::size_t ringCapacity = 1 << 14;
  std::size_t gcRetain = 8;
  std::size_t shards = 1;
  unsigned collectorThreads = 1;
  std::size_t placementWindow = 4096;
  unsigned recheckThreads = 1;
  bool certifier = true;
  std::size_t certifierDepth = 0;
  double maxDropPct = 100.0;
  std::string snapshotDir;
  bool injectBug = false;
  bool json = false;
};

struct RunRow {
  const char* tm;
  const char* model;
  WorkloadResult work;
  MonitorStats stats;
  std::size_t violations;
};

RunRow runOne(TmKind kind, const Options& o) {
  NativeMemory mem(runtimeMemoryWords(kind, o.vars));
  auto tm = makeNativeRuntime(kind, mem, o.vars, o.threads);

  MonitorOptions mo;
  mo.capture.ringCapacity = o.ringCapacity;
  mo.gcRetain = o.gcRetain;
  mo.shards = o.shards;
  mo.collectorThreads = o.collectorThreads;
  mo.placementWindow = o.placementWindow;
  mo.recheckThreads = o.recheckThreads;
  mo.certifier = o.certifier;
  mo.certifierDepth = o.certifierDepth;
  mo.snapshotDir = o.snapshotDir;
  if (o.injectBug) mo.capture.injectBug = InjectedBug::kCorruptTxRead;

  TmMonitor mon(*tm, o.threads, mo);

  WorkloadOptions w;
  w.threads = o.threads;
  w.numVars = o.vars;
  w.opsPerThread = o.ops;
  w.seed = o.seed;
  w.txPercent = o.txPercent;
  w.pace = o.pace;
  const WorkloadResult work = runMonitoredWorkload(mon.runtime(), w);
  mon.stop();

  RunRow row{tm->name(), mon.model().name(), work, mon.stats(),
             mon.violations().size()};
  if (!o.json) {
    for (const MonitorViolation& v : mon.violations()) {
      std::printf("  VIOLATION: %s\n", v.description.c_str());
      std::printf("    shrunk to %zu instance(s)%s%s\n", v.shrunk.size(),
                  v.file.empty() ? "" : ", snapshot: ",
                  v.file.c_str());
    }
  }
  return row;
}

double dropPct(const MonitorStats& s) {
  const double total =
      static_cast<double>(s.eventsCaptured + s.eventsDropped);
  return total > 0.0 ? 100.0 * static_cast<double>(s.eventsDropped) / total
                     : 0.0;
}

void printText(const RunRow& r) {
  const MonitorStats& s = r.stats;
  std::printf(
      "%-17s model=%-10s commits=%llu aborts=%llu nt=%llu | events=%llu "
      "(%.0f/s) drops=%llu (%.2f%%) lag(peak)=%zu | window(peak)=%zu "
      "paths=%llu/%llu/%llu/%llu (fast/cert/esc/disc) "
      "rechecks=%llu (inconclusive=%llu suppressed=%llu) gc=%llu "
      "resyncs=%llu | violations=%zu\n",
      r.tm, r.model, static_cast<unsigned long long>(r.work.commits),
      static_cast<unsigned long long>(r.work.userAborts),
      static_cast<unsigned long long>(r.work.ntOps),
      static_cast<unsigned long long>(s.eventsCaptured), s.eventsPerSec,
      static_cast<unsigned long long>(s.eventsDropped), dropPct(s),
      s.peakPendingUnits, s.stream.peakWindowUnits,
      static_cast<unsigned long long>(s.stream.fastPathUnits),
      static_cast<unsigned long long>(s.stream.certifiedUnits),
      static_cast<unsigned long long>(s.stream.escalatedUnits),
      static_cast<unsigned long long>(s.stream.discardedUnits),
      static_cast<unsigned long long>(s.stream.rechecks),
      static_cast<unsigned long long>(s.stream.inconclusiveRechecks),
      static_cast<unsigned long long>(s.stream.suppressedVerdicts),
      static_cast<unsigned long long>(s.stream.gcUnits),
      static_cast<unsigned long long>(s.stream.resyncs), r.violations);
  if (s.shards.size() > 1) {
    for (std::size_t k = 0; k < s.shards.size(); ++k) {
      const ShardStats& sh = s.shards[k];
      std::printf(
          "  shard %zu/%zu: routed=%llu joins=%llu gaps=%llu "
          "taint-skips=%llu rechecks=%llu suppressed=%llu "
          "violations=%llu\n",
          k, s.shards.size(),
          static_cast<unsigned long long>(sh.unitsRouted),
          static_cast<unsigned long long>(sh.crossShardJoins),
          static_cast<unsigned long long>(sh.gapSignals),
          static_cast<unsigned long long>(sh.stream.taintedWindowSkips),
          static_cast<unsigned long long>(sh.stream.rechecks),
          static_cast<unsigned long long>(sh.stream.suppressedVerdicts),
          static_cast<unsigned long long>(sh.stream.violations));
    }
    const JoinerStats& j = s.joiner;
    std::printf(
        "  joiner: routed=%llu gaps=%llu restarts=%llu crossBits=%llu "
        "rechecks=%llu violations=%llu | placement rebuilds=%llu "
        "moves=%llu\n",
        static_cast<unsigned long long>(j.unitsRouted),
        static_cast<unsigned long long>(j.gapSignals),
        static_cast<unsigned long long>(j.restarts),
        static_cast<unsigned long long>(j.crossBits),
        static_cast<unsigned long long>(j.stream.rechecks),
        static_cast<unsigned long long>(j.stream.violations),
        static_cast<unsigned long long>(j.placementRebuilds),
        static_cast<unsigned long long>(j.placementMoves));
  }
}

void printJson(const std::vector<RunRow>& rows, bool ok) {
  std::printf("{\n  \"ok\": %s,\n  \"runs\": [\n", ok ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    const MonitorStats& s = r.stats;
    std::printf(
        "    {\"tm\": \"%s\", \"model\": \"%s\", \"commits\": %llu, "
        "\"userAborts\": %llu, \"ntOps\": %llu, \"events\": %llu, "
        "\"eventsPerSec\": %.1f, \"eventsDropped\": %llu, \"dropPct\": %.3f, "
        "\"unitsMerged\": %llu, \"peakPendingUnits\": %zu, "
        "\"unitsChecked\": %llu, \"opsChecked\": %llu, "
        "\"fastPathUnits\": %llu, \"certifiedUnits\": %llu, "
        "\"escalatedUnits\": %llu, \"discardedUnits\": %llu, "
        "\"certifierAttempts\": %llu, \"certifierUsTotal\": %llu, "
        "\"rechecks\": %llu, "
        "\"inconclusiveRechecks\": %llu, \"suppressedVerdicts\": %llu, "
        "\"gcUnits\": %llu, "
        "\"resyncs\": %llu, \"peakWindowUnits\": %zu, "
        "\"peakWindowEvents\": %zu, \"taintedWindowSkips\": %llu, "
        "\"escalationUsTotal\": %llu, \"escalationUsMin\": %llu, "
        "\"escalationUsMax\": %llu, \"monitoredForUs\": %lld, "
        "\"violations\": %zu,\n     \"shards\": [",
        r.tm, r.model, static_cast<unsigned long long>(r.work.commits),
        static_cast<unsigned long long>(r.work.userAborts),
        static_cast<unsigned long long>(r.work.ntOps),
        static_cast<unsigned long long>(s.eventsCaptured), s.eventsPerSec,
        static_cast<unsigned long long>(s.eventsDropped), dropPct(s),
        static_cast<unsigned long long>(s.unitsMerged), s.peakPendingUnits,
        static_cast<unsigned long long>(s.stream.unitsChecked),
        static_cast<unsigned long long>(s.stream.opsChecked),
        static_cast<unsigned long long>(s.stream.fastPathUnits),
        static_cast<unsigned long long>(s.stream.certifiedUnits),
        static_cast<unsigned long long>(s.stream.escalatedUnits),
        static_cast<unsigned long long>(s.stream.discardedUnits),
        static_cast<unsigned long long>(s.stream.certifierAttempts),
        static_cast<unsigned long long>(s.stream.certifierUsTotal),
        static_cast<unsigned long long>(s.stream.rechecks),
        static_cast<unsigned long long>(s.stream.inconclusiveRechecks),
        static_cast<unsigned long long>(s.stream.suppressedVerdicts),
        static_cast<unsigned long long>(s.stream.gcUnits),
        static_cast<unsigned long long>(s.stream.resyncs),
        s.stream.peakWindowUnits, s.stream.peakWindowEvents,
        static_cast<unsigned long long>(s.stream.taintedWindowSkips),
        static_cast<unsigned long long>(s.stream.escalationUsTotal),
        static_cast<unsigned long long>(s.stream.escalationUsMin),
        static_cast<unsigned long long>(s.stream.escalationUsMax),
        static_cast<long long>(s.monitoredFor.count()), r.violations);
    for (std::size_t k = 0; k < s.shards.size(); ++k) {
      const ShardStats& sh = s.shards[k];
      std::printf(
          "%s{\"unitsRouted\": %llu, \"crossShardJoins\": %llu, "
          "\"gapSignals\": %llu, \"taintedWindowSkips\": %llu, "
          "\"rechecks\": %llu, \"suppressedVerdicts\": %llu, "
          "\"escalationUsTotal\": %llu, \"escalationUsMax\": %llu, "
          "\"violations\": %llu}",
          k == 0 ? "" : ", ",
          static_cast<unsigned long long>(sh.unitsRouted),
          static_cast<unsigned long long>(sh.crossShardJoins),
          static_cast<unsigned long long>(sh.gapSignals),
          static_cast<unsigned long long>(sh.stream.taintedWindowSkips),
          static_cast<unsigned long long>(sh.stream.rechecks),
          static_cast<unsigned long long>(sh.stream.suppressedVerdicts),
          static_cast<unsigned long long>(sh.stream.escalationUsTotal),
          static_cast<unsigned long long>(sh.stream.escalationUsMax),
          static_cast<unsigned long long>(sh.stream.violations));
    }
    const JoinerStats& j = s.joiner;
    std::printf(
        "],\n     \"joiner\": {\"unitsRouted\": %llu, \"gapSignals\": "
        "%llu, \"restarts\": %llu, \"crossBits\": %llu, \"rechecks\": "
        "%llu, \"suppressedVerdicts\": %llu, \"violations\": %llu, "
        "\"placementRebuilds\": %llu, \"placementMoves\": %llu}}%s\n",
        static_cast<unsigned long long>(j.unitsRouted),
        static_cast<unsigned long long>(j.gapSignals),
        static_cast<unsigned long long>(j.restarts),
        static_cast<unsigned long long>(j.crossBits),
        static_cast<unsigned long long>(j.stream.rechecks),
        static_cast<unsigned long long>(j.stream.suppressedVerdicts),
        static_cast<unsigned long long>(j.stream.violations),
        static_cast<unsigned long long>(j.placementRebuilds),
        static_cast<unsigned long long>(j.placementMoves),
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

const char* flagValue(int argc, char** argv, int& i, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flagValue(argc, argv, i, "--tm")) {
      o.tm = v;
    } else if (const char* v = flagValue(argc, argv, i, "--threads")) {
      o.threads = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--ops")) {
      o.ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--vars")) {
      o.vars = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--seed")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--tx-pct")) {
      o.txPercent = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--pace-us")) {
      o.pace = std::chrono::microseconds(std::strtoll(v, nullptr, 10));
      o.paceSet = true;
    } else if (const char* v = flagValue(argc, argv, i, "--ring-capacity")) {
      o.ringCapacity = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--gc-retain")) {
      o.gcRetain = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--shards")) {
      o.shards = std::strtoul(v, nullptr, 10);
    } else if (const char* v =
                   flagValue(argc, argv, i, "--collector-threads")) {
      o.collectorThreads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v =
                   flagValue(argc, argv, i, "--placement-window")) {
      o.placementWindow = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--recheck-threads")) {
      o.recheckThreads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--max-drop-pct")) {
      o.maxDropPct = std::strtod(v, nullptr);
    } else if (std::strcmp(argv[i], "--no-certifier") == 0) {
      o.certifier = false;
    } else if (std::strcmp(argv[i], "--certifier") == 0) {
      o.certifier = true;
    } else if (const char* v =
                   flagValue(argc, argv, i, "--certifier-depth")) {
      o.certifierDepth = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--snapshot-dir")) {
      o.snapshotDir = v;
    } else if (std::strcmp(argv[i], "--inject-bug") == 0) {
      o.injectBug = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = true;
    } else {
      std::fprintf(
          stderr,
          "usage: monitor_tm [--tm NAME|all] [--threads N] [--ops N] "
          "[--vars N] [--seed N] [--tx-pct P] [--pace-us N] "
          "[--ring-capacity N] [--gc-retain N] [--shards K] "
          "[--collector-threads N] [--placement-window N] "
          "[--recheck-threads N] [--max-drop-pct P] "
          "[--no-certifier] [--certifier-depth N] "
          "[--snapshot-dir DIR] [--inject-bug] [--json]\n");
      return 2;
    }
  }
  if (o.threads < 1) o.threads = 1;
  if (o.shards < 1 || 64 % o.shards != 0) {
    std::fprintf(stderr, "--shards must divide 64 (got %zu)\n", o.shards);
    return 2;
  }
  if (o.collectorThreads < 1) o.collectorThreads = 1;
  if (o.recheckThreads < 1) o.recheckThreads = 1;
  if (o.injectBug && !o.paceSet) {
    // Self-test default: stay drop-free so a conviction is honestly
    // publishable — under saturation drops the corrupted read is
    // indistinguishable from a dropped writer's value and the monitor
    // suppresses the verdict by design (see stream_checker.hpp).
    o.pace = std::chrono::microseconds(5);
  }

  std::vector<TmKind> kinds;
  for (TmKind k : allTmKinds()) {
    if (o.tm == "all" || o.tm == tmKindName(k)) kinds.push_back(k);
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "unknown --tm %s\n", o.tm.c_str());
    return 2;
  }

  std::vector<RunRow> rows;
  rows.reserve(kinds.size());
  std::size_t totalViolations = 0;
  bool dropsOk = true;
  for (TmKind k : kinds) {
    RunRow row = runOne(k, o);
    totalViolations += row.violations;
    if (dropPct(row.stats) > o.maxDropPct) dropsOk = false;
    if (!o.json) printText(row);
    rows.push_back(row);
  }

  bool ok;
  if (o.injectBug) {
    // Detector self-test: success means the corrupted read was caught.
    ok = totalViolations > 0;
    if (!o.json) {
      std::printf("self-test: injected bug %s\n",
                  ok ? "CAUGHT" : "MISSED (this is a monitor failure)");
    }
  } else {
    ok = totalViolations == 0 && dropsOk;
    if (!o.json && !dropsOk) {
      std::printf("drop budget exceeded (--max-drop-pct %.2f)\n",
                  o.maxDropPct);
    }
  }
  if (o.json) printJson(rows, ok);
  return ok ? 0 : 1;
}
