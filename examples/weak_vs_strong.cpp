// Weak vs strong atomicity, live: the same racy program runs on the
// weak-atomicity baseline (tl2-weak) and on the instrumented designs; the
// weak TM loses plain writes, the instrumented TMs never do.
//
// The program: writers publish values with plain writes while transactions
// read-modify-write the same variables.  Under tl2-weak, a plain write
// landing between a transaction's read and commit is overwritten (lost
// update).  StrongAtomicityTm detects and retries; VersionedWriteTm's
// tagged CAS loses the write-back instead (the plain write survives) —
// both outcomes are parametrized-opacity-consistent, unlike the weak TM's.
//
//   build/examples/weak_vs_strong
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "tm/runtime.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kRounds = 1500;

// One round: plain writer publishes a unique token to var 0; a transaction
// increments var 1 after reading var 0.  We count tokens that vanished
// without the transaction ever observing them.
std::uint64_t lostTokens(TmKind kind) {
  NativeMemory mem(runtimeMemoryWords(kind, 2));
  auto tm = makeNativeRuntime(kind, mem, 2, 2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lost{0};

  std::thread txThread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      tm->transaction(0, [&](TxContext& tx) {
        const Word v = tx.read(0);
        // Widen the read-to-commit window so the plain writer actually
        // interleaves on a single-core machine.
        std::this_thread::yield();
        tx.write(0, v);  // rewrite what we read — the lost-update shape
        tx.write(1, tx.read(1) + 1);
      });
      // Let the plain writer in; lock-based TMs would otherwise starve it
      // on a single core.
      std::this_thread::yield();
    }
  });

  for (Word token = 1; token <= kRounds; ++token) {
    tm->ntWrite(1, 0, token);
    std::this_thread::yield();  // give the transaction a chance to commit
    // The token is "lost" if it is gone although no newer token exists.
    const Word now = tm->ntRead(1, 0);
    if (now != token) lost.fetch_add(1, std::memory_order_relaxed);
  }
  stop.store(true);
  txThread.join();
  return lost.load();
}

}  // namespace

int main() {
  std::printf("lost plain writes out of %zu racy rounds:\n", kRounds);
  for (TmKind kind : {TmKind::kTl2Weak, TmKind::kStrongAtomicity,
                      TmKind::kVersionedWrite, TmKind::kWriteAsTx}) {
    const std::uint64_t lost = lostTokens(kind);
    std::printf("  %-18s %8llu %s\n", tmKindName(kind),
                static_cast<unsigned long long>(lost),
                lost == 0 ? "(no lost updates)" : "(weak atomicity!)");
  }
  std::printf(
      "\ntl2-weak overwrites racy plain writes because its commit-time\n"
      "write-back cannot see them; every instrumented design keeps them.\n");
  return 0;
}
