// jungle_serve: the sharded transactional KV service, end to end.
//
//   build/examples/jungle_serve [--tm NAME] [--shards N] [--executors N]
//                               [--clients N] [--keys N] [--ops N]
//                               [--duration SECONDS] [--zipf-theta T]
//                               [--read-pct P] [--rmw-pct P] [--txn-pct P]
//                               [--txn-keys K] [--cross-shard-pct P]
//                               [--queue-capacity N]
//                               [--batch N] [--max-tx-attempts N]
//                               [--max-retries N] [--sample-permille P]
//                               [--window-epochs N] [--checker-shards K]
//                               [--collector-threads N] [--no-certifier]
//                               [--ring-capacity N] [--seed N]
//                               [--snapshot-dir DIR] [--inject-bug]
//                               [--inject-bug-xshard] [--json]
//
// Composes the whole library: N worker shards (src/serve/) each owning a
// TmRuntime of --tm kind, epoch-batched SPSC ingestion from --clients
// load-generator threads (zipfian keys, YCSB-style mix), and sampled
// runtime verification — --sample-permille of traffic replayed through
// the instrumented wrapper into the sharded stream checker.
//
// Exit status (the CI serve-smoke contract):
//   * default: 0 iff the monitors report no violation;
//   * --inject-bug: self-test — a corrupted transactional read is spliced
//     into the sampled capture stream, and the tool exits 0 iff the
//     monitor convicts it.  Implies sampling (forced to 250 permille when
//     --sample-permille is 0, so the first shard is always monitored);
//   * --inject-bug-xshard: self-test of the cross-shard path — the first
//     sampled shard silently drops its slice of one committed kTxnX (2PC
//     atomicity defect), and the tool exits 0 iff the sampled stack
//     convicts it.  Implies sampling (500 permille when unset, so shard 0
//     runs at full duty) and cross-shard traffic (--cross-shard-pct 100
//     when unset).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/load_gen.hpp"
#include "serve/service.hpp"

namespace {

using namespace jungle;
using namespace jungle::serve;

struct Options {
  std::string tm = "tl2-weak";
  ServeOptions serve;
  LoadOptions load;
  bool injectBug = false;
  bool injectBugXShard = false;
  bool json = false;
};

const char* flagValue(int argc, char** argv, int& i, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

void printText(const Options& o, const JungleServe& sv,
               const LoadReport& r) {
  const ServeStats& st = sv.stats();
  std::printf(
      "jungle_serve: tm=%s shards=%zu executors=%zu clients=%zu keys=%zu "
      "theta=%.2f mix=%u/%u/%u/%u (get/rmw/txn/put)\n",
      o.tm.c_str(), o.serve.shards, o.serve.executorsPerShard,
      o.serve.clients, o.serve.numKeys, o.load.zipfTheta, o.load.readPct,
      o.load.rmwPct, o.load.txnPct,
      100 - o.load.readPct - o.load.rmwPct - o.load.txnPct);
  std::printf(
      "  %llu commands in %.3f s -> %.0f ops/s (committed=%llu failed=%llu "
      "svc-retries=%llu tm-aborts=%llu backpressure=%llu)\n",
      static_cast<unsigned long long>(r.acked), r.seconds, r.opsPerSec,
      static_cast<unsigned long long>(st.totalCommitted()),
      static_cast<unsigned long long>(st.totalFailed()),
      static_cast<unsigned long long>([&] {
        std::uint64_t n = 0;
        for (const auto& s : st.shards) n += s.serviceRetries;
        return n;
      }()),
      static_cast<unsigned long long>(st.totalTmAborts()),
      static_cast<unsigned long long>(r.fullRetries));
  for (std::size_t s = 0; s < st.shards.size(); ++s) {
    const ShardServeStats& sh = st.shards[s];
    std::printf(
        "  shard %zu: epochs=%llu cmds=%llu committed=%llu failed=%llu%s",
        s, static_cast<unsigned long long>(sh.epochs),
        static_cast<unsigned long long>(sh.commands),
        static_cast<unsigned long long>(sh.committed),
        static_cast<unsigned long long>(sh.failed),
        sh.sampled ? "" : "\n");
    if (sh.sampled) {
      std::printf(
          " | sampled: epochs=%llu cmds=%llu resync-txs=%llu events=%llu "
          "drops=%llu violations=%zu\n",
          static_cast<unsigned long long>(sh.monitoredEpochs),
          static_cast<unsigned long long>(sh.monitoredCommands),
          static_cast<unsigned long long>(sh.resyncTxs),
          static_cast<unsigned long long>(sh.monitor.eventsCaptured),
          static_cast<unsigned long long>(sh.monitor.eventsDropped),
          sh.violations);
      for (const monitor::MonitorViolation& v : sv.violations(s)) {
        std::printf("    VIOLATION: %s\n", v.description.c_str());
      }
    }
  }
  if (st.coordinator.txns > 0) {
    const CoordinatorStats& co = st.coordinator;
    std::printf(
        "  coordinator: txns=%llu committed=%llu failed=%llu retries=%llu "
        "prepares=%llu vote-no=%llu\n",
        static_cast<unsigned long long>(co.txns),
        static_cast<unsigned long long>(co.committed),
        static_cast<unsigned long long>(co.failed),
        static_cast<unsigned long long>(co.retries),
        static_cast<unsigned long long>(co.prepares),
        static_cast<unsigned long long>(co.voteNo));
  }
  if (sv.sampledShards() > 0) {
    std::printf(
        "  sampling: %u permille of traffic via %zu shard(s) at %u "
        "permille duty\n",
        o.serve.samplePermille, sv.sampledShards(), sv.dutyPermille());
  }
  for (std::size_t k = 0; k < r.latencyUs.size(); ++k) {
    const Log2Histogram& h = r.latencyUs[k];
    if (h.count() == 0) continue;
    std::printf(
        "  latency %-3s: n=%llu p50=%lluus p95=%lluus p99=%lluus\n",
        cmdKindName(static_cast<jungle::serve::CmdKind>(k)),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.percentile(0.50)),
        static_cast<unsigned long long>(h.percentile(0.95)),
        static_cast<unsigned long long>(h.percentile(0.99)));
  }
}

void printJson(const Options& o, const JungleServe& sv, const LoadReport& r,
               bool ok) {
  const ServeStats& st = sv.stats();
  std::uint64_t monitoredEpochs = 0;
  std::uint64_t monitoredCmds = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  for (const auto& sh : st.shards) {
    if (!sh.sampled) continue;
    events += sh.monitor.eventsCaptured;
    drops += sh.monitor.eventsDropped;
    monitoredEpochs += sh.monitoredEpochs;
    monitoredCmds += sh.monitoredCommands;
  }
  std::printf(
      "{\"ok\": %s, \"tm\": \"%s\", \"shards\": %zu, \"executors\": %zu, "
      "\"clients\": %zu, \"keys\": %zu, \"zipfTheta\": %.3f, "
      "\"samplePermille\": %u, \"sampledShards\": %zu, "
      "\"dutyPermille\": %u, \"acked\": %llu, \"opsPerSec\": %.1f, "
      "\"seconds\": %.4f, \"committed\": %llu, \"failed\": %llu, "
      "\"tmAborts\": %llu, \"backpressure\": %llu, "
      "\"monitoredEpochs\": %llu, \"monitoredCommands\": %llu, "
      "\"monitorEvents\": %llu, "
      "\"monitorDrops\": %llu, \"violations\": %zu, "
      "\"crossShardPct\": %u, \"coordinator\": {\"txns\": %llu, "
      "\"committed\": %llu, \"failed\": %llu, \"retries\": %llu, "
      "\"prepares\": %llu, \"voteNo\": %llu}, \"latencyUs\": {",
      ok ? "true" : "false", o.tm.c_str(), o.serve.shards,
      o.serve.executorsPerShard, o.serve.clients, o.serve.numKeys,
      o.load.zipfTheta, o.serve.samplePermille, sv.sampledShards(),
      sv.dutyPermille(), static_cast<unsigned long long>(r.acked),
      r.opsPerSec, r.seconds,
      static_cast<unsigned long long>(st.totalCommitted()),
      static_cast<unsigned long long>(st.totalFailed()),
      static_cast<unsigned long long>(st.totalTmAborts()),
      static_cast<unsigned long long>(r.fullRetries),
      static_cast<unsigned long long>(monitoredEpochs),
      static_cast<unsigned long long>(monitoredCmds),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(drops), sv.totalViolations(),
      o.load.crossShardPct,
      static_cast<unsigned long long>(st.coordinator.txns),
      static_cast<unsigned long long>(st.coordinator.committed),
      static_cast<unsigned long long>(st.coordinator.failed),
      static_cast<unsigned long long>(st.coordinator.retries),
      static_cast<unsigned long long>(st.coordinator.prepares),
      static_cast<unsigned long long>(st.coordinator.voteNo));
  bool first = true;
  for (std::size_t k = 0; k < r.latencyUs.size(); ++k) {
    const Log2Histogram& h = r.latencyUs[k];
    if (h.count() == 0) continue;
    std::printf(
        "%s\"%s\": {\"count\": %llu, \"p50\": %llu, \"p95\": %llu, "
        "\"p99\": %llu}",
        first ? "" : ", ", cmdKindName(static_cast<jungle::serve::CmdKind>(k)),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.percentile(0.50)),
        static_cast<unsigned long long>(h.percentile(0.95)),
        static_cast<unsigned long long>(h.percentile(0.99)));
    first = false;
  }
  std::printf("}}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  o.load.readPct = 80;
  o.load.rmwPct = 10;
  o.load.txnPct = 5;
  o.load.opsPerClient = 50000;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flagValue(argc, argv, i, "--tm")) {
      o.tm = v;
    } else if (const char* v = flagValue(argc, argv, i, "--shards")) {
      o.serve.shards = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--executors")) {
      o.serve.executorsPerShard = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--clients")) {
      o.serve.clients = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--keys")) {
      o.serve.numKeys = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--ops")) {
      o.load.opsPerClient = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--duration")) {
      o.load.durationSeconds = std::strtod(v, nullptr);
      o.load.opsPerClient = 0;
    } else if (const char* v = flagValue(argc, argv, i, "--zipf-theta")) {
      o.load.zipfTheta = std::strtod(v, nullptr);
    } else if (const char* v = flagValue(argc, argv, i, "--read-pct")) {
      o.load.readPct = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--rmw-pct")) {
      o.load.rmwPct = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--txn-pct")) {
      o.load.txnPct = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--txn-keys")) {
      o.load.txnKeys = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--cross-shard-pct")) {
      o.load.crossShardPct =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--queue-capacity")) {
      o.serve.queueCapacity = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--batch")) {
      o.serve.epochBatchLimit = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--max-tx-attempts")) {
      o.serve.maxTxAttempts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--max-retries")) {
      o.serve.maxCommandRetries =
          static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--sample-permille")) {
      o.serve.samplePermille =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--window-epochs")) {
      o.serve.sampleWindowEpochs = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--checker-shards")) {
      o.serve.checkerShards = std::strtoul(v, nullptr, 10);
    } else if (const char* v =
                   flagValue(argc, argv, i, "--collector-threads")) {
      o.serve.collectorThreads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-certifier") == 0) {
      o.serve.monitorCertifier = false;
    } else if (const char* v = flagValue(argc, argv, i, "--ring-capacity")) {
      o.serve.monitorRingCapacity = std::strtoul(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--seed")) {
      o.load.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--snapshot-dir")) {
      o.serve.snapshotDir = v;
    } else if (std::strcmp(argv[i], "--inject-bug") == 0) {
      o.injectBug = true;
    } else if (std::strcmp(argv[i], "--inject-bug-xshard") == 0) {
      o.injectBugXShard = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: jungle_serve [--tm NAME] [--shards N] "
                   "[--executors N] [--clients N] [--keys N] [--ops N] "
                   "[--duration S] [--zipf-theta T] [--read-pct P] "
                   "[--rmw-pct P] [--txn-pct P] [--txn-keys K] "
                   "[--cross-shard-pct P] "
                   "[--queue-capacity N] [--batch N] [--max-tx-attempts N] "
                   "[--max-retries N] [--sample-permille P] "
                   "[--window-epochs N] [--checker-shards K] "
                   "[--collector-threads N] [--no-certifier] "
                   "[--ring-capacity N] [--seed N] [--snapshot-dir DIR] "
                   "[--inject-bug] [--inject-bug-xshard] [--json]\n");
      return 2;
    }
  }

  TmKind kind = TmKind::kTl2Weak;
  bool found = false;
  for (TmKind k : allTmKinds()) {
    if (o.tm == tmKindName(k)) {
      kind = k;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown --tm %s\n", o.tm.c_str());
    return 2;
  }
  o.serve.kind = kind;
  if (o.load.readPct + o.load.rmwPct + o.load.txnPct > 100) {
    std::fprintf(stderr, "mix percentages exceed 100\n");
    return 2;
  }
  if (o.injectBug) {
    o.serve.injectBug = monitor::InjectedBug::kCorruptTxRead;
    // The self-test needs monitored traffic: default to keeping the first
    // shard fully monitored when sampling was left off.
    if (o.serve.samplePermille == 0) o.serve.samplePermille = 250;
  }
  if (o.injectBugXShard) {
    o.serve.injectCrossShardBug = true;
    // The 2PC defect fires only on a monitored commit-apply, and the
    // conviction needs later monitored traffic on the dropped keys: keep
    // shard 0 at full duty and make every txn cross-shard by default.
    if (o.serve.samplePermille == 0) o.serve.samplePermille = 500;
    if (o.load.crossShardPct == 0) o.load.crossShardPct = 100;
    if (o.load.txnPct == 0) o.load.txnPct = 5;
  }

  JungleServe sv(o.serve);
  const LoadReport r = runLoad(sv, o.load);
  sv.shutdown();

  bool ok;
  if (o.injectBug || o.injectBugXShard) {
    ok = sv.totalViolations() > 0;
    if (!o.json) {
      std::printf("self-test: injected bug %s\n",
                  ok ? "CAUGHT" : "MISSED (this is a monitor failure)");
    }
  } else {
    ok = sv.totalViolations() == 0;
  }
  if (!o.json) printText(o, sv, r);
  if (o.json) printJson(o, sv, r, ok);
  return ok ? 0 : 1;
}
