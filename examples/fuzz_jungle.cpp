// fuzz_jungle: the property-based fuzzing subsystem as a command-line tool.
//
//   build/examples/fuzz_jungle [--seed N] [--iters N] [--budget-ms N]
//                              [--mode histories|traces|engine-diff]
//                              [--out DIR] [--inject-bug]
//
//   --seed N       master seed; the same seed replays the same instances
//                  (default 1)
//   --iters N      iteration count (default 500)
//   --budget-ms N  wall-clock budget for the whole run; 0 = none
//   --mode M       engine-diff: serial engine vs 4-thread portfolio vs
//                               brute-force reference on random histories
//                  histories:   metamorphic properties (witness validation,
//                               Theorem 6, constraint monotonicity)
//                  traces:      random TM workloads driven through the
//                               schedule explorer (sampled schedules
//                               checked against the TMs' theorems, plus a
//                               DFS-vs-DPOR strategy differential every
//                               fourth iteration)
//   --out DIR      write delta-shrunk .hist repros of any failure to DIR
//                  (e.g. examples/histories/regressions)
//   --tm KIND      traces mode: pin the TM-claim draws to one kind (e.g.
//                  si-mvcc or si-ssn) instead of sampling all seven
//   --inject-bug   mutate the portfolio engine's verdict (harness
//                  self-test: the run must FAIL and shrink the repro)
//
// Exit status: 0 = no failures (inconclusive instances are excluded),
// 1 = at least one disagreement or violation, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/fuzz_driver.hpp"

namespace {

using namespace jungle;

/// Parses "--flag=value" or "--flag value" forms; returns nullptr when
/// argv[i] is not `flag`.
const char* flagValue(int argc, char** argv, int& i, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_jungle [--seed N] [--iters N] [--budget-ms N] "
               "[--mode histories|traces|engine-diff] [--out DIR] "
               "[--tm KIND] [--inject-bug]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzOptions opts;
  opts.iterations = 500;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flagValue(argc, argv, i, "--seed")) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--iters")) {
      opts.iterations = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flagValue(argc, argv, i, "--budget-ms")) {
      opts.budget = std::chrono::milliseconds(std::strtoll(v, nullptr, 10));
    } else if (const char* v = flagValue(argc, argv, i, "--out")) {
      opts.reproDir = v;
    } else if (const char* v = flagValue(argc, argv, i, "--mode")) {
      if (std::strcmp(v, "engine-diff") == 0) {
        opts.mode = fuzz::FuzzOptions::Mode::kEngineDiff;
      } else if (std::strcmp(v, "histories") == 0) {
        opts.mode = fuzz::FuzzOptions::Mode::kHistories;
      } else if (std::strcmp(v, "traces") == 0) {
        opts.mode = fuzz::FuzzOptions::Mode::kTraces;
      } else {
        return usage();
      }
    } else if (const char* v = flagValue(argc, argv, i, "--tm")) {
      for (TmKind kind : allTmKinds()) {
        if (std::strcmp(v, tmKindName(kind)) == 0) opts.tmFilter = kind;
      }
      if (!opts.tmFilter.has_value()) {
        std::fprintf(stderr, "unknown --tm %s; kinds:", v);
        for (TmKind kind : allTmKinds()) {
          std::fprintf(stderr, " %s", tmKindName(kind));
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--inject-bug") == 0) {
      opts.mutation = fuzz::Mutation::kAcceptAborted;
    } else {
      return usage();
    }
  }

  const fuzz::FuzzReport report = fuzz::runFuzz(opts);
  std::printf("%s", fuzz::formatReport(opts, report).c_str());
  return report.failureCount() > 0 ? 1 : 0;
}
