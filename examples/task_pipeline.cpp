// Task pipeline: producers feed a transactional queue, workers move tasks
// into a result map and bump counters — several structure operations per
// transaction, all atomic together.  Exercises the composability the paper
// attributes to coarse-grained transactional blocks (§1).
//
//   build/examples/task_pipeline [tm-name]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "tm/structures.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kProducers = 2;
constexpr std::size_t kWorkers = 2;
constexpr Word kTasksPerProducer = 400;

TmKind parseKind(int argc, char** argv) {
  if (argc < 2) return TmKind::kStrongAtomicity;
  const std::string name = argv[1];
  for (TmKind k : allTmKinds()) {
    if (name == tmKindName(k)) return k;
  }
  return TmKind::kStrongAtomicity;
}

}  // namespace

int main(int argc, char** argv) {
  const TmKind kind = parseKind(argc, argv);
  constexpr std::size_t kVars = 4096;
  NativeMemory mem(runtimeMemoryWords(kind, kVars));
  auto tm = makeNativeRuntime(kind, mem, kVars, kProducers + kWorkers);
  SlotAllocator slots(kVars);

  TxQueue queue(*tm, slots, 32);
  TxMap results(*tm, slots, 1024);  // 2 × 1024 slots; 800 tasks fit
  TxCounter produced(*tm, slots);
  TxCounter consumed(*tm, slots);

  std::printf("task pipeline — TM: %s\n", tm->name());

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      const auto pid = static_cast<ProcessId>(p);
      for (Word i = 1; i <= kTasksPerProducer; ++i) {
        const Word task = static_cast<Word>(p) * kTasksPerProducer + i;
        bool ok = false;
        while (!ok) {
          tm->transaction(pid, [&](TxContext& tx) {
            ok = queue.enqueue(tx, task);
            if (ok) produced.add(tx, 1);
          });
          if (!ok) std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t wkr = 0; wkr < kWorkers; ++wkr) {
    threads.emplace_back([&, wkr] {
      const auto pid = static_cast<ProcessId>(kProducers + wkr);
      const Word target = kProducers * kTasksPerProducer;
      for (;;) {
        bool done = false;
        bool idle = false;
        tm->transaction(pid, [&](TxContext& tx) {
          done = consumed.get(tx) >= target;
          if (done) return;
          auto task = queue.dequeue(tx);
          idle = !task.has_value();
          if (idle) return;
          // "Process" the task: record task -> task*task mod 2^31.
          results.put(tx, *task, (*task * *task) & 0x7fffffff);
          consumed.add(tx, 1);
        });
        if (done) break;
        if (idle) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Audit.
  Word nProduced = produced.readAtomic(0);
  Word nConsumed = consumed.readAtomic(0);
  bool allPresent = true;
  tm->transaction(0, [&](TxContext& tx) {
    allPresent = true;
    for (Word task = 1; task <= kProducers * kTasksPerProducer; ++task) {
      auto r = results.get(tx, task);
      if (!r.has_value() || *r != ((task * task) & 0x7fffffff)) {
        allPresent = false;
      }
    }
  });
  std::printf("produced %llu, consumed %llu, results complete: %s\n",
              static_cast<unsigned long long>(nProduced),
              static_cast<unsigned long long>(nConsumed),
              allPresent ? "yes" : "NO");
  std::printf("conflict aborts: %llu\n",
              static_cast<unsigned long long>(tm->abortCount()));
  const bool ok =
      nProduced == nConsumed &&
      nProduced == kProducers * kTasksPerProducer && allPresent;
  std::printf("pipeline invariant: %s\n", ok ? "OK" : "VIOLATION");
  return ok ? 0 : 1;
}
