// check_history: the decision procedures as a command-line tool.
//
//   build/examples/check_history <file.hist> [--verbose] [--threads=N]
//                                [--timeout-ms=N] [--stats] [--format json]
//                                [--condition si|strict-ser|opacity|popacity]
//   build/examples/check_history --demo
//
// Reads a history in the textual format of src/litmus/history_parser.hpp,
// then reports well-formedness, the transactional structure, the real-time
// order, and — per memory model — whether the history ensures parametrized
// opacity, SGLA, snapshot isolation, and strict serializability.
//
//   --condition C   restrict the run to one condition of the spectrum:
//                   si (snapshot isolation: first-committer-wins plus the
//                   interval-slack read/write split), strict-ser, opacity
//                   (the SC instance), or popacity (per memory model)
//
//   --threads=N     portfolio workers for the serialization-order search
//                   (default 1: the exact sequential search)
//   --timeout-ms=N  wall-clock deadline per check; expired searches report
//                   "inconclusive" rather than "violated"
//   --stats         print search telemetry (expansions, memo hits, depth,
//                   branches, elapsed) after each check
//   --format json   machine-readable output: one JSON document with the
//                   structural facts, a per-model/per-condition verdict
//                   ("satisfied" | "violated" | "inconclusive") with its
//                   search stats, and the verdict tallies; scripts/
//                   run_experiments.sh and the CI jobs consume this
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "history/sequential.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"

namespace {

using namespace jungle;

const char* kDemo = R"(# Figure 3(a) of "Transactions in the Jungle" with v = 1, v' = 1.
p1: wr x 1   @1
p1: start    @2
p2: rd y 1   @3
p1: wr y 1   @4
p1: commit   @5
p2: rd x 1   @6
p3: start    @7
p3: commit   @8
p3: rd x 1   @9
)";

struct Options {
  bool verbose = false;
  bool stats = false;
  bool json = false;
  /// Restrict the run to one condition (--condition
  /// si|strict-ser|opacity|popacity); nullopt = the full spectrum.
  std::optional<ConditionKind> condition;
  SearchLimits limits;
};

void printStats(const char* what, const SearchStats& s) {
  std::printf(
      "  [%s] expansions=%llu memo=%llu/%llu hit/miss depth=%llu "
      "branches=%llu threads=%u elapsed=%lldus\n",
      what, static_cast<unsigned long long>(s.expansions),
      static_cast<unsigned long long>(s.memoHits),
      static_cast<unsigned long long>(s.memoMisses),
      static_cast<unsigned long long>(s.maxDepth),
      static_cast<unsigned long long>(s.branchesExplored), s.threadsUsed,
      static_cast<long long>(s.elapsed.count()));
}

/// Verdict tallies for the summary line.  An inconclusive check (budget or
/// deadline stop) is tracked on its own and never counted as a violation.
struct VerdictCounts {
  std::size_t satisfied = 0;
  std::size_t violated = 0;
  std::size_t inconclusive = 0;
};

const char* verdict(const CheckResult& r, VerdictCounts& counts) {
  if (r.inconclusive) {
    ++counts.inconclusive;
    return "inconclusive";
  }
  if (r.satisfied) {
    ++counts.satisfied;
    return "SATISFIED";
  }
  ++counts.violated;
  return "violated";
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

const char* jsonVerdict(const CheckResult& r, VerdictCounts& counts) {
  if (r.inconclusive) {
    ++counts.inconclusive;
    return "inconclusive";
  }
  if (r.satisfied) {
    ++counts.satisfied;
    return "satisfied";
  }
  ++counts.violated;
  return "violated";
}

void jsonCheck(const char* model, const char* condition,
               const CheckResult& r, VerdictCounts& counts, bool last) {
  std::printf(
      "    {\"model\": \"%s\", \"condition\": \"%s\", \"verdict\": \"%s\", "
      "\"stats\": {\"expansions\": %llu, \"memoHits\": %llu, "
      "\"memoMisses\": %llu, \"maxDepth\": %llu, \"branches\": %llu, "
      "\"threads\": %u, \"elapsedUs\": %lld}}%s\n",
      model, condition, jsonVerdict(r, counts),
      static_cast<unsigned long long>(r.stats.expansions),
      static_cast<unsigned long long>(r.stats.memoHits),
      static_cast<unsigned long long>(r.stats.memoMisses),
      static_cast<unsigned long long>(r.stats.maxDepth),
      static_cast<unsigned long long>(r.stats.branchesExplored),
      r.stats.threadsUsed, static_cast<long long>(r.stats.elapsed.count()),
      last ? "" : ",");
}

int runJson(const std::string& text, const Options& opts) {
  auto parsed = litmus::parseHistory(text);
  if (!parsed) {
    std::printf("{\"parseError\": \"%s\"}\n", jsonEscape(parsed.error).c_str());
    return 2;
  }
  const History& h = *parsed.history;
  HistoryAnalysis analysis(h);
  if (!analysis.wellFormed()) {
    std::printf("{\"wellFormed\": false, \"error\": \"%s\"}\n",
                jsonEscape(analysis.wellFormednessError()).c_str());
    return 1;
  }
  std::printf(
      "{\n  \"wellFormed\": true,\n  \"instances\": %zu,\n"
      "  \"processes\": %zu,\n  \"transactions\": %zu,\n"
      "  \"committed\": %zu,\n  \"checks\": [\n",
      h.size(), h.processes().size(), analysis.transactions().size(),
      analysis.countCommitted());
  SpecMap specs;
  SglaOptions sglaOpts;
  sglaOpts.limits = opts.limits;
  VerdictCounts counts;
  if (opts.condition.has_value()) {
    // One condition only.  popacity still fans out across the models; the
    // SC-based conditions are a single check each.
    if (*opts.condition == ConditionKind::kParametrizedOpacity) {
      const auto models = allModels();
      for (std::size_t i = 0; i < models.size(); ++i) {
        const CheckResult po =
            checkParametrizedOpacity(h, *models[i], specs, opts.limits);
        jsonCheck(models[i]->name(), "parametrized-opacity", po, counts,
                  i + 1 == models.size());
      }
    } else {
      const CheckResult r = checkCondition(*opts.condition, h, scModel(),
                                           specs, opts.limits);
      jsonCheck("committed-only", conditionKindName(*opts.condition), r,
                counts, true);
    }
  } else {
    const auto models = allModels();
    for (std::size_t i = 0; i < models.size(); ++i) {
      const MemoryModel* m = models[i];
      const CheckResult po =
          checkParametrizedOpacity(h, *m, specs, opts.limits);
      const CheckResult sg = checkSgla(h, *m, specs, sglaOpts);
      jsonCheck(m->name(), "parametrized-opacity", po, counts, false);
      jsonCheck(m->name(), "sgla", sg, counts, false);
    }
    const CheckResult si = checkSnapshotIsolation(h, specs, opts.limits);
    jsonCheck("committed-only", "snapshot-isolation", si, counts, false);
    const CheckResult ss = checkStrictSerializability(h, specs, opts.limits);
    jsonCheck("committed-only", "strict-serializability", ss, counts, true);
  }
  std::printf(
      "  ],\n  \"summary\": {\"satisfied\": %zu, \"violated\": %zu, "
      "\"inconclusive\": %zu}\n}\n",
      counts.satisfied, counts.violated, counts.inconclusive);
  return 0;
}

int run(const std::string& text, const Options& opts) {
  if (opts.json) return runJson(text, opts);
  auto parsed = litmus::parseHistory(text);
  if (!parsed) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 2;
  }
  const History& h = *parsed.history;
  HistoryAnalysis analysis(h);
  std::printf("history: %zu operation instances, %zu processes\n", h.size(),
              h.processes().size());
  if (!analysis.wellFormed()) {
    std::printf("ILL-FORMED: %s\n", analysis.wellFormednessError().c_str());
    return 1;
  }
  std::printf("well-formed; %zu transactions (%zu committed)\n",
              analysis.transactions().size(), analysis.countCommitted());
  if (opts.verbose) {
    std::printf("\n%s", litmus::formatHistory(h).c_str());
    std::printf("\nreal-time order (≺h, transitively closed):\n  ");
    for (const auto& [i, j] : analysis.realTimePairs()) {
      std::printf("(%llu,%llu) ", static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(j));
    }
    std::printf("\n");
  }

  SpecMap specs;
  SglaOptions sglaOpts;
  sglaOpts.limits = opts.limits;
  VerdictCounts counts;
  if (opts.condition.has_value()) {
    if (*opts.condition == ConditionKind::kParametrizedOpacity) {
      std::printf("\n%-11s %-22s\n", "model", "parametrized opacity");
      for (const MemoryModel* m : allModels()) {
        const CheckResult po =
            checkParametrizedOpacity(h, *m, specs, opts.limits);
        std::printf("%-11s %-22s\n", m->name(), verdict(po, counts));
        if (opts.stats) printStats("popacity", po.stats);
      }
    } else {
      const CheckResult r = checkCondition(*opts.condition, h, scModel(),
                                           specs, opts.limits);
      std::printf("\n%s: %s\n", conditionKindName(*opts.condition),
                  verdict(r, counts));
      if (opts.stats) printStats(conditionKindName(*opts.condition), r.stats);
      if (opts.verbose && !r.satisfied && !r.inconclusive) {
        std::printf("why it fails:\n%s\n", r.explanation.c_str());
      }
    }
  } else {
    std::printf("\n%-11s %-22s %-12s\n", "model", "parametrized opacity",
                "SGLA");
    for (const MemoryModel* m : allModels()) {
      const CheckResult po =
          checkParametrizedOpacity(h, *m, specs, opts.limits);
      const CheckResult sg = checkSgla(h, *m, specs, sglaOpts);
      std::printf("%-11s %-22s %-12s\n", m->name(), verdict(po, counts),
                  verdict(sg, counts));
      if (opts.stats) {
        printStats("popacity", po.stats);
        printStats("sgla", sg.stats);
      }
    }
    const CheckResult si = checkSnapshotIsolation(h, specs, opts.limits);
    std::printf("\nsnapshot isolation (committed only): %s\n",
                verdict(si, counts));
    if (opts.stats) printStats("si", si.stats);
    const CheckResult ss = checkStrictSerializability(h, specs, opts.limits);
    std::printf("strict serializability (committed only): %s\n",
                verdict(ss, counts));
    if (opts.stats) printStats("strict-ser", ss.stats);
  }
  std::printf(
      "summary: %zu satisfied, %zu violated, %zu inconclusive "
      "(inconclusive = search stopped on its budget or deadline; "
      "not evidence of a violation)\n",
      counts.satisfied, counts.violated, counts.inconclusive);

  // The SC witness/explanation epilogue belongs to the full-spectrum view;
  // a pinned --condition already printed its own explanation above.
  if (opts.verbose && !opts.condition.has_value()) {
    const CheckResult po =
        checkParametrizedOpacity(h, scModel(), specs, opts.limits);
    if (po.satisfied && po.witness.has_value()) {
      std::printf("\nwitness sequential history under SC:\n%s",
                  litmus::formatHistory(*po.witness).c_str());
    } else if (!po.satisfied) {
      std::printf("\nwhy SC-parametrized opacity fails:\n%s\n",
                  po.explanation.c_str());
    }
  }
  return 0;
}

/// Parses "--flag=value" or "--flag value" forms; returns nullptr when
/// argv[i] is not `flag`.
const char* flagValue(int argc, char** argv, int& i, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0 ||
        std::strcmp(argv[i], "-v") == 0) {
      opts.verbose = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.stats = true;
    } else if (const char* v = flagValue(argc, argv, i, "--threads")) {
      opts.limits.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (opts.limits.threads == 0) opts.limits.threads = 1;
    } else if (const char* v = flagValue(argc, argv, i, "--timeout-ms")) {
      opts.limits.timeout =
          std::chrono::milliseconds(std::strtoll(v, nullptr, 10));
      opts.limits.maxExpansions = 0;  // the deadline is the budget now
    } else if (const char* v = flagValue(argc, argv, i, "--condition")) {
      if (std::strcmp(v, "si") == 0) {
        opts.condition = ConditionKind::kSnapshotIsolation;
      } else if (std::strcmp(v, "strict-ser") == 0) {
        opts.condition = ConditionKind::kStrictSerializability;
      } else if (std::strcmp(v, "opacity") == 0) {
        opts.condition = ConditionKind::kOpacity;
      } else if (std::strcmp(v, "popacity") == 0) {
        opts.condition = ConditionKind::kParametrizedOpacity;
      } else {
        std::fprintf(stderr,
                     "unknown --condition %s "
                     "(si|strict-ser|opacity|popacity)\n",
                     v);
        return 2;
      }
    } else if (const char* v = flagValue(argc, argv, i, "--format")) {
      if (std::strcmp(v, "json") == 0) {
        opts.json = true;
      } else if (std::strcmp(v, "text") != 0) {
        std::fprintf(stderr, "unknown --format %s (text|json)\n", v);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      path = "-demo-";
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: check_history <file.hist> [--verbose] [--threads=N] "
                 "[--timeout-ms=N] [--stats] [--format json] "
                 "[--condition si|strict-ser|opacity|popacity] | --demo\n");
    return 2;
  }
  if (path == "-demo-") {
    if (!opts.json) std::printf("(running the built-in Figure 3 demo)\n\n");
    return run(kDemo, opts);
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return run(buf.str(), opts);
}
