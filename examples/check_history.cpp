// check_history: the decision procedures as a command-line tool.
//
//   build/examples/check_history <file.hist> [--verbose]
//   build/examples/check_history --demo
//
// Reads a history in the textual format of src/litmus/history_parser.hpp,
// then reports well-formedness, the transactional structure, the real-time
// order, and — per memory model — whether the history ensures parametrized
// opacity, SGLA, and strict serializability.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "history/sequential.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"

namespace {

using namespace jungle;

const char* kDemo = R"(# Figure 3(a) of "Transactions in the Jungle" with v = 1, v' = 1.
p1: wr x 1   @1
p1: start    @2
p2: rd y 1   @3
p1: wr y 1   @4
p1: commit   @5
p2: rd x 1   @6
p3: start    @7
p3: commit   @8
p3: rd x 1   @9
)";

int run(const std::string& text, bool verbose) {
  auto parsed = litmus::parseHistory(text);
  if (!parsed) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 2;
  }
  const History& h = *parsed.history;
  HistoryAnalysis analysis(h);
  std::printf("history: %zu operation instances, %zu processes\n", h.size(),
              h.processes().size());
  if (!analysis.wellFormed()) {
    std::printf("ILL-FORMED: %s\n", analysis.wellFormednessError().c_str());
    return 1;
  }
  std::printf("well-formed; %zu transactions (%zu committed)\n",
              analysis.transactions().size(), analysis.countCommitted());
  if (verbose) {
    std::printf("\n%s", litmus::formatHistory(h).c_str());
    std::printf("\nreal-time order (≺h, transitively closed):\n  ");
    for (const auto& [i, j] : analysis.realTimePairs()) {
      std::printf("(%llu,%llu) ", static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(j));
    }
    std::printf("\n");
  }

  SpecMap specs;
  std::printf("\n%-11s %-22s %-12s\n", "model", "parametrized opacity",
              "SGLA");
  for (const MemoryModel* m : allModels()) {
    const CheckResult po = checkParametrizedOpacity(h, *m, specs);
    const CheckResult sg = checkSgla(h, *m, specs);
    std::printf("%-11s %-22s %-12s\n", m->name(),
                po.inconclusive ? "inconclusive"
                : po.satisfied  ? "SATISFIED"
                                : "violated",
                sg.inconclusive ? "inconclusive"
                : sg.satisfied  ? "SATISFIED"
                                : "violated");
  }
  const CheckResult ss = checkStrictSerializability(h, specs);
  std::printf("\nstrict serializability (committed only): %s\n",
              ss.satisfied ? "SATISFIED" : "violated");

  if (verbose) {
    const CheckResult po = checkParametrizedOpacity(h, scModel(), specs);
    if (po.satisfied && po.witness.has_value()) {
      std::printf("\nwitness sequential history under SC:\n%s",
                  litmus::formatHistory(*po.witness).c_str());
    } else if (!po.satisfied) {
      std::printf("\nwhy SC-parametrized opacity fails:\n%s\n",
                  po.explanation.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0 ||
        std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      path = "-demo-";
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: check_history <file.hist> [--verbose] | --demo\n");
    return 2;
  }
  if (path == "-demo-") {
    std::printf("(running the built-in Figure 3 demo)\n\n");
    return run(kDemo, verbose);
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return run(buf.str(), verbose);
}
