// Quickstart: transactional bank transfers with concurrent plain readers.
//
// Demonstrates the core API: pick a TM implementation (each guarantees
// opacity parametrized by a different memory-model class), run transactions
// from several threads, and mix in non-transactional reads whose cost
// depends on the chosen TM's instrumentation.
//
//   build/examples/quickstart [tm-name]
//
// tm-name ∈ {global-lock, write-as-tx, versioned-write, strong-atomicity,
// tl2-weak}; default versioned-write.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "tm/runtime.hpp"
#include "tm/txvar.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kAccounts = 16;
constexpr std::size_t kThreads = 4;
constexpr std::size_t kTransfersPerThread = 2000;
constexpr Word kInitialBalance = 1000;

TmKind parseKind(int argc, char** argv) {
  if (argc < 2) return TmKind::kVersionedWrite;
  const std::string name = argv[1];
  for (TmKind k : allTmKinds()) {
    if (name == tmKindName(k)) return k;
  }
  std::fprintf(stderr, "unknown TM '%s'; using versioned-write\n",
               name.c_str());
  return TmKind::kVersionedWrite;
}

}  // namespace

int main(int argc, char** argv) {
  const TmKind kind = parseKind(argc, argv);
  NativeMemory mem(runtimeMemoryWords(kind, kAccounts));
  auto tm = makeNativeRuntime(kind, mem, kAccounts, kThreads);

  std::printf("jungle-tm quickstart — TM: %s (instrumented reads: %s, "
              "writes: %s)\n",
              tm->name(), tm->instrumentsNtReads() ? "yes" : "no",
              tm->instrumentsNtWrites() ? "yes" : "no");

  // Seed the accounts transactionally.
  tm->transaction(0, [&](TxContext& tx) {
    for (ObjectId a = 0; a < kAccounts; ++a) tx.write(a, kInitialBalance);
  });

  // Concurrent transfers; every thread also audits totals with plain reads.
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto pid = static_cast<ProcessId>(t);
      std::uint64_t state = 0x1234 + t;
      for (std::size_t i = 0; i < kTransfersPerThread; ++i) {
        const ObjectId from = splitmix64(state) % kAccounts;
        const ObjectId to = splitmix64(state) % kAccounts;
        const Word amount = splitmix64(state) % 10;
        if (from == to) continue;
        tm->transaction(pid, [&](TxContext& tx) {
          const Word a = tx.read(from);
          const Word b = tx.read(to);
          if (a < amount) return;  // insufficient funds: no-op commit
          tx.write(from, a - amount);
          tx.write(to, b + amount);
        });
        if (i % 256 == 0) {
          // Plain read of one account — instrumentation cost depends on TM.
          (void)tm->ntRead(pid, from);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Audit: the total is conserved.
  Word total = 0;
  tm->transaction(0, [&](TxContext& tx) {
    total = 0;
    for (ObjectId a = 0; a < kAccounts; ++a) total += tx.read(a);
  });
  const Word expected = kInitialBalance * kAccounts;
  std::printf("total after %zu transfers: %llu (expected %llu) — %s\n",
              kThreads * kTransfersPerThread,
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected),
              total == expected ? "OK" : "VIOLATION");
  std::printf("conflict aborts observed: %llu\n",
              static_cast<unsigned long long>(tm->abortCount()));
  return total == expected ? 0 : 1;
}
