// E5 — the introduction's motivating trade-off: batch-update a region of
// shared data (a) staying transactional per element, versus (b) privatize →
// plain accesses → publish.  The privatized path pays two transactions per
// batch but its per-element cost is the TM's plain-access cost — i.e., the
// instrumentation level (the subject of Theorems 3–5) decides the crossover
// batch size.
#include <benchmark/benchmark.h>

#include "tm/runtime.hpp"
#include "tm/txvar.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kRegionSize = 64;

struct Env {
  explicit Env(TmKind kind)
      : mem(runtimeMemoryWords(kind, kRegionSize + 1)),
        tm(makeNativeRuntime(kind, mem, kRegionSize + 1, 2)),
        region(*tm, /*ownerSlot=*/kRegionSize, slots()) {}

  static std::vector<ObjectId> slots() {
    std::vector<ObjectId> s;
    for (std::size_t i = 0; i < kRegionSize; ++i) {
      s.push_back(static_cast<ObjectId>(i));
    }
    return s;
  }

  NativeMemory mem;
  std::unique_ptr<TmRuntime> tm;
  PrivatizableRegion region;
};

void BM_TransactionalBatch(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  Env env(kind);
  for (auto _ : state) {
    // One transaction per element — the fully-transactional baseline.
    for (std::size_t i = 0; i < batch; ++i) {
      env.tm->transaction(0, [&](TxContext& tx) {
        const std::size_t idx = i % kRegionSize;
        env.region.txWrite(tx, idx, env.region.txRead(tx, idx) + 1);
      });
    }
  }
  state.SetLabel(std::string(tmKindName(kind)) + "/batch=" +
                 std::to_string(batch));
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_PrivatizedBatch(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  Env env(kind);
  for (auto _ : state) {
    const bool owned = env.region.privatize(0);
    benchmark::DoNotOptimize(owned);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t idx = i % kRegionSize;
      env.region.write(0, idx, env.region.read(0, idx) + 1);
    }
    env.region.publish(0);
  }
  state.SetLabel(std::string(tmKindName(kind)) + "/batch=" +
                 std::to_string(batch));
  state.SetItemsProcessed(state.iterations() * batch);
}

void registerAll() {
  // tl2-weak is excluded: mixing plain accesses with its transactions is
  // unsafe (see examples/weak_vs_strong), so the comparison is meaningless.
  for (TmKind kind : {TmKind::kGlobalLock, TmKind::kWriteAsTx,
                      TmKind::kVersionedWrite, TmKind::kStrongAtomicity}) {
    for (long batch : {4, 16, 64, 256}) {
      benchmark::RegisterBenchmark("TransactionalBatch",
                                   BM_TransactionalBatch)
          ->Args({static_cast<long>(kind), batch});
      benchmark::RegisterBenchmark("PrivatizedBatch", BM_PrivatizedBatch)
          ->Args({static_cast<long>(kind), batch});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
