// E5e — aggregate throughput of the sharded KV service (src/serve/), and
// the cost of sampled runtime verification at service level.
//
// Each iteration stands up a full JungleServe (shards, clients, rings,
// thread pool), drives the built-in load generator for a fixed op budget,
// and shuts down gracefully; the measured time is the load generator's own
// wall clock (manual time), so construction and drain are excluded.
//
// Row families (label = Serve/<tm>/shards=S/p=P):
//   * p=0    — bare service, no monitor anywhere;
//   * p=10   — 1% of total traffic duty-cycled through the instrumented
//     runtime into the sharded stream checker.  p=10 vs p=0 at equal args
//     is the sampling overhead the acceptance bar caps at 10%;
//   * p=100  — 10% sampling, to show the cost curve's slope.
//
// Counters: ops_s (aggregate committed+failed acks per second),
// committed, failed, tm_aborts, monitored_epochs, resync_txs, and
// mon_drop_pct (events the sampled monitors dropped — 0 keeps the
// overhead comparison honest).  violations must always read 0 here; a
// nonzero value means a stock TM was convicted and the row is invalid.
// Per-command-type end-to-end latency percentiles (<kind>_p50/p95/p99_us,
// from the load generator's log2 histograms) quantify what sampling does
// to tail latency, not just to throughput.
//
// TxnX family (label = ServeTxnX/<tm>/shards=4/x=X): the cross-shard 2PC
// path.  The mix holds txnPct at 20% and issues {0, 25, 100}% of those
// transactions as cross-shard kTxnX, i.e. {0, 5, 20}% of TOTAL traffic
// rides the coordinator.  x=0 must match the base family within noise
// (no coordinator work happens); the x>0 rows price the 2PC commit
// latency honestly — txnx_p50/p95/p99_us against txn_*_us is the
// cross-shard latency tax, and x_retries counts abort-and-retry rounds.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"

namespace {

using namespace jungle;
using namespace jungle::serve;

constexpr TmKind kKinds[] = {TmKind::kTl2Weak, TmKind::kSnapshotIsolation};

void BM_Serve(benchmark::State& state) {
  const TmKind kind = kKinds[state.range(0)];
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto permille = static_cast<unsigned>(state.range(2));

  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t tmAborts = 0;
  std::uint64_t monitoredEpochs = 0;
  std::uint64_t monitoredCmds = 0;
  std::uint64_t commands = 0;
  std::uint64_t resyncTxs = 0;
  std::uint64_t captured = 0;
  std::uint64_t dropped = 0;
  std::uint64_t violations = 0;
  double acked = 0;
  std::array<Log2Histogram, kCmdKindCount> latency;

  for (auto _ : state) {
    ServeOptions o;
    o.kind = kind;
    o.shards = shards;
    o.clients = 2;
    o.numKeys = 1 << 13;
    o.samplePermille = permille;
    JungleServe sv(o);

    LoadOptions lo;
    lo.opsPerClient = 100000;
    lo.readPct = 80;
    lo.rmwPct = 10;
    lo.txnPct = 5;
    lo.seed = 42;
    const LoadReport r = runLoad(sv, lo);
    sv.shutdown();

    state.SetIterationTime(r.seconds);
    acked += static_cast<double>(r.acked);
    for (std::size_t i = 0; i < latency.size(); ++i) {
      latency[i].merge(r.latencyUs[i]);
    }
    committed += r.committed;
    failed += r.failed;
    const ServeStats& st = sv.stats();
    tmAborts += st.totalTmAborts();
    violations += st.totalViolations();
    for (const auto& sh : st.shards) {
      monitoredEpochs += sh.monitoredEpochs;
      monitoredCmds += sh.monitoredCommands;
      commands += sh.commands;
      resyncTxs += sh.resyncTxs;
      captured += sh.monitor.eventsCaptured;
      dropped += sh.monitor.eventsDropped;
    }
  }

  state.counters["ops_s"] =
      benchmark::Counter(acked, benchmark::Counter::kIsRate);
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["tm_aborts"] = static_cast<double>(tmAborts);
  state.counters["monitored_epochs"] = static_cast<double>(monitoredEpochs);
  state.counters["sampled_cmd_pct"] =
      commands == 0 ? 0.0
                    : 100.0 * static_cast<double>(monitoredCmds) /
                          static_cast<double>(commands);
  state.counters["resync_txs"] = static_cast<double>(resyncTxs);
  state.counters["mon_drop_pct"] =
      captured + dropped == 0
          ? 0.0
          : 100.0 * static_cast<double>(dropped) /
                static_cast<double>(captured + dropped);
  state.counters["violations"] = static_cast<double>(violations);
  // End-to-end ack latency per command type (open-loop client view;
  // load_gen.hpp), merged across clients and iterations.
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const Log2Histogram& h = latency[i];
    if (h.count() == 0) continue;
    const std::string kindName = cmdKindName(static_cast<jungle::serve::CmdKind>(i));
    state.counters[kindName + "_p50_us"] =
        static_cast<double>(h.percentile(0.50));
    state.counters[kindName + "_p95_us"] =
        static_cast<double>(h.percentile(0.95));
    state.counters[kindName + "_p99_us"] =
        static_cast<double>(h.percentile(0.99));
  }
  state.SetLabel(std::string("Serve/") + tmKindName(kind) +
                 "/shards=" + std::to_string(shards) +
                 "/p=" + std::to_string(permille));
}

void BM_ServeTxnX(benchmark::State& state) {
  const TmKind kind = kKinds[state.range(0)];
  const auto crossPct = static_cast<unsigned>(state.range(1));
  constexpr std::size_t kShards = 4;

  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t tmAborts = 0;
  std::uint64_t xTxns = 0;
  std::uint64_t xRetries = 0;
  std::uint64_t xVoteNo = 0;
  std::uint64_t violations = 0;
  double acked = 0;
  std::array<Log2Histogram, kCmdKindCount> latency;

  for (auto _ : state) {
    ServeOptions o;
    o.kind = kind;
    o.shards = kShards;
    o.clients = 2;
    o.numKeys = 1 << 13;
    JungleServe sv(o);

    LoadOptions lo;
    lo.opsPerClient = 100000;
    lo.readPct = 70;
    lo.rmwPct = 5;
    lo.txnPct = 20;
    lo.crossShardPct = crossPct;
    lo.seed = 42;
    const LoadReport r = runLoad(sv, lo);
    sv.shutdown();

    state.SetIterationTime(r.seconds);
    acked += static_cast<double>(r.acked);
    for (std::size_t i = 0; i < latency.size(); ++i) {
      latency[i].merge(r.latencyUs[i]);
    }
    committed += r.committed;
    failed += r.failed;
    const ServeStats& st = sv.stats();
    tmAborts += st.totalTmAborts();
    violations += st.totalViolations();
    xTxns += st.coordinator.txns;
    xRetries += st.coordinator.retries;
    xVoteNo += st.coordinator.voteNo;
  }

  state.counters["ops_s"] =
      benchmark::Counter(acked, benchmark::Counter::kIsRate);
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["tm_aborts"] = static_cast<double>(tmAborts);
  state.counters["x_txns"] = static_cast<double>(xTxns);
  state.counters["x_retries"] = static_cast<double>(xRetries);
  state.counters["x_vote_no"] = static_cast<double>(xVoteNo);
  state.counters["violations"] = static_cast<double>(violations);
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const Log2Histogram& h = latency[i];
    if (h.count() == 0) continue;
    const std::string kindName =
        cmdKindName(static_cast<jungle::serve::CmdKind>(i));
    state.counters[kindName + "_p50_us"] =
        static_cast<double>(h.percentile(0.50));
    state.counters[kindName + "_p95_us"] =
        static_cast<double>(h.percentile(0.95));
    state.counters[kindName + "_p99_us"] =
        static_cast<double>(h.percentile(0.99));
  }
  // x = cross-shard share of TOTAL traffic (txnPct is 20%).
  state.SetLabel(std::string("ServeTxnX/") + tmKindName(kind) +
                 "/shards=4/x=" + std::to_string(crossPct / 5));
}

void registerRows() {
  for (int k = 0; k < 2; ++k) {
    for (std::int64_t shards : {1, 4}) {
      for (std::int64_t permille : {0, 10, 100}) {
        benchmark::RegisterBenchmark("Serve", BM_Serve)
            ->Args({k, shards, permille})
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
    // Cross-shard fractions of the txn mix; at txnPct=20 these put
    // {0, 5, 20}% of total traffic on the 2PC coordinator.
    for (std::int64_t crossPct : {0, 25, 100}) {
      benchmark::RegisterBenchmark("ServeTxnX", BM_ServeTxnX)
          ->Args({k, crossPct})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerRows();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
