// E6 (extension) — transactional data-structure throughput per TM design:
// how the per-access TM overhead (the theorems' instrumentation/CAS costs)
// compounds through structure operations of different sizes (counter: 1-2
// accesses; queue op: ~3; map op: ~2-4 probes × 2).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tm/structures.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kVars = 2048;

struct Env {
  explicit Env(TmKind kind)
      : mem(runtimeMemoryWords(kind, kVars)),
        tm(makeNativeRuntime(kind, mem, kVars, 4)),
        slots(kVars),
        counter(*tm, slots),
        stack(*tm, slots, 128),
        queue(*tm, slots, 128),
        map(*tm, slots, 256),
        list(*tm, slots, 256) {}

  NativeMemory mem;
  std::unique_ptr<TmRuntime> tm;
  SlotAllocator slots;
  TxCounter counter;
  TxStack stack;
  TxQueue queue;
  TxMap map;
  TxSortedList list;
};

void BM_CounterAdd(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  for (auto _ : state) {
    env.counter.addAtomic(0, 1);
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations());
}

void BM_QueuePingPong(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  for (auto _ : state) {
    env.tm->transaction(0, [&](TxContext& tx) { env.queue.enqueue(tx, 7); });
    env.tm->transaction(0, [&](TxContext& tx) {
      benchmark::DoNotOptimize(env.queue.dequeue(tx));
    });
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_StackPushPop(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  for (auto _ : state) {
    env.tm->transaction(0, [&](TxContext& tx) {
      env.stack.push(tx, 3);
      benchmark::DoNotOptimize(env.stack.pop(tx));
    });
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_MapMixed(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  // Pre-populate half the key space.
  env.tm->transaction(0, [&](TxContext& tx) {
    for (Word k = 1; k <= 128; k += 2) env.map.put(tx, k, k);
  });
  Rng rng(7);
  for (auto _ : state) {
    const Word k = 1 + rng.below(256);
    env.tm->transaction(0, [&](TxContext& tx) {
      if (rng.chance(1, 4)) {
        env.map.put(tx, k, k);
      } else {
        benchmark::DoNotOptimize(env.map.get(tx, k));
      }
    });
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations());
}

// The classic long-read-set workload: membership lookups against a sorted
// list of `len` elements — transaction read-set size grows linearly, which
// is where TL2-style validation costs show.
void BM_ListLookup(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto len = static_cast<Word>(state.range(1));
  Env env(kind);
  env.tm->transaction(0, [&](TxContext& tx) {
    for (Word k = 1; k <= len; ++k) env.list.insert(tx, 2 * k);
  });
  Rng rng(3);
  for (auto _ : state) {
    const Word probe = 1 + rng.below(2 * len);  // ~50% hits
    env.tm->transaction(0, [&](TxContext& tx) {
      benchmark::DoNotOptimize(env.list.contains(tx, probe));
    });
  }
  state.SetLabel(std::string(tmKindName(kind)) + "/len=" +
                 std::to_string(len));
  state.SetItemsProcessed(state.iterations());
}

void registerAll() {
  for (TmKind kind : allTmKinds()) {
    const auto arg = static_cast<long>(kind);
    benchmark::RegisterBenchmark("CounterAdd", BM_CounterAdd)->Arg(arg);
    benchmark::RegisterBenchmark("QueuePingPong", BM_QueuePingPong)->Arg(arg);
    benchmark::RegisterBenchmark("StackPushPop", BM_StackPushPop)->Arg(arg);
    benchmark::RegisterBenchmark("MapMixed", BM_MapMixed)->Arg(arg);
    for (long len : {8, 64, 200}) {
      benchmark::RegisterBenchmark("ListLookup", BM_ListLookup)
          ->Args({arg, len});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
