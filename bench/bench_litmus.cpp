// F1 / F2 — the paper's litmus figures, live: run the Figure 1 and Figure
// 2(c) programs concurrently on every TM implementation, tally outcome
// frequencies, and verify every observed outcome is allowed by opacity
// parametrized by the model the TM targets.  Regenerates the figures'
// "can this happen?" data from execution rather than from the checker.
//
// This binary prints tables instead of google-benchmark timings: the
// figure data IS the deliverable.
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "litmus/figures.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "tm/runtime.hpp"

namespace {

using namespace jungle;

constexpr int kTrials = 2000;

const MemoryModel& targetModel(TmKind kind) {
  switch (kind) {
    case TmKind::kGlobalLock:
      return idealizedModel();
    case TmKind::kWriteAsTx:
    case TmKind::kVersionedWrite:
      return alphaModel();
    case TmKind::kStrongAtomicity:
      return scModel();
    case TmKind::kTl2Weak:
      return scModel();  // weak atomicity: violations are the finding
    case TmKind::kSnapshotIsolation:
    case TmKind::kSiSsn:
      // The MVCC kinds claim SI (resp. strict-ser) over SC memory; the
      // figure programs have no write skew, so their outcomes must also
      // be SC-opaque — checked as such here.
      return scModel();
  }
  return scModel();
}

// ------------------------------------------------------------- Figure 1

// p0: atomic { x := 1; y := 1 }.  p1: r1 := x; r2 := y (plain).
std::map<std::pair<Word, Word>, int> runFig1(TmKind kind) {
  std::map<std::pair<Word, Word>, int> freq;
  for (int t = 0; t < kTrials; ++t) {
    NativeMemory mem(runtimeMemoryWords(kind, 2));
    auto tm = makeNativeRuntime(kind, mem, 2, 2);
    Word r1 = 0, r2 = 0;
    std::thread writer([&] {
      tm->transaction(0, [](TxContext& tx) {
        tx.write(0, 1);
        tx.write(1, 1);
      });
    });
    r1 = tm->ntRead(1, 0);
    r2 = tm->ntRead(1, 1);
    writer.join();
    ++freq[{r1, r2}];
  }
  return freq;
}

// ------------------------------------------------------------ Figure 2a

// p0: atomic { x := 1; x := 2 }; atomic { y := 2 }.
// p1: atomic { a := x; b := y; z := a − b }.
std::map<std::pair<Word, Word>, int> runFig2a(TmKind kind) {
  std::map<std::pair<Word, Word>, int> freq;
  for (int t = 0; t < kTrials; ++t) {
    NativeMemory mem(runtimeMemoryWords(kind, 3));
    auto tm = makeNativeRuntime(kind, mem, 3, 2);
    Word a = 0, b = 0;
    std::thread writer([&] {
      tm->transaction(0, [](TxContext& tx) {
        tx.write(0, 1);
        tx.write(0, 2);
      });
      tm->transaction(0, [](TxContext& tx) { tx.write(1, 2); });
    });
    tm->transaction(1, [&](TxContext& tx) {
      a = tx.read(0);
      b = tx.read(1);
      tx.write(2, a - b);
    });
    writer.join();
    ++freq[{a, b}];
  }
  return freq;
}

void printFig2a(TmKind kind) {
  const MemoryModel& m = targetModel(kind);
  auto freq = runFig2a(kind);
  SpecMap specs;
  std::printf("Figure 2(a) on %-15s (target model %s)\n", tmKindName(kind),
              m.name());
  bool anyViolation = false;
  for (const auto& [outcome, count] : freq) {
    const auto& [a, b] = outcome;
    const bool allowed =
        checkParametrizedOpacity(litmus::fig2aHistory(a, b), m, specs)
            .satisfied;
    if (!allowed) anyViolation = true;
    std::printf("  (a=%llu, b=%llu): %5d   %s  %s\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), count,
                allowed ? "allowed" : "VIOLATES target model",
                a < b ? "(z would be negative!)" : "");
  }
  std::printf("  verdict: %s\n\n",
              anyViolation ? "outcomes outside the target model observed"
                           : "all observed outcomes allowed");
}

// ------------------------------------------------------------ Figure 2c

// p0: atomic { x := 1; x := 2 }; then atomic { r1 := z; r2 := z }.
// p1: z := x (plain read of x, plain write of z).
struct Fig2cOutcome {
  Word a, r1, r2;
  bool operator<(const Fig2cOutcome& o) const {
    return std::tie(a, r1, r2) < std::tie(o.a, o.r1, o.r2);
  }
};

std::map<Fig2cOutcome, int> runFig2c(TmKind kind) {
  std::map<Fig2cOutcome, int> freq;
  for (int t = 0; t < kTrials; ++t) {
    NativeMemory mem(runtimeMemoryWords(kind, 3));
    auto tm = makeNativeRuntime(kind, mem, 3, 2);
    Word a = 0, r1 = 0, r2 = 0;
    std::thread p1([&] {
      a = tm->ntRead(1, 0);
      tm->ntWrite(1, 2, a);
    });
    tm->transaction(0, [](TxContext& tx) {
      tx.write(0, 1);
      tx.write(0, 2);
    });
    p1.join();
    tm->transaction(0, [&](TxContext& tx) {
      r1 = tx.read(2);
      r2 = tx.read(2);
    });
    ++freq[{a, r1, r2}];
  }
  return freq;
}

void printFig1(TmKind kind) {
  const MemoryModel& m = targetModel(kind);
  auto freq = runFig1(kind);
  SpecMap specs;
  std::printf("Figure 1 on %-18s (target model %s)\n", tmKindName(kind),
              m.name());
  bool anyViolation = false;
  for (const auto& [outcome, count] : freq) {
    const auto& [r1, r2] = outcome;
    const bool allowed =
        checkParametrizedOpacity(litmus::fig1History(r1, r2), m, specs)
            .satisfied;
    if (!allowed) anyViolation = true;
    std::printf("  (r1=%llu, r2=%llu): %5d   %s\n",
                static_cast<unsigned long long>(r1),
                static_cast<unsigned long long>(r2), count,
                allowed ? "allowed" : "VIOLATES target model");
  }
  std::printf("  verdict: %s\n\n",
              anyViolation ? "outcomes outside the target model observed"
                           : "all observed outcomes allowed");
}

void printFig2c(TmKind kind) {
  const MemoryModel& m = targetModel(kind);
  auto freq = runFig2c(kind);
  SpecMap specs;
  std::printf("Figure 2(c) on %-15s (target model %s)\n", tmKindName(kind),
              m.name());
  bool anyViolation = false;
  for (const auto& [o, count] : freq) {
    const bool allowed =
        checkParametrizedOpacity(litmus::fig2cHistory(o.a, o.r1, o.r2), m,
                                 specs)
            .satisfied;
    if (!allowed) anyViolation = true;
    std::printf("  (a=%llu, r1=%llu, r2=%llu): %5d   %s\n",
                static_cast<unsigned long long>(o.a),
                static_cast<unsigned long long>(o.r1),
                static_cast<unsigned long long>(o.r2), count,
                allowed ? "allowed" : "VIOLATES target model");
  }
  std::printf("  verdict: %s\n\n",
              anyViolation ? "outcomes outside the target model observed"
                           : "all observed outcomes allowed");
}

}  // namespace

int main() {
  std::printf("live litmus outcome frequencies (%d trials each)\n\n",
              kTrials);
  for (TmKind kind : allTmKinds()) {
    printFig1(kind);
  }
  for (TmKind kind : allTmKinds()) {
    printFig2a(kind);
  }
  for (TmKind kind : allTmKinds()) {
    printFig2c(kind);
  }
  std::printf(
      "note: the host is x86-64 (TSO) and the native backend uses seq_cst\n"
      "accesses, so plain-access reorderings beyond the TM's own algorithm\n"
      "do not occur here; the checker-side tables (litmus_explorer) show\n"
      "what a weaker platform could additionally exhibit.\n");
  return 0;
}
