// E3 — end-to-end transactional throughput for every TM implementation,
// across read/write mixes and thread counts.
//
// Expected shape: the global-lock family serializes all transactions, so
// it is flat (or degrades) with threads; the TL2 family scales on disjoint
// working sets but pays validation; abort rates grow with write share.
// (On the single-core CI machine thread rows show scheduling overhead, not
// parallel speedup — the per-op cost ordering is the reproducible signal.)
//
// Three row families:
//   * Tx    — the bare runtime (the historical E3 rows);
//   * TxMon — the same workload through the runtime monitor's instrumented
//     wrapper (src/monitor/) with the collector+checker live.  TxMon/Tx at
//     equal args is the monitoring overhead; the ring_drop_pct counter
//     keeps the comparison honest (a dropped event was not checked);
//   * TxMonShard — TxMon with the checker sharded K ways (third arg;
//     sharded_checker.hpp).  TxMonShard/K=1 vs TxMon is the routing tax;
//     K=2,4 vs K=1 is the shard win.  cross_shard_join_pct reports how
//     many merged units touched more than one shard at this workload;
//   * TxMonTms — the claim-inversion workload (paced oversubscribed
//     threads on a hot key range, drop-free rings) with the TMS2
//     incremental certifier pinned on (…/cert_on) or off (…/cert_off) in
//     the same run: the §5b before/after pair, with per-path unit
//     counters (fast_path/certified/escalated/discarded) proving where
//     each unit was decided and escalation_us/monitor_rechecks measuring
//     the engine work the certifier absorbs.
//
// Every row also reports per-thread fairness: thread_min/max_ops_s are the
// slowest and fastest thread's own throughput over its measured region
// (min == max for Threads(1)); a wide spread on the lock-based TMs is
// expected — the lock holder starves the rest.
//
// The multi-version kinds (si-mvcc, si-ssn) additionally export their
// backend telemetry: fcw_aborts / ssn_aborts / too_old_aborts split the
// abort count by certification cause, and chain_reads / chain_steps (and
// the derived chain_len_avg) measure version-chain depth per read — the
// MVCC-specific costs the single-version rows don't have.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "monitor/monitor.hpp"
#include "tm/runtime.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kVars = 512;
constexpr std::size_t kTxLen = 4;

struct Env {
  explicit Env(TmKind kind)
      : mem(runtimeMemoryWords(kind, kVars)),
        tm(makeNativeRuntime(kind, mem, kVars, 16)) {}
  NativeMemory mem;
  std::unique_ptr<TmRuntime> tm;
};

struct MonEnv : Env {
  explicit MonEnv(TmKind kind, std::size_t shards = 1,
                  unsigned collectorThreads = 1,
                  std::size_t placementWindow = 4096, bool certifier = true)
      : Env(kind) {
    monitor::MonitorOptions mo;
    // Bound collector stalls: an escalation that cannot decide quickly is
    // inconclusive (counted, never a violation) instead of wedging the
    // consumer for the default two seconds.
    mo.recheckTimeout = std::chrono::milliseconds(250);
    mo.shards = shards;
    mo.collectorThreads = collectorThreads;
    mo.placementWindow = placementWindow;
    mo.certifier = certifier;
    mon = std::make_unique<monitor::TmMonitor>(*tm, 16, mo);
  }
  std::unique_ptr<monitor::TmMonitor> mon;
};

/// Cross-thread min/max of per-thread throughput, plus the finished
/// counter thread 0 spins on before reading the aggregate.
struct ThreadAgg {
  std::atomic<double> minOps{1e300};
  std::atomic<double> maxOps{0.0};
  std::atomic<int> finished{0};
};

void atomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v)) {
  }
}

void atomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v)) {
  }
}

/// The shared benchmark body: one iteration = one committed transaction of
/// kTxLen accesses against `rt`.  Returns this thread's own ops/s.  A
/// non-null `zipf` draws keys skewed (common/zipf.hpp) instead of uniform
/// — the contended regime where aborts and version chains actually form.
double runLoop(benchmark::State& state, TmRuntime& rt, unsigned writePct,
               const Zipfian* zipf = nullptr) {
  Rng rng(0x1234 + state.thread_index());
  const auto pid = static_cast<ProcessId>(state.thread_index());
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    rt.transaction(pid, [&](TxContext& tx) {
      for (std::size_t i = 0; i < kTxLen; ++i) {
        const auto x = static_cast<ObjectId>(zipf ? zipf->next(rng)
                                                  : rng.below(kVars));
        if (rng.chance(writePct, 100)) {
          tx.write(x, rng() | (Word{1} << 63));
        } else {
          benchmark::DoNotOptimize(tx.read(x));
        }
      }
    });
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return secs > 0.0
             ? static_cast<double>(state.iterations() * kTxLen) / secs
             : 0.0;
}

/// Exports the runtime's backend telemetry as counters: the MVCC kinds
/// report certification aborts (fcw_aborts, ssn_aborts, too_old_aborts)
/// and version-chain traversal volume (chain_reads, chain_steps), from
/// which the derived chain_len_avg — versions inspected per transactional
/// read — measures how deep the chains grow under this write mix.  The
/// single-version TMs report nothing.
void exportTelemetry(benchmark::State& state, const TmRuntime& rt) {
  double reads = 0.0;
  double steps = 0.0;
  for (const TmRuntime::Counter& c : rt.telemetry()) {
    state.counters[c.name] = static_cast<double>(c.value);
    if (std::strcmp(c.name, "chain_reads") == 0) {
      reads = static_cast<double>(c.value);
    } else if (std::strcmp(c.name, "chain_steps") == 0) {
      steps = static_cast<double>(c.value);
    }
  }
  if (reads > 0.0) state.counters["chain_len_avg"] = steps / reads;
}

/// Publishes this thread's ops/s and, on thread 0, waits for every thread
/// and exports the spread as counters.
void aggregate(benchmark::State& state, ThreadAgg& agg, double ops) {
  atomicMin(agg.minOps, ops);
  atomicMax(agg.maxOps, ops);
  agg.finished.fetch_add(1, std::memory_order_release);
  if (state.thread_index() != 0) return;
  while (agg.finished.load(std::memory_order_acquire) < state.threads()) {
    std::this_thread::yield();
  }
  state.counters["thread_min_ops_s"] = agg.minOps.load();
  state.counters["thread_max_ops_s"] = agg.maxOps.load();
}

/// Thread 0 publishes the freshly built fixture; the rest spin until they
/// see it.  The code before the measurement loop runs with NO inter-thread
/// ordering (google-benchmark's barrier only covers the loop itself), so a
/// plain static here is a startup race: a non-leader thread can observe
/// the pointer before — or, across the estimation re-runs of one row,
/// after — its lifetime.  Teardown nulls the slot before the threads are
/// joined, so a spin never latches a stale fixture.
template <typename T>
T* awaitFixture(std::atomic<T*>& slot) {
  T* p;
  while ((p = slot.load(std::memory_order_acquire)) == nullptr) {
    std::this_thread::yield();
  }
  return p;
}

void BM_Transactions(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto writePct = static_cast<unsigned>(state.range(1));
  static std::atomic<Env*> envSlot{nullptr};
  static std::atomic<ThreadAgg*> aggSlot{nullptr};
  if (state.thread_index() == 0) {
    aggSlot.store(new ThreadAgg, std::memory_order_release);
    envSlot.store(new Env(kind), std::memory_order_release);
  }
  Env* env = awaitFixture(envSlot);
  ThreadAgg* agg = awaitFixture(aggSlot);
  const double ops = runLoop(state, *env->tm, writePct);
  state.SetItemsProcessed(state.iterations() * kTxLen);
  aggregate(state, *agg, ops);
  if (state.thread_index() == 0) {
    exportTelemetry(state, *env->tm);
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(writePct) +
                   "/aborts=" + std::to_string(env->tm->abortCount()));
    envSlot.store(nullptr, std::memory_order_release);
    aggSlot.store(nullptr, std::memory_order_release);
    delete env;
    delete agg;
  }
}

void BM_TransactionsZipf(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto writePct = static_cast<unsigned>(state.range(1));
  const auto thetaPermille = static_cast<unsigned>(state.range(2));
  static std::atomic<Env*> envSlot{nullptr};
  static std::atomic<ThreadAgg*> aggSlot{nullptr};
  if (state.thread_index() == 0) {
    aggSlot.store(new ThreadAgg, std::memory_order_release);
    envSlot.store(new Env(kind), std::memory_order_release);
  }
  Env* env = awaitFixture(envSlot);
  ThreadAgg* agg = awaitFixture(aggSlot);
  // Per-thread sampler: construction is O(kVars), trivial next to the
  // measured loop, and it keeps the fixture hand-off unchanged.
  const Zipfian zipf(kVars, static_cast<double>(thetaPermille) / 1000.0);
  const double ops = runLoop(state, *env->tm, writePct, &zipf);
  state.SetItemsProcessed(state.iterations() * kTxLen);
  aggregate(state, *agg, ops);
  if (state.thread_index() == 0) {
    exportTelemetry(state, *env->tm);
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(writePct) + "/theta=" +
                   std::to_string(thetaPermille) +
                   "m/aborts=" + std::to_string(env->tm->abortCount()));
    envSlot.store(nullptr, std::memory_order_release);
    aggSlot.store(nullptr, std::memory_order_release);
    delete env;
    delete agg;
  }
}

void BM_TransactionsMonitored(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto writePct = static_cast<unsigned>(state.range(1));
  static std::atomic<MonEnv*> envSlot{nullptr};
  static std::atomic<ThreadAgg*> aggSlot{nullptr};
  if (state.thread_index() == 0) {
    aggSlot.store(new ThreadAgg, std::memory_order_release);
    envSlot.store(new MonEnv(kind), std::memory_order_release);
  }
  MonEnv* env = awaitFixture(envSlot);
  ThreadAgg* agg = awaitFixture(aggSlot);
  const double ops = runLoop(state, env->mon->runtime(), writePct);
  state.SetItemsProcessed(state.iterations() * kTxLen);
  aggregate(state, *agg, ops);
  if (state.thread_index() == 0) {
    env->mon->stop();
    const monitor::MonitorStats& ms = env->mon->stats();
    const double total =
        static_cast<double>(ms.eventsCaptured + ms.eventsDropped);
    state.counters["ring_drop_pct"] =
        total > 0.0 ? 100.0 * static_cast<double>(ms.eventsDropped) / total
                    : 0.0;
    state.counters["monitor_violations"] =
        static_cast<double>(env->mon->violations().size());
    state.counters["monitor_rechecks"] =
        static_cast<double>(ms.stream.rechecks);
    exportTelemetry(state, *env->tm);
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(writePct) +
                   "/aborts=" + std::to_string(env->tm->abortCount()) +
                   "/dropped=" + std::to_string(ms.eventsDropped));
    envSlot.store(nullptr, std::memory_order_release);
    aggSlot.store(nullptr, std::memory_order_release);
    delete env;
    delete agg;
  }
}

void BM_TransactionsMonitoredSharded(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto writePct = static_cast<unsigned>(state.range(1));
  const auto shards = static_cast<std::size_t>(state.range(2));
  static std::atomic<MonEnv*> envSlot{nullptr};
  static std::atomic<ThreadAgg*> aggSlot{nullptr};
  if (state.thread_index() == 0) {
    aggSlot.store(new ThreadAgg, std::memory_order_release);
    envSlot.store(new MonEnv(kind, shards), std::memory_order_release);
  }
  MonEnv* env = awaitFixture(envSlot);
  ThreadAgg* agg = awaitFixture(aggSlot);
  const double ops = runLoop(state, env->mon->runtime(), writePct);
  state.SetItemsProcessed(state.iterations() * kTxLen);
  aggregate(state, *agg, ops);
  if (state.thread_index() == 0) {
    env->mon->stop();
    const monitor::MonitorStats& ms = env->mon->stats();
    const double total =
        static_cast<double>(ms.eventsCaptured + ms.eventsDropped);
    state.counters["ring_drop_pct"] =
        total > 0.0 ? 100.0 * static_cast<double>(ms.eventsDropped) / total
                    : 0.0;
    state.counters["monitor_violations"] =
        static_cast<double>(env->mon->violations().size());
    state.counters["monitor_rechecks"] =
        static_cast<double>(ms.stream.rechecks);
    std::uint64_t routed = 0;
    std::uint64_t joins = 0;
    std::uint64_t taintSkips = 0;
    for (const monitor::ShardStats& sh : ms.shards) {
      routed += sh.unitsRouted;
      joins += sh.crossShardJoins;
      taintSkips += sh.stream.taintedWindowSkips;
    }
    // Share of per-shard deliveries that were one leg of a multi-shard
    // unit (0 at K=1 by construction).
    state.counters["cross_shard_join_pct"] =
        routed > 0 ? 100.0 * static_cast<double>(joins) /
                         static_cast<double>(routed)
                   : 0.0;
    state.counters["taint_skips"] = static_cast<double>(taintSkips);
    exportTelemetry(state, *env->tm);
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(writePct) + "/K=" +
                   std::to_string(shards) +
                   "/dropped=" + std::to_string(ms.eventsDropped));
    envSlot.store(nullptr, std::memory_order_release);
    aggSlot.store(nullptr, std::memory_order_release);
    delete env;
    delete agg;
  }
}

/// Claim-inversion regime for the certifier rows: paced, oversubscribed
/// producers hammering a tiny hot key range.  The per-transaction sleep
/// ends in a syscall, so the scheduler routinely preempts a thread in the
/// gap between its commit linearizing and its ticket being claimed at
/// flush — exactly the stale-but-legal feed reordering the certifier
/// exists for — while keeping the rings drop-free (unpaced producers at
/// ring saturation drop 80–95% of units, and a post-gap stale read can
/// always be a dropped writer's doing, which no sound certifier may
/// absorb: in that regime every escalation is a gap artifact and the
/// certified path measures zero by construction).
double runLoopInversion(benchmark::State& state, TmRuntime& rt,
                        unsigned writePct) {
  constexpr std::size_t kHotVars = 8;
  constexpr auto kPace = std::chrono::microseconds(3);
  Rng rng(0x1234 + state.thread_index());
  const auto pid = static_cast<ProcessId>(state.thread_index());
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    rt.transaction(pid, [&](TxContext& tx) {
      for (std::size_t i = 0; i < kTxLen; ++i) {
        const auto x = static_cast<ObjectId>(rng.below(kHotVars));
        if (rng.chance(writePct, 100)) {
          tx.write(x, rng() | (Word{1} << 63));
        } else {
          benchmark::DoNotOptimize(tx.read(x));
        }
      }
    });
    std::this_thread::sleep_for(kPace);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return secs > 0.0
             ? static_cast<double>(state.iterations() * kTxLen) / secs
             : 0.0;
}

/// TxMonTms — the TMS2-certifier experiment (EXPERIMENTS.md §5b): the
/// claim-inversion workload (runLoopInversion above) with the incremental
/// certifier pinned on (…/cert_on) or off (…/cert_off), same run, same
/// host.  cert_on vs cert_off at equal args is the certifier win; the
/// per-path counters (fast_path/certified/escalated/discarded units,
/// certifier_us) show where each unit was decided, and monitor_rechecks /
/// escalation_us dropping between the pair is the engine work the
/// automaton absorbed.
void BM_TransactionsMonitoredCertifier(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto writePct = static_cast<unsigned>(state.range(1));
  const bool certifier = state.range(2) != 0;
  static std::atomic<MonEnv*> envSlot{nullptr};
  static std::atomic<ThreadAgg*> aggSlot{nullptr};
  if (state.thread_index() == 0) {
    aggSlot.store(new ThreadAgg, std::memory_order_release);
    envSlot.store(new MonEnv(kind, /*shards=*/1, /*collectorThreads=*/1,
                             /*placementWindow=*/4096, certifier),
                  std::memory_order_release);
  }
  MonEnv* env = awaitFixture(envSlot);
  ThreadAgg* agg = awaitFixture(aggSlot);
  const double ops = runLoopInversion(state, env->mon->runtime(), writePct);
  state.SetItemsProcessed(state.iterations() * kTxLen);
  aggregate(state, *agg, ops);
  if (state.thread_index() == 0) {
    env->mon->stop();
    const monitor::MonitorStats& ms = env->mon->stats();
    const double total =
        static_cast<double>(ms.eventsCaptured + ms.eventsDropped);
    state.counters["ring_drop_pct"] =
        total > 0.0 ? 100.0 * static_cast<double>(ms.eventsDropped) / total
                    : 0.0;
    state.counters["monitor_violations"] =
        static_cast<double>(env->mon->violations().size());
    state.counters["monitor_rechecks"] =
        static_cast<double>(ms.stream.rechecks);
    state.counters["fast_path_units"] =
        static_cast<double>(ms.stream.fastPathUnits);
    state.counters["certified_units"] =
        static_cast<double>(ms.stream.certifiedUnits);
    state.counters["escalated_units"] =
        static_cast<double>(ms.stream.escalatedUnits);
    state.counters["discarded_units"] =
        static_cast<double>(ms.stream.discardedUnits);
    state.counters["certifier_attempts"] =
        static_cast<double>(ms.stream.certifierAttempts);
    state.counters["certifier_us"] =
        static_cast<double>(ms.stream.certifierUsTotal);
    state.counters["escalation_us"] =
        static_cast<double>(ms.stream.escalationUsTotal);
    exportTelemetry(state, *env->tm);
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(writePct) + "/cert=" +
                   (certifier ? "on" : "off") +
                   "/dropped=" + std::to_string(ms.eventsDropped));
    envSlot.store(nullptr, std::memory_order_release);
    aggSlot.store(nullptr, std::memory_order_release);
    delete env;
    delete agg;
  }
}

/// Like runLoop, but with a thread-affine key sampler: thread t draws
/// variables whose taint bit (v mod 64) lies in its own 16-bit band
/// [16t, 16t+16), across all kVars/64 bit-blocks.  Each transaction's
/// footprint clusters inside one band — the structured-workload shape
/// footprint placement is built for: mod-K stripes every band across all
/// shards (each unit a K-way join), clustering co-locates each band.
double runLoopAffine(benchmark::State& state, TmRuntime& rt,
                     unsigned writePct) {
  Rng rng(0x1234 + state.thread_index());
  const auto pid = static_cast<ProcessId>(state.thread_index());
  const std::size_t band =
      16 * (static_cast<std::size_t>(state.thread_index()) % 4);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    rt.transaction(pid, [&](TxContext& tx) {
      for (std::size_t i = 0; i < kTxLen; ++i) {
        const auto x = static_cast<ObjectId>(64 * rng.below(kVars / 64) +
                                             band + rng.below(16));
        if (rng.chance(writePct, 100)) {
          tx.write(x, rng() | (Word{1} << 63));
        } else {
          benchmark::DoNotOptimize(tx.read(x));
        }
      }
    });
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return secs > 0.0
             ? static_cast<double>(state.iterations() * kTxLen) / secs
             : 0.0;
}

/// TxMonPlace — the placement experiment: the thread-affine workload
/// above through the tree-merge collector (4 groups) and the K-sharded
/// checker, with the bit→shard map either static mod-K (place=mod,
/// placementWindow 0) or footprint-clustered (place=fc, the production
/// default window).  cross_shard_join_pct mod vs fc at equal K is the
/// routing win; placement_rebuilds/moves confirm the clustering engaged.
void BM_TransactionsMonitoredPlaced(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const bool clustered = state.range(2) != 0;
  constexpr unsigned kWritePct = 50;
  static std::atomic<MonEnv*> envSlot{nullptr};
  static std::atomic<ThreadAgg*> aggSlot{nullptr};
  if (state.thread_index() == 0) {
    aggSlot.store(new ThreadAgg, std::memory_order_release);
    envSlot.store(new MonEnv(kind, shards, /*collectorThreads=*/4,
                             /*placementWindow=*/clustered ? 4096 : 0),
                  std::memory_order_release);
  }
  MonEnv* env = awaitFixture(envSlot);
  ThreadAgg* agg = awaitFixture(aggSlot);
  const double ops = runLoopAffine(state, env->mon->runtime(), kWritePct);
  state.SetItemsProcessed(state.iterations() * kTxLen);
  aggregate(state, *agg, ops);
  if (state.thread_index() == 0) {
    env->mon->stop();
    const monitor::MonitorStats& ms = env->mon->stats();
    const double total =
        static_cast<double>(ms.eventsCaptured + ms.eventsDropped);
    state.counters["ring_drop_pct"] =
        total > 0.0 ? 100.0 * static_cast<double>(ms.eventsDropped) / total
                    : 0.0;
    state.counters["monitor_violations"] =
        static_cast<double>(env->mon->violations().size());
    std::uint64_t routed = 0;
    std::uint64_t joins = 0;
    std::uint64_t taintSkips = 0;
    for (const monitor::ShardStats& sh : ms.shards) {
      routed += sh.unitsRouted;
      joins += sh.crossShardJoins;
      taintSkips += sh.stream.taintedWindowSkips;
    }
    state.counters["cross_shard_join_pct"] =
        routed > 0 ? 100.0 * static_cast<double>(joins) /
                         static_cast<double>(routed)
                   : 0.0;
    state.counters["taint_skips"] = static_cast<double>(taintSkips);
    state.counters["placement_rebuilds"] =
        static_cast<double>(ms.joiner.placementRebuilds);
    state.counters["placement_moves"] =
        static_cast<double>(ms.joiner.placementMoves);
    state.counters["joiner_units"] =
        static_cast<double>(ms.joiner.unitsRouted);
    exportTelemetry(state, *env->tm);
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(kWritePct) + "/K=" +
                   std::to_string(shards) + "/place=" +
                   (clustered ? "fc" : "mod") +
                   "/dropped=" + std::to_string(ms.eventsDropped));
    envSlot.store(nullptr, std::memory_order_release);
    aggSlot.store(nullptr, std::memory_order_release);
    delete env;
    delete agg;
  }
}

void registerAll() {
  for (TmKind kind : allTmKinds()) {
    // The kind name is part of the benchmark name (not just the label) so
    // that --benchmark_filter can slice one family — run_experiments.sh
    // uses this to extract the MVCC rows into results/BENCH_mvcc.json.
    const std::string suffix = std::string("/") + tmKindName(kind);
    for (long writePct : {0, 20, 50, 100}) {
      for (int threads : {1, 2, 4}) {
        benchmark::RegisterBenchmark(("Tx" + suffix).c_str(),
                                     BM_Transactions)
            ->Args({static_cast<long>(kind), writePct})
            ->Threads(threads)
            ->UseRealTime();
      }
    }
    // Skewed-key contention sweep: theta in permille (900 = YCSB's 0.9).
    // Compare against the uniform Tx row at equal writePct/threads for the
    // contention tax; on the MVCC kinds watch chain_len_avg climb with
    // theta — hot keys grow version chains that uniform draws never do.
    for (long thetaPermille : {900, 990}) {
      for (int threads : {1, 2, 4}) {
        benchmark::RegisterBenchmark(("TxZipf" + suffix).c_str(),
                                     BM_TransactionsZipf)
            ->Args({static_cast<long>(kind), 50, thetaPermille})
            ->Threads(threads)
            ->UseRealTime();
      }
    }
    // Monitored-vs-bare pairs at the read-only and mixed points (the
    // extremes of capture volume); compare against the Tx row with equal
    // args for the overhead factor.
    for (long writePct : {0, 50}) {
      for (int threads : {1, 2, 4}) {
        benchmark::RegisterBenchmark(("TxMon" + suffix).c_str(),
                                     BM_TransactionsMonitored)
            ->Args({static_cast<long>(kind), writePct})
            ->Threads(threads)
            ->UseRealTime();
      }
    }
    // Certifier pair (EXPERIMENTS.md §5b): the claim-inversion workload
    // with the TMS2 certifier pinned on and off, in the same run on the
    // same host — cert state is in the NAME so run_experiments.sh can
    // slice the cert_off rows into results/BENCH_monitor_pre.json.
    // Eight paced threads (oversubscribed on purpose — preemption inside
    // the commit-to-flush gap is what creates claim inversions) and a
    // write-heavy mix; the read-only point has no inversions to certify,
    // so a single mixed point keeps the family honest and cheap.
    for (long certOn : {1, 0}) {
      benchmark::RegisterBenchmark(
          ("TxMonTms" + suffix + (certOn ? "/cert_on" : "/cert_off"))
              .c_str(),
          BM_TransactionsMonitoredCertifier)
          ->Args({static_cast<long>(kind), 50, certOn})
          ->Threads(8)
          ->UseRealTime();
    }
    // Shard sweep at a fixed producer count: K=1 isolates the routing
    // layer's cost, K=2/4 the parallel-checking win (serial-vs-sharded
    // verdict equivalence over these rows is asserted by the driver
    // script and the regression suite).
    for (long writePct : {0, 50}) {
      for (long shardCount : {1, 2, 4}) {
        benchmark::RegisterBenchmark(("TxMonShard" + suffix).c_str(),
                                     BM_TransactionsMonitoredSharded)
            ->Args({static_cast<long>(kind), writePct, shardCount})
            ->Threads(2)
            ->UseRealTime();
      }
    }
  }
  // Placement sweep (EXPERIMENTS.md §5c): 4 producer threads with
  // thread-affine key bands under the tree-merge collector; mod vs fc at
  // each K compares static striping to footprint clustering on the same
  // workload.  Two representative kinds keep the family small — the
  // routing-layer comparison is TM-independent.
  for (TmKind kind : {TmKind::kTl2Weak, TmKind::kSiSsn}) {
    const std::string suffix = std::string("/") + tmKindName(kind);
    for (long shardCount : {1, 2, 4}) {
      for (long clustered : {0, 1}) {
        benchmark::RegisterBenchmark(("TxMonPlace" + suffix).c_str(),
                                     BM_TransactionsMonitoredPlaced)
            ->Args({static_cast<long>(kind), shardCount, clustered})
            ->Threads(4)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
