// E3 — end-to-end transactional throughput for every TM implementation,
// across read/write mixes and thread counts.
//
// Expected shape: the global-lock family serializes all transactions, so
// it is flat (or degrades) with threads; the TL2 family scales on disjoint
// working sets but pays validation; abort rates grow with write share.
// (On the single-core CI machine thread rows show scheduling overhead, not
// parallel speedup — the per-op cost ordering is the reproducible signal.)
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tm/runtime.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kVars = 512;
constexpr std::size_t kTxLen = 4;

struct Env {
  explicit Env(TmKind kind)
      : mem(runtimeMemoryWords(kind, kVars)),
        tm(makeNativeRuntime(kind, mem, kVars, 16)) {}
  NativeMemory mem;
  std::unique_ptr<TmRuntime> tm;
};

// One benchmark iteration = one committed transaction of kTxLen accesses.
void BM_Transactions(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto writePct = static_cast<unsigned>(state.range(1));
  static Env* env = nullptr;
  if (state.thread_index() == 0) {
    env = new Env(kind);
  }
  // Barrier semantics: google-benchmark starts threads together after the
  // first thread's setup runs in program order for Threads(1); for
  // multi-thread runs we allocate eagerly below instead.
  Rng rng(0x1234 + state.thread_index());
  const auto pid = static_cast<ProcessId>(state.thread_index());
  for (auto _ : state) {
    env->tm->transaction(pid, [&](TxContext& tx) {
      for (std::size_t i = 0; i < kTxLen; ++i) {
        const auto x = static_cast<ObjectId>(rng.below(kVars));
        if (rng.chance(writePct, 100)) {
          tx.write(x, rng.below(1 << 16));
        } else {
          benchmark::DoNotOptimize(tx.read(x));
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kTxLen);
  if (state.thread_index() == 0) {
    state.SetLabel(std::string(tmKindName(kind)) + "/wr%=" +
                   std::to_string(writePct) +
                   "/aborts=" + std::to_string(env->tm->abortCount()));
    delete env;
    env = nullptr;
  }
}

void registerAll() {
  for (TmKind kind : allTmKinds()) {
    for (long writePct : {0, 20, 50, 100}) {
      for (int threads : {1, 2, 4}) {
        benchmark::RegisterBenchmark("Tx", BM_Transactions)
            ->Args({static_cast<long>(kind), writePct})
            ->Threads(threads)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
