// E1 — the paper's headline efficiency claim (§6.1): the cost of a
// non-transactional read / write under each TM design.
//
//   * tl2-weak         : uninstrumented reads + writes (but weak atomicity)
//   * global-lock      : uninstrumented reads + writes (Theorem 3's model
//                        class only)
//   * versioned-write  : uninstrumented reads, ONE extra-wide store per
//                        write (Theorem 5 — Alpha-class models)
//   * write-as-tx      : uninstrumented reads, lock-protected writes
//                        (Theorem 4 — non-M_rr models; unbounded under
//                        contention)
//   * strong-atomicity : instrumented reads AND writes (SC / Shpeisman)
//
// Expected shape: plain-read cost is flat for every design except
// strong-atomicity (which pays the record-check on every read); plain-write
// cost ranks uninstrumented < versioned (constant) < lock-based < record-
// acquire + clock-bump.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tm/runtime.hpp"

namespace {

using namespace jungle;

constexpr std::size_t kVars = 256;

struct Env {
  explicit Env(TmKind kind)
      : mem(runtimeMemoryWords(kind, kVars)),
        tm(makeNativeRuntime(kind, mem, kVars, 8)) {}
  NativeMemory mem;
  std::unique_ptr<TmRuntime> tm;
};

void BM_NtRead(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  env.tm->ntWrite(0, 0, 42);
  ObjectId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.tm->ntRead(0, x));
    x = (x + 1) & (kVars - 1);
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations());
}

void BM_NtWrite(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  ObjectId x = 0;
  Word v = 1;
  for (auto _ : state) {
    env.tm->ntWrite(0, x, v & 0xffff);
    x = (x + 1) & (kVars - 1);
    ++v;
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations());
}

// Mixed plain workload: 90% reads / 10% writes — the ratio §5.2 motivates
// ("a history contains more read operations than write operations").
void BM_NtMixed90R(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  Env env(kind);
  std::uint64_t rng = 0x2545f491;
  for (auto _ : state) {
    const ObjectId x = static_cast<ObjectId>(splitmix64(rng) & (kVars - 1));
    if ((splitmix64(rng) % 10) == 0) {
      env.tm->ntWrite(0, x, 7);
    } else {
      benchmark::DoNotOptimize(env.tm->ntRead(0, x));
    }
  }
  state.SetLabel(tmKindName(kind));
  state.SetItemsProcessed(state.iterations());
}

void registerAll() {
  for (TmKind kind : allTmKinds()) {
    const auto arg = static_cast<long>(kind);
    benchmark::RegisterBenchmark("NtRead", BM_NtRead)->Arg(arg);
    benchmark::RegisterBenchmark("NtWrite", BM_NtWrite)->Arg(arg);
    benchmark::RegisterBenchmark("NtMixed90R", BM_NtMixed90R)->Arg(arg);
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
