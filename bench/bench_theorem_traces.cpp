// F5 — the proof artifacts as a benchmark: time to decide each Figure 5
// adversarial trace (enumerate corresponding histories × run the checker),
// for the model class each theorem targets and for a model outside it.
// The printed verdict column regenerates the theorems' qualitative table.
#include <benchmark/benchmark.h>

#include "memmodel/models.hpp"
#include "sim/trace_history.hpp"
#include "theorems/figure5.hpp"

namespace {

using namespace jungle;
using namespace jungle::theorems;

struct Case {
  const char* name;
  Trace (*make)();
  const MemoryModel* inClass;   // theorem applies: expect NO
  const MemoryModel* outClass;  // hypothesis fails: expect yes
};

Trace makeL1Bad() { return lemma1BadTrace(1); }
Trace makeC1() { return thm1Case1Trace(); }
Trace makeC2() { return thm1Case2Trace(); }
Trace makeC3() { return thm1Case3Trace(); }
Trace makeC3d() { return thm1Case3DependentTrace(); }
Trace makeC4() { return thm1Case4Trace(); }
Trace makeT2s() { return thm2StoreBasedTrace(); }
Trace makeT2c() { return thm2CasBasedTrace(); }

const Case kCases[] = {
    {"lemma1", makeL1Bad, &scModel(), nullptr},
    {"thm1c1_rr", makeC1, &scModel(), &rmoModel()},
    {"thm1c2_wr", makeC2, &scModel(), &tsoModel()},
    {"thm1c3_rw", makeC3, &tsoModel(), &alphaModel()},
    {"thm1c3d_rw", makeC3d, &alphaModel(), &idealizedModel()},
    {"thm1c4_ww", makeC4, &tsoModel(), &psoModel()},
    {"thm2_store", makeT2s, &idealizedModel(), nullptr},
    {"thm2_cas", makeT2c, nullptr, &scModel()},
};

void BM_TheoremTrace(benchmark::State& state) {
  const Case& c = kCases[static_cast<std::size_t>(state.range(0))];
  const bool inside = state.range(1) == 0;
  const MemoryModel* m = inside ? c.inClass : c.outClass;
  if (m == nullptr) {
    state.SkipWithError("no model for this side of the case");
    return;
  }
  const Trace r = c.make();
  SpecMap specs;
  bool satisfied = false;
  for (auto _ : state) {
    satisfied = traceEnsuresParametrizedOpacity(r, *m, specs).satisfied;
    benchmark::DoNotOptimize(satisfied);
  }
  state.SetLabel(std::string(c.name) + "/" + m->name() + "/" +
                 (satisfied ? "explainable" : "IMPOSSIBLE"));
}

void registerAll() {
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    if (kCases[i].inClass != nullptr) {
      benchmark::RegisterBenchmark("TheoremTrace", BM_TheoremTrace)
          ->Args({static_cast<long>(i), 0});
    }
    if (kCases[i].outClass != nullptr) {
      benchmark::RegisterBenchmark("TheoremTrace", BM_TheoremTrace)
          ->Args({static_cast<long>(i), 1});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
