// E2 — Theorem 2's cost claim: an uninstrumented TM must write back with
// CAS ("potentially expensive read-modify-write instructions"), not plain
// stores.  This bench quantifies that premium on the host machine:
//
//   * raw primitive latency: load, store, CAS (hit/miss), fetch_add;
//   * commit cost of a K-write transaction under each TM (the global-lock
//     designs pay one CAS per written variable at commit; TL2-family pay
//     lock + store + release per variable plus a clock bump).
#include <benchmark/benchmark.h>

#include <atomic>

#include "tm/runtime.hpp"

namespace {

using namespace jungle;

// ------------------------------------------------------- raw primitives

void BM_RawLoad(benchmark::State& state) {
  std::atomic<Word> cell{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.load(std::memory_order_seq_cst));
  }
}
BENCHMARK(BM_RawLoad);

void BM_RawStore(benchmark::State& state) {
  std::atomic<Word> cell{0};
  Word v = 0;
  for (auto _ : state) {
    cell.store(++v, std::memory_order_seq_cst);
  }
}
BENCHMARK(BM_RawStore);

void BM_RawCasHit(benchmark::State& state) {
  std::atomic<Word> cell{0};
  Word v = 0;
  for (auto _ : state) {
    Word expect = v;
    benchmark::DoNotOptimize(
        cell.compare_exchange_strong(expect, ++v, std::memory_order_seq_cst));
  }
}
BENCHMARK(BM_RawCasHit);

void BM_RawCasMiss(benchmark::State& state) {
  std::atomic<Word> cell{42};
  for (auto _ : state) {
    Word expect = 7;  // never matches
    benchmark::DoNotOptimize(
        cell.compare_exchange_strong(expect, 9, std::memory_order_seq_cst));
  }
}
BENCHMARK(BM_RawCasMiss);

void BM_RawFetchAdd(benchmark::State& state) {
  std::atomic<Word> cell{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cell.fetch_add(1, std::memory_order_seq_cst));
  }
}
BENCHMARK(BM_RawFetchAdd);

// --------------------------------------------- commit cost per TM design

constexpr std::size_t kVars = 64;

void BM_CommitKWrites(benchmark::State& state) {
  const auto kind = static_cast<TmKind>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  NativeMemory mem(runtimeMemoryWords(kind, kVars));
  auto tm = makeNativeRuntime(kind, mem, kVars, 1);
  for (auto _ : state) {
    tm->transaction(0, [&](TxContext& tx) {
      for (std::size_t i = 0; i < k; ++i) {
        tx.write(static_cast<ObjectId>(i), 5);
      }
    });
  }
  state.SetLabel(std::string(tmKindName(kind)) + "/writes=" +
                 std::to_string(k));
  state.SetItemsProcessed(state.iterations() * k);
}

void registerCommit() {
  for (TmKind kind : allTmKinds()) {
    for (long k : {1, 4, 16}) {
      benchmark::RegisterBenchmark("CommitKWrites", BM_CommitKWrites)
          ->Args({static_cast<long>(kind), k});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCommit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
