// E7 (extension) — systematic-testing throughput: schedules/second and
// state-space sizes for the exhaustive explorer on the Figure-1 program,
// per TM (the cost of the model-checking methodology the paper's companion
// work applies to TM algorithms), plus the strategy comparison on the
// reference-reduction program: exhaustive DFS vs sleep-set DPOR (serial
// and frontier-parallel) over an identical state space.
#include <benchmark/benchmark.h>

#include <memory>

#include "sim/exploration.hpp"
#include "theorems/explorer_workloads.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/versioned_write_tm.hpp"

namespace {

using namespace jungle;

template <template <class> class TmT>
Program figure1Program() {
  return [](ScheduledMemory& mem) {
    auto tm = std::make_shared<TmT<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      (void)tm->ntRead(t, 0);
      (void)tm->ntRead(t, 1);
    });
    return scripts;
  };
}

template <template <class> class TmT>
void BM_ExhaustiveExplore(benchmark::State& state) {
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.maxRuns = 5000;
  std::size_t schedules = 0;
  for (auto _ : state) {
    auto stats = exploreExhaustive(
        2, TmT<ScheduledMemory>::memoryWords(2), figure1Program<TmT>(),
        [](const RunOutcome&) { return true; }, opts);
    schedules = stats.runs;
    benchmark::DoNotOptimize(stats.failures);
  }
  state.SetLabel("state space: " + std::to_string(schedules) +
                 " schedules");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedules));
}

void BM_RandomExplore(benchmark::State& state) {
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.samples = 32;
  for (auto _ : state) {
    auto stats = exploreRandom(
        2, GlobalLockTm<ScheduledMemory>::memoryWords(2),
        figure1Program<GlobalLockTm>(), [](const RunOutcome&) { return true; },
        opts);
    benchmark::DoNotOptimize(stats.completedRuns);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

/// Strategy comparison on the C(16,8)=12870-schedule reference program;
/// state->range(0) selects the frontier width (1 = serial).
void BM_ReferenceStrategy(benchmark::State& state,
                          ExploreStrategyKind strategy) {
  const theorems::ExplorerWorkload w = theorems::referenceReductionWorkload();
  ExploreOptions opts;
  opts.strategy = strategy;
  opts.maxSteps = 200;
  opts.maxRuns = 20000;
  opts.threads = static_cast<unsigned>(state.range(0));
  ExplorationStats stats;
  for (auto _ : state) {
    stats = exploreSchedules(w.numThreads, w.words, w.program, opts,
                             [](const RunOutcome&) { return true; });
    benchmark::DoNotOptimize(stats.failures);
  }
  state.counters["schedules"] = static_cast<double>(stats.runs);
  state.counters["distinct"] = static_cast<double>(stats.distinctHistories);
  state.counters["pruned"] = static_cast<double>(stats.sleepSetPruned);
  state.counters["races"] = static_cast<double>(stats.racesReversed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stats.runs));
}

void BM_ReferenceDfs(benchmark::State& state) {
  BM_ReferenceStrategy(state, ExploreStrategyKind::kExhaustiveDfs);
}
void BM_ReferenceDpor(benchmark::State& state) {
  BM_ReferenceStrategy(state, ExploreStrategyKind::kSleepSetDpor);
}

/// Frontier scaling on a contended generated workload whose DPOR space is
/// large enough (thousands of schedules) for task distribution to amortize
/// the spawn overhead; range(0) = worker threads.  Runs block on turn-gate
/// handoffs for most of their wall time, so extra workers overlap even on
/// few cores.
void BM_FrontierDpor(benchmark::State& state) {
  const theorems::ExplorerWorkload w = theorems::generatedWorkload(30);
  ExploreOptions opts;
  opts.strategy = ExploreStrategyKind::kSleepSetDpor;
  opts.maxSteps = 200;
  opts.maxRuns = 50000;
  opts.threads = static_cast<unsigned>(state.range(0));
  ExplorationStats stats;
  for (auto _ : state) {
    stats = exploreSchedules(w.numThreads, w.words, w.program, opts,
                             [](const RunOutcome&) { return true; });
    benchmark::DoNotOptimize(stats.failures);
  }
  state.counters["schedules"] = static_cast<double>(stats.runs);
  state.counters["distinct"] = static_cast<double>(stats.distinctHistories);
  state.counters["donations"] =
      static_cast<double>(stats.frontierDonations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stats.runs));
}

BENCHMARK(BM_ExhaustiveExplore<GlobalLockTm>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveExplore<VersionedWriteTm>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveExplore<StrongAtomicityTm>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomExplore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReferenceDfs)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ReferenceDpor)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_FrontierDpor)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
