// E7 (extension) — systematic-testing throughput: schedules/second and
// state-space sizes for the exhaustive explorer on the Figure-1 program,
// per TM (the cost of the model-checking methodology the paper's companion
// work applies to TM algorithms).
#include <benchmark/benchmark.h>

#include <memory>

#include "sim/schedule.hpp"
#include "tm/global_lock_tm.hpp"
#include "tm/strong_atomicity_tm.hpp"
#include "tm/versioned_write_tm.hpp"

namespace {

using namespace jungle;

template <template <class> class TmT>
Program figure1Program() {
  return [](ScheduledMemory& mem) {
    auto tm = std::make_shared<TmT<ScheduledMemory>>(mem, 2);
    std::vector<ThreadScript> scripts;
    scripts.push_back([tm] {
      auto t = tm->makeThread(0);
      tm->txStart(t);
      tm->txWrite(t, 0, 1);
      tm->txWrite(t, 1, 1);
      tm->txCommit(t);
    });
    scripts.push_back([tm] {
      auto t = tm->makeThread(1);
      (void)tm->ntRead(t, 0);
      (void)tm->ntRead(t, 1);
    });
    return scripts;
  };
}

template <template <class> class TmT>
void BM_ExhaustiveExplore(benchmark::State& state) {
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.maxRuns = 5000;
  std::size_t schedules = 0;
  for (auto _ : state) {
    auto stats = exploreExhaustive(
        2, TmT<ScheduledMemory>::memoryWords(2), figure1Program<TmT>(),
        [](const RunOutcome&) { return true; }, opts);
    schedules = stats.runs;
    benchmark::DoNotOptimize(stats.failures);
  }
  state.SetLabel("state space: " + std::to_string(schedules) +
                 " schedules");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedules));
}

void BM_RandomExplore(benchmark::State& state) {
  ExploreOptions opts;
  opts.maxSteps = 120;
  opts.samples = 32;
  for (auto _ : state) {
    auto stats = exploreRandom(
        2, GlobalLockTm<ScheduledMemory>::memoryWords(2),
        figure1Program<GlobalLockTm>(), [](const RunOutcome&) { return true; },
        opts);
    benchmark::DoNotOptimize(stats.completedRuns);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

BENCHMARK(BM_ExhaustiveExplore<GlobalLockTm>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveExplore<VersionedWriteTm>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveExplore<StrongAtomicityTm>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomExplore)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
