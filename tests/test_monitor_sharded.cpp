// The sharded merge-and-check stage (monitor/sharded_checker.hpp) and the
// per-variable drop-taint machinery behind it, tested at every layer:
// taint-bit partition exactness, ring-side footprint accumulation and the
// gap marker's mask snapshot, projection routing (cross-shard units reach
// every touched shard, nothing else), the taint rules (a drop on one
// shard's variables leaves the others' windows alive — including the
// headline property that an untainted shard still convicts while another
// ring is saturated), the global-quiescence joining stage, serial-vs-
// sharded verdict equivalence on the shipped history corpus, parallel-
// escalation determinism across recheckThreads, and an 8-producer/4-shard
// end-to-end stress (run under TSan by the monitor-smoke CI job).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "monitor/monitor.hpp"
#include "monitor/sharded_checker.hpp"
#include "tm/runtime.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle::monitor {
namespace {

// --------------------------------------------------------------- helpers

StreamUnit txUnit(ProcessId pid, std::uint64_t base,
                  std::vector<MonitorEvent> body,
                  StreamUnit::Kind kind = StreamUnit::Kind::kCommittedTx) {
  StreamUnit u;
  u.kind = kind;
  u.pid = pid;
  u.epoch = base;
  u.events.push_back({base, kNoObject, EventKind::kTxStart, 0});
  for (MonitorEvent e : body) {
    e.ticket = base;
    u.events.push_back(e);
  }
  u.events.push_back({base + 1, kNoObject,
                      kind == StreamUnit::Kind::kAbortedTx
                          ? EventKind::kTxAbort
                          : EventKind::kTxCommit,
                      0});
  return u;
}

StreamOptions smallOpts() {
  StreamOptions so;
  so.model = &scModel();
  so.gcRetain = 4;
  so.settleUnits = 2;
  so.recheckTimeout = std::chrono::milliseconds(2000);
  return so;
}

/// Feeds `c` a stream whose only defect lives on variable `x`: a read of a
/// value nobody ever wrote, padded with enough clean traffic (also on `x`)
/// to confirm and settle the conviction.
void feedImpossibleRead(ShardedStreamChecker& c, ObjectId x) {
  c.feed(txUnit(0, 10, {{0, x, EventKind::kTxWrite, 1}}));
  c.feed(txUnit(1, 20, {{0, x, EventKind::kTxRead, 7}}));
  for (std::uint64_t i = 0; i < 8; ++i) {
    c.feed(txUnit(0, 30 + 10 * i, {{0, x, EventKind::kTxWrite, 5}}));
  }
  c.pump();
}

std::uint64_t totalViolations(const ShardedStreamChecker& c) {
  return c.stats().violations;
}

// --------------------------------------------------- taint-bit partition

TEST(ShardTaintBits, PartitionIsExactAndDisjoint) {
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    std::uint64_t seen = 0;
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint64_t bits = shardTaintBits(s, k);
      EXPECT_EQ(seen & bits, 0u) << "overlap at K=" << k << " s=" << s;
      seen |= bits;
    }
    EXPECT_EQ(seen, ~0ULL) << "bits uncovered at K=" << k;
  }
}

TEST(ShardTaintBits, VariableBitLandsInItsOwningShard) {
  // The whole scheme hinges on this agreement: taint bit (x & 63) must
  // belong to exactly the shard x mod K, including variables above 63
  // (which alias bits but — since K divides 64 — alias into the SAME
  // shard: (x + 64) mod K == x mod K).
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    for (ObjectId x = 0; x < 200; ++x) {
      const std::size_t owner = shardOfVar(x, k);
      for (std::size_t s = 0; s < k; ++s) {
        EXPECT_EQ((shardTaintBits(s, k) & varTaintBit(x)) != 0, s == owner)
            << "x=" << x << " K=" << k << " s=" << s;
      }
    }
  }
}

// ---------------------------------------------------- ring-side taint

TEST(EventRingTaint, DroppedFootprintsAccumulateAcrossDrops) {
  EventRing ring(4);
  const MonitorEvent ev{1, 0, EventKind::kNtWrite, 5};
  MonitorEvent unit[3] = {ev, ev, ev};
  ASSERT_TRUE(ring.tryPushUnit(unit, 3, true, varTaintBit(0)));
  EXPECT_EQ(ring.taintMask(), 0u) << "successful push must not taint";
  ASSERT_FALSE(ring.tryPushUnit(unit, 3, true, varTaintBit(5)));
  EXPECT_EQ(ring.taintMask(), varTaintBit(5));
  ASSERT_FALSE(ring.tryPushUnit(unit, 3, true, varTaintBit(9)));
  // Cumulative by design: resetting on marker push would hide the taint
  // of drops counted after a marker was assembled but before it landed.
  EXPECT_EQ(ring.taintMask(), varTaintBit(5) | varTaintBit(9));
}

TEST(EventCaptureTaint, GapMarkerSnapshotsCumulativeMaskIntoTicket) {
  CaptureOptions co;
  co.ringCapacity = 8;
  EventCapture cap(1, co);
  EventRing& ring = cap.ring(0);

  const auto flushTx = [&](ObjectId x) {
    cap.beginUnit(0);
    std::vector<MonitorEvent> buf;
    buf.push_back({cap.claimTicket(), kNoObject, EventKind::kTxStart, 0});
    buf.push_back({0, x, EventKind::kTxWrite, 9});
    cap.flushUnit(0, buf, EventKind::kTxCommit);
  };

  flushTx(3);  // fits
  flushTx(3);  // fits
  flushTx(6);  // dropped: taints bit 6
  flushTx(7);  // dropped: taints bit 7
  MonitorEvent ev;
  while (ring.tryPop(ev)) {
  }
  flushTx(3);  // pushes the gap marker first
  ASSERT_TRUE(ring.tryPop(ev));
  ASSERT_EQ(ev.kind, EventKind::kGapMarker);
  EXPECT_EQ(ev.value, 2u);
  EXPECT_EQ(ev.ticket, varTaintBit(6) | varTaintBit(7))
      << "marker must carry the dropped units' exact footprint";
}

// ------------------------------------------------------------ projection

TEST(ProjectUnit, KeepsDelimitersAndOwnedCommandsOnly) {
  const StreamUnit u = txUnit(2, 100,
                              {{0, 0, EventKind::kTxWrite, 1},
                               {0, 1, EventKind::kTxRead, 2},
                               {0, 2, EventKind::kTxWrite, 3},
                               {0, 5, EventKind::kTxWrite, 4}});
  for (std::size_t s = 0; s < 4; ++s) {
    const StreamUnit p = projectUnit(u, s, 4);
    ASSERT_GE(p.events.size(), 2u);
    EXPECT_EQ(p.events.front().kind, EventKind::kTxStart);
    EXPECT_EQ(p.events.back().kind, EventKind::kTxCommit);
    for (std::size_t i = 1; i + 1 < p.events.size(); ++i) {
      EXPECT_EQ(shardOfVar(p.events[i].obj, 4), s);
    }
  }
  // Vars 0,1,2 land alone in shards 0,1,2; shard 1 owns both 1 and 5.
  EXPECT_EQ(projectUnit(u, 0, 4).events.size(), 3u);
  EXPECT_EQ(projectUnit(u, 1, 4).events.size(), 4u);
  EXPECT_EQ(projectUnit(u, 2, 4).events.size(), 3u);
  EXPECT_EQ(projectUnit(u, 3, 4).events.size(), 2u);  // delimiters only
}

TEST(ProjectUnit, CopiesUnitMetadataVerbatim) {
  StreamUnit u = txUnit(3, 70, {{0, 1, EventKind::kTxWrite, 1}},
                        StreamUnit::Kind::kAbortedTx);
  u.gapBefore = true;
  u.dropsCovered = 9;
  u.taintMask = varTaintBit(1) | varTaintBit(2);
  const StreamUnit p = projectUnit(u, 1, 2);
  EXPECT_EQ(p.kind, StreamUnit::Kind::kAbortedTx);
  EXPECT_EQ(p.pid, 3);
  EXPECT_EQ(p.epoch, 70u);
  EXPECT_TRUE(p.gapBefore);
  EXPECT_EQ(p.dropsCovered, 9u);
  EXPECT_EQ(p.taintMask, u.taintMask);
}

// --------------------------------------------------------------- routing

TEST(ShardedRouting, CrossShardUnitReachesEveryTouchedShardOnce) {
  ShardedStreamChecker c(smallOpts(), 2);
  c.feed(txUnit(0, 10,
                {{0, 0, EventKind::kTxWrite, 1},
                 {0, 1, EventKind::kTxWrite, 2}}));
  c.feed(txUnit(0, 20, {{0, 0, EventKind::kTxWrite, 3}}));
  c.pump();
  const auto stats = c.shardStats();
  EXPECT_EQ(stats[0].unitsRouted, 2u);
  EXPECT_EQ(stats[1].unitsRouted, 1u);
  EXPECT_EQ(stats[0].crossShardJoins, 1u);
  EXPECT_EQ(stats[1].crossShardJoins, 1u);
  c.finish();
  EXPECT_EQ(totalViolations(c), 0u);
}

TEST(ShardedRouting, DelimiterOnlyUnitsRouteToShardZero) {
  // Zero-footprint transactions (all reads/writes were dropped from the
  // body, or an empty transaction) still need unitsChecked accounting
  // somewhere deterministic.
  ShardedStreamChecker c(smallOpts(), 4);
  c.feed(txUnit(1, 10, {}));
  c.pump();
  const auto stats = c.shardStats();
  EXPECT_EQ(stats[0].unitsRouted, 1u);
  for (std::size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(stats[s].unitsRouted, 0u);
  }
  c.finish();
}

TEST(ShardedRouting, SingleShardMatchesSerialCheckerExactly) {
  // K = 1 must degenerate to the serial checker: same counters, same
  // verdict, on both a clean and a violating stream.
  for (const bool violate : {false, true}) {
    StreamChecker serial(smallOpts());
    ShardedStreamChecker sharded(smallOpts(), 1);
    for (std::uint64_t i = 0; i < 20; ++i) {
      const Word v = violate && i == 5 ? 999 : 1;
      auto mk = [&] {
        return txUnit(i % 2, 10 * (i + 1),
                      {{0, 1,
                        i % 3 == 0 ? EventKind::kTxRead : EventKind::kTxWrite,
                        i % 3 == 0 ? v : 1}});
      };
      serial.feed(mk());
      sharded.feed(mk());
      sharded.pump();
    }
    serial.finish();
    sharded.finish();
    EXPECT_EQ(serial.stats().unitsChecked, sharded.stats().unitsChecked);
    EXPECT_EQ(serial.stats().opsChecked, sharded.stats().opsChecked);
    EXPECT_EQ(serial.stats().violations, sharded.stats().violations);
    EXPECT_EQ(serial.stats().rechecks, sharded.stats().rechecks);
  }
}

// ------------------------------------------------------ per-shard taint

TEST(ShardedTaint, GapOnOtherShardsVariablesLeavesWindowAlive) {
  ShardedStreamChecker c(smallOpts(), 2);
  c.feed(txUnit(0, 10, {{0, 0, EventKind::kTxWrite, 1}}));
  c.pump();
  // A drop whose footprint is entirely shard 1's variable 1.
  c.noteDrops(varTaintBit(1));
  c.pump();
  const auto stats = c.shardStats();
  EXPECT_EQ(stats[0].gapSignals, 0u);
  EXPECT_EQ(stats[1].gapSignals, 1u);
  EXPECT_GE(stats[0].stream.taintedWindowSkips, 1u)
      << "shard 0 must record that it kept its window";
  EXPECT_EQ(stats[0].stream.resyncs, 0u);
  EXPECT_GE(stats[1].stream.resyncs, 1u);
  c.finish();
  EXPECT_EQ(totalViolations(c), 0u);
}

TEST(ShardedTaint, UntaintedShardConvictsWhileOtherShardSaturated) {
  // The headline property of per-variable taint: drops confined to shard
  // 1's variables must not buy shard 0's defect an alibi.  The serial
  // checker (K = 1) under the same suspect mask suppresses — the contrast
  // is the point, and the suppression must be counted honestly.
  ShardedStreamChecker sharded(smallOpts(), 2);
  feedImpossibleRead(sharded, /*x=*/0);
  sharded.noteDrops(varTaintBit(1));  // saturation elsewhere
  sharded.pump();
  sharded.setDropSuspect(varTaintBit(1));
  sharded.finish();
  EXPECT_EQ(totalViolations(sharded), 1u)
      << "conviction on the untainted shard must survive";
  EXPECT_EQ(sharded.stats().suppressedVerdicts, 0u);

  ShardedStreamChecker serial(smallOpts(), 1);
  feedImpossibleRead(serial, /*x=*/0);
  serial.noteDrops(varTaintBit(1));
  serial.pump();
  serial.setDropSuspect(varTaintBit(1));
  serial.finish();
  EXPECT_EQ(totalViolations(serial), 0u)
      << "K=1 owns every variable, so the drop suppresses";
  EXPECT_GE(serial.stats().suppressedVerdicts, 1u);
}

TEST(ShardedTaint, TaintOnTheDefectsShardSuppresses) {
  // Converse guard: when the drop's footprint DOES cover the convicting
  // shard's variables, the sharded checker must be exactly as conservative
  // as the serial one.
  ShardedStreamChecker c(smallOpts(), 2);
  feedImpossibleRead(c, /*x=*/0);
  c.noteDrops(varTaintBit(0));
  c.pump();
  c.setDropSuspect(varTaintBit(0));
  c.finish();
  EXPECT_EQ(totalViolations(c), 0u);
  EXPECT_GE(c.stats().suppressedVerdicts + c.stats().resyncs, 1u);
}

TEST(ShardedTaint, GappedUnitResyncsOnlyIntersectedShards) {
  ShardedStreamChecker c(smallOpts(), 2);
  c.feed(txUnit(0, 10, {{0, 0, EventKind::kTxWrite, 1}}));
  c.feed(txUnit(0, 20, {{0, 1, EventKind::kTxWrite, 2}}));
  c.pump();
  // A gap-marked cross-shard unit whose taint footprint only covers
  // variable 1: shard 1 resyncs at the exact unit position, shard 0
  // checks its projection with the window intact.
  StreamUnit gapped = txUnit(0, 30,
                             {{0, 0, EventKind::kTxWrite, 3},
                              {0, 1, EventKind::kTxWrite, 4}});
  gapped.gapBefore = true;
  gapped.dropsCovered = 1;
  gapped.taintMask = varTaintBit(1);
  c.feed(std::move(gapped));
  c.pump();
  const auto stats = c.shardStats();
  EXPECT_EQ(stats[0].stream.resyncs, 0u);
  EXPECT_GE(stats[1].stream.resyncs, 1u);
  EXPECT_GE(stats[0].stream.taintedWindowSkips, 1u);
  c.finish();
  EXPECT_EQ(totalViolations(c), 0u);
}

// ------------------------------------------------------------- the join

TEST(ShardedJoin, ConvictionPublishesOnlyAtGlobalQuiescence) {
  ShardedStreamChecker c(smallOpts(), 2);
  feedImpossibleRead(c, /*x=*/0);
  ASSERT_TRUE(c.hasPendingConviction());
  EXPECT_EQ(totalViolations(c), 0u)
      << "no publication before the collector certifies quiescence";
  c.onQuiescent();
  EXPECT_FALSE(c.hasPendingConviction());
  ASSERT_EQ(totalViolations(c), 1u);
  const auto vs = c.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_NE(vs[0].description.find("[shard 0 of 2]"), std::string::npos)
      << vs[0].description;
}

// ------------------------------------------- corpus verdict equivalence

History loadCorpus(const std::string& name) {
  const std::string path = std::string(JUNGLE_HISTORIES_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto r = litmus::parseHistory(buf.str());
  EXPECT_TRUE(r) << name << ": " << r.error;
  return *r.history;
}

/// History → unit stream adapter for the equivalence regression: each
/// transaction (or non-transactional access) becomes one StreamUnit whose
/// start/end tickets are its first/last history positions, so real-time
/// precedence in the history survives as ticket order.  Returns false when
/// the history uses commands richer than register reads/writes (the
/// monitor's capture never produces those).
bool unitsFromHistory(const History& h, std::vector<StreamUnit>& out) {
  HistoryAnalysis a(h);
  if (!a.wellFormed()) return false;
  for (const OpInstance& op : h) {
    if (op.isCommand() && op.cmd.kind != CmdKind::kRead &&
        op.cmd.kind != CmdKind::kWrite) {
      return false;
    }
  }
  const auto ticketOf = [](std::size_t pos) {
    return static_cast<std::uint64_t>(pos) + 1;
  };
  std::vector<bool> inTx(h.size(), false);
  for (const Transaction& t : a.transactions()) {
    StreamUnit u;
    u.kind = t.aborted ? StreamUnit::Kind::kAbortedTx
                       : StreamUnit::Kind::kCommittedTx;
    u.pid = t.pid;
    u.epoch = ticketOf(t.firstPos());
    for (std::size_t pos : t.positions) {
      inTx[pos] = true;
      const OpInstance& op = h[pos];
      if (op.isStart()) {
        u.events.push_back({u.epoch, kNoObject, EventKind::kTxStart, 0});
      } else if (op.isCommit() || op.isAbort()) {
        u.events.push_back({ticketOf(pos), kNoObject,
                            op.isAbort() ? EventKind::kTxAbort
                                         : EventKind::kTxCommit,
                            0});
      } else {
        u.events.push_back({u.epoch, op.obj,
                            op.cmd.kind == CmdKind::kRead
                                ? EventKind::kTxRead
                                : EventKind::kTxWrite,
                            op.cmd.value});
      }
    }
    // Open transactions (no delimiter yet at end of history) still need a
    // closing event for the unit to parse; treat them as aborted-in-flight.
    if (!t.completed()) {
      u.kind = StreamUnit::Kind::kAbortedTx;
      u.events.push_back({ticketOf(t.lastPos()), kNoObject,
                          EventKind::kTxAbort, 0});
    }
    out.push_back(std::move(u));
  }
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    if (inTx[pos] || !h[pos].isCommand()) continue;
    StreamUnit u;
    u.kind = StreamUnit::Kind::kNonTx;
    u.pid = h[pos].pid;
    u.epoch = ticketOf(pos);
    u.events.push_back({u.epoch, h[pos].obj,
                        h[pos].cmd.kind == CmdKind::kRead
                            ? EventKind::kNtRead
                            : EventKind::kNtWrite,
                        h[pos].cmd.value});
    out.push_back(std::move(u));
  }
  std::sort(out.begin(), out.end(),
            [](const StreamUnit& a, const StreamUnit& b) {
              return a.epoch < b.epoch;
            });
  return true;
}

const char* kRegisterCorpus[] = {"fig1_tear.hist", "fig3.hist",
                                 "store_buffer.hist",
                                 "aborted_observer.hist",
                                 "sgla_split.hist"};

/// Verdict of the corpus history replayed through the checker at K shards,
/// with every variable id mapped by `remap`.  violations() covers both the
/// per-shard checkers and the cross-shard joiner.
bool shardedVerdict(const History& h, std::size_t k,
                    ObjectId (*remap)(ObjectId), bool& adapted) {
  std::vector<StreamUnit> units;
  adapted = unitsFromHistory(h, units);
  if (!adapted) return false;
  ShardedStreamChecker c(smallOpts(), k);
  for (StreamUnit u : units) {
    for (MonitorEvent& e : u.events) {
      if (e.obj != kNoObject) e.obj = remap(e.obj);
    }
    c.feed(std::move(u));
    c.pump();
  }
  c.finish();
  return !c.violations().empty();
}

TEST(ShardedCorpus, ShardAlignedHistoriesGetIdenticalVerdictsAtEveryK) {
  // With every variable renamed onto shard 0 (x -> 4x, still distinct,
  // and 4x mod K == 0 for K in {1,2,4}), one shard sees each unit whole —
  // so K must not change the verdict on any corpus history.  This is the
  // serial-vs-sharded regression gate for the routing/join layer itself,
  // with the projection completeness gap factored out.
  std::size_t adaptedCount = 0;
  for (const char* name : kRegisterCorpus) {
    const History h = loadCorpus(name);
    bool adapted = false;
    const auto align = [](ObjectId x) { return static_cast<ObjectId>(4 * x); };
    const bool serial = shardedVerdict(h, 1, align, adapted);
    if (!adapted) continue;
    ++adaptedCount;
    EXPECT_EQ(shardedVerdict(h, 2, align, adapted), serial)
        << name << " (K=2)";
    EXPECT_EQ(shardedVerdict(h, 4, align, adapted), serial)
        << name << " (K=4)";
  }
  EXPECT_GE(adaptedCount, 3u)
      << "corpus regression lost its register histories";
}

TEST(ShardedCorpus, ShardedConvictionsAreSoundOnEveryRegressionHistory) {
  // With the corpus's natural variable ids (which straddle shards), the
  // one direction that must ALWAYS hold is soundness: a shard conviction
  // implies the serial checker convicts too.  (The converse can fail by
  // design — see the characterization test below.)
  const auto identity = [](ObjectId x) { return x; };
  for (const char* name : kRegisterCorpus) {
    const History h = loadCorpus(name);
    bool adapted = false;
    const bool serial = shardedVerdict(h, 1, identity, adapted);
    if (!adapted) continue;
    for (std::size_t k : {2u, 4u}) {
      const bool sharded = shardedVerdict(h, k, identity, adapted);
      EXPECT_TRUE(!sharded || serial)
          << name << " (K=" << k << "): sharded convicted, serial did not";
    }
  }
}

TEST(ShardedCorpus, CrossShardOnlyCyclesAreConvictedByTheJoiner) {
  // Store buffering's anomaly is a cycle THROUGH x and y, each
  // per-variable slice individually explainable — so once x and y land in
  // different shards every per-shard projection acquits.  The cross-shard
  // joiner closes exactly this gap (sharded_checker.hpp): p0's program
  // order crossing from x's shard to y's grows the cross-bit set, the
  // backlog replay re-assembles the 4-unit cycle, and the joiner convicts
  // where the projections cannot.  This inverts the former
  // CrossShardOnlyCyclesEvadeProjectionsByDesign characterization test.
  const History h = loadCorpus("store_buffer.hist");
  bool adapted = false;
  const auto identity = [](ObjectId x) { return x; };
  ASSERT_TRUE(shardedVerdict(h, 1, identity, adapted));
  ASSERT_TRUE(adapted);
  EXPECT_TRUE(shardedVerdict(h, 2, identity, adapted))
      << "K=2 reopened the cross-shard completeness gap";
}

// --------------------------------------- parallel escalation determinism

// ------------------------------------- footprint-clustered placement

TEST(FootprintPlacement, NoCoAccessKeepsTheModKMap) {
  FootprintPlacement p(4, 16);
  // Single-bit footprints only: nothing is ever co-accessed.
  for (int i = 0; i < 16; ++i) p.observe(std::uint64_t{1} << (i % 64));
  ASSERT_TRUE(p.rebuildDue());
  EXPECT_EQ(p.rebuild(), 0u);
  for (std::size_t b = 0; b < 64; ++b) {
    EXPECT_EQ(p.ownerOf(b), b % 4) << "bit " << b;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(p.ownedBits(s), shardTaintBits(s, 4)) << "shard " << s;
  }
}

TEST(FootprintPlacement, CoAccessedBitsConvergeOntoOneShard) {
  FootprintPlacement p(4, 8);
  // Bits 0 and 17 live on different shards under mod-4; pair them in
  // every observed unit of the window.
  const std::uint64_t pair = (std::uint64_t{1} << 0) | (std::uint64_t{1} << 17);
  for (int i = 0; i < 8; ++i) p.observe(pair);
  ASSERT_TRUE(p.rebuildDue());
  EXPECT_GT(p.rebuild(), 0u);
  EXPECT_EQ(p.ownerOf(0), p.ownerOf(17));
  // The shard masks must still partition all 64 bits.
  std::uint64_t all = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(all & p.ownedBits(s), 0u) << "shard " << s << " overlaps";
    all |= p.ownedBits(s);
  }
  EXPECT_EQ(all, ~std::uint64_t{0});
}

TEST(FootprintPlacement, StableWorkloadConvergesWithNoFurtherMoves) {
  FootprintPlacement p(4, 8);
  const std::uint64_t groupA = (std::uint64_t{1} << 3) |
                               (std::uint64_t{1} << 12) |
                               (std::uint64_t{1} << 21);
  const std::uint64_t groupB =
      (std::uint64_t{1} << 5) | (std::uint64_t{1} << 30);
  auto window = [&p, groupA, groupB] {
    for (int i = 0; i < 8; ++i) p.observe((i & 1) != 0 ? groupB : groupA);
  };
  window();
  (void)p.rebuild();
  const std::size_t homeA = p.ownerOf(3);
  const std::size_t homeB = p.ownerOf(5);
  EXPECT_EQ(p.ownerOf(12), homeA);
  EXPECT_EQ(p.ownerOf(21), homeA);
  EXPECT_EQ(p.ownerOf(30), homeB);
  // Same workload next window: the ownership-overlap tie-break must keep
  // every cluster where it already is.
  window();
  EXPECT_EQ(p.rebuild(), 0u) << "stable workload caused placement churn";
  EXPECT_EQ(p.ownerOf(3), homeA);
  EXPECT_EQ(p.ownerOf(30), homeB);
}

TEST(FootprintPlacement, WindowRotationReclustersAndFreesSingletons) {
  FootprintPlacement p(2, 4);
  const std::uint64_t pairA =
      (std::uint64_t{1} << 2) | (std::uint64_t{1} << 9);
  for (int i = 0; i < 4; ++i) p.observe(pairA);
  (void)p.rebuild();
  EXPECT_EQ(p.ownerOf(2), p.ownerOf(9));
  // Next window pairs bit 2 with a new partner while bit 9 is accessed
  // alone: observed-but-unclustered, it reverts to its mod-K home.
  const std::uint64_t pairB =
      (std::uint64_t{1} << 2) | (std::uint64_t{1} << 15);
  for (int i = 0; i < 4; ++i) {
    p.observe(pairB);
    p.observe(std::uint64_t{1} << 9);
  }
  (void)p.rebuild();
  EXPECT_EQ(p.ownerOf(2), p.ownerOf(15));
  EXPECT_EQ(p.ownerOf(9), 9 % 2);
  EXPECT_EQ(p.rebuilds(), 2u);
}

TEST(FootprintPlacement, UnobservedBitsKeepTheirOwnerAcrossBurstyWindows) {
  // Ring drops can starve whole producers for a window; the bits they own
  // must not bounce home and back (each move costs every shard a resync).
  FootprintPlacement p(4, 4);
  const std::uint64_t bandA = (std::uint64_t{1} << 1) |
                              (std::uint64_t{1} << 6);  // shards 1 and 2
  for (int i = 0; i < 4; ++i) p.observe(bandA);
  (void)p.rebuild();
  const std::size_t homeA = p.ownerOf(1);
  ASSERT_EQ(p.ownerOf(6), homeA);
  // Next window band A is absent entirely (dropped); an unrelated pair
  // clusters.  Band A's bits must stay where they are.
  const std::uint64_t bandB =
      (std::uint64_t{1} << 3) | (std::uint64_t{1} << 8);
  for (int i = 0; i < 4; ++i) p.observe(bandB);
  (void)p.rebuild();
  EXPECT_EQ(p.ownerOf(1), homeA) << "dropped-out bit bounced home";
  EXPECT_EQ(p.ownerOf(6), homeA) << "dropped-out bit bounced home";
  EXPECT_EQ(p.ownerOf(3), p.ownerOf(8));
}

TEST(FootprintPlacement, ClusterCapPreventsMegaClusterCollapse) {
  FootprintPlacement p(4, 4);
  // Every unit touches all 64 bits; without the 64/K cap this would fuse
  // one cluster and pin the entire key space to a single shard.
  for (int i = 0; i < 4; ++i) p.observe(~std::uint64_t{0});
  (void)p.rebuild();
  std::uint64_t all = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::uint64_t mine = p.ownedBits(s);
    EXPECT_NE(mine, 0u) << "shard " << s << " starved";
    EXPECT_LE(std::popcount(mine), 32) << "shard " << s << " owns too much";
    EXPECT_EQ(all & mine, 0u);
    all |= mine;
  }
  EXPECT_EQ(all, ~std::uint64_t{0});
}

TEST(ShardedPlacement, WindowZeroKeepsTheStaticModKMap) {
  ShardedStreamChecker c(smallOpts(), 4);  // placementWindow defaults to 0
  for (std::size_t b = 0; b < 64; ++b) {
    EXPECT_EQ(c.placementOf(b), b % 4) << "bit " << b;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(c.placementBits(s), shardTaintBits(s, 4));
  }
}

TEST(ShardedPlacement, LearnedPlacementStopsPayingTheCrossShardTax) {
  ShardedStreamChecker c(smallOpts(), 2, /*placementWindow=*/16);
  // Vars 0 and 1 straddle the mod-2 split, and every transaction touches
  // both: under mod-K each unit is a 2-shard join.
  auto coUnit = [](std::uint64_t epoch) {
    return txUnit(0, epoch,
                  {{0, 0, EventKind::kTxWrite, 1},
                   {0, 1, EventKind::kTxWrite, 2}});
  };
  std::uint64_t epoch = 10;
  for (int i = 0; i < 16; ++i) {
    c.feed(coUnit(epoch));
    epoch += 10;
  }
  c.pump();
  ASSERT_GE(c.joinerStats().placementRebuilds, 1u);
  EXPECT_EQ(c.placementOf(0), c.placementOf(1))
      << "co-accessed bits still split across shards after rebuild";
  std::uint64_t joinsAtRebuild = 0;
  for (const ShardStats& s : c.shardStats()) {
    joinsAtRebuild += s.crossShardJoins;
  }
  for (int i = 0; i < 10; ++i) {
    c.feed(coUnit(epoch));
    epoch += 10;
  }
  c.pump();
  std::uint64_t joinsAfter = 0;
  for (const ShardStats& s : c.shardStats()) {
    joinsAfter += s.crossShardJoins;
  }
  EXPECT_EQ(joinsAfter, joinsAtRebuild)
      << "clustered placement should route {0,1} units to one shard";
  c.finish();
  EXPECT_EQ(totalViolations(c), 0u);
}

TEST(ParallelEscalation, RecheckThreadsNeverChangesTheVerdict) {
  // The engine portfolio is deterministic modulo thread count: the same
  // violating stream must convict (exactly once, same shrunk size) at
  // recheckThreads 1, 2 and 4.
  std::vector<std::size_t> shrunkSizes;
  for (const unsigned threads : {1u, 2u, 4u}) {
    StreamOptions so = smallOpts();
    so.recheckThreads = threads;
    ShardedStreamChecker c(so, 2);
    feedImpossibleRead(c, /*x=*/0);
    c.finish();
    EXPECT_EQ(totalViolations(c), 1u) << "recheckThreads=" << threads;
    const auto vs = c.violations();
    ASSERT_EQ(vs.size(), 1u);
    shrunkSizes.push_back(vs[0].shrunk.size());
    EXPECT_GE(c.stats().rechecks, 1u);
  }
  EXPECT_EQ(shrunkSizes[0], shrunkSizes[1]);
  EXPECT_EQ(shrunkSizes[0], shrunkSizes[2]);
}

TEST(EscalationLatency, StatsAreCoherentAfterRechecks) {
  ShardedStreamChecker c(smallOpts(), 1);
  feedImpossibleRead(c, /*x=*/0);
  c.finish();
  const StreamStats s = c.stats();
  ASSERT_GE(s.rechecks, 1u);
  EXPECT_GE(s.escalationUsMax, s.escalationUsMin);
  EXPECT_GE(s.escalationUsTotal, s.escalationUsMax);
  EXPECT_LE(s.escalationUsTotal, s.rechecks * (s.escalationUsMax + 1));
}

TEST(MergeStreamStats, CountersAddAndExtremaCombine) {
  StreamStats a;
  a.rechecks = 2;
  a.escalationUsTotal = 30;
  a.escalationUsMin = 10;
  a.escalationUsMax = 20;
  a.peakWindowUnits = 5;
  a.violations = 1;
  StreamStats b;
  b.rechecks = 1;
  b.escalationUsTotal = 4;
  b.escalationUsMin = 4;
  b.escalationUsMax = 4;
  b.peakWindowUnits = 9;
  b.taintedWindowSkips = 3;
  StreamStats into;
  mergeStreamStats(into, a);
  mergeStreamStats(into, b);
  EXPECT_EQ(into.rechecks, 3u);
  EXPECT_EQ(into.escalationUsTotal, 34u);
  EXPECT_EQ(into.escalationUsMin, 4u);
  EXPECT_EQ(into.escalationUsMax, 20u);
  EXPECT_EQ(into.peakWindowUnits, 9u);
  EXPECT_EQ(into.violations, 1u);
  EXPECT_EQ(into.taintedWindowSkips, 3u);
  // Merging a shard that never escalated must not drag the minimum to 0.
  StreamStats idle;
  mergeStreamStats(into, idle);
  EXPECT_EQ(into.escalationUsMin, 4u);
}

// ------------------------------------------------------------ end-to-end

TEST(ShardedMonitor, CleanRunsAcrossShardCountsForEveryTm) {
  for (TmKind kind : allTmKinds()) {
    for (const std::size_t shards : {2u, 4u}) {
      NativeMemory mem(runtimeMemoryWords(kind, 16));
      auto tm = makeNativeRuntime(kind, mem, 16, 4);
      MonitorOptions mo;
      mo.shards = shards;
      TmMonitor mon(*tm, 4, mo);
      WorkloadOptions w;
      w.threads = 4;
      w.numVars = 16;
      w.opsPerThread = 800;
      w.seed = 42;
      runMonitoredWorkload(mon.runtime(), w);
      mon.stop();
      EXPECT_TRUE(mon.ok())
          << tmKindName(kind) << " shards=" << shards << ": "
          << (mon.violations().empty() ? ""
                                       : mon.violations()[0].description);
      ASSERT_EQ(mon.stats().shards.size(), shards);
      std::uint64_t routed = 0;
      for (const ShardStats& s : mon.stats().shards) routed += s.unitsRouted;
      EXPECT_GT(routed, 0u) << tmKindName(kind);
    }
  }
}

TEST(ShardedMonitor, InjectedCorruptReadIsCaughtUnderFourShards) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 16));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 16, 4);
  MonitorOptions mo;
  mo.capture.injectBug = InjectedBug::kCorruptTxRead;
  mo.shards = 4;
  TmMonitor mon(*tm, 4, mo);
  WorkloadOptions w;
  w.threads = 4;
  w.numVars = 16;
  w.opsPerThread = 1200;
  w.seed = 7;
  w.pace = std::chrono::microseconds(5);  // drop-free, so convictable
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();
  ASSERT_FALSE(mon.ok()) << "sharded monitor missed the injected bug";
  EXPECT_GT(mon.violations()[0].shrunk.size(), 0u);
}

// 8 producers into 4 shards with tiny rings at full speed: the TSan leg of
// the monitor-smoke CI job runs exactly this.  An honest sharded monitor
// reports drops, per-shard gap signals and (usually) taint skips — never a
// violation of a stock TM.
TEST(ShardedMonitor, EightProducerFourShardStressStaysHonestUnderDrops) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kTl2Weak, 32));
  auto tm = makeNativeRuntime(TmKind::kTl2Weak, mem, 32, 8);
  MonitorOptions mo;
  mo.capture.ringCapacity = 256;
  mo.shards = 4;
  mo.recheckTimeout = std::chrono::milliseconds(250);
  TmMonitor mon(*tm, 8, mo);
  WorkloadOptions w;
  w.threads = 8;
  w.numVars = 32;
  w.opsPerThread = 10000;
  w.seed = 0x5eed;
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();
  EXPECT_TRUE(mon.ok()) << mon.violations()[0].description;
  EXPECT_GT(mon.stats().unitsDropped, 0u)
      << "stress too gentle: no drops, the taint machinery went untested";
  ASSERT_EQ(mon.stats().shards.size(), 4u);
  std::uint64_t gaps = 0;
  for (const ShardStats& s : mon.stats().shards) gaps += s.gapSignals;
  EXPECT_GT(gaps, 0u) << "drops happened but no shard saw a gap signal";
}

// The same 8-producer/4-shard stress with the tree-merge collector: four
// collector workers drain ring groups in parallel and the root merge must
// still deliver a globally ticket-ordered, producer-exact stream.  Run
// under TSan by the CI monitor-smoke job.
TEST(ShardedMonitor, TreeMergeCollectorStressStaysHonestUnderDrops) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kTl2Weak, 32));
  auto tm = makeNativeRuntime(TmKind::kTl2Weak, mem, 32, 8);
  MonitorOptions mo;
  mo.capture.ringCapacity = 256;
  mo.shards = 4;
  mo.collectorThreads = 4;
  mo.recheckTimeout = std::chrono::milliseconds(250);
  TmMonitor mon(*tm, 8, mo);
  WorkloadOptions w;
  w.threads = 8;
  w.numVars = 32;
  w.opsPerThread = 10000;
  w.seed = 0x5eed;
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();
  EXPECT_TRUE(mon.ok()) << mon.violations()[0].description;
  EXPECT_GT(mon.stats().unitsDropped, 0u)
      << "stress too gentle: no drops, the taint machinery went untested";
  ASSERT_EQ(mon.stats().shards.size(), 4u);
  std::uint64_t gaps = 0;
  for (const ShardStats& s : mon.stats().shards) gaps += s.gapSignals;
  EXPECT_GT(gaps, 0u) << "drops happened but no shard saw a gap signal";
}

// Tree merge with more workers than rings degenerates cleanly (groups are
// clamped to the producer count), and an injected bug is still convicted
// through the grouped merge path.
TEST(ShardedMonitor, TreeMergeCollectorStillConvictsInjectedBug) {
  NativeMemory mem(runtimeMemoryWords(TmKind::kGlobalLock, 16));
  auto tm = makeNativeRuntime(TmKind::kGlobalLock, mem, 16, 4);
  MonitorOptions mo;
  mo.capture.injectBug = InjectedBug::kCorruptTxRead;
  mo.shards = 4;
  mo.collectorThreads = 8;  // > producer count: clamped to 4 groups
  TmMonitor mon(*tm, 4, mo);
  WorkloadOptions w;
  w.threads = 4;
  w.numVars = 16;
  w.opsPerThread = 1200;
  w.seed = 7;
  w.pace = std::chrono::microseconds(5);  // drop-free, so convictable
  runMonitoredWorkload(mon.runtime(), w);
  mon.stop();
  ASSERT_FALSE(mon.ok()) << "tree-merge collector missed the injected bug";
}

}  // namespace
}  // namespace jungle::monitor
