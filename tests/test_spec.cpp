// Unit tests for sequential object specifications (§2, "Object semantics").
#include <gtest/gtest.h>

#include <vector>

#include "spec/counter_spec.hpp"
#include "spec/queue_spec.hpp"
#include "spec/register_spec.hpp"
#include "spec/spec_map.hpp"

namespace jungle {
namespace {

// ---------------------------------------------------------------- register

TEST(RegisterSpec, ReadOfInitialValueIsLegal) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdRead(0)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(RegisterSpec, ReadOfWrongInitialValueIsIllegal) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdRead(7)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

TEST(RegisterSpec, NonZeroInitialValue) {
  RegisterSpec spec(42);
  std::vector<Command> good{cmdRead(42)};
  std::vector<Command> bad{cmdRead(0)};
  EXPECT_TRUE(isLegalSequence(spec, good));
  EXPECT_FALSE(isLegalSequence(spec, bad));
}

TEST(RegisterSpec, ReadReturnsLatestWrite) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdWrite(1), cmdWrite(2), cmdRead(2)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(RegisterSpec, ReadOfOverwrittenValueIsIllegal) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdWrite(1), cmdWrite(2), cmdRead(1)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

TEST(RegisterSpec, DependentVariantsBehaveLikePlainOps) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdDdWrite(5, {1}), cmdCdRead(5, {1}),
                           cmdDdRead(5, {2})};
  EXPECT_TRUE(isLegalSequence(spec, seq));
  std::vector<Command> bad{cmdCdWrite(5, {1}), cmdDdRead(6, {1})};
  EXPECT_FALSE(isLegalSequence(spec, bad));
}

TEST(RegisterSpec, HavocAllowsAnyRead) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdHavoc(), cmdRead(12345), cmdRead(0),
                           cmdRead(7)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(RegisterSpec, WriteClearsHavoc) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdHavoc(), cmdWrite(3), cmdRead(9)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
  std::vector<Command> good{cmdHavoc(), cmdWrite(3), cmdRead(3)};
  EXPECT_TRUE(isLegalSequence(spec, good));
}

TEST(RegisterSpec, CounterCommandIllegalOnRegister) {
  RegisterSpec spec(0);
  std::vector<Command> seq{cmdCtrInc(1)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

TEST(RegisterSpec, DigestDistinguishesValuesAndHavoc) {
  RegisterState a(1), b(2);
  EXPECT_NE(a.digest(), b.digest());
  RegisterState c(1);
  EXPECT_EQ(a.digest(), c.digest());
  c.apply(cmdHavoc());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(RegisterSpec, CloneIsIndependent) {
  RegisterState a(1);
  auto b = a.clone();
  b->apply(cmdWrite(9));
  EXPECT_TRUE(a.apply(cmdRead(1)));
  EXPECT_TRUE(b->apply(cmdRead(9)));
}

// ---------------------------------------------------------------- counter

TEST(CounterSpec, IncrementsAccumulate) {
  CounterSpec spec(0);
  std::vector<Command> seq{cmdCtrInc(3), cmdCtrInc(4), cmdCtrRead(7)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(CounterSpec, WrongSumIsIllegal) {
  CounterSpec spec(0);
  std::vector<Command> seq{cmdCtrInc(3), cmdCtrRead(4)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

TEST(CounterSpec, InitialValueCounts) {
  CounterSpec spec(10);
  std::vector<Command> seq{cmdCtrInc(1), cmdCtrRead(11)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(CounterSpec, RegisterCommandIllegalOnCounter) {
  CounterSpec spec(0);
  std::vector<Command> seq{cmdWrite(1)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

// ---------------------------------------------------------------- queue

TEST(QueueSpec, FifoOrder) {
  QueueSpec spec;
  std::vector<Command> seq{cmdEnqueue(1), cmdEnqueue(2), cmdDequeue(1),
                           cmdDequeue(2)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(QueueSpec, LifoOrderIsIllegal) {
  QueueSpec spec;
  std::vector<Command> seq{cmdEnqueue(1), cmdEnqueue(2), cmdDequeue(2)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

TEST(QueueSpec, EmptyDequeueReturnsSentinel) {
  QueueSpec spec;
  std::vector<Command> seq{cmdDequeue(kQueueEmpty), cmdEnqueue(5),
                           cmdDequeue(5), cmdDequeue(kQueueEmpty)};
  EXPECT_TRUE(isLegalSequence(spec, seq));
}

TEST(QueueSpec, SentinelWhenNonEmptyIsIllegal) {
  QueueSpec spec;
  std::vector<Command> seq{cmdEnqueue(5), cmdDequeue(kQueueEmpty)};
  EXPECT_FALSE(isLegalSequence(spec, seq));
}

TEST(QueueSpec, DigestTracksContents) {
  QueueState a, b;
  EXPECT_EQ(a.digest(), b.digest());
  a.apply(cmdEnqueue(1));
  EXPECT_NE(a.digest(), b.digest());
  b.apply(cmdEnqueue(1));
  EXPECT_EQ(a.digest(), b.digest());
}

// ---------------------------------------------------------------- spec map

TEST(SpecMap, DefaultsToRegisterAndSupportsOverrides) {
  SpecMap m;
  EXPECT_STREQ(m.specFor(0).name(), "register");
  m.assign(3, std::make_shared<CounterSpec>(0));
  EXPECT_STREQ(m.specFor(3).name(), "counter");
  EXPECT_STREQ(m.specFor(4).name(), "register");
}

// Property sweep: a register accepts exactly the read of the value most
// recently written, for arbitrary write/read interleavings.
class RegisterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RegisterPropertyTest, LastWriteWins) {
  const int n = GetParam();
  RegisterSpec spec(0);
  auto st = spec.initial();
  Word last = 0;
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(st->apply(cmdWrite(static_cast<Word>(i * 17 % 5))));
    last = static_cast<Word>(i * 17 % 5);
    ASSERT_TRUE(st->apply(cmdRead(last)));
    ASSERT_FALSE(st->clone()->apply(cmdRead(last + 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegisterPropertyTest,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace jungle
