// The parallel portfolio engine must be an observational no-op: for every
// history and every concrete condition, the 4-thread portfolio returns the
// same satisfied/inconclusive verdict as the sequential (threads = 1)
// search, which in turn is the exact pre-portfolio enumeration.  The suite
// sweeps the shipped history corpus, the litmus figure families, and
// deterministic generated histories; it doubles as the TSan workload for
// the shared memo table, the stop flag, and the global budget.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "litmus/figures.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"
#include "opacity/sgla.hpp"

#ifndef JUNGLE_HISTORIES_DIR
#error "JUNGLE_HISTORIES_DIR must be defined by the build"
#endif

namespace jungle {
namespace {

SpecMap kRegisters;

SearchLimits withThreads(unsigned threads) {
  SearchLimits limits;
  limits.threads = threads;
  return limits;
}

/// Asserts verdict equality between the sequential and the 4-thread
/// portfolio search for every concrete condition on `h`.
void expectEngineEquivalence(const History& h, const std::string& label) {
  const SearchLimits serial = withThreads(1);
  const SearchLimits parallel = withThreads(4);
  const std::vector<const MemoryModel*> models{&scModel(), &tsoModel(),
                                               &rmoModel(), &alphaModel()};
  for (const MemoryModel* m : models) {
    const CheckResult a = checkParametrizedOpacity(h, *m, kRegisters, serial);
    const CheckResult b =
        checkParametrizedOpacity(h, *m, kRegisters, parallel);
    EXPECT_EQ(a.satisfied, b.satisfied)
        << label << " popacity/" << m->name();
    EXPECT_EQ(a.inconclusive, b.inconclusive)
        << label << " popacity/" << m->name();
    EXPECT_EQ(a.witness.has_value(), a.satisfied) << label;
    EXPECT_EQ(b.witness.has_value(), b.satisfied) << label;

    SglaOptions sglaSerial;
    sglaSerial.limits = serial;
    SglaOptions sglaParallel;
    sglaParallel.limits = parallel;
    const CheckResult sa = checkSgla(h, *m, kRegisters, sglaSerial);
    const CheckResult sb = checkSgla(h, *m, kRegisters, sglaParallel);
    EXPECT_EQ(sa.satisfied, sb.satisfied) << label << " sgla/" << m->name();
    EXPECT_EQ(sa.inconclusive, sb.inconclusive)
        << label << " sgla/" << m->name();
  }
  const CheckResult ca = checkOpacity(h, kRegisters, serial);
  const CheckResult cb = checkOpacity(h, kRegisters, parallel);
  EXPECT_EQ(ca.satisfied, cb.satisfied) << label << " opacity";
  const CheckResult ra = checkStrictSerializability(h, kRegisters, serial);
  const CheckResult rb = checkStrictSerializability(h, kRegisters, parallel);
  EXPECT_EQ(ra.satisfied, rb.satisfied) << label << " strict-ser";
}

TEST(EngineEquivalence, HistoryCorpus) {
  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(JUNGLE_HISTORIES_DIR)) {
    if (entry.path().extension() != ".hist") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = litmus::parseHistory(buf.str());
    ASSERT_TRUE(parsed) << entry.path() << ": " << parsed.error;
    expectEngineEquivalence(*parsed.history, entry.path().filename().string());
    ++files;
  }
  EXPECT_GE(files, 5u);  // the corpus must actually be swept
}

TEST(EngineEquivalence, LitmusFigureFamilies) {
  for (Word v = 0; v <= 2; ++v) {
    for (Word r = 0; r <= 2; ++r) {
      expectEngineEquivalence(litmus::fig1History(v, r), "fig1");
      expectEngineEquivalence(litmus::fig2aHistory(v, r), "fig2a");
      expectEngineEquivalence(litmus::fig2bHistory(v, r), "fig2b");
      expectEngineEquivalence(litmus::fig2cHistory(v, r, r), "fig2c");
    }
    expectEngineEquivalence(litmus::fig3History(v, 1), "fig3");
  }
}

/// Deterministic satisfiable histories mirroring bench_checker's
/// consistentHistory: values evolve serially, emitted interleaved.
History consistentHistory(std::size_t txs, std::size_t ntOps,
                          std::size_t vars, std::uint64_t seed) {
  Rng rng(seed);
  HistoryBuilder b;
  std::vector<Word> value(vars, 0);
  std::size_t remainingTx = txs;
  std::size_t remainingNt = ntOps;
  ProcessId txPid = 0;
  while (remainingTx + remainingNt > 0) {
    const bool doTx = remainingTx > 0 &&
                      (remainingNt == 0 ||
                       rng.chance(remainingTx, remainingTx + remainingNt));
    if (doTx) {
      --remainingTx;
      const ProcessId p = txPid++ % 2;
      b.start(p);
      const std::size_t len = 1 + rng.below(3);
      for (std::size_t i = 0; i < len; ++i) {
        const auto x = static_cast<ObjectId>(rng.below(vars));
        if (rng.chance(1, 2)) {
          const Word w = 1 + rng.below(9);
          value[x] = w;
          b.write(p, x, w);
        } else {
          b.read(p, x, value[x]);
        }
      }
      b.commit(p);
    } else {
      --remainingNt;
      const auto x = static_cast<ObjectId>(rng.below(vars));
      if (rng.chance(1, 2)) {
        const Word w = 1 + rng.below(9);
        value[x] = w;
        b.write(2, x, w);
      } else {
        b.read(2, x, value[x]);
      }
    }
  }
  return b.build();
}

/// Violating variants: flip one read to a value nobody writes.
History corruptedHistory(std::size_t txs, std::size_t ntOps,
                         std::uint64_t seed) {
  History h = consistentHistory(txs, ntOps, 2, seed);
  HistoryBuilder b;
  bool flipped = false;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const OpInstance& inst = h[i];
    if (inst.isStart()) {
      b.start(inst.pid);
    } else if (inst.isCommit()) {
      b.commit(inst.pid);
    } else if (inst.isAbort()) {
      b.abort(inst.pid);
    } else if (!flipped && inst.cmd.kind == CmdKind::kRead) {
      b.read(inst.pid, inst.obj, 77);  // impossible value
      flipped = true;
    } else if (inst.cmd.kind == CmdKind::kRead) {
      b.read(inst.pid, inst.obj, inst.cmd.value);
    } else {
      b.write(inst.pid, inst.obj, inst.cmd.value);
    }
  }
  return b.build();
}

TEST(EngineEquivalence, GeneratedHistories) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    expectEngineEquivalence(consistentHistory(3, 6, 3, seed), "consistent");
    expectEngineEquivalence(corruptedHistory(3, 4, seed), "corrupted");
  }
}

// ------------------------------------------------- resource-limit verdicts

TEST(TinyBudget, AllFourEntryPointsReportInconclusive) {
  // A violating history whose refutation needs more than one expansion:
  // with maxExpansions = 1, every entry point must say "inconclusive", not
  // "violated".
  SearchLimits tiny;
  tiny.maxExpansions = 1;
  const History h = litmus::fig2cHistory(7, 0, 0);

  const CheckResult po =
      checkParametrizedOpacity(h, rmoModel(), kRegisters, tiny);
  EXPECT_FALSE(po.satisfied);
  EXPECT_TRUE(po.inconclusive);

  const CheckResult op = checkOpacity(h, kRegisters, tiny);
  EXPECT_FALSE(op.satisfied);
  EXPECT_TRUE(op.inconclusive);

  // Strict serializability's erase-then-check path must forward the limits.
  HistoryBuilder b;
  b.start(0).write(0, 0, 1).commit(0);
  b.start(1).read(1, 0, 99).commit(1);  // committed stale read
  b.read(2, 1, 0).read(2, 1, 0);
  const CheckResult ss =
      checkStrictSerializability(b.build(), kRegisters, tiny);
  EXPECT_FALSE(ss.satisfied);
  EXPECT_TRUE(ss.inconclusive);

  SglaOptions sglaOpts;
  sglaOpts.limits = tiny;
  const CheckResult sg = checkSgla(h, scModel(), kRegisters, sglaOpts);
  EXPECT_FALSE(sg.satisfied);
  EXPECT_TRUE(sg.inconclusive);
}

TEST(TinyBudget, ParallelAgreesWithSerial) {
  SearchLimits tiny;
  tiny.maxExpansions = 1;
  const History h = litmus::fig2cHistory(7, 0, 0);
  for (unsigned threads : {1u, 4u}) {
    tiny.threads = threads;
    const CheckResult r =
        checkParametrizedOpacity(h, scModel(), kRegisters, tiny);
    EXPECT_FALSE(r.satisfied) << threads;
    EXPECT_TRUE(r.inconclusive) << threads;
  }
}

/// The adversarial family from bench_checker: the unique witness order is
/// T_1, T_0, T_2, …, so the lexicographic enumeration falsifies the whole
/// T_0-first cone first.
History hiddenWitnessHistory(std::size_t txs) {
  HistoryBuilder b;
  for (std::size_t i = 0; i < txs; ++i) b.start(static_cast<ProcessId>(i));
  b.read(0, 0, 1).write(0, 1, 9);
  b.read(1, 0, 0).write(1, 0, 1);
  for (std::size_t i = 2; i < txs; ++i) {
    const auto p = static_cast<ProcessId>(i);
    b.read(p, 0, static_cast<Word>(i - 1));
    b.write(p, 0, static_cast<Word>(i));
  }
  for (std::size_t i = 0; i < txs; ++i) b.commit(static_cast<ProcessId>(i));
  return b.build();
}

TEST(Deadline, ExpiredDeadlineReportsInconclusive) {
  // ~150 ms of barren cone versus a 5 ms deadline: the search must stop and
  // report inconclusive even though every individual order search is far
  // below the in-search poll interval.
  SearchLimits limits;
  limits.maxExpansions = 0;
  limits.timeout = std::chrono::milliseconds(5);
  const CheckResult r =
      checkParametrizedOpacity(hiddenWitnessHistory(9), scModel(),
                               kRegisters, limits);
  EXPECT_FALSE(r.satisfied);
  EXPECT_TRUE(r.inconclusive);
  EXPECT_LT(r.stats.elapsed, std::chrono::microseconds(2'000'000));
}

TEST(Portfolio, FindsHiddenWitnessAndStops) {
  // The portfolio's first-move-diverse claiming reaches the witness branch
  // immediately; verify both verdict and the witness's shape.
  SearchLimits limits;
  limits.threads = 4;
  const History h = hiddenWitnessHistory(8);
  const CheckResult r =
      checkParametrizedOpacity(h, scModel(), kRegisters, limits);
  ASSERT_TRUE(r.satisfied);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->size(), h.size());
  EXPECT_GE(r.stats.threadsUsed, 4u);
  EXPECT_GT(r.stats.branchesExplored, 0u);
}

TEST(Stats, TelemetryIsPopulated) {
  const CheckResult r =
      checkParametrizedOpacity(litmus::fig3History(1, 1), scModel(),
                               kRegisters, withThreads(1));
  ASSERT_TRUE(r.satisfied);
  EXPECT_GT(r.stats.expansions, 0u);
  EXPECT_GT(r.stats.maxDepth, 0u);
  EXPECT_GT(r.stats.branchesExplored, 0u);
  EXPECT_EQ(r.stats.threadsUsed, 1u);
  EXPECT_GT(r.stats.elapsed.count(), 0);
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsAllTasksAndWaits) {
  std::atomic<int> done{0};
  ThreadPool pool(4);
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 64);
  for (int i = 0; i < 16; ++i) {  // reuse after wait
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 80);
}

}  // namespace
}  // namespace jungle
