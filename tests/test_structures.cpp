// Tests for the transactional data structures: sequential semantics,
// composability (multiple structures in one transaction), and concurrent
// invariants under every TM implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "common/histogram.hpp"
#include "common/rng.hpp"

#include "tm/structures.hpp"

namespace jungle {
namespace {

struct World {
  explicit World(TmKind kind, std::size_t vars = 256, std::size_t procs = 4)
      : mem(runtimeMemoryWords(kind, vars)),
        tm(makeNativeRuntime(kind, mem, vars, procs)),
        slots(vars) {}

  NativeMemory mem;
  std::unique_ptr<TmRuntime> tm;
  SlotAllocator slots;
};

class StructuresTest : public ::testing::TestWithParam<TmKind> {};

// ---------------------------------------------------------------- counter

TEST_P(StructuresTest, CounterAccumulates) {
  World w(GetParam());
  TxCounter c(*w.tm, w.slots);
  c.addAtomic(0, 5);
  c.addAtomic(1, 7);
  EXPECT_EQ(c.readAtomic(0), 12u);
}

TEST_P(StructuresTest, ConcurrentCounterIsExact) {
  World w(GetParam());
  TxCounter c(*w.tm, w.slots);
  constexpr int kThreads = 4, kIncrements = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        c.addAtomic(static_cast<ProcessId>(t), 1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.readAtomic(0), static_cast<Word>(kThreads * kIncrements));
}

// ------------------------------------------------------------------ stack

TEST_P(StructuresTest, StackLifoOrder) {
  World w(GetParam());
  TxStack s(*w.tm, w.slots, 8);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(s.push(tx, 1));
    EXPECT_TRUE(s.push(tx, 2));
    EXPECT_TRUE(s.push(tx, 3));
  });
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_EQ(s.pop(tx), std::optional<Word>(3));
    EXPECT_EQ(s.pop(tx), std::optional<Word>(2));
    EXPECT_EQ(s.pop(tx), std::optional<Word>(1));
    EXPECT_EQ(s.pop(tx), std::nullopt);
  });
}

TEST_P(StructuresTest, StackRespectsCapacity) {
  World w(GetParam());
  TxStack s(*w.tm, w.slots, 2);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(s.push(tx, 1));
    EXPECT_TRUE(s.push(tx, 2));
    EXPECT_FALSE(s.push(tx, 3));
    EXPECT_EQ(s.size(tx), 2u);
  });
}

// ------------------------------------------------------------------ queue

TEST_P(StructuresTest, QueueFifoOrderAndWraparound) {
  World w(GetParam());
  TxQueue q(*w.tm, w.slots, 3);
  for (Word round = 0; round < 4; ++round) {  // forces ring wraparound
    w.tm->transaction(0, [&](TxContext& tx) {
      EXPECT_TRUE(q.enqueue(tx, 10 * round + 1));
      EXPECT_TRUE(q.enqueue(tx, 10 * round + 2));
    });
    w.tm->transaction(0, [&](TxContext& tx) {
      EXPECT_EQ(q.dequeue(tx), std::optional<Word>(10 * round + 1));
      EXPECT_EQ(q.dequeue(tx), std::optional<Word>(10 * round + 2));
      EXPECT_EQ(q.dequeue(tx), std::nullopt);
    });
  }
}

TEST_P(StructuresTest, QueueFullAndEmpty) {
  World w(GetParam());
  TxQueue q(*w.tm, w.slots, 2);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(q.enqueue(tx, 1));
    EXPECT_TRUE(q.enqueue(tx, 2));
    EXPECT_FALSE(q.enqueue(tx, 3));  // full
    EXPECT_EQ(q.size(tx), 2u);
  });
}

TEST_P(StructuresTest, ProducerConsumerConservesItems) {
  World w(GetParam());
  TxQueue q(*w.tm, w.slots, 16);
  constexpr Word kItems = 400;
  Word consumedSum = 0;
  std::thread producer([&] {
    for (Word i = 1; i <= kItems; ++i) {
      bool ok = false;
      while (!ok) {
        w.tm->transaction(0, [&](TxContext& tx) { ok = q.enqueue(tx, i); });
        if (!ok) std::this_thread::yield();
      }
    }
  });
  std::thread consumer([&] {
    Word got = 0;
    Word expectNext = 1;
    while (got < kItems) {
      std::optional<Word> v;
      w.tm->transaction(1, [&](TxContext& tx) { v = q.dequeue(tx); });
      if (v.has_value()) {
        EXPECT_EQ(*v, expectNext);  // FIFO per single producer
        ++expectNext;
        consumedSum += *v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumedSum, kItems * (kItems + 1) / 2);
}

// -------------------------------------------------------------------- map

TEST_P(StructuresTest, MapPutGetEraseRoundTrip) {
  World w(GetParam());
  TxMap m(*w.tm, w.slots, 16);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(m.put(tx, 100, 1));
    EXPECT_TRUE(m.put(tx, 200, 2));
    EXPECT_EQ(m.get(tx, 100), std::optional<Word>(1));
    EXPECT_TRUE(m.put(tx, 100, 11));  // update
    EXPECT_EQ(m.get(tx, 100), std::optional<Word>(11));
    EXPECT_TRUE(m.erase(tx, 100));
    EXPECT_FALSE(m.contains(tx, 100));
    EXPECT_EQ(m.get(tx, 200), std::optional<Word>(2));
  });
}

TEST_P(StructuresTest, MapTombstonesAreRecycled) {
  World w(GetParam());
  TxMap m(*w.tm, w.slots, 4);
  w.tm->transaction(0, [&](TxContext& tx) {
    for (Word k = 1; k <= 4; ++k) EXPECT_TRUE(m.put(tx, k, k));
    EXPECT_FALSE(m.put(tx, 5, 5));  // full
    EXPECT_TRUE(m.erase(tx, 2));
    EXPECT_TRUE(m.put(tx, 5, 5));  // recycles the tombstone
    EXPECT_EQ(m.get(tx, 5), std::optional<Word>(5));
    EXPECT_FALSE(m.contains(tx, 2));
    // Keys colliding past the tombstone are still reachable.
    for (Word k : {1, 3, 4}) EXPECT_TRUE(m.contains(tx, k));
  });
}

TEST_P(StructuresTest, SetSemantics) {
  World w(GetParam());
  TxSet s(*w.tm, w.slots, 8);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(s.insert(tx, 7));
    EXPECT_FALSE(s.insert(tx, 7));  // duplicate
    EXPECT_TRUE(s.contains(tx, 7));
    EXPECT_TRUE(s.erase(tx, 7));
    EXPECT_FALSE(s.contains(tx, 7));
    EXPECT_FALSE(s.erase(tx, 7));
  });
}

// ----------------------------------------------------------- composition

TEST_P(StructuresTest, CrossStructureTransactionIsAtomic) {
  // Move an item from the queue into the map and bump a counter — all in
  // one transaction; an abort mid-way must leave no partial effects.
  World w(GetParam());
  TxQueue q(*w.tm, w.slots, 4);
  TxMap m(*w.tm, w.slots, 8);
  TxCounter c(*w.tm, w.slots);
  w.tm->transaction(0, [&](TxContext& tx) { q.enqueue(tx, 42); });

  // Aborted attempt: nothing moves.
  const bool committed = w.tm->transaction(0, [&](TxContext& tx) {
    auto v = q.dequeue(tx);
    ASSERT_TRUE(v.has_value());
    m.put(tx, *v, 1);
    c.add(tx, 1);
    tx.abort();
  });
  EXPECT_FALSE(committed);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_EQ(q.size(tx), 1u);  // still queued
    EXPECT_FALSE(m.contains(tx, 42));
    EXPECT_EQ(c.get(tx), 0u);
  });

  // Committed attempt: everything moves together.
  w.tm->transaction(0, [&](TxContext& tx) {
    auto v = q.dequeue(tx);
    ASSERT_TRUE(v.has_value());
    m.put(tx, *v, 1);
    c.add(tx, 1);
  });
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_EQ(q.size(tx), 0u);
    EXPECT_TRUE(m.contains(tx, 42));
    EXPECT_EQ(c.get(tx), 1u);
  });
}

TEST_P(StructuresTest, ConcurrentSetInsertsAreLinearizable) {
  World w(GetParam());
  TxSet s(*w.tm, w.slots, 64);
  TxCounter wins(*w.tm, w.slots);
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      const auto pid = static_cast<ProcessId>(t);
      for (Word k = 1; k <= 20; ++k) {
        w.tm->transaction(pid, [&](TxContext& tx) {
          if (s.insert(tx, k)) wins.add(tx, 1);
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  // Each key inserted exactly once across all threads.
  EXPECT_EQ(wins.readAtomic(0), 20u);
  w.tm->transaction(0, [&](TxContext& tx) {
    for (Word k = 1; k <= 20; ++k) EXPECT_TRUE(s.contains(tx, k));
  });
}


// ------------------------------------------------------------ sorted list

TEST_P(StructuresTest, SortedListKeepsOrder) {
  World w(GetParam());
  TxSortedList l(*w.tm, w.slots, 16);
  w.tm->transaction(0, [&](TxContext& tx) {
    for (Word k : {5, 1, 9, 3, 7}) EXPECT_TRUE(l.insert(tx, k));
    EXPECT_EQ(l.keys(tx), (std::vector<Word>{1, 3, 5, 7, 9}));
  });
}

TEST_P(StructuresTest, SortedListSetSemantics) {
  World w(GetParam());
  TxSortedList l(*w.tm, w.slots, 16);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(l.insert(tx, 4));
    EXPECT_FALSE(l.insert(tx, 4));  // duplicate
    EXPECT_TRUE(l.contains(tx, 4));
    EXPECT_FALSE(l.contains(tx, 5));
    EXPECT_TRUE(l.erase(tx, 4));
    EXPECT_FALSE(l.erase(tx, 4));
    EXPECT_FALSE(l.contains(tx, 4));
  });
}

TEST_P(StructuresTest, SortedListEraseRelinksEnds) {
  World w(GetParam());
  TxSortedList l(*w.tm, w.slots, 16);
  w.tm->transaction(0, [&](TxContext& tx) {
    for (Word k : {1, 2, 3}) l.insert(tx, k);
    EXPECT_TRUE(l.erase(tx, 1));  // head
    EXPECT_TRUE(l.erase(tx, 3));  // tail
    EXPECT_EQ(l.keys(tx), (std::vector<Word>{2}));
    EXPECT_TRUE(l.insert(tx, 1));
    EXPECT_EQ(l.keys(tx), (std::vector<Word>{1, 2}));
  });
}

TEST_P(StructuresTest, SortedListCapacityBound) {
  World w(GetParam());
  TxSortedList l(*w.tm, w.slots, 2);
  w.tm->transaction(0, [&](TxContext& tx) {
    EXPECT_TRUE(l.insert(tx, 1));
    EXPECT_TRUE(l.insert(tx, 2));
    EXPECT_FALSE(l.insert(tx, 3));  // pool exhausted (no recycling)
  });
}

TEST_P(StructuresTest, SortedListMatchesStdSetOracle) {
  World w(GetParam(), /*vars=*/512);
  TxSortedList l(*w.tm, w.slots, 128);
  std::set<Word> oracle;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const Word key = 1 + rng.below(32);
    const auto action = rng.below(3);
    w.tm->transaction(0, [&](TxContext& tx) {
      switch (action) {
        case 0: {
          const bool inserted = l.insert(tx, key);
          if (inserted != (oracle.count(key) == 0)) {
            // Pool exhaustion makes insert fail even when absent.
            EXPECT_FALSE(inserted);
          } else if (inserted) {
            oracle.insert(key);
          }
          break;
        }
        case 1:
          EXPECT_EQ(l.erase(tx, key), oracle.erase(key) > 0);
          break;
        default:
          EXPECT_EQ(l.contains(tx, key), oracle.count(key) > 0);
          break;
      }
    });
  }
  w.tm->transaction(0, [&](TxContext& tx) {
    std::vector<Word> expect(oracle.begin(), oracle.end());
    EXPECT_EQ(l.keys(tx), expect);
  });
}

TEST_P(StructuresTest, SortedListConcurrentDisjointInserts) {
  World w(GetParam(), /*vars=*/512);
  TxSortedList l(*w.tm, w.slots, 128);
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&, t] {
      const auto pid = static_cast<ProcessId>(t);
      for (Word k = 1; k <= 20; ++k) {
        w.tm->transaction(pid, [&](TxContext& tx) {
          l.insert(tx, static_cast<Word>(t) * 100 + k);
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  w.tm->transaction(0, [&](TxContext& tx) {
    auto keys = l.keys(tx);
    EXPECT_EQ(keys.size(), 60u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  });
}

// ----------------------------------------------------- log2 histogram

TEST(Log2Histogram, EmptyReportsZeroEverywhere) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.50), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(Log2Histogram, BucketsByBitWidthWithZeroInBucketZero) {
  Log2Histogram h;
  h.record(0);
  h.record(1);    // bit_width 1
  h.record(2);    // bit_width 2
  h.record(3);    // bit_width 2
  h.record(700);  // bit_width 10
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Log2Histogram, PercentileLandsInTheWinningBucketSpan) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);  // bucket 10: [512, 1024)
  for (double p : {0.01, 0.50, 0.99, 1.0}) {
    const std::uint64_t v = h.percentile(p);
    EXPECT_GE(v, 512u) << "p=" << p;
    EXPECT_LT(v, 1024u) << "p=" << p;
  }
  // Monotone in p.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.99));
}

TEST(Log2Histogram, TailPercentilePicksTheTailBucket) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.record(10);  // bucket 4: [8, 16)
  h.record(5000);                             // bucket 13: [4096, 8192)
  EXPECT_LT(h.percentile(0.50), 16u);
  EXPECT_GE(h.percentile(1.0), 4096u);
}

TEST(Log2Histogram, MergeAddsCountsAndBuckets) {
  Log2Histogram a;
  Log2Histogram b;
  for (int i = 0; i < 10; ++i) a.record(10);
  for (int i = 0; i < 10; ++i) b.record(5000);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.bucket(4), 10u);
  EXPECT_EQ(a.bucket(13), 10u);
  EXPECT_LT(a.percentile(0.25), 16u);
  EXPECT_GE(a.percentile(0.99), 4096u);
}

TEST(Log2Histogram, HugeValuesClampIntoTheTopBucket) {
  Log2Histogram h;
  h.record(~std::uint64_t{0});  // bit_width 64: must clamp, not overflow
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(Log2Histogram::kBuckets - 1), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllTms, StructuresTest,
                         ::testing::ValuesIn(allTmKinds()),
                         [](const auto& info) {
                           std::string n = tmKindName(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace jungle
