// Tests for the textual history format: parsing, error reporting, and
// round-tripping through formatHistory.
#include <gtest/gtest.h>

#include "litmus/figures.hpp"
#include "litmus/history_parser.hpp"
#include "memmodel/models.hpp"
#include "opacity/popacity.hpp"

namespace jungle {
namespace {

using litmus::formatHistory;
using litmus::parseHistory;

TEST(Parser, ParsesFigure3) {
  auto r = parseHistory(R"(
# Figure 3(a)
p1: wr x 1   @1
p1: start    @2
p2: rd y 1   @3
p1: wr y 1   @4
p1: commit   @5
p2: rd x 1   @6
p3: start    @7
p3: commit   @8
p3: rd x 1   @9
)");
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(*r.history, litmus::fig3History(1, 1))
      << "parsed history differs from the builder's";
}

TEST(Parser, AutoIdsWhenOmitted) {
  auto r = parseHistory("p0: wr x 1\np0: rd x 1\n");
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.history->at(0).id, 1u);
  EXPECT_EQ(r.history->at(1).id, 2u);
}

TEST(Parser, VariableSpellings) {
  auto r = parseHistory("p0: wr x 1\np0: wr y 2\np0: wr z 3\np0: wr x7 4\n");
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.history->at(0).obj, 0u);
  EXPECT_EQ(r.history->at(1).obj, 1u);
  EXPECT_EQ(r.history->at(2).obj, 2u);
  EXPECT_EQ(r.history->at(3).obj, 7u);
}

TEST(Parser, DependentOpsAndDeps) {
  auto r = parseHistory("p0: rd x 0 @1\np0: ddrd y 0 deps=1 @2\n");
  ASSERT_TRUE(r) << r.error;
  const auto& cmd = r.history->at(1).cmd;
  EXPECT_EQ(cmd.kind, CmdKind::kDdRead);
  EXPECT_EQ(cmd.deps, (std::vector<OpId>{1}));
}

TEST(Parser, CounterAndQueueCommands) {
  auto r = parseHistory(
      "p0: inc x 5\np0: ctrrd x 5\np1: enq y 3\np1: deq y 3\np1: deq y "
      "empty\n");
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.history->at(0).cmd.kind, CmdKind::kCtrInc);
  EXPECT_EQ(r.history->at(4).cmd.value, kQueueEmpty);
}

TEST(Parser, ReportsErrorsWithLineNumbers) {
  auto r1 = parseHistory("p0: frobnicate x 1\n");
  EXPECT_FALSE(r1);
  EXPECT_NE(r1.error.find("line 1"), std::string::npos);
  EXPECT_NE(r1.error.find("frobnicate"), std::string::npos);

  auto r2 = parseHistory("p0: wr x 1\nq0: wr x 1\n");
  EXPECT_FALSE(r2);
  EXPECT_NE(r2.error.find("line 2"), std::string::npos);

  auto r3 = parseHistory("p0: rd x\n");
  EXPECT_FALSE(r3);
  EXPECT_NE(r3.error.find("value"), std::string::npos);

  auto r4 = parseHistory("p0: ddrd x 1\n");
  EXPECT_FALSE(r4);
  EXPECT_NE(r4.error.find("deps"), std::string::npos);

  auto r5 = parseHistory("p0: wr x 1 junk\n");
  EXPECT_FALSE(r5);
  EXPECT_NE(r5.error.find("trailing"), std::string::npos);
}

TEST(Parser, RoundTripsTheFigures) {
  const std::vector<History> hs{
      litmus::fig1History(1, 0),  litmus::fig2aHistory(2, 0),
      litmus::fig2bHistory(0, 1), litmus::fig2cHistory(2, 0, 2),
      litmus::fig3History(0, 1),  litmus::dependentReadHistory(1, 0),
  };
  for (const History& h : hs) {
    auto r = parseHistory(formatHistory(h));
    ASSERT_TRUE(r) << r.error;
    EXPECT_EQ(*r.history, h) << formatHistory(h);
  }
}

TEST(Parser, ParsedHistoriesDriveTheChecker) {
  // End-to-end: text → parse → checker, reproducing a Figure 3 verdict.
  auto r = parseHistory(formatHistory(litmus::fig3History(0, 1)));
  ASSERT_TRUE(r);
  SpecMap specs;
  EXPECT_FALSE(checkParametrizedOpacity(*r.history, scModel(), specs));
  EXPECT_TRUE(checkParametrizedOpacity(*r.history, rmoModel(), specs));
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  auto r = parseHistory("\n  # full comment\np0: wr x 1  # trailing\n\n");
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.history->size(), 1u);
}

}  // namespace
}  // namespace jungle
